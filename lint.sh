#!/bin/sh
# Pre-PR gate: static analysis for the repo itself (the trace linter's
# moral equivalent, aimed at this codebase). Run before every PR; CI and
# reviewers assume it exits 0.
set -eu
cd "$(dirname "$0")"

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "lint: clean"
