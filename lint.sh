#!/bin/sh
# Pre-PR gate: static analysis for the repo itself (the trace linter's
# moral equivalent, aimed at this codebase). Run before every PR; CI and
# reviewers assume it exits 0.
set -eu
cd "$(dirname "$0")"

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

# Replay-throughput regression gate: re-measure the pinned workloads plus
# the lane-batched sweep (configs/sec, lanes vs threads-only) and fail if
# any falls >20% below the tracked BENCH_replay.json numbers.
# Best-of-9 so transient machine load doesn't masquerade as a regression.
if [ -f BENCH_replay.json ]; then
    echo "==> mpgtool bench --check BENCH_replay.json --threshold 20"
    cargo run --release -q -p mpg-analysis --bin mpgtool -- \
        bench --check BENCH_replay.json --threshold 20 --reps 9
fi

echo "lint: clean"
