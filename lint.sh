#!/bin/sh
# Pre-PR gate: static analysis for the repo itself (the trace linter's
# moral equivalent, aimed at this codebase). Run before every PR; CI and
# reviewers assume it exits 0.
set -eu
cd "$(dirname "$0")"

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

# Replay-throughput regression gate: re-measure the pinned workloads plus
# the lane-batched sweep (configs/sec, lanes vs threads-only) and fail if
# any falls >20% below the tracked BENCH_replay.json numbers.
# Best-of-9 so transient machine load doesn't masquerade as a regression.
if [ -f BENCH_replay.json ]; then
    echo "==> mpgtool bench --check BENCH_replay.json --threshold 20"
    cargo run --release -q -p mpg-analysis --bin mpgtool -- \
        bench --check BENCH_replay.json --threshold 20 --reps 9
fi

# Lint-throughput regression gate: same contract, over the full pass
# manager (progress matching + recorded graph + happens-before index +
# parallel passes, including witness replays on the wildcard-heavy
# master-worker) against the tracked BENCH_lint.json numbers.
if [ -f BENCH_lint.json ]; then
    echo "==> mpgtool bench --lint --check BENCH_lint.json --threshold 20"
    cargo run --release -q -p mpg-analysis --bin mpgtool -- \
        bench --lint --check BENCH_lint.json --threshold 20 --reps 9
fi

# Per-workload smoke suites. Every demo workload is traced once; the trace
# then feeds (a) the wait-state analyzer and (b) the fsck fault-injection
# matrix. Scripts and CI depend on the exit codes checked here.
echo "==> analyze + fsck smoke suite"
cargo build --release -q -p mpg-analysis --bin mpgtool
MPGTOOL=target/release/mpgtool
SMOKE_TMP="$(mktemp -d)"
trap 'rm -rf "$SMOKE_TMP"' EXIT

expect_exit() {
    want="$1"; shift
    set +e
    "$@" >/dev/null 2>&1
    got=$?
    set -e
    if [ "$got" -ne "$want" ]; then
        echo "lint: FAIL: exit $got (want $want): $*" >&2
        exit 1
    fi
}

# Wait-state & slack analysis must terminate cleanly on every workload
# (exit 0 ⇒ the accounting identity held exactly) and produce JSON.
analyze_workload() {
    dir="$1"
    out="$dir-analyze.json"
    expect_exit 0 "$MPGTOOL" analyze "$dir"
    if ! "$MPGTOOL" analyze "$dir" --json > "$out" || [ ! -s "$out" ]; then
        echo "lint: FAIL: analyze --json produced no output for $dir" >&2
        exit 1
    fi
    rm -f "$out"
}

# Fault-injection matrix: fsck the clean trace, inject one deterministic
# fault per operator, and check the 0/1/2 exit contract (0 clean, 1
# salvaged, 2 unrecoverable) plus the salvage-mode pipeline end to end.
fsck_workload() {
    dir="$1"
    expect_exit 0 "$MPGTOOL" fsck "$dir"
    for fault in truncate bitflip frame-drop frame-dup frame-swap splice delete-rank io-error delay; do
        bad="$dir-$fault"
        expect_exit 1 "$MPGTOOL" fsck "$dir" --inject "$fault" --seed 7 --out "$bad"
        # Salvage-mode pipeline must terminate on the damaged copy:
        # crash-tolerant replay exits 0, lint honors 0-or-1.
        expect_exit 0 "$MPGTOOL" replay "$bad" --salvage
        set +e
        "$MPGTOOL" lint "$bad" --salvage >/dev/null 2>&1
        lint_got=$?
        set -e
        if [ "$lint_got" -gt 1 ]; then
            echo "lint: FAIL: lint --salvage exited $lint_got on $bad" >&2
            exit 1
        fi
        rm -rf "$bad"
    done
    # Unrecoverable: no meta.txt.
    rm "$dir/meta.txt"
    expect_exit 2 "$MPGTOOL" fsck "$dir"
    rm -rf "$dir"
}

for wl in ring stencil master-worker solver pipeline transpose summa; do
    dir="$SMOKE_TMP/$wl"
    "$MPGTOOL" demo "$wl" --ranks 8 "$dir" >/dev/null
    analyze_workload "$dir"
    fsck_workload "$dir"
done
echo "    analyze identity + fsck exit contract hold across 7 workloads"

# Artifact-cache end-to-end: for each cached command, the cold run (which
# populates the cache) and the warm run (which serves the memoized report)
# must print stdout byte-identical to the uncached run; a corrupted
# artifact must fall back cold — still identical — and self-repair; and
# `cache gc`/`cache clear` must manage the directory. Correctness only:
# the warm-speedup timing gate is the `"cache"` section of
# `bench --check` above.
echo "==> artifact cache e2e (cold = warm = corrupt-fallback, gc, clear)"
CACHE_DIR="$SMOKE_TMP/cache"
CACHE_TRACE="$SMOKE_TMP/cache-trace"
"$MPGTOOL" demo stencil --ranks 8 --seed 3 "$CACHE_TRACE" >/dev/null

# cache_check LABEL WANT_STDOUT_FILE WANT_WARM(yes|no) CMD...
cache_check() {
    label="$1"; want_out="$2"; want_warm="$3"; shift 3
    set +e
    "$MPGTOOL" "$@" > "$SMOKE_TMP/cache-out.txt" 2> "$SMOKE_TMP/cache-err.txt"
    got=$?
    set -e
    if [ "$got" -ne 0 ]; then
        echo "lint: FAIL: $label exited $got" >&2
        exit 1
    fi
    if ! cmp -s "$want_out" "$SMOKE_TMP/cache-out.txt"; then
        echo "lint: FAIL: $label stdout diverged from the uncached run" >&2
        exit 1
    fi
    if [ "$want_warm" = yes ]; then
        grep -q "warm hit" "$SMOKE_TMP/cache-err.txt" || {
            echo "lint: FAIL: $label missed the cache" >&2; exit 1; }
    else
        if grep -q "warm hit" "$SMOKE_TMP/cache-err.txt"; then
            echo "lint: FAIL: $label claimed a warm hit" >&2; exit 1
        fi
    fi
}

# Adds 128 (mod 256) to one payload byte of every cached artifact — a
# guaranteed change the MPGC envelope CRC must catch.
corrupt_cache() {
    for art in "$CACHE_DIR"/*.mpgc; do
        b=$(dd if="$art" bs=1 skip=30 count=1 2>/dev/null | od -An -tu1 | tr -d ' \n')
        b="${b:-0}"
        printf "\\$(printf '%03o' $(( (b + 128) % 256 )))" \
            | dd of="$art" bs=1 seek=30 conv=notrunc 2>/dev/null
    done
}

for cmd in replay lint analyze; do
    base="$SMOKE_TMP/cache-$cmd-base.txt"
    "$MPGTOOL" "$cmd" "$CACHE_TRACE" > "$base"
    cache_check "$cmd cold" "$base" no \
        "$cmd" "$CACHE_TRACE" --cache --cache-dir "$CACHE_DIR"
    cache_check "$cmd warm" "$base" yes \
        "$cmd" "$CACHE_TRACE" --cache --cache-dir "$CACHE_DIR"
    corrupt_cache
    cache_check "$cmd corrupt-fallback" "$base" no \
        "$cmd" "$CACHE_TRACE" --cache --cache-dir "$CACHE_DIR"
    cache_check "$cmd repaired-warm" "$base" yes \
        "$cmd" "$CACHE_TRACE" --cache --cache-dir "$CACHE_DIR"
done

"$MPGTOOL" cache ls --cache-dir "$CACHE_DIR" | grep -q "report-" || {
    echo "lint: FAIL: cache ls shows no report artifacts" >&2; exit 1; }
"$MPGTOOL" cache gc --cache-dir "$CACHE_DIR" --max-mib 0 | grep -q "gc removed" || {
    echo "lint: FAIL: cache gc removed nothing" >&2; exit 1; }
"$MPGTOOL" cache ls --cache-dir "$CACHE_DIR" | grep -q "(0 entries)" || {
    echo "lint: FAIL: cache not empty after gc --max-mib 0" >&2; exit 1; }
"$MPGTOOL" cache clear --cache-dir "$CACHE_DIR" | grep -q "cleared 0" || {
    echo "lint: FAIL: cache clear on an empty cache misreported" >&2; exit 1; }
echo "    warm = cold across replay/lint/analyze; corruption falls back; gc/clear ok"

# Schedule-explorer smoke: exit contract (0 clean / 2 usage), cached
# frontier warm run byte-identical to the cold run, and budget 0 leaving
# plain-lint stdout untouched (pass 8 registered but inert).
echo "==> explore exit contract + frontier warm-run byte-identity"
EXP_TRACE="$SMOKE_TMP/explore-trace"
EXP_CACHE="$SMOKE_TMP/explore-cache"
"$MPGTOOL" demo master-worker --ranks 8 "$EXP_TRACE" >/dev/null
expect_exit 0 "$MPGTOOL" explore "$EXP_TRACE" --budget 16
expect_exit 2 "$MPGTOOL" explore "$EXP_TRACE" --budget nonsense
expect_exit 2 "$MPGTOOL" explore
"$MPGTOOL" explore "$EXP_TRACE" --budget 16 > "$SMOKE_TMP/explore-base.txt"
cache_check "explore cold" "$SMOKE_TMP/explore-base.txt" no \
    explore "$EXP_TRACE" --budget 16 --cache --cache-dir "$EXP_CACHE"
cache_check "explore warm" "$SMOKE_TMP/explore-base.txt" yes \
    explore "$EXP_TRACE" --budget 16 --cache --cache-dir "$EXP_CACHE"
"$MPGTOOL" lint "$EXP_TRACE" > "$SMOKE_TMP/explore-lint.txt"
"$MPGTOOL" explore "$EXP_TRACE" --budget 0 | grep -v "^explore:" \
    > "$SMOKE_TMP/explore-b0.txt"
cmp -s "$SMOKE_TMP/explore-lint.txt" "$SMOKE_TMP/explore-b0.txt" || {
    echo "lint: FAIL: budget-0 explore diverged from plain lint" >&2; exit 1; }
echo "    exit contract holds; warm frontier = cold bytes; budget 0 inert"

# Supervised service smoke: drive `mpgtool serve` over the line protocol.
# Leg 1 — seeded chaos storm (panics, stalls, transient I/O, artifact
# corruption) across 12 jobs: nothing may wedge and the invariant checker
# must come back clean. Leg 2 — chaos-free byte-identity + warm cache:
# a service job's `result` bytes must equal the solo CLI run's stdout,
# and the second submission must be a cache hit.
echo "==> serve chaos smoke (invariants + byte-identity vs solo run)"
SERVE_TRACE="$SMOKE_TMP/serve-trace"
SERVE_CACHE="$SMOKE_TMP/serve-cache"
"$MPGTOOL" demo ring --ranks 4 --seed 5 "$SERVE_TRACE" >/dev/null
"$MPGTOOL" replay "$SERVE_TRACE" --os 400 --latency 150 --seed 2 \
    > "$SMOKE_TMP/serve-solo.txt"

{
    i=1
    while [ "$i" -le 12 ]; do
        echo "submit replay $SERVE_TRACE os=400 latency=150 seed=2"
        i=$((i + 1))
    done
    i=1
    while [ "$i" -le 12 ]; do
        echo "wait job-$i"
        i=$((i + 1))
    done
    echo "stats"
    echo "check"
    echo "shutdown"
} > "$SMOKE_TMP/serve-storm.txt"
"$MPGTOOL" serve --script "$SMOKE_TMP/serve-storm.txt" \
    --workers 3 --chaos panic,delay,io-error,corrupt-artifact --chaos-seed 7 \
    --cache --cache-dir "$SERVE_CACHE" > "$SMOKE_TMP/serve-storm-out.txt"
grep -q "^ok check clean$" "$SMOKE_TMP/serve-storm-out.txt" || {
    echo "lint: FAIL: chaos storm broke a service invariant:" >&2
    cat "$SMOKE_TMP/serve-storm-out.txt" >&2
    exit 1
}
grep -q "^ok shutdown drained=true$" "$SMOKE_TMP/serve-storm-out.txt" || {
    echo "lint: FAIL: chaos storm did not drain on shutdown" >&2; exit 1; }

rm -rf "$SERVE_CACHE"
{
    echo "submit replay $SERVE_TRACE os=400 latency=150 seed=2"
    echo "wait job-1"
    echo "result job-1 out=$SMOKE_TMP/serve-cold.txt"
    echo "submit replay $SERVE_TRACE os=400 latency=150 seed=2"
    echo "wait job-2"
    echo "result job-2 out=$SMOKE_TMP/serve-warm.txt"
    echo "stats"
    echo "check"
    echo "shutdown"
} > "$SMOKE_TMP/serve-ident.txt"
"$MPGTOOL" serve --script "$SMOKE_TMP/serve-ident.txt" \
    --cache --cache-dir "$SERVE_CACHE" > "$SMOKE_TMP/serve-ident-out.txt"
cmp -s "$SMOKE_TMP/serve-solo.txt" "$SMOKE_TMP/serve-cold.txt" || {
    echo "lint: FAIL: service replay diverged from the solo CLI run" >&2; exit 1; }
cmp -s "$SMOKE_TMP/serve-solo.txt" "$SMOKE_TMP/serve-warm.txt" || {
    echo "lint: FAIL: warm service replay diverged from the solo CLI run" >&2; exit 1; }
grep -q "cache-hits=1" "$SMOKE_TMP/serve-ident-out.txt" || {
    echo "lint: FAIL: second service submission was not a warm cache hit" >&2; exit 1; }
grep -q "^ok check clean$" "$SMOKE_TMP/serve-ident-out.txt" || {
    echo "lint: FAIL: identity leg broke a service invariant" >&2; exit 1; }
echo "    chaos storm clean; service bytes = solo bytes; warm hit on resubmit"

echo "lint: clean"
