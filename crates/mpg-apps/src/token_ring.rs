//! The token-ring n-body workload (§6.1).
//!
//! "For *p* processors, it is possible then to divide up the *n* particles
//! into sets of *n/p* on each processor. Each processor *pᵢ* then packages
//! up the set of particles that it 'owns', and passes it to the
//! *(i+1 mod p)*-th processor… this is repeated *p* times until each
//! processor receives the token containing its local particle set."
//!
//! One traversal = `p` hops; with `traversals = T` the program makes `T·p`
//! hops per rank. The paper's headline observation: injecting a constant
//! `c` cycles of perturbation per message hop increases every rank's
//! runtime by ≈ `c · T · p` — which experiment E6 reproduces.

use crate::{Cycles, Workload};
use mpg_sim::RankCtx;
use mpg_trace::Rank;

/// Parameters for the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenRing {
    /// Number of full ring traversals (`T`). The paper's experiment uses a
    /// multi-traversal run ("if the ring was traversed 10 times…").
    pub traversals: u32,
    /// Particles owned per rank (`n/p`).
    pub particles_per_rank: u32,
    /// Compute cost of one particle–particle interaction (cycles).
    pub work_per_pair: Cycles,
}

impl TokenRing {
    /// Token payload size: particles × (3 position + 3 velocity + mass) × 8
    /// bytes.
    pub fn token_bytes(&self) -> u64 {
        u64::from(self.particles_per_rank) * 7 * 8
    }

    /// Pure compute per hop: local particles × token particles.
    pub fn work_per_hop(&self) -> Cycles {
        Cycles::from(self.particles_per_rank)
            * Cycles::from(self.particles_per_rank)
            * self.work_per_pair
    }

    /// Total hops each rank participates in.
    pub fn hops(&self, p: u32) -> u64 {
        u64::from(self.traversals) * u64::from(p)
    }
}

impl Workload for TokenRing {
    fn name(&self) -> &'static str {
        "token-ring"
    }

    fn run(&self, ctx: &mut RankCtx) {
        let p = ctx.size();
        let next: Rank = (ctx.rank() + 1) % p;
        let prev: Rank = (ctx.rank() + p - 1) % p;
        let bytes = self.token_bytes();
        for _ in 0..self.traversals {
            for _ in 0..p {
                // Compute interactions between local particles and the
                // current token, then pass it on. sendrecv avoids the
                // classic ring deadlock under synchronous sends.
                ctx.compute(self.work_per_hop());
                ctx.sendrecv(next, 0, bytes, prev, 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_noise::PlatformSignature;
    use mpg_sim::Simulation;
    use mpg_trace::EventKind;

    #[test]
    fn message_count_is_traversals_times_p() {
        let ring = TokenRing {
            traversals: 3,
            particles_per_rank: 2,
            work_per_pair: 5,
        };
        let out = Simulation::new(5, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| ring.run(ctx))
            .unwrap();
        // Each rank sends traversals × p tokens.
        assert_eq!(out.stats.messages, 3 * 5 * 5);
        for r in 0..5 {
            let isends = out
                .trace
                .rank(r)
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Isend { .. }))
                .count() as u64;
            assert_eq!(isends, ring.hops(5));
        }
    }

    #[test]
    fn ranks_finish_together_on_quiet_platform() {
        let ring = TokenRing {
            traversals: 2,
            particles_per_rank: 4,
            work_per_pair: 10,
        };
        let out = Simulation::new(4, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| ring.run(ctx))
            .unwrap();
        let min = out.finish_times.iter().min().unwrap();
        let max = out.finish_times.iter().max().unwrap();
        // Fully synchronous ring: spread bounded by one hop's pipeline slack.
        assert!(max - min < 10_000, "spread = {}", max - min);
    }

    #[test]
    fn token_bytes_scale_with_particles() {
        let a = TokenRing {
            traversals: 1,
            particles_per_rank: 10,
            work_per_pair: 1,
        };
        let b = TokenRing {
            traversals: 1,
            particles_per_rank: 20,
            work_per_pair: 1,
        };
        assert_eq!(b.token_bytes(), 2 * a.token_bytes());
        assert_eq!(b.work_per_hop(), 4 * a.work_per_hop());
    }
}
