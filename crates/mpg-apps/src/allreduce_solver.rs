//! A CG-like iterative solver: local compute + global allreduce per
//! iteration.
//!
//! §3.2: "The presence of collective operations is often a primary source
//! of performance degradation in a parallel program because a single slow
//! processor will induce idle time in all other processors." This workload
//! is the collective-dominated extreme in the sensitivity study: every
//! iteration synchronizes all ranks twice (the two inner products of CG).

use crate::{Cycles, Workload};
use mpg_sim::RankCtx;

/// Parameters for the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllreduceSolver {
    /// Solver iterations.
    pub iters: u32,
    /// Local matrix-vector work per iteration (cycles).
    pub local_work: Cycles,
    /// Reduced vector size (bytes) per allreduce.
    pub vector_bytes: u64,
}

impl Workload for AllreduceSolver {
    fn name(&self) -> &'static str {
        "allreduce-solver"
    }

    fn run(&self, ctx: &mut RankCtx) {
        for _ in 0..self.iters {
            // SpMV + axpy phase.
            ctx.compute(self.local_work);
            // First inner product.
            ctx.allreduce(self.vector_bytes);
            // Update phase (smaller).
            ctx.compute(self.local_work / 4);
            // Convergence-check inner product.
            ctx.allreduce(self.vector_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_noise::PlatformSignature;
    use mpg_sim::Simulation;
    use mpg_trace::EventKind;

    #[test]
    fn collective_count() {
        let s = AllreduceSolver {
            iters: 7,
            local_work: 1_000,
            vector_bytes: 16,
        };
        let out = Simulation::new(4, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| s.run(ctx))
            .unwrap();
        assert_eq!(out.stats.collectives, 14);
        for r in 0..4 {
            let allreduces = out
                .trace
                .rank(r)
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Allreduce { .. }))
                .count();
            assert_eq!(allreduces, 14);
        }
    }

    #[test]
    fn single_slow_rank_drags_everyone() {
        // Replay with noise on local edges: collective coupling means every
        // rank's drift tracks the worst perturbation.
        let s = AllreduceSolver {
            iters: 10,
            local_work: 100_000,
            vector_bytes: 64,
        };
        let out = Simulation::new(4, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| s.run(ctx))
            .unwrap();
        let mut model = mpg_core::PerturbationModel::quiet("noise");
        model.os_local = mpg_noise::Dist::Exponential { mean: 5_000.0 }.into();
        let report = mpg_core::Replayer::new(mpg_core::ReplayConfig::new(model).seed(9))
            .run(&out.trace)
            .unwrap();
        let min = *report.final_drift.iter().min().unwrap();
        let max = *report.final_drift.iter().max().unwrap();
        assert!(max > 0);
        // All ranks leave the last allreduce together: tight drift spread.
        assert!(
            max - min < max / 4 + 1,
            "collective coupling should equalize drift: {:?}",
            report.final_drift
        );
    }
}
