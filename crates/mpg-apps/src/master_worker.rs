//! Master–worker dynamic load balancing.
//!
//! Rank 0 hands out tasks and collects results with `ANY_SOURCE` receives;
//! workers loop on (receive task, compute, return result). The pattern is
//! naturally noise-*tolerant*: a slow worker simply receives fewer tasks,
//! so perturbations are largely absorbed rather than propagated — the
//! counterpoint to the token ring in the sensitivity study (E13).

use crate::{Cycles, Workload};
use mpg_sim::RankCtx;
use mpg_trace::ANY_SOURCE;

/// Tag for task messages.
const TAG_TASK: u32 = 1;
/// Tag for result messages.
const TAG_RESULT: u32 = 2;
/// Tag for the stop message.
const TAG_STOP: u32 = 3;

/// Parameters for the master–worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterWorker {
    /// Total tasks to process.
    pub tasks: u32,
    /// Compute per task (cycles).
    pub task_work: Cycles,
    /// Task payload (bytes).
    pub task_bytes: u64,
    /// Result payload (bytes).
    pub result_bytes: u64,
}

impl Workload for MasterWorker {
    fn name(&self) -> &'static str {
        "master-worker"
    }

    fn run(&self, ctx: &mut RankCtx) {
        let p = ctx.size();
        assert!(p >= 2, "master-worker needs at least one worker");
        if ctx.rank() == 0 {
            let mut sent = 0u32;
            // Prime every worker with one task (or a stop when there are
            // fewer tasks than workers).
            for w in 1..p {
                if sent < self.tasks {
                    ctx.send(w, TAG_TASK, self.task_bytes);
                    sent += 1;
                } else {
                    ctx.send(w, TAG_STOP, 0);
                }
            }
            // Collect every result; refill the source worker until the task
            // pool drains, then stop it.
            for _ in 0..self.tasks {
                let info = ctx.recv(ANY_SOURCE, TAG_RESULT);
                if sent < self.tasks {
                    ctx.send(info.src, TAG_TASK, self.task_bytes);
                    sent += 1;
                } else {
                    ctx.send(info.src, TAG_STOP, 0);
                }
            }
        } else {
            loop {
                let info = ctx.recv(0, mpg_trace::ANY_TAG);
                if info.tag == TAG_STOP {
                    break;
                }
                ctx.compute(self.task_work);
                ctx.send(0, TAG_RESULT, self.result_bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_noise::PlatformSignature;
    use mpg_sim::Simulation;
    use mpg_trace::EventKind;

    fn mw(tasks: u32) -> MasterWorker {
        MasterWorker {
            tasks,
            task_work: 10_000,
            task_bytes: 64,
            result_bytes: 32,
        }
    }

    #[test]
    fn all_tasks_processed() {
        let w = mw(20);
        let out = Simulation::new(4, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| w.run(ctx))
            .unwrap();
        // Worker compute events total exactly `tasks`.
        let computes: usize = (1..4)
            .map(|r| {
                out.trace
                    .rank(r)
                    .iter()
                    .filter(|e| matches!(e.kind, EventKind::Compute { .. }))
                    .count()
            })
            .sum();
        assert_eq!(computes, 20);
        assert!(mpg_trace::validate_trace(&out.trace).is_empty());
    }

    #[test]
    fn fewer_tasks_than_workers() {
        let w = mw(2);
        let out = Simulation::new(6, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| w.run(ctx))
            .unwrap();
        assert!(mpg_trace::validate_trace(&out.trace).is_empty());
        let computes: usize = (1..6)
            .map(|r| {
                out.trace
                    .rank(r)
                    .iter()
                    .filter(|e| matches!(e.kind, EventKind::Compute { .. }))
                    .count()
            })
            .sum();
        assert_eq!(computes, 2);
    }

    #[test]
    fn any_source_recorded_in_trace() {
        let w = mw(10);
        let out = Simulation::new(3, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| w.run(ctx))
            .unwrap();
        let any = out.trace.rank(0).iter().any(|e| {
            matches!(
                e.kind,
                EventKind::Recv {
                    posted_any: true,
                    ..
                }
            )
        });
        assert!(any, "master's wildcard receives must be flagged");
    }

    #[test]
    fn slow_worker_gets_fewer_tasks() {
        // On a noisy platform, dynamic balancing shifts work toward the
        // faster workers. Noise hits all equally here, so just verify the
        // run completes and stays valid under noise.
        let w = mw(30);
        let out = Simulation::new(4, PlatformSignature::noisy("n", 2.0))
            .seed(5)
            .run(|ctx| w.run(ctx))
            .unwrap();
        assert!(mpg_trace::validate_trace(&out.trace).is_empty());
    }
}
