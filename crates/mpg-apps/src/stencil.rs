//! 1-D halo-exchange stencil: the canonical bulk-synchronous kernel.
//!
//! Each iteration: post nonblocking halo receives and sends to both
//! neighbours, compute the interior, wait for the halos, compute the
//! boundary cells. This is the nonblocking-overlap pattern §3.1.3
//! describes ("post data for transmission … and perform additional
//! computation until the sender must block").

use crate::{Cycles, Workload};
use mpg_sim::RankCtx;

/// Parameters for the stencil sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stencil {
    /// Number of sweep iterations.
    pub iters: u32,
    /// Interior cells per rank.
    pub cells_per_rank: u32,
    /// Compute per cell per iteration (cycles).
    pub work_per_cell: Cycles,
    /// Halo payload per neighbour (bytes).
    pub halo_bytes: u64,
}

impl Workload for Stencil {
    fn name(&self) -> &'static str {
        "stencil"
    }

    fn run(&self, ctx: &mut RankCtx) {
        let p = ctx.size();
        let r = ctx.rank();
        let left = if r == 0 { None } else { Some(r - 1) };
        let right = if r + 1 == p { None } else { Some(r + 1) };
        let interior_work = Cycles::from(self.cells_per_rank) * self.work_per_cell;
        // Two boundary cells' worth of dependent work after the halo lands.
        let boundary_work = 2 * self.work_per_cell;
        for it in 0..self.iters {
            let tag = it % 2; // alternate tags across iterations
            let mut reqs = Vec::with_capacity(4);
            if let Some(l) = left {
                reqs.push(ctx.irecv(l, tag));
                reqs.push(ctx.isend(l, tag, self.halo_bytes));
            }
            if let Some(rt) = right {
                reqs.push(ctx.irecv(rt, tag));
                reqs.push(ctx.isend(rt, tag, self.halo_bytes));
            }
            ctx.compute(interior_work);
            ctx.waitall(&reqs);
            ctx.compute(boundary_work);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_noise::PlatformSignature;
    use mpg_sim::Simulation;

    fn stencil() -> Stencil {
        Stencil {
            iters: 5,
            cells_per_rank: 100,
            work_per_cell: 50,
            halo_bytes: 256,
        }
    }

    #[test]
    fn runs_on_various_sizes() {
        for p in [1u32, 2, 3, 8] {
            let s = stencil();
            let out = Simulation::new(p, PlatformSignature::quiet("t"))
                .ideal_clocks()
                .run(|ctx| s.run(ctx))
                .unwrap_or_else(|e| panic!("p={p}: {e}"));
            assert!(mpg_trace::validate_trace(&out.trace).is_empty(), "p={p}");
        }
    }

    #[test]
    fn interior_ranks_move_more_halo_data() {
        let s = stencil();
        let out = Simulation::new(4, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| s.run(ctx))
            .unwrap();
        // Edge ranks send 1 halo per iteration, interior ranks 2:
        // total sends = iters × (1 + 2 + 2 + 1).
        assert_eq!(out.stats.messages, 5 * 6);
    }

    #[test]
    fn overlap_hides_halo_latency_on_quiet_platform() {
        // With large interior work, runtime should be ≈ iters × interior:
        // the halo transfers overlap the interior compute.
        let s = Stencil {
            iters: 10,
            cells_per_rank: 10_000,
            work_per_cell: 100,
            halo_bytes: 64,
        };
        let out = Simulation::new(4, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| s.run(ctx))
            .unwrap();
        let compute_total = 10u64 * 10_000 * 100;
        let overhead = out.makespan() - compute_total;
        assert!(
            overhead < compute_total / 10,
            "messaging not overlapped: overhead={overhead}"
        );
    }
}
