//! A wavefront pipeline: rank `r` consumes from `r−1` and feeds `r+1`.
//!
//! Perturbations propagate strictly *downstream*: noise on rank 0 delays
//! everyone, noise on the last rank delays only itself (until the next
//! wave's backpressure under synchronous sends). The asymmetry makes this
//! the directional case in the absorbed-vs-propagated study (E13).

use crate::{Cycles, Workload};
use mpg_sim::RankCtx;

/// Parameters for the pipeline sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pipeline {
    /// Number of waves pushed through the pipeline.
    pub waves: u32,
    /// Compute per stage per wave (cycles).
    pub work_per_stage: Cycles,
    /// Payload forwarded between stages (bytes).
    pub payload: u64,
}

impl Workload for Pipeline {
    fn name(&self) -> &'static str {
        "pipeline"
    }

    fn run(&self, ctx: &mut RankCtx) {
        let p = ctx.size();
        let r = ctx.rank();
        for w in 0..self.waves {
            let tag = w % 4;
            if r > 0 {
                ctx.recv(r - 1, tag);
            }
            ctx.compute(self.work_per_stage);
            if r + 1 < p {
                // Nonblocking forward so stage r can start the next wave
                // while the data drains downstream.
                let req = ctx.isend(r + 1, tag, self.payload);
                ctx.wait(req);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_noise::PlatformSignature;
    use mpg_sim::Simulation;

    #[test]
    fn completes_for_various_sizes() {
        for p in [1u32, 2, 4, 7] {
            let w = Pipeline {
                waves: 3,
                work_per_stage: 1_000,
                payload: 64,
            };
            let out = Simulation::new(p, PlatformSignature::quiet("t"))
                .ideal_clocks()
                .run(|ctx| w.run(ctx))
                .unwrap_or_else(|e| panic!("p={p}: {e}"));
            assert!(mpg_trace::validate_trace(&out.trace).is_empty(), "p={p}");
        }
    }

    #[test]
    fn downstream_finishes_later() {
        let w = Pipeline {
            waves: 5,
            work_per_stage: 10_000,
            payload: 128,
        };
        let out = Simulation::new(4, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| w.run(ctx))
            .unwrap();
        // The last stage can only finish after the full sweep reaches it.
        assert!(out.finish_times[3] > out.finish_times[0]);
    }

    #[test]
    fn upstream_noise_propagates_downstream() {
        // Inject latency on message edges: the sink's drift accumulates one
        // delta per hop on its critical path, upstream ranks fewer.
        let w = Pipeline {
            waves: 4,
            work_per_stage: 10_000,
            payload: 128,
        };
        let out = Simulation::new(4, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| w.run(ctx))
            .unwrap();
        let mut model = mpg_core::PerturbationModel::quiet("lat");
        model.latency = mpg_noise::Dist::Constant(1_000.0).into();
        let report = mpg_core::Replayer::new(mpg_core::ReplayConfig::new(model).ack_arm(false))
            .run(&out.trace)
            .unwrap();
        // Strictly non-decreasing drift along the pipeline.
        for r in 1..4 {
            assert!(
                report.final_drift[r] >= report.final_drift[r - 1],
                "{:?}",
                report.final_drift
            );
        }
        assert!(report.final_drift[3] > report.final_drift[0]);
    }
}
