#![warn(missing_docs)]

//! Workload programs for the simulated MPI runtime.
//!
//! One module per communication pattern, each parameterized and expressed
//! against [`RankCtx`](mpg_sim::RankCtx):
//!
//! * [`token_ring`] — the paper's §6.1 evaluation workload: the direct
//!   O(n²) n-body interaction computed by circulating particle sets around
//!   a ring;
//! * [`stencil`] — 1-D halo exchange with nonblocking
//!   isend/irecv/waitall, the canonical bulk-synchronous kernel;
//! * [`master_worker`] — dynamic work distribution with `ANY_SOURCE`
//!   receives, the canonical *asynchronous* pattern;
//! * [`allreduce_solver`] — a CG-like iteration alternating local compute
//!   with global allreduces, the collective-dominated extreme the paper's
//!   §3.2 motivates;
//! * [`pipeline`] — a wavefront sweep where perturbations propagate
//!   strictly downstream;
//! * [`transpose`] — an FFT-style kernel alternating local compute with
//!   all-to-all exchanges, the densest collective pattern;
//! * [`grid_summa`] — a SUMMA-style 2-D matrix multiply on a process grid
//!   with row/column sub-communicators.
//!
//! All programs are deterministic given their parameters, so traces are
//! reproducible end to end.

pub mod allreduce_solver;
pub mod grid_summa;
pub mod master_worker;
pub mod pipeline;
pub mod stencil;
pub mod token_ring;
pub mod transpose;

pub use allreduce_solver::AllreduceSolver;
pub use grid_summa::GridSumma;
pub use master_worker::MasterWorker;
pub use pipeline::Pipeline;
pub use stencil::Stencil;
pub use token_ring::TokenRing;
pub use transpose::Transpose;

/// Cycle unit shared across the workspace.
pub type Cycles = u64;

/// Common interface: a workload renders itself as a rank program.
pub trait Workload: Sync {
    /// Human-readable name for tables and reports.
    fn name(&self) -> &'static str;

    /// The per-rank program body.
    fn run(&self, ctx: &mut mpg_sim::RankCtx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_noise::PlatformSignature;
    use mpg_sim::Simulation;
    use mpg_trace::validate_trace;

    /// Every workload must produce a valid trace on a quiet platform and a
    /// replayable one.
    #[test]
    fn all_workloads_trace_and_replay() {
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(TokenRing {
                traversals: 2,
                particles_per_rank: 4,
                work_per_pair: 10,
            }),
            Box::new(Stencil {
                iters: 3,
                cells_per_rank: 64,
                work_per_cell: 5,
                halo_bytes: 128,
            }),
            Box::new(MasterWorker {
                tasks: 10,
                task_work: 1_000,
                result_bytes: 32,
                task_bytes: 16,
            }),
            Box::new(AllreduceSolver {
                iters: 4,
                local_work: 2_000,
                vector_bytes: 64,
            }),
            Box::new(Pipeline {
                waves: 3,
                work_per_stage: 1_000,
                payload: 64,
            }),
            Box::new(Transpose {
                steps: 2,
                rows_per_rank: 8,
                work_per_element: 5,
                block_bytes: 64,
            }),
        ];
        for w in workloads {
            let out = Simulation::new(4, PlatformSignature::quiet("t"))
                .ideal_clocks()
                .run(|ctx| w.run(ctx))
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()));
            assert!(
                validate_trace(&out.trace).is_empty(),
                "{} trace invalid",
                w.name()
            );
            let report = mpg_core::Replayer::new(mpg_core::ReplayConfig::new(
                mpg_core::PerturbationModel::quiet("id"),
            ))
            .run(&out.trace)
            .unwrap_or_else(|e| panic!("{} replay failed: {e}", w.name()));
            assert_eq!(
                report.final_drift,
                vec![0; 4],
                "{} identity replay drifted",
                w.name()
            );
        }
    }
}
