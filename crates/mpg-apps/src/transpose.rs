//! A distributed matrix transpose / FFT-style kernel: compute, all-to-all,
//! compute, repeated.
//!
//! All-to-all is the densest collective pattern (`p−1` exchanges per rank
//! per step) and stresses both the abstract `p−1`-round model and, in
//! expanded mode, the matching engine with `O(p²)` concurrent messages.

use crate::{Cycles, Workload};
use mpg_sim::RankCtx;

/// Parameters for the transpose kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transpose {
    /// Number of transpose steps (e.g. FFT butterfly stages).
    pub steps: u32,
    /// Local rows per rank; local work per step is `rows²` element ops.
    pub rows_per_rank: u32,
    /// Cost of one element operation (cycles).
    pub work_per_element: Cycles,
    /// Bytes exchanged per (src, dst) pair per step.
    pub block_bytes: u64,
}

impl Workload for Transpose {
    fn name(&self) -> &'static str {
        "transpose"
    }

    fn run(&self, ctx: &mut RankCtx) {
        let local_work = Cycles::from(self.rows_per_rank)
            * Cycles::from(self.rows_per_rank)
            * self.work_per_element;
        for _ in 0..self.steps {
            ctx.compute(local_work);
            ctx.alltoall(self.block_bytes);
            ctx.compute(local_work / 2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_noise::PlatformSignature;
    use mpg_sim::{CollectiveMode, Simulation};
    use mpg_trace::{validate_trace, EventKind};

    fn transpose() -> Transpose {
        Transpose {
            steps: 3,
            rows_per_rank: 10,
            work_per_element: 5,
            block_bytes: 256,
        }
    }

    #[test]
    fn abstract_mode_traces_alltoall_events() {
        let t = transpose();
        let out = Simulation::new(4, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| t.run(ctx))
            .unwrap();
        assert!(validate_trace(&out.trace).is_empty());
        let alltoalls = out
            .trace
            .rank(0)
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Alltoall { .. }))
            .count();
        assert_eq!(alltoalls, 3);
    }

    #[test]
    fn expanded_mode_floods_p2p() {
        let t = transpose();
        let out = Simulation::new(4, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .collective_mode(CollectiveMode::Expanded)
            .run(|ctx| t.run(ctx))
            .unwrap();
        assert!(validate_trace(&out.trace).is_empty());
        // Each step: every rank exchanges with p−1 partners.
        assert_eq!(out.stats.messages, 3 * 4 * 3);
    }

    #[test]
    fn replays_identically() {
        let t = transpose();
        let out = Simulation::new(4, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| t.run(ctx))
            .unwrap();
        let report = mpg_core::Replayer::new(mpg_core::ReplayConfig::new(
            mpg_core::PerturbationModel::quiet("id"),
        ))
        .run(&out.trace)
        .unwrap();
        assert_eq!(report.final_drift, vec![0; 4]);
    }
}
