//! SUMMA-style 2-D matrix multiply on a process grid.
//!
//! Ranks form an `rows × cols` grid with row and column sub-communicators
//! (`MPI_Comm_split` idiom). Each of the `cols` steps broadcasts an A-panel
//! along rows, a B-panel along columns, then performs the local
//! multiply-accumulate — the classic pattern whose *two-level* collective
//! structure exercises sub-communicator traffic in the analyzer.

use crate::{Cycles, Workload};
use mpg_sim::RankCtx;

/// Parameters for the SUMMA kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSumma {
    /// Grid rows; `rows × cols` must equal the job size.
    pub rows: u32,
    /// Grid columns.
    pub cols: u32,
    /// Panel payload broadcast per step (bytes).
    pub panel_bytes: u64,
    /// Local multiply-accumulate cost per step (cycles).
    pub local_work: Cycles,
}

impl Workload for GridSumma {
    fn name(&self) -> &'static str {
        "grid-summa"
    }

    fn run(&self, ctx: &mut RankCtx) {
        assert_eq!(
            self.rows * self.cols,
            ctx.size(),
            "grid {}x{} needs exactly {} ranks",
            self.rows,
            self.cols,
            self.rows * self.cols
        );
        let cols = self.cols;
        let world = ctx.comm_world();
        let row_comm = ctx.comm_split(&world, |r| r / cols, |r| r);
        let col_comm = ctx.comm_split(&world, |r| r % cols, |r| r);

        for step in 0..cols {
            // Owner of this step's A-panel within each row / B-panel within
            // each column.
            ctx.bcast_on(&row_comm, step % row_comm.size(), self.panel_bytes);
            ctx.bcast_on(&col_comm, step % col_comm.size(), self.panel_bytes);
            ctx.compute(self.local_work);
        }
        // Final residual check over everyone.
        ctx.allreduce(8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_noise::PlatformSignature;
    use mpg_sim::Simulation;
    use mpg_trace::validate_trace;

    fn summa(rows: u32, cols: u32) -> GridSumma {
        GridSumma {
            rows,
            cols,
            panel_bytes: 4_096,
            local_work: 100_000,
        }
    }

    #[test]
    fn runs_on_various_grids() {
        for (rows, cols) in [(1u32, 2u32), (2, 2), (2, 3), (3, 2), (2, 4)] {
            let w = summa(rows, cols);
            let out = Simulation::new(rows * cols, PlatformSignature::quiet("t"))
                .ideal_clocks()
                .run(|ctx| w.run(ctx))
                .unwrap_or_else(|e| panic!("{rows}x{cols}: {e}"));
            assert!(validate_trace(&out.trace).is_empty(), "{rows}x{cols}");
        }
    }

    #[test]
    fn wrong_rank_count_reported_as_rank_panic() {
        // The assertion fires inside rank threads; the simulator surfaces it
        // as a RankPanicked error rather than crashing the harness.
        let w = summa(2, 2);
        let err = Simulation::new(3, PlatformSignature::quiet("t"))
            .run(|ctx| w.run(ctx))
            .unwrap_err();
        match err {
            mpg_sim::SimError::RankPanicked { message, .. } => {
                assert!(message.contains("needs exactly"), "{message}");
            }
            other => panic!("expected rank panic, got {other}"),
        }
    }

    #[test]
    fn replays_identically_and_under_noise() {
        let w = summa(2, 3);
        let out = Simulation::new(6, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| w.run(ctx))
            .unwrap();
        let id = mpg_core::Replayer::new(mpg_core::ReplayConfig::new(
            mpg_core::PerturbationModel::quiet("id"),
        ))
        .run(&out.trace)
        .unwrap();
        assert_eq!(id.final_drift, vec![0; 6]);

        let mut model = mpg_core::PerturbationModel::quiet("lat");
        model.latency = mpg_noise::Dist::Constant(500.0).into();
        let noisy = mpg_core::Replayer::new(mpg_core::ReplayConfig::new(model))
            .run(&out.trace)
            .unwrap();
        // Everyone ends at the final world allreduce: equal positive drifts.
        assert!(noisy.final_drift.iter().all(|&d| d > 0));
        let first = noisy.final_drift[0];
        assert!(
            noisy.final_drift.iter().all(|&d| d == first),
            "{:?}",
            noisy.final_drift
        );
    }
}
