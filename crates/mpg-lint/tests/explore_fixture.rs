//! Hand-built workloads for the pass-8 schedule-space explorer.
//!
//! The centerpiece is the planted may-deadlock: a program whose recorded
//! run completes, but whose wildcard receive — re-matched onto the other
//! compatible sender — starves a synchronous send and wedges two ranks
//! in a wait-for cycle. Pass 4 cannot report it (the alternate's
//! recorded consumer is a specific receive, so there is no completing
//! single-swap witness); the explorer forces the match anyway and
//! watches the replay deadlock.

use mpg_core::forced::ForcedOutcome;
use mpg_lint::{forced_replay, lint_explore, lint_full, ExploreFindingKind, ExploreOptions};
use mpg_trace::{EventKind, EventRecord, MemTrace, Rank, Rule, SendProtocol};

/// Builds a trace from per-rank `(kind, duration)` programs, wrapping
/// each rank in Init/Finalize with dense sequence numbers and monotone
/// clocks.
fn trace_of(programs: Vec<Vec<(EventKind, u64)>>) -> MemTrace {
    let mut mt = MemTrace::new(programs.len());
    for (rank, body) in programs.into_iter().enumerate() {
        let mut steps = vec![(EventKind::Init, 10)];
        steps.extend(body);
        steps.push((EventKind::Finalize, 10));
        let mut t = 0u64;
        for (i, (kind, dur)) in steps.into_iter().enumerate() {
            mt.push(EventRecord {
                rank: rank as Rank,
                seq: i as u64,
                t_start: t,
                t_end: t + dur,
                kind,
            });
            t += dur;
        }
    }
    mt
}

fn send(peer: Rank, tag: u32) -> (EventKind, u64) {
    (
        EventKind::Send {
            peer,
            tag,
            bytes: 8,
            protocol: SendProtocol::Standard,
        },
        10,
    )
}

fn ssend(peer: Rank, tag: u32) -> (EventKind, u64) {
    (
        EventKind::Send {
            peer,
            tag,
            bytes: 8,
            protocol: SendProtocol::Synchronous,
        },
        10,
    )
}

fn recv(peer: Rank, tag: u32) -> (EventKind, u64) {
    (
        EventKind::Recv {
            peer,
            tag,
            bytes: 8,
            posted_any: false,
        },
        10,
    )
}

fn recv_any(peer: Rank, tag: u32) -> (EventKind, u64) {
    (
        EventKind::Recv {
            peer,
            tag,
            bytes: 8,
            posted_any: true,
        },
        10,
    )
}

fn compute(dur: u64) -> (EventKind, u64) {
    (EventKind::Compute { work: dur }, dur)
}

fn barrier(comm_size: u32) -> (EventKind, u64) {
    (EventKind::Barrier { comm_size }, 10)
}

/// The planted may-deadlock. Recorded: rank 0's wildcard takes rank 1's
/// synchronous send, the barrier passes, and the specific receive drains
/// rank 2's eager send. Forced onto rank 2 instead: rank 1's ssend has
/// no consumer left (the only remaining receive specifically names rank
/// 2, whose message is gone), rank 1 never reaches the barrier, and
/// ranks 0 and 1 wait on each other forever.
fn may_deadlock_trace() -> MemTrace {
    trace_of(vec![
        vec![recv_any(1, 0), barrier(3), recv(2, 0)],
        vec![ssend(0, 0), barrier(3)],
        vec![send(0, 0), barrier(3)],
    ])
}

#[test]
fn planted_may_deadlock_is_found_and_replayable() {
    let t = may_deadlock_trace();
    // The recorded run is clean: pass 4 must *not* fire (the alternate's
    // consumer is pinned), and nothing errors.
    let plain = lint_full(&t);
    assert!(
        !plain.iter().any(|d| d.rule == Rule::WildRace),
        "pinned-consumer alternate is not a single-swap race: {plain:?}"
    );
    assert!(
        !plain.iter().any(|d| d.rule == Rule::MayDeadlock),
        "budget-0 lint must not explore: {plain:?}"
    );

    let opts = ExploreOptions {
        budget: 8,
        depth: 2,
        divergence_pct: 10.0,
        seed: 0,
        cancel: None,
    };
    let out = lint_explore(&t, &opts);
    let finding = out
        .findings
        .iter()
        .find(|f| matches!(f.kind, ExploreFindingKind::MayDeadlock { .. }))
        .expect("explorer must find the planted may-deadlock");
    let ExploreFindingKind::MayDeadlock { ref cycle } = finding.kind else {
        unreachable!()
    };
    assert_eq!(cycle, &vec![0, 1], "the cycle is ranks 0 and 1");

    // The witness is independently re-replayable: feeding the reported
    // plan back through the shared forced-replay path deadlocks again.
    let rep = forced_replay(&t, &finding.plan);
    assert_eq!(rep.outcome, ForcedOutcome::Deadlocked);
    assert!(rep.diags.iter().any(|d| d.rule == Rule::Deadlock));

    // The diagnostic names the full forced match sequence.
    let diag = out
        .diags
        .iter()
        .find(|d| d.rule == Rule::MayDeadlock)
        .expect("diagnostic rendered");
    assert!(
        diag.message.contains(&finding.plan.to_string()),
        "finding text must carry the re-replayable plan: {}",
        diag.message
    );
    assert!(!out.stats.budget_exhausted);
    assert_eq!(out.stats.frontier_unexplored, 0);
    assert!(out.stats.explored >= 1);
}

/// Swapping the two wildcard matches parks rank 0's long compute phase
/// behind rank 2's late message: the makespan estimate shifts far past
/// the threshold.
fn divergence_trace() -> MemTrace {
    trace_of(vec![
        vec![recv_any(1, 5), compute(1000), recv_any(2, 5)],
        vec![send(0, 5)],
        vec![compute(800), send(0, 5)],
    ])
}

#[test]
fn schedule_divergence_is_quantified() {
    let t = divergence_trace();
    let opts = ExploreOptions {
        budget: 8,
        depth: 2,
        divergence_pct: 10.0,
        seed: 0,
        cancel: None,
    };
    let out = lint_explore(&t, &opts);
    let finding = out
        .findings
        .iter()
        .find(|f| matches!(f.kind, ExploreFindingKind::Divergence { .. }))
        .expect("swapped matching must shift the makespan: {out.findings:?}");
    let ExploreFindingKind::Divergence { base, alt, pct } = finding.kind else {
        unreachable!()
    };
    assert!(alt > base, "alternate schedule is slower: {base} -> {alt}");
    assert!(pct > 10.0, "shift is well past the threshold: {pct}");
    // And the plan really completes when re-replayed.
    let rep = forced_replay(&t, &finding.plan);
    assert_eq!(rep.outcome, ForcedOutcome::Completed);
}

#[test]
fn exhausted_budget_is_reported_honestly() {
    // Three wildcard receives, three senders: the seed frontier holds
    // several distinct plans, so a budget of one must stop early and say
    // exactly how much it left on the table.
    let t = trace_of(vec![
        vec![recv_any(1, 5), recv_any(2, 5), recv_any(3, 5)],
        vec![send(0, 5)],
        vec![send(0, 5)],
        vec![send(0, 5)],
    ]);
    let opts = ExploreOptions {
        budget: 1,
        depth: 2,
        divergence_pct: 10.0,
        seed: 0,
        cancel: None,
    };
    let out = lint_explore(&t, &opts);
    assert_eq!(out.stats.explored, 1);
    assert!(out.stats.budget_exhausted);
    assert!(out.stats.frontier_unexplored > 0);
    let coverage = out.stats.coverage();
    assert!(
        coverage.contains("budget exhausted") && coverage.contains("unexplored"),
        "{coverage}"
    );
}

#[test]
fn budget_zero_is_bit_identical_to_lint_full() {
    for t in [may_deadlock_trace(), divergence_trace()] {
        let out = lint_explore(&t, &ExploreOptions::default());
        assert_eq!(out.diags, lint_full(&t));
        assert!(out.findings.is_empty());
        assert_eq!(out.stats.explored, 0);
    }
}

#[test]
fn seed_rotates_exploration_order_deterministically() {
    let t = trace_of(vec![
        vec![recv_any(1, 5), recv_any(2, 5), recv_any(3, 5)],
        vec![send(0, 5)],
        vec![send(0, 5)],
        vec![send(0, 5)],
    ]);
    let run = |seed: u64| {
        let opts = ExploreOptions {
            budget: 64,
            depth: 2,
            divergence_pct: 10.0,
            seed,
            cancel: None,
        };
        lint_explore(&t, &opts)
    };
    let (a, b) = (run(0), run(0));
    assert_eq!(a.diags, b.diags, "same seed, same everything");
    assert_eq!(a.stats, b.stats);
    // A different seed visits the same exhaustive frontier — only the
    // order changes, so the totals agree.
    let c = run(3);
    assert_eq!(a.stats.explored, c.stats.explored);
    assert_eq!(a.stats.pruned, c.stats.pruned);
}
