//! Property tests for the pass-8 schedule-space explorer.
//!
//! Random SPMD programs heavy on wildcard receives are simulated, then
//! explored under a real budget. Two invariants:
//!
//! 1. **Every finding re-replays to its claimed outcome.** An
//!    `MPG-MAY-DEADLOCK` plan, fed back through the shared forced-replay
//!    path, must deadlock again; an `MPG-SCHEDULE-DIVERGENCE` plan must
//!    complete and reproduce the claimed makespan shift. The explorer
//!    can miss; it cannot lie.
//! 2. **A zero budget is a no-op.** `lint_explore` at budget 0 must be
//!    bit-identical to plain `lint_full` — the pass ships registered but
//!    inert, and pre-explorer output never changes.

use mpg_core::forced::ForcedOutcome;
use mpg_lint::{
    forced_replay, lint_explore, lint_full, matching_makespan, ExploreFindingKind, ExploreOptions,
    LintContext,
};
use mpg_noise::PlatformSignature;
use mpg_sim::RankCtx;
use mpg_trace::ANY_SOURCE;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Round {
    Compute(u64),
    /// Everyone sends to the root; the root drains `p − 1` wildcards.
    GatherAny {
        root: u32,
        tag: u32,
        bytes: u64,
    },
    /// Ring where every receive is a wildcard.
    RingAny {
        tag: u32,
        bytes: u64,
    },
    /// The root drains one wildcard and then one *specific* receive —
    /// the pinned-consumer shape where may-deadlocks hide.
    GatherPinned {
        root: u32,
        tag: u32,
        bytes: u64,
    },
    Barrier,
}

fn run_round(ctx: &mut RankCtx, round: &Round) {
    let p = ctx.size();
    let me = ctx.rank();
    match *round {
        Round::Compute(work) => ctx.compute(work),
        Round::GatherAny { root, tag, bytes } => {
            let root = root % p;
            if me == root {
                for _ in 1..p {
                    ctx.recv(ANY_SOURCE, tag);
                }
            } else {
                ctx.send(root, tag, bytes);
            }
        }
        Round::RingAny { tag, bytes } => {
            let r = ctx.irecv(ANY_SOURCE, tag);
            let s = ctx.isend((me + 1) % p, tag, bytes);
            ctx.waitall(&[r, s]);
        }
        Round::GatherPinned { root, tag, bytes } => {
            let root = root % p;
            let pinned = (root + 1) % p;
            if me == root {
                ctx.recv(ANY_SOURCE, tag);
                ctx.recv(pinned, tag);
            } else if me == pinned {
                ctx.send(root, tag, bytes);
                ctx.send(root, tag, bytes);
            }
        }
        Round::Barrier => ctx.barrier(),
    }
}

fn round_strategy() -> impl Strategy<Value = Round> {
    prop_oneof![
        (1u64..10_000).prop_map(Round::Compute),
        (0u32..8, 0u32..3, 1u64..2_048).prop_map(|(root, tag, bytes)| Round::GatherAny {
            root,
            tag,
            bytes
        }),
        (0u32..3, 1u64..2_048).prop_map(|(tag, bytes)| Round::RingAny { tag, bytes }),
        (0u32..8, 0u32..3, 1u64..2_048).prop_map(|(root, tag, bytes)| Round::GatherPinned {
            root,
            tag,
            bytes
        }),
        Just(Round::Barrier),
    ]
}

fn trace_of(p: u32, sim_seed: u64, rounds: &[Round]) -> mpg_trace::MemTrace {
    mpg_sim::Simulation::new(p, PlatformSignature::quiet("prop-explore"))
        .ideal_clocks()
        .seed(sim_seed)
        .run(|ctx| {
            for round in rounds {
                run_round(ctx, round);
            }
        })
        .expect("generated program simulates")
        .trace
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn every_finding_rereplays_to_its_claimed_outcome(
        p in 2u32..6,
        sim_seed in 0u64..1_000,
        explore_seed in 0u64..8,
        rounds in prop::collection::vec(round_strategy(), 1..5),
    ) {
        let trace = trace_of(p, sim_seed, &rounds);
        let opts = ExploreOptions {
            budget: 24,
            depth: 2,
            divergence_pct: 10.0,
            seed: explore_seed,
            cancel: None,
        };
        let out = lint_explore(&trace, &opts);
        prop_assert!(out.stats.explored <= opts.budget);
        if !out.stats.budget_exhausted && out.stats.cancelled.is_none() {
            prop_assert_eq!(out.stats.frontier_unexplored, 0,
                "drained frontier must report zero unexplored");
        }
        let ctx = LintContext::build(&trace);
        let base = matching_makespan(&trace, &ctx.progress.matching);
        for f in &out.findings {
            let rep = forced_replay(&trace, &f.plan);
            match &f.kind {
                ExploreFindingKind::MayDeadlock { cycle } => {
                    prop_assert_eq!(rep.outcome, ForcedOutcome::Deadlocked,
                        "may-deadlock plan must deadlock on re-replay: {:?}", f.plan);
                    prop_assert!(!cycle.is_empty(), "cycle names its ranks");
                }
                ExploreFindingKind::Divergence { base: b, alt, pct } => {
                    prop_assert_eq!(rep.outcome, ForcedOutcome::Completed,
                        "divergence plan must complete on re-replay: {:?}", f.plan);
                    prop_assert_eq!(Some(*b), base, "claimed baseline is the recorded one");
                    let re_alt = matching_makespan(&trace, &rep.matching)
                        .expect("completed matching has a makespan");
                    prop_assert_eq!(re_alt, *alt, "claimed alternate makespan reproduces");
                    prop_assert!(*pct > opts.divergence_pct);
                }
            }
        }
    }

    #[test]
    fn budget_zero_is_bit_identical_to_lint_full(
        p in 2u32..6,
        sim_seed in 0u64..1_000,
        rounds in prop::collection::vec(round_strategy(), 1..5),
    ) {
        let trace = trace_of(p, sim_seed, &rounds);
        let out = lint_explore(&trace, &ExploreOptions::default());
        prop_assert_eq!(out.diags, lint_full(&trace));
        prop_assert!(out.findings.is_empty());
        prop_assert_eq!(out.stats, mpg_lint::ExploreStats::default());
    }
}
