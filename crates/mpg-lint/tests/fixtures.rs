//! Hand-built defective traces, one per lint rule, asserting the exact
//! rule code and set of ranks each pass reports.

use mpg_lint::{lint_full, lint_trace};
use mpg_trace::{Diagnostic, EventKind, EventRecord, MemTrace, Rank, Rule, SendProtocol, Severity};

/// Builds a trace from per-rank event-kind programs, wrapping each rank in
/// Init/Finalize and assigning dense sequence numbers and monotone clocks
/// so pass 0 stays quiet and only the seeded defect fires.
fn trace_of(programs: Vec<Vec<EventKind>>) -> MemTrace {
    let mut mt = MemTrace::new(programs.len());
    for (rank, body) in programs.into_iter().enumerate() {
        let mut kinds = vec![EventKind::Init];
        kinds.extend(body);
        kinds.push(EventKind::Finalize);
        for (i, kind) in kinds.into_iter().enumerate() {
            let t = i as u64 * 10;
            mt.push(EventRecord {
                rank: rank as Rank,
                seq: i as u64,
                t_start: t,
                t_end: t + 10,
                kind,
            });
        }
    }
    mt
}

fn send(peer: Rank, tag: u32, bytes: u64) -> EventKind {
    EventKind::Send {
        peer,
        tag,
        bytes,
        protocol: SendProtocol::Standard,
    }
}

fn ssend(peer: Rank, tag: u32, bytes: u64) -> EventKind {
    EventKind::Send {
        peer,
        tag,
        bytes,
        protocol: SendProtocol::Synchronous,
    }
}

fn recv(peer: Rank, tag: u32, bytes: u64) -> EventKind {
    EventKind::Recv {
        peer,
        tag,
        bytes,
        posted_any: false,
    }
}

fn recv_any(peer: Rank, tag: u32, bytes: u64) -> EventKind {
    EventKind::Recv {
        peer,
        tag,
        bytes,
        posted_any: true,
    }
}

struct Fixture {
    name: &'static str,
    trace: MemTrace,
    rule: Rule,
    ranks: Vec<Rank>,
    /// When set, the fixture must produce diagnostics of this rule and
    /// nothing else.
    exclusive: bool,
    /// Rules of graph-backed passes need [`lint_full`]; the rest are
    /// asserted against [`lint_trace`] so a defective trace never has to
    /// survive a recording replay.
    full: bool,
}

fn fixtures() -> Vec<Fixture> {
    vec![
        Fixture {
            // Classic head-to-head blocking receives: 0 and 1 each wait
            // for the other's send, which is never reached.
            name: "deadlock-cycle",
            trace: trace_of(vec![
                vec![recv(1, 0, 8), send(1, 0, 8)],
                vec![recv(0, 0, 8), send(0, 0, 8)],
            ]),
            rule: Rule::Deadlock,
            ranks: vec![0, 1],
            exclusive: true,
            full: false,
        },
        Fixture {
            // Synchronous sends head-to-head also cycle: each Ssend waits
            // for the peer's receive, which sits behind the peer's Ssend.
            name: "deadlock-ssend",
            trace: trace_of(vec![
                vec![ssend(1, 0, 8), recv(1, 0, 8)],
                vec![ssend(0, 0, 8), recv(0, 0, 8)],
            ]),
            rule: Rule::Deadlock,
            ranks: vec![0, 1],
            exclusive: true,
            full: false,
        },
        Fixture {
            // Rank 0 sends; rank 1 never posts a receive.
            name: "orphan-send",
            trace: trace_of(vec![vec![send(1, 7, 64)], vec![]]),
            rule: Rule::UnmatchedSend,
            ranks: vec![0, 1],
            exclusive: true,
            full: false,
        },
        Fixture {
            // Rank 1 expects a message rank 0 never sends.
            name: "orphan-recv",
            trace: trace_of(vec![vec![], vec![recv(0, 3, 8)]]),
            rule: Rule::UnmatchedRecv,
            ranks: vec![0, 1],
            exclusive: true,
            full: false,
        },
        Fixture {
            // Channel agrees, tag does not: the leftover pair is reported
            // as one tag mismatch, not two unmatched envelopes.
            name: "tag-mismatch",
            trace: trace_of(vec![vec![send(1, 1, 8)], vec![recv(0, 2, 8)]]),
            rule: Rule::TagMismatch,
            ranks: vec![0, 1],
            exclusive: true,
            full: false,
        },
        Fixture {
            // Matched pair disagreeing on payload size (warning).
            name: "count-mismatch",
            trace: trace_of(vec![vec![send(1, 0, 64)], vec![recv(0, 0, 32)]]),
            rule: Rule::CountMismatch,
            ranks: vec![0, 1],
            exclusive: true,
            full: false,
        },
        Fixture {
            // Destination outside the communicator.
            name: "bad-peer",
            trace: trace_of(vec![vec![send(9, 0, 8)], vec![]]),
            rule: Rule::BadPeer,
            ranks: vec![0],
            exclusive: true,
            full: false,
        },
        Fixture {
            // Two wildcard receives on rank 0 resolved to different
            // senders with nothing ordering them: the match is a race.
            name: "wildcard-race",
            trace: trace_of(vec![
                vec![recv_any(1, 5, 8), recv_any(2, 5, 8)],
                vec![send(0, 5, 8)],
                vec![send(0, 5, 8)],
            ]),
            rule: Rule::WildRace,
            ranks: vec![0, 1, 2],
            exclusive: true,
            full: true,
        },
        Fixture {
            // The barrier's ordering is already implied: the synchronous
            // send/receive pair before it and the reply after it are
            // point-to-point ordered, so no match the barrier forbids
            // becomes feasible without it.
            name: "redundant-barrier",
            trace: trace_of(vec![
                vec![
                    ssend(1, 0, 8),
                    EventKind::Barrier { comm_size: 2 },
                    recv(1, 1, 8),
                ],
                vec![
                    recv(0, 0, 8),
                    EventKind::Barrier { comm_size: 2 },
                    send(0, 1, 8),
                ],
            ]),
            rule: Rule::RedundantSync,
            ranks: vec![0, 1],
            exclusive: true,
            full: true,
        },
        Fixture {
            // Nine eager standard sends race ahead of a receiver that
            // drains them one by one: the in-flight high-water mark (9)
            // crosses the advisory threshold (8).
            name: "buffer-watermark",
            trace: trace_of(vec![
                vec![
                    recv(1, 0, 8),
                    recv(1, 0, 8),
                    recv(1, 0, 8),
                    recv(1, 0, 8),
                    recv(1, 0, 8),
                    recv(1, 0, 8),
                    recv(1, 0, 8),
                    recv(1, 0, 8),
                    recv(1, 0, 8),
                ],
                vec![
                    send(0, 0, 8),
                    send(0, 0, 8),
                    send(0, 0, 8),
                    send(0, 0, 8),
                    send(0, 0, 8),
                    send(0, 0, 8),
                    send(0, 0, 8),
                    send(0, 0, 8),
                    send(0, 0, 8),
                ],
            ]),
            rule: Rule::BufferWatermark,
            ranks: vec![0, 1],
            exclusive: true,
            full: true,
        },
        Fixture {
            // Ranks disagree on which collective epoch 0 is.
            name: "collective-skew-kind",
            trace: trace_of(vec![
                vec![EventKind::Barrier { comm_size: 2 }],
                vec![EventKind::Allreduce {
                    bytes: 8,
                    comm_size: 2,
                }],
            ]),
            rule: Rule::CollectiveSkew,
            ranks: vec![0, 1],
            exclusive: true,
            full: false,
        },
        Fixture {
            // Ranks agree on the op but disagree on the root.
            name: "collective-skew-root",
            trace: trace_of(vec![
                vec![EventKind::Bcast {
                    root: 0,
                    bytes: 64,
                    comm_size: 2,
                }],
                vec![EventKind::Bcast {
                    root: 1,
                    bytes: 64,
                    comm_size: 2,
                }],
            ]),
            rule: Rule::CollectiveSkew,
            ranks: vec![0, 1],
            exclusive: true,
            full: false,
        },
        Fixture {
            // A collective naming a communicator larger than the trace:
            // traced collectives are always world-sized (sub-communicator
            // collectives are expanded to point-to-point by the tracer).
            name: "collective-skew-comm-size",
            trace: trace_of(vec![
                vec![EventKind::Barrier { comm_size: 3 }],
                vec![EventKind::Barrier { comm_size: 3 }],
            ]),
            rule: Rule::CollectiveSkew,
            ranks: vec![0, 1],
            exclusive: true,
            full: false,
        },
        Fixture {
            // Rank 1 exits without ever reaching the barrier rank 0 (and
            // the analysis) waits at.
            name: "collective-missing-rank",
            trace: trace_of(vec![vec![EventKind::Barrier { comm_size: 2 }], vec![]]),
            rule: Rule::CollectiveSkew,
            ranks: vec![0, 1],
            exclusive: true,
            full: false,
        },
        Fixture {
            // Wait on an irecv whose sender never shows up: the request
            // pends forever and the posted envelope is left over.
            name: "orphan-irecv",
            trace: trace_of(vec![
                vec![
                    EventKind::Irecv {
                        peer: 1,
                        tag: 0,
                        bytes: 8,
                        req: 1,
                        posted_any: false,
                    },
                    EventKind::Wait { req: 1 },
                ],
                vec![],
            ]),
            rule: Rule::UnmatchedRecv,
            ranks: vec![0, 1],
            exclusive: true,
            full: false,
        },
    ]
}

fn lint_fixture(f: &Fixture) -> Vec<Diagnostic> {
    if f.full {
        lint_full(&f.trace)
    } else {
        lint_trace(&f.trace)
    }
}

#[test]
fn fixtures_trigger_exactly_their_rule() {
    for f in fixtures() {
        let diags = lint_fixture(&f);
        let hits: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == f.rule).collect();
        assert!(
            !hits.is_empty(),
            "fixture {}: expected {:?}, got {:?}",
            f.name,
            f.rule.code(),
            diags
        );
        assert!(
            hits.iter().any(|d| d.ranks == f.ranks),
            "fixture {}: expected ranks {:?}, got {:?}",
            f.name,
            f.ranks,
            hits
        );
        if f.exclusive {
            assert!(
                diags.iter().all(|d| d.rule == f.rule),
                "fixture {}: unexpected extra diagnostics {:?}",
                f.name,
                diags
            );
        }
    }
}

#[test]
fn fixture_severities_follow_rule_defaults() {
    for f in fixtures() {
        let diags = lint_fixture(&f);
        for d in diags.iter().filter(|d| d.rule == f.rule) {
            assert_eq!(d.severity, f.rule.default_severity(), "fixture {}", f.name);
        }
    }
}

#[test]
fn deadlock_message_names_blocked_ops() {
    let t = trace_of(vec![
        vec![recv(1, 0, 8), send(1, 0, 8)],
        vec![recv(0, 0, 8), send(0, 0, 8)],
    ]);
    let diags = lint_trace(&t);
    let d = diags
        .iter()
        .find(|d| d.rule == Rule::Deadlock)
        .expect("deadlock");
    assert!(d.message.contains("rank 0"), "{}", d.message);
    assert!(d.message.contains("rank 1"), "{}", d.message);
    assert!(d.message.contains("recv"), "{}", d.message);
}

#[test]
fn three_rank_deadlock_ring_is_one_cycle() {
    // 0 waits on 1, 1 waits on 2, 2 waits on 0.
    let t = trace_of(vec![
        vec![recv(1, 0, 8), send(2, 0, 8)],
        vec![recv(2, 0, 8), send(0, 0, 8)],
        vec![recv(0, 0, 8), send(1, 0, 8)],
    ]);
    let diags = lint_trace(&t);
    let cycles: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == Rule::Deadlock).collect();
    assert_eq!(cycles.len(), 1, "{diags:?}");
    assert_eq!(cycles[0].ranks, vec![0, 1, 2]);
}

#[test]
fn wildcard_single_feasible_sender_is_not_a_race() {
    // Wildcard receives that always resolve to the same sender carry no
    // nondeterminism worth reporting (non-overtaking pins the order).
    let t = trace_of(vec![
        vec![recv_any(1, 5, 8), recv_any(1, 5, 8)],
        vec![send(0, 5, 8), send(0, 5, 8)],
        vec![],
    ]);
    let diags = lint_full(&t);
    assert!(!diags.iter().any(|d| d.rule == Rule::WildRace), "{diags:?}");
}

#[test]
fn wildcard_resolutions_separated_by_barrier_are_not_a_race() {
    let barrier = || EventKind::Barrier { comm_size: 3 };
    let t = trace_of(vec![
        vec![recv_any(1, 5, 8), barrier(), recv_any(2, 5, 8)],
        vec![send(0, 5, 8), barrier()],
        vec![barrier(), send(0, 5, 8)],
    ]);
    let diags = lint_full(&t);
    assert!(
        !diags.iter().any(|d| d.rule == Rule::WildRace),
        "phases separated by a collective are ordered: {diags:?}"
    );
}

#[test]
fn race_diagnostic_names_a_concrete_alternate() {
    // The acceptance shape: one wildcard receive, two concurrent
    // envelope-compatible senders. The diagnostic must carry the alternate
    // match as a concrete (rank, seq) witness, not just "a race exists".
    let t = trace_of(vec![
        vec![recv_any(1, 5, 8), recv_any(2, 5, 8)],
        vec![send(0, 5, 8)],
        vec![send(0, 5, 8)],
    ]);
    let diags = lint_full(&t);
    let race = diags
        .iter()
        .find(|d| d.rule == Rule::WildRace)
        .expect("race expected");
    assert!(
        race.message.contains("rank 2 seq 1") || race.message.contains("rank 1 seq 1"),
        "witness missing from: {}",
        race.message
    );
}

#[test]
fn matched_exchange_is_clean() {
    let t = trace_of(vec![
        vec![
            send(1, 0, 16),
            recv(1, 1, 16),
            EventKind::Barrier { comm_size: 2 },
        ],
        vec![
            recv(0, 0, 16),
            send(0, 1, 16),
            EventKind::Barrier { comm_size: 2 },
        ],
    ]);
    assert_eq!(lint_trace(&t), Vec::<Diagnostic>::new());
}

#[test]
fn nonblocking_exchange_is_clean() {
    let t = trace_of(vec![
        vec![
            EventKind::Irecv {
                peer: 1,
                tag: 0,
                bytes: 8,
                req: 1,
                posted_any: false,
            },
            EventKind::Isend {
                peer: 1,
                tag: 1,
                bytes: 8,
                req: 2,
            },
            EventKind::WaitAll { reqs: vec![1, 2] },
        ],
        vec![
            EventKind::Irecv {
                peer: 0,
                tag: 1,
                bytes: 8,
                req: 1,
                posted_any: false,
            },
            EventKind::Isend {
                peer: 0,
                tag: 0,
                bytes: 8,
                req: 2,
            },
            EventKind::WaitAll { reqs: vec![1, 2] },
        ],
    ]);
    assert_eq!(lint_trace(&t), Vec::<Diagnostic>::new());
}

#[test]
fn error_count_gates_exit_semantics() {
    // The CLI's exit-code contract keys off error-severity diagnostics;
    // a count mismatch (warning) must not be one.
    let warn_only = trace_of(vec![vec![send(1, 0, 64)], vec![recv(0, 0, 32)]]);
    let diags = lint_trace(&warn_only);
    assert!(
        diags.iter().all(|d| d.severity < Severity::Error),
        "{diags:?}"
    );
}
