//! Property test: every reported wildcard race is backed by a *replayable*
//! witness.
//!
//! Random SPMD programs heavy on wildcard receives (gathers, wildcard
//! ring sinks) are simulated; for every race the HB pass reports, the
//! witness schedule — the racy receive forced onto the alternate source,
//! the displaced receive forced onto the recorded source — is re-run
//! through the progress simulation and must (a) drive every rank to
//! completion and (b) really deliver the alternate source to the racy
//! receive. This is the soundness half of §12: `MPG-WILD-RACE` never
//! reports a hypothetical.

use mpg_lint::{find_races, witness_matching, LintContext};
use mpg_noise::PlatformSignature;
use mpg_sim::RankCtx;
use mpg_trace::ANY_SOURCE;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Round {
    Compute(u64),
    /// Everyone sends to the root; the root drains `p − 1` wildcards.
    GatherAny {
        root: u32,
        tag: u32,
        bytes: u64,
    },
    /// Ring where every receive is a wildcard (still deterministic when
    /// tags differ, racy when they collide across rounds).
    RingAny {
        tag: u32,
        bytes: u64,
    },
    /// Blocking sendrecv shifted by `shift` ranks (specific sources).
    Shift {
        shift: u32,
        tag: u32,
        bytes: u64,
    },
    Barrier,
}

fn run_round(ctx: &mut RankCtx, round: &Round) {
    let p = ctx.size();
    let me = ctx.rank();
    match *round {
        Round::Compute(work) => ctx.compute(work),
        Round::GatherAny { root, tag, bytes } => {
            let root = root % p;
            if me == root {
                for _ in 1..p {
                    ctx.recv(ANY_SOURCE, tag);
                }
            } else {
                ctx.send(root, tag, bytes);
            }
        }
        Round::RingAny { tag, bytes } => {
            let r = ctx.irecv(ANY_SOURCE, tag);
            let s = ctx.isend((me + 1) % p, tag, bytes);
            ctx.waitall(&[r, s]);
        }
        Round::Shift { shift, tag, bytes } => {
            let shift = 1 + shift % (p - 1).max(1);
            ctx.sendrecv((me + shift) % p, tag, bytes, (me + p - shift) % p, tag);
        }
        Round::Barrier => ctx.barrier(),
    }
}

fn round_strategy() -> impl Strategy<Value = Round> {
    prop_oneof![
        (1u64..10_000).prop_map(Round::Compute),
        (0u32..8, 0u32..3, 1u64..2_048).prop_map(|(root, tag, bytes)| Round::GatherAny {
            root,
            tag,
            bytes
        }),
        (0u32..3, 1u64..2_048).prop_map(|(tag, bytes)| Round::RingAny { tag, bytes }),
        (0u32..8, 0u32..3, 1u64..2_048).prop_map(|(shift, tag, bytes)| Round::Shift {
            shift,
            tag,
            bytes
        }),
        Just(Round::Barrier),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn every_reported_race_has_a_replayable_witness(
        p in 2u32..7,
        sim_seed in 0u64..1_000,
        rounds in prop::collection::vec(round_strategy(), 1..6),
    ) {
        let trace = mpg_sim::Simulation::new(p, PlatformSignature::quiet("prop-race"))
            .ideal_clocks()
            .seed(sim_seed)
            .run(|ctx| {
                for round in &rounds {
                    run_round(ctx, round);
                }
            })
            .expect("generated program simulates")
            .trace;
        let ctx = LintContext::build(&trace);
        prop_assert!(ctx.progress.matching.completed, "program deadlocked");
        let hb = ctx.hb.as_ref().expect("graph recorded for a clean trace");
        let findings = find_races(&trace, &ctx.progress.matching, hb);
        for f in &findings {
            prop_assert!(!f.witnesses.is_empty(), "finding without witnesses: {f:?}");
            for w in &f.witnesses {
                prop_assert_eq!(w.recv, f.recv);
                prop_assert_eq!(w.matched, f.matched);
                prop_assert_ne!(
                    w.alternate.0, f.matched.0,
                    "non-overtaking: same-source sends are never alternates"
                );
                prop_assert!(
                    hb.concurrent(w.alternate, w.matched),
                    "witness send must be concurrent with the recorded match"
                );
                // Independent replay of the witness schedule: must complete
                // and must actually deliver the alternate source.
                let m = witness_matching(&trace, w);
                prop_assert!(m.is_some(), "witness not replayable: {w:?}");
                let m = m.unwrap();
                prop_assert!(m.completed);
                prop_assert!(
                    m.pairs
                        .iter()
                        .any(|pr| pr.recv == w.recv && pr.send.0 == w.alternate.0),
                    "forced schedule did not deliver the alternate: {w:?}"
                );
            }
        }
    }
}
