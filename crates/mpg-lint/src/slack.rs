//! Slack-chain extraction: the static critical path and its runners-up.
//!
//! The zero-drift sweep ([`SlackSweep`]) assigns every edge a slack; the
//! zero-slack edges form the static critical network. This pass walks one
//! tight chain back from each rank's final subevent, ranks the chains by
//! finish time (the longest is *the* critical path), and reports
//! `MPG-SERIAL-CHAIN` when that path serializes through many ranks with
//! most of the makespan spent in wait states — the signature of a
//! chain-dominated (pipeline/token-passing) run whose scaling is bounded
//! by a dependence chain rather than by compute.
//!
//! Chains are also the sweep-targeting hint the paper's §4.2 asks for:
//! [`SlackSweep::perturbable_edges`] counts how many edges a perturbation
//! of a given magnitude could even reach, so a replay sweep can skip
//! configurations whose deltas are everywhere absorbable.

use mpg_core::{Cycles, EventGraph, NodeId, Point, SlackSweep};
use mpg_trace::{Diagnostic, Rule};

use crate::waitstate::{PerfReport, PerfThresholds};

/// Compact description of one tight chain (see
/// [`StaticPath`](mpg_core::StaticPath); this summary is what reports and
/// JSON carry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSummary {
    /// Rank whose final subevent anchors the chain.
    pub rank: u32,
    /// The anchor's earliest feasible (== observed) finish time.
    pub finish: Cycles,
    /// Number of edges on the chain.
    pub steps: usize,
    /// How many of them are message edges (cross-rank or hub).
    pub message_hops: usize,
    /// Distinct non-hub ranks the chain traverses.
    pub ranks_touched: usize,
    /// Wait-state cycles absorbed along the chain (summed where the chain
    /// enters a node through its binding arm).
    pub wait_cycles: Cycles,
}

/// Walks one tight chain back from each rank's final end subevent and
/// returns the summaries sorted by finish time, longest first — so index
/// 0 describes the static critical path of the whole run.
pub fn rank_chains(graph: &EventGraph, sweep: &SlackSweep) -> Vec<ChainSummary> {
    let mut anchors: Vec<Option<NodeId>> = vec![None; graph.num_ranks()];
    for (node, _) in graph.nodes() {
        if node.hub || node.point != Point::End {
            continue;
        }
        let slot = &mut anchors[node.rank as usize];
        if slot.is_none_or(|a| node.seq > a.seq) {
            *slot = Some(node);
        }
    }
    let mut chains: Vec<ChainSummary> = anchors
        .into_iter()
        .flatten()
        .map(|anchor| {
            let path = sweep.chain_from(graph, anchor);
            ChainSummary {
                rank: anchor.rank,
                finish: path.finish,
                steps: path.edges.len(),
                message_hops: path.message_hops,
                ranks_touched: path.ranks_touched,
                wait_cycles: path.wait_cycles,
            }
        })
        .collect();
    chains.sort_by(|a, b| b.finish.cmp(&a.finish).then_with(|| a.rank.cmp(&b.rank)));
    chains
}

/// `MPG-SERIAL-CHAIN`: fires when the static critical path serializes
/// through at least `thresholds.serial_ranks` distinct ranks and its wait
/// states account for at least `thresholds.serial_wait_frac` of the
/// makespan. Advisory, like the other performance rules.
pub fn lint_chains(report: &PerfReport, thresholds: &PerfThresholds) -> Vec<Diagnostic> {
    let Some(main) = report.chains.first() else {
        return Vec::new();
    };
    if main.ranks_touched < thresholds.serial_ranks
        || (main.wait_cycles as f64) < thresholds.serial_wait_frac * report.makespan as f64
        || main.wait_cycles < thresholds.min_cycles
    {
        return Vec::new();
    }
    vec![Diagnostic::new(
        Rule::SerialChain,
        format!(
            "critical path serializes through {} ranks over {} message hops; \
             its wait states total {} cycles against a {}-cycle makespan \
             (blocked intervals on different ranks overlap in time)",
            main.ranks_touched, main.message_hops, main.wait_cycles, report.makespan
        ),
    )
    .involving([main.rank])]
}
