#![warn(missing_docs)]

//! Static defect analysis of message-passing traces (`mpg-lint`).
//!
//! The replay engine of `mpg-core` assumes its input traces describe a
//! correct, completed run (§4.1: every message event has a counterpart;
//! §4.3: "the program did run correctly"). This crate checks that
//! assumption *before* replay, reporting structured [`Diagnostic`]s with
//! stable `MPG-*` rule codes through the same reporting path as
//! `mpg_trace::validate`:
//!
//! | pass | defects | rules |
//! |------|---------|-------|
//! | 0 (validate) | per-rank structure | `MPG-CLOCK-NONMONO`, `MPG-BAD-SEQ`, `MPG-MISSING-INIT`, `MPG-MISSING-FINALIZE`, `MPG-WRONG-RANK`, `MPG-DUP-REQUEST`, `MPG-UNKNOWN-REQUEST`, `MPG-LEAKED-REQUEST`, `MPG-SELF-MESSAGE` |
//! | 1 (match) | cross-rank match resolution | `MPG-UNMATCHED-SEND`, `MPG-UNMATCHED-RECV`, `MPG-TAG-MISMATCH`, `MPG-COUNT-MISMATCH`, `MPG-BAD-PEER` |
//! | 2 (deadlock) | wait-for-graph cycles | `MPG-DEADLOCK` |
//! | 3 (causality) | recorded-graph sanity | `MPG-CYCLE`, `MPG-CAUSALITY` |
//! | 4 (race) | nondeterministic matching | `MPG-WILD-RACE` |
//! | 5 (collective) | collective consistency | `MPG-COLLECTIVE-SKEW` |
//! | 6 (performance) | wait-state & slack analysis | `MPG-LATE-SENDER`, `MPG-COLLECTIVE-IMBALANCE`, `MPG-SERIAL-CHAIN` |
//! | 7 (sync) | removable/overloaded synchronization | `MPG-REDUNDANT-SYNC`, `MPG-BUFFER-WATERMARK` |
//! | 8 (explore) | schedule-space exploration | `MPG-MAY-DEADLOCK`, `MPG-SCHEDULE-DIVERGENCE` |
//!
//! # Pass manager
//!
//! [`lint_full`] runs the passes over a shared [`LintContext`] holding the
//! expensive artifacts exactly once:
//!
//! * the **progress outcome** — diagnostics plus the send/receive
//!   [`Matching`] from the lockstep simulation ([`progress::run_progress`]),
//! * the **recorded graph** — one quiet recording replay
//!   ([`Replayer`]), and
//! * the **happens-before index** — [`HbIndex`] built from that graph.
//!
//! The progress simulation and the recording replay are independent, so
//! the context builds them on two threads; passes declare which artifacts
//! they need ([`LintPass::needs`]) and the independent passes then run in
//! parallel over the immutable context. Passes 4 and 7 are the
//! happens-before consumers: [`hb_races`] upgrades the wildcard-race
//! heuristic to exact concurrent-alternate enumeration with replayable
//! witnesses, and [`sync`] reports removable barriers and eager-buffer
//! high-water marks. Pass 8 ([`explore`](mod@explore)) generalizes pass 4 from single
//! swaps to a bounded walk of the schedule space; it ships disabled
//! (budget 0) in [`lint_full`] and is driven with a real budget through
//! [`lint_explore`] / `mpgtool explore`.
//!
//! Passes 1, 2 and 5 run off one lockstep progress simulation that reuses
//! the simulator's [`EnvelopeMatcher`](mpg_sim::EnvelopeMatcher) — the
//! lint and the runtime share a single implementation of the MPI matching
//! rules. Pass 3 ([`graphcheck::lint_graph`]) inspects the recorded
//! [`EventGraph`].
//!
//! [`replay_gate`] packages [`lint_trace`] as a
//! [`TraceGate`] so `Replayer::run` can refuse traces
//! with error-severity defects.

mod envelope;
pub mod explore;
pub mod graphcheck;
pub mod hb_races;
pub mod progress;
pub mod slack;
pub mod sync;
pub mod waitstate;

pub use explore::{
    decode_frontier, encode_frontier, explore, explore_json, lint_explore, lint_explore_with,
    matching_makespan, ExploreFinding, ExploreFindingKind, ExploreOptions, ExploreOutcome,
    ExploreReport, ExploreStats,
};
pub use graphcheck::lint_graph;
pub use hb_races::{
    find_races, lint_races, witness_matching, witness_plan, RaceFinding, RaceWitness,
};
pub use progress::{
    forced_replay, lint_progress, run_progress, ForcedReplay, MatchPair, MatchPolicy, Matching,
    ProgressOutcome, SendRec,
};
pub use slack::{lint_chains, rank_chains, ChainSummary};
pub use sync::{lint_sync, SyncOptions};
pub use waitstate::{
    analyze_graph, lint_waitstates, CollectiveWait, KeyedWait, PerfReport, PerfThresholds,
    RankBreakdown, WaitClass, WaitInterval,
};

use mpg_core::{
    cached_hb_index, cached_recorded_graph, CacheStore, CancelReason, CancelToken, EventGraph,
    HbIndex, PerturbationModel, ReplayConfig, Replayer, TraceGate,
};
use mpg_trace::{sort_diagnostics, Diagnostic, MemTrace, Rule, Severity};

/// The quiet recording-replay configuration behind every lint context —
/// one definition so the cold and cached builds can never diverge.
///
/// `ack_arm(false)`: model standard sends as eager. The default
/// acknowledgement arm would order every send after its matching receive —
/// sound for conservative *timing*, but wrong for *happens-before*: it
/// would suppress legitimate wildcard races and all eager-buffer pile-up.
/// Synchronous sends keep their acknowledgement coupling.
fn lint_replay_config() -> ReplayConfig {
    ReplayConfig::new(PerturbationModel::quiet("lint"))
        .seed(0)
        .ack_arm(false)
        .record_graph(true)
}

/// Fingerprint of the lint rule set and its tunables, for report-level
/// cache keys: a cached lint report is only valid while the passes, their
/// default thresholds, and the replay configuration are all unchanged.
pub fn ruleset_fingerprint() -> String {
    let passes: Vec<&str> = PASSES.iter().map(|p| p.name).collect();
    format!(
        "passes={};thresholds={:?};sync={:?};replay={}",
        passes.join(","),
        PerfThresholds::default(),
        SyncOptions::default(),
        lint_replay_config().fingerprint(),
    )
}

/// Lints an in-memory trace: validation (pass 0) plus the progress-
/// simulation passes (1, 2, 5). Diagnostics come back sorted worst first
/// ([`sort_diagnostics`]). The graph-backed passes (3, 4, 6, 7) need a
/// recording replay and therefore run only under [`lint_full`].
pub fn lint_trace(trace: &MemTrace) -> Vec<Diagnostic> {
    let mut diags = mpg_trace::validate_trace_diagnostics(trace);
    diags.extend(lint_progress(trace));
    sort_diagnostics(&mut diags);
    diags
}

/// Which artifacts a [`LintPass`] reads from the [`LintContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Needs(u8);

impl Needs {
    /// The progress simulation's [`ProgressOutcome`].
    pub const PROGRESS: Needs = Needs(1);
    /// The recorded [`EventGraph`] from the quiet replay.
    pub const GRAPH: Needs = Needs(2);
    /// The [`HbIndex`] over that graph.
    pub const HB: Needs = Needs(4);

    /// Union of two requirement sets.
    pub const fn and(self, other: Needs) -> Needs {
        Needs(self.0 | other.0)
    }

    /// Does `self` include every requirement in `other`?
    pub fn includes(self, other: Needs) -> bool {
        self.0 & other.0 == other.0
    }
}

/// Shared artifacts every graph-backed pass reads. Built once per lint
/// run; immutable afterwards so independent passes can run in parallel.
pub struct LintContext<'t> {
    /// The trace under analysis.
    pub trace: &'t MemTrace,
    /// Diagnostics + matching from the lockstep progress simulation.
    pub progress: ProgressOutcome,
    /// The recorded graph, when the quiet replay succeeded.
    pub graph: Option<EventGraph>,
    /// Why the graph is absent, when it is.
    pub graph_error: Option<String>,
    /// Happens-before index over `graph`.
    pub hb: Option<HbIndex>,
}

impl<'t> LintContext<'t> {
    /// Builds the artifacts: the progress simulation and the quiet
    /// recording replay run concurrently (they are independent), then the
    /// happens-before index is derived from the graph.
    pub fn build(trace: &'t MemTrace) -> Self {
        let (progress, replayed) = std::thread::scope(|scope| {
            let graph_thread = scope.spawn(|| Replayer::new(lint_replay_config()).run(trace));
            let progress = run_progress(trace, &MatchPolicy::Recorded);
            (progress, graph_thread.join().expect("replay panicked"))
        });
        let (graph, graph_error) = match replayed {
            Ok(report) => (report.graph, None),
            Err(e) => (None, Some(e.to_string())),
        };
        let hb = graph.as_ref().map(HbIndex::build);
        LintContext {
            trace,
            progress,
            graph,
            graph_error,
            hb,
        }
    }

    /// Like [`LintContext::build`], but with the expensive artifacts
    /// memoized through a [`CacheStore`]: the recorded graph loads from
    /// its MPGA artifact when cached (skipping the recording replay) and
    /// the happens-before index from its clock blob (skipping the clock
    /// propagation). `trace_key` must be the trace's content-fingerprint
    /// key. Artifacts produced cold are published for the next run.
    /// Output is identical to the cold build by construction — the cache
    /// stores exactly what the cold path computes.
    pub fn build_cached(trace: &'t MemTrace, store: &CacheStore, trace_key: &str) -> Self {
        let cfg = lint_replay_config();
        let (progress, replayed) = std::thread::scope(|scope| {
            let graph_thread =
                scope.spawn(|| cached_recorded_graph(store, trace_key, trace, cfg.clone()));
            let progress = run_progress(trace, &MatchPolicy::Recorded);
            (progress, graph_thread.join().expect("replay panicked"))
        });
        let (graph, graph_error) = match replayed {
            Ok((graph, _hit)) => (Some(graph), None),
            Err(e) => (None, Some(e.to_string())),
        };
        let hb = graph
            .as_ref()
            .map(|g| cached_hb_index(store, trace_key, &cfg.fingerprint(), g).0);
        LintContext {
            trace,
            progress,
            graph,
            graph_error,
            hb,
        }
    }

    /// Like [`LintContext::build`], but cooperatively cancellable: the
    /// token is installed into the recording replay (checked every
    /// [`CHECK_INTERVAL`](mpg_core::CHECK_INTERVAL) events) and into the
    /// happens-before construction. When the token fires mid-build the
    /// partial graph is *discarded* — a half-stitched graph would make the
    /// graph-backed passes report phantom defects — and the context
    /// degrades to the salvage shape (progress artifacts only), exactly as
    /// if the graph could not be built. The second return value reports
    /// whether (and why) the build was cut short.
    pub fn build_cancellable(
        trace: &'t MemTrace,
        cancel: &CancelToken,
    ) -> (Self, Option<CancelReason>) {
        let cfg = lint_replay_config().cancel_token(cancel.clone());
        let (progress, replayed) = std::thread::scope(|scope| {
            let graph_thread = scope.spawn(|| Replayer::new(cfg).run(trace));
            let progress = run_progress(trace, &MatchPolicy::Recorded);
            (progress, graph_thread.join().expect("replay panicked"))
        });
        let (graph, graph_error, mut cancelled) = match replayed {
            Ok(report) => match report.cancelled {
                Some(reason) => (None, None, Some(reason)),
                None => (report.graph, None, None),
            },
            Err(e) => (None, Some(e.to_string()), None),
        };
        let hb = match (&graph, cancelled) {
            (Some(g), None) => match HbIndex::build_cancellable(g, cancel) {
                Ok(hb) => Some(hb),
                Err(reason) => {
                    cancelled = Some(reason);
                    None
                }
            },
            _ => None,
        };
        // A fired token invalidates the graph for pass scheduling too.
        let graph = if cancelled.is_some() { None } else { graph };
        (
            LintContext {
                trace,
                progress,
                graph,
                graph_error,
                hb,
            },
            cancelled,
        )
    }

    /// The artifacts this context actually has.
    fn available(&self) -> Needs {
        let mut n = Needs::PROGRESS;
        if self.graph.is_some() {
            n = n.and(Needs::GRAPH);
        }
        if self.hb.is_some() {
            n = n.and(Needs::HB);
        }
        n
    }
}

/// One lint pass: a name, the artifacts it declares, and its runner. A
/// pass whose needs are not satisfied (e.g. the graph could not be
/// stitched) is skipped.
pub struct LintPass {
    /// Short pass label (matches [`Rule::pass`](mpg_trace::Rule::pass)).
    pub name: &'static str,
    /// Artifacts the pass reads.
    pub needs: Needs,
    /// Runs the pass over the shared context.
    pub run: fn(&LintContext<'_>) -> Vec<Diagnostic>,
}

/// The graph-era passes [`lint_full`] schedules over one [`LintContext`].
/// (Pass 0, validation, runs before the context is built; the progress
/// diagnostics of passes 1/2/5 are computed during the build and surfaced
/// by the `progress` entry here.)
pub const PASSES: &[LintPass] = &[
    LintPass {
        name: "progress",
        needs: Needs::PROGRESS,
        run: |ctx| ctx.progress.diags.clone(),
    },
    LintPass {
        name: "causality",
        needs: Needs::GRAPH,
        run: |ctx| lint_graph(ctx.graph.as_ref().expect("needs GRAPH")),
    },
    LintPass {
        name: "race",
        needs: Needs::PROGRESS.and(Needs::HB),
        run: |ctx| {
            lint_races(
                ctx.trace,
                &ctx.progress.matching,
                ctx.hb.as_ref().expect("needs HB"),
            )
        },
    },
    LintPass {
        name: "perf",
        needs: Needs::GRAPH,
        run: |ctx| {
            lint_perf(
                ctx.trace,
                ctx.graph.as_ref().expect("needs GRAPH"),
                &PerfThresholds::default(),
            )
        },
    },
    LintPass {
        name: "sync",
        needs: Needs::PROGRESS.and(Needs::GRAPH).and(Needs::HB),
        run: |ctx| {
            lint_sync(
                ctx.trace,
                ctx.graph.as_ref().expect("needs GRAPH"),
                ctx.hb.as_ref().expect("needs HB"),
                &ctx.progress.matching,
                &SyncOptions::default(),
            )
        },
    },
    // Pass 8 ships with a zero budget: registered (so the ruleset
    // fingerprint and `--rules` advertise it) but inert under plain
    // `lint_full`, whose output stays bit-identical. `lint_explore`
    // drives it with a real budget.
    LintPass {
        name: "explore",
        needs: Needs::PROGRESS.and(Needs::HB),
        run: |ctx| explore::explore(ctx, &ExploreOptions::default()).diags(),
    },
];

/// Full lint: validation, then the pass manager over a shared
/// [`LintContext`].
///
/// Error-severity validation findings short-circuit (the trace cannot be
/// simulated faithfully); error-severity progress findings (deadlock,
/// unmatched traffic, …) suppress the graph-backed passes, since the
/// recording replay of a defective trace would only echo the same defect
/// as an unhelpful `MPG-CYCLE`. When the earlier passes are clean but the
/// replayer still rejects the trace, that *is* reported as `MPG-CYCLE`.
/// Passes with satisfied needs run in parallel over the immutable context.
pub fn lint_full(trace: &MemTrace) -> Vec<Diagnostic> {
    lint_full_impl(trace, None)
}

/// [`lint_full`] with the graph and happens-before artifacts memoized
/// through a [`CacheStore`] (see [`LintContext::build_cached`]).
/// Diagnostics are identical to the cold path; only the artifact
/// construction is skipped on a warm cache.
pub fn lint_full_cached(trace: &MemTrace, store: &CacheStore, trace_key: &str) -> Vec<Diagnostic> {
    lint_full_impl(trace, Some((store, trace_key)))
}

/// Result of a cancellable full lint ([`lint_full_cancellable`]).
///
/// `cancelled: Some(_)` means the run was cut short: `diags` still carries
/// everything computed before the cut — validation plus, when the progress
/// simulation finished, the progress-pass findings — but the graph-backed
/// passes (3, 4, 6, 7) were skipped. The rule set is deliberately *not*
/// extended with a "cancelled" diagnostic: a cut-short lint is an incomplete
/// answer, not a defect in the trace.
#[derive(Debug, Clone)]
pub struct LintOutcome {
    /// Diagnostics found before the cut (sorted worst first).
    pub diags: Vec<Diagnostic>,
    /// Why the run was cut short, when it was.
    pub cancelled: Option<CancelReason>,
}

/// [`lint_full`] under a [`CancelToken`]: deadline- and cancel-aware for
/// supervised (service) runs. A fired token degrades the output to the
/// salvage path — validation and progress findings only — rather than
/// erroring; see [`LintOutcome`].
pub fn lint_full_cancellable(trace: &MemTrace, cancel: &CancelToken) -> LintOutcome {
    let mut diags = mpg_trace::validate_trace_diagnostics(trace);
    if diags.iter().any(|d| d.severity == Severity::Error) {
        sort_diagnostics(&mut diags);
        return LintOutcome {
            diags,
            cancelled: None,
        };
    }
    let (ctx, cancelled) = LintContext::build_cancellable(trace, cancel);
    let diags = lint_over_context(diags, ctx);
    LintOutcome { diags, cancelled }
}

fn lint_full_impl(trace: &MemTrace, cache: Option<(&CacheStore, &str)>) -> Vec<Diagnostic> {
    let mut diags = mpg_trace::validate_trace_diagnostics(trace);
    if diags.iter().any(|d| d.severity == Severity::Error) {
        sort_diagnostics(&mut diags);
        return diags;
    }
    let ctx = match cache {
        Some((store, trace_key)) => LintContext::build_cached(trace, store, trace_key),
        None => LintContext::build(trace),
    };
    lint_over_context(diags, ctx)
}

/// Shared back half of [`lint_full_impl`] and [`lint_full_cancellable`]:
/// progress-error short-circuit, graph-stitch reporting, then the parallel
/// pass schedule over whatever artifacts the context has.
fn lint_over_context(mut diags: Vec<Diagnostic>, ctx: LintContext<'_>) -> Vec<Diagnostic> {
    let progress_errors = ctx
        .progress
        .diags
        .iter()
        .any(|d| d.severity == Severity::Error);
    if progress_errors {
        diags.extend(ctx.progress.diags);
        sort_diagnostics(&mut diags);
        return diags;
    }
    let available = ctx.available();
    if let Some(e) = &ctx.graph_error {
        diags.push(Diagnostic::new(
            Rule::Cycle,
            format!("event graph could not be stitched: {e}"),
        ));
    }
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = PASSES
            .iter()
            .filter(|pass| available.includes(pass.needs))
            .map(|pass| scope.spawn(|| (pass.run)(&ctx)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("lint pass panicked"))
            .collect::<Vec<_>>()
    });
    for r in results {
        diags.extend(r);
    }
    sort_diagnostics(&mut diags);
    diags
}

/// Lints a trace recovered by the salvage reader
/// ([`FileTraceSet::load_salvage`](mpg_trace::FileTraceSet::load_salvage)),
/// merging the salvage findings (`MPG-TRUNCATED-TRACE`, `MPG-MISSING-RANK`)
/// into the static-analysis output. The salvage rules default to warning
/// severity so a recovered trace still lints; pass them to `--deny` (or
/// escalate them before gating) to make salvaged input a hard failure.
pub fn lint_salvaged(trace: &MemTrace, salvage: &mpg_trace::SalvageReport) -> Vec<Diagnostic> {
    let mut diags = salvage.diagnostics();
    diags.extend(lint_full(trace));
    sort_diagnostics(&mut diags);
    diags
}

/// Pass 6 on its own: runs the wait-state/slack analysis over a recorded
/// graph and returns the threshold-gated performance findings
/// (`MPG-LATE-SENDER`, `MPG-COLLECTIVE-IMBALANCE`, `MPG-SERIAL-CHAIN`).
/// Used by [`lint_full`] and by `mpgtool analyze` (which also renders the
/// underlying [`PerfReport`]).
pub fn lint_perf(
    trace: &MemTrace,
    graph: &mpg_core::EventGraph,
    thresholds: &PerfThresholds,
) -> Vec<Diagnostic> {
    let report = analyze_graph(trace, graph);
    let mut diags = lint_waitstates(&report, thresholds);
    diags.extend(lint_chains(&report, thresholds));
    diags
}

/// A [`TraceGate`] that runs [`lint_trace`]; install it with
/// [`ReplayConfig::gate`](mpg_core::ReplayConfig::gate) to make
/// `Replayer::run` fail with `ReplayError::Gated` on error-severity
/// diagnostics instead of replaying a defective trace.
pub fn replay_gate() -> TraceGate {
    TraceGate::new(lint_trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_trace::{EventKind, EventRecord};

    fn one_rank_trace(kinds: Vec<EventKind>) -> MemTrace {
        let mut mt = MemTrace::new(1);
        for (i, kind) in kinds.into_iter().enumerate() {
            let t = i as u64 * 10;
            mt.push(EventRecord {
                rank: 0,
                seq: i as u64,
                t_start: t,
                t_end: t + 10,
                kind,
            });
        }
        mt
    }

    #[test]
    fn trivial_trace_is_clean() {
        let mt = one_rank_trace(vec![
            EventKind::Init,
            EventKind::Compute { work: 10 },
            EventKind::Finalize,
        ]);
        assert!(lint_trace(&mt).is_empty());
        assert!(lint_full(&mt).is_empty());
    }

    #[test]
    fn context_builds_all_artifacts_on_clean_trace() {
        let mt = one_rank_trace(vec![
            EventKind::Init,
            EventKind::Compute { work: 10 },
            EventKind::Finalize,
        ]);
        let ctx = LintContext::build(&mt);
        assert!(ctx.graph.is_some());
        assert!(ctx.hb.is_some());
        assert!(ctx.graph_error.is_none());
        assert!(ctx.progress.matching.completed);
        let available = ctx.available();
        for pass in PASSES {
            assert!(
                available.includes(pass.needs),
                "pass {} should be runnable on a clean trace",
                pass.name
            );
        }
    }

    #[test]
    fn cached_lint_matches_cold_on_miss_and_hit() {
        let mt = {
            let mut t = MemTrace::new(2);
            let mut push = |rank, seq, t0, kind| {
                t.push(mpg_trace::EventRecord {
                    rank,
                    seq,
                    t_start: t0,
                    t_end: t0 + 10,
                    kind,
                })
            };
            push(0, 0, 0, EventKind::Init);
            push(0, 1, 10, EventKind::Compute { work: 10 });
            push(0, 2, 20, EventKind::Finalize);
            push(1, 0, 0, EventKind::Init);
            push(1, 1, 10, EventKind::Compute { work: 10 });
            push(1, 2, 20, EventKind::Finalize);
            t
        };
        let dir = std::env::temp_dir().join(format!("mpg-lint-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CacheStore::open(&dir).unwrap();
        let cold = lint_full(&mt);
        let miss = lint_full_cached(&mt, &store, "unit-key");
        let hit = lint_full_cached(&mt, &store, "unit-key");
        assert_eq!(cold, miss);
        assert_eq!(cold, hit);
        assert!(
            !store.ls().is_empty(),
            "cached lint should publish artifacts"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancellable_lint_matches_and_degrades() {
        let mt = one_rank_trace(vec![
            EventKind::Init,
            EventKind::Compute { work: 10 },
            EventKind::Finalize,
        ]);
        // Live token: identical to the plain full lint.
        let live = CancelToken::new();
        let out = lint_full_cancellable(&mt, &live);
        assert!(out.cancelled.is_none());
        assert_eq!(out.diags, lint_full(&mt));
        // Pre-fired token: degrades to the salvage shape (progress-only),
        // reports the cut, and never invents diagnostics.
        let fired = CancelToken::new();
        fired.cancel();
        let out = lint_full_cancellable(&mt, &fired);
        assert_eq!(out.cancelled, Some(CancelReason::Cancelled));
        assert_eq!(out.diags, lint_trace(&mt));
    }

    #[test]
    fn needs_algebra() {
        let both = Needs::PROGRESS.and(Needs::GRAPH);
        assert!(both.includes(Needs::PROGRESS));
        assert!(both.includes(Needs::GRAPH));
        assert!(!both.includes(Needs::HB));
        assert!(both.includes(both));
    }

    #[test]
    fn salvaged_lint_merges_salvage_findings() {
        use mpg_trace::{RankSalvage, SalvageReport};
        // A clean single-rank trace, but the salvage report says rank 1's
        // file was missing: the lint output must carry MPG-MISSING-RANK so
        // `--deny MPG-MISSING-RANK` can reject salvaged input.
        let mt = one_rank_trace(vec![
            EventKind::Init,
            EventKind::Compute { work: 10 },
            EventKind::Finalize,
        ]);
        let salvage = SalvageReport {
            ranks: vec![RankSalvage::missing(1)],
        };
        let diags = lint_salvaged(&mt, &salvage);
        assert!(
            diags.iter().any(|d| d.rule == Rule::MissingRank),
            "{diags:?}"
        );
    }

    #[test]
    fn gate_rejects_defective_trace() {
        // Missing Init/Finalize: two error diagnostics from pass 0.
        let mt = one_rank_trace(vec![EventKind::Compute { work: 10 }]);
        let gate = replay_gate();
        let errors: Vec<_> = gate
            .check(&mt)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(!errors.is_empty());
    }
}
