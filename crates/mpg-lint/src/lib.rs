#![warn(missing_docs)]

//! Static defect analysis of message-passing traces (`mpg-lint`).
//!
//! The replay engine of `mpg-core` assumes its input traces describe a
//! correct, completed run (§4.1: every message event has a counterpart;
//! §4.3: "the program did run correctly"). This crate checks that
//! assumption *before* replay, reporting structured [`Diagnostic`]s with
//! stable `MPG-*` rule codes through the same reporting path as
//! `mpg_trace::validate`:
//!
//! | pass | defects | rules |
//! |------|---------|-------|
//! | 0 (validate) | per-rank structure | `MPG-CLOCK-NONMONO`, `MPG-BAD-SEQ`, `MPG-MISSING-INIT`, `MPG-MISSING-FINALIZE`, `MPG-WRONG-RANK`, `MPG-DUP-REQUEST`, `MPG-UNKNOWN-REQUEST`, `MPG-LEAKED-REQUEST`, `MPG-SELF-MESSAGE` |
//! | 1 (match) | cross-rank match resolution | `MPG-UNMATCHED-SEND`, `MPG-UNMATCHED-RECV`, `MPG-TAG-MISMATCH`, `MPG-COUNT-MISMATCH`, `MPG-BAD-PEER` |
//! | 2 (deadlock) | wait-for-graph cycles | `MPG-DEADLOCK` |
//! | 3 (causality) | recorded-graph sanity | `MPG-CYCLE`, `MPG-CAUSALITY` |
//! | 4 (wildcard) | nondeterministic matching | `MPG-WILD-RACE` |
//! | 5 (collective) | collective consistency | `MPG-COLLECTIVE-SKEW` |
//! | 6 (performance) | wait-state & slack analysis | `MPG-LATE-SENDER`, `MPG-COLLECTIVE-IMBALANCE`, `MPG-SERIAL-CHAIN` |
//!
//! Passes 1, 2, 4 and 5 run off one lockstep progress simulation
//! ([`progress::lint_progress`]) that reuses the simulator's
//! [`EnvelopeMatcher`](mpg_sim::EnvelopeMatcher) — the lint and the runtime
//! share a single implementation of the MPI matching rules. Pass 3
//! ([`graphcheck::lint_graph`]) inspects a recorded
//! [`EventGraph`](mpg_core::EventGraph).
//!
//! [`replay_gate`] packages [`lint_trace`] as a
//! [`TraceGate`] so `Replayer::run` can refuse traces
//! with error-severity defects.

mod envelope;
pub mod graphcheck;
pub mod progress;
pub mod slack;
pub mod waitstate;

pub use graphcheck::lint_graph;
pub use progress::lint_progress;
pub use slack::{lint_chains, rank_chains, ChainSummary};
pub use waitstate::{
    analyze_graph, lint_waitstates, CollectiveWait, KeyedWait, PerfReport, PerfThresholds,
    RankBreakdown, WaitClass, WaitInterval,
};

use mpg_core::{PerturbationModel, ReplayConfig, Replayer, TraceGate};
use mpg_trace::{sort_diagnostics, Diagnostic, MemTrace, Rule, Severity};

/// Lints an in-memory trace: validation (pass 0) plus the progress-
/// simulation passes (1, 2, 4, 5). Diagnostics come back sorted worst
/// first ([`sort_diagnostics`]).
pub fn lint_trace(trace: &MemTrace) -> Vec<Diagnostic> {
    let mut diags = mpg_trace::validate_trace_diagnostics(trace);
    diags.extend(lint_progress(trace));
    sort_diagnostics(&mut diags);
    diags
}

/// [`lint_trace`], then — when no error-severity defect was found — a
/// quiet recording replay to stitch the event graph and run the causality
/// pass (3) over it. If the replayer itself rejects a trace the earlier
/// passes accepted, that is reported as `MPG-CYCLE` (the graph could not
/// be stitched).
pub fn lint_full(trace: &MemTrace) -> Vec<Diagnostic> {
    let mut diags = lint_trace(trace);
    if diags.iter().any(|d| d.severity == Severity::Error) {
        return diags;
    }
    let cfg = ReplayConfig::new(PerturbationModel::quiet("lint"))
        .seed(0)
        .record_graph(true);
    match Replayer::new(cfg).run(trace) {
        Ok(report) => {
            if let Some(graph) = report.graph {
                diags.extend(lint_graph(&graph));
                // Pass 6: wait-state & slack analysis. Advisory findings
                // about a slow-but-correct run; thresholds keep trivial
                // traces clean.
                diags.extend(lint_perf(trace, &graph, &PerfThresholds::default()));
            }
        }
        Err(e) => {
            diags.push(Diagnostic::new(
                Rule::Cycle,
                format!("event graph could not be stitched: {e}"),
            ));
        }
    }
    sort_diagnostics(&mut diags);
    diags
}

/// Lints a trace recovered by the salvage reader
/// ([`FileTraceSet::load_salvage`](mpg_trace::FileTraceSet::load_salvage)),
/// merging the salvage findings (`MPG-TRUNCATED-TRACE`, `MPG-MISSING-RANK`)
/// into the static-analysis output. The salvage rules default to warning
/// severity so a recovered trace still lints; pass them to `--deny` (or
/// escalate them before gating) to make salvaged input a hard failure.
pub fn lint_salvaged(trace: &MemTrace, salvage: &mpg_trace::SalvageReport) -> Vec<Diagnostic> {
    let mut diags = salvage.diagnostics();
    diags.extend(lint_full(trace));
    sort_diagnostics(&mut diags);
    diags
}

/// Pass 6 on its own: runs the wait-state/slack analysis over a recorded
/// graph and returns the threshold-gated performance findings
/// (`MPG-LATE-SENDER`, `MPG-COLLECTIVE-IMBALANCE`, `MPG-SERIAL-CHAIN`).
/// Used by [`lint_full`] and by `mpgtool analyze` (which also renders the
/// underlying [`PerfReport`]).
pub fn lint_perf(
    trace: &MemTrace,
    graph: &mpg_core::EventGraph,
    thresholds: &PerfThresholds,
) -> Vec<Diagnostic> {
    let report = analyze_graph(trace, graph);
    let mut diags = lint_waitstates(&report, thresholds);
    diags.extend(lint_chains(&report, thresholds));
    diags
}

/// A [`TraceGate`] that runs [`lint_trace`]; install it with
/// [`ReplayConfig::gate`](mpg_core::ReplayConfig::gate) to make
/// `Replayer::run` fail with `ReplayError::Gated` on error-severity
/// diagnostics instead of replaying a defective trace.
pub fn replay_gate() -> TraceGate {
    TraceGate::new(lint_trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_trace::{EventKind, EventRecord};

    fn one_rank_trace(kinds: Vec<EventKind>) -> MemTrace {
        let mut mt = MemTrace::new(1);
        for (i, kind) in kinds.into_iter().enumerate() {
            let t = i as u64 * 10;
            mt.push(EventRecord {
                rank: 0,
                seq: i as u64,
                t_start: t,
                t_end: t + 10,
                kind,
            });
        }
        mt
    }

    #[test]
    fn trivial_trace_is_clean() {
        let mt = one_rank_trace(vec![
            EventKind::Init,
            EventKind::Compute { work: 10 },
            EventKind::Finalize,
        ]);
        assert!(lint_trace(&mt).is_empty());
        assert!(lint_full(&mt).is_empty());
    }

    #[test]
    fn salvaged_lint_merges_salvage_findings() {
        use mpg_trace::{RankSalvage, SalvageReport};
        // A clean single-rank trace, but the salvage report says rank 1's
        // file was missing: the lint output must carry MPG-MISSING-RANK so
        // `--deny MPG-MISSING-RANK` can reject salvaged input.
        let mt = one_rank_trace(vec![
            EventKind::Init,
            EventKind::Compute { work: 10 },
            EventKind::Finalize,
        ]);
        let salvage = SalvageReport {
            ranks: vec![RankSalvage::missing(1)],
        };
        let diags = lint_salvaged(&mt, &salvage);
        assert!(
            diags.iter().any(|d| d.rule == Rule::MissingRank),
            "{diags:?}"
        );
    }

    #[test]
    fn gate_rejects_defective_trace() {
        // Missing Init/Finalize: two error diagnostics from pass 0.
        let mt = one_rank_trace(vec![EventKind::Compute { work: 10 }]);
        let gate = replay_gate();
        let errors: Vec<_> = gate
            .check(&mt)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(!errors.is_empty());
    }
}
