//! The lockstep progress simulation behind lint passes 1, 2 and 5.
//!
//! §4.1 assumes traces describe a *completed* run: "every message event has
//! a counterpart". This module checks that assumption constructively by
//! re-executing the traced program under conservative MPI semantics —
//! standard/buffered/ready sends complete eagerly, synchronous sends and
//! receives block until matched, waits block until their receive requests
//! resolve, collectives block until every rank arrives — and reports every
//! way the schedule fails to exist:
//!
//! * leftover unmatched envelopes (`MPG-UNMATCHED-SEND`/`-RECV`), refined
//!   to `MPG-TAG-MISMATCH` when a leftover pair agrees on the channel but
//!   not the tag;
//! * matched pairs disagreeing on payload size (`MPG-COUNT-MISMATCH`);
//! * peers outside the communicator (`MPG-BAD-PEER`);
//! * cycles in the wait-for graph at quiescence (`MPG-DEADLOCK`, Tarjan
//!   SCC, naming the ranks and blocked operations on the cycle);
//! * ranks disagreeing on the collective sequence (`MPG-COLLECTIVE-SKEW`).
//!
//! Beyond diagnostics, the simulation returns the [`Matching`] it
//! computed — every offered send and every matched send/receive pair with
//! its completion point — which the happens-before passes (`hb_races`,
//! `sync`) consume. A [`MatchPolicy`] can force chosen wildcard receives
//! onto alternate sources: re-running under such a policy and checking
//! [`Matching::completed`] is how a race witness is validated as a real
//! alternate schedule.
//!
//! Matching reuses the simulator's [`EnvelopeMatcher`] so the lint passes
//! and the runtime share one implementation of the non-overtaking,
//! posted-order, wildcard-arbitration rules.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use crate::envelope::{LintRecv, LintSend};
use mpg_core::forced::{ForcedOutcome, MatchPlan};
use mpg_sim::EnvelopeMatcher;
use mpg_trace::{
    Diagnostic, EventKind, EventRecord, MemTrace, Rank, ReqId, Rule, SendProtocol, Seq, Tag,
    ANY_SOURCE, ANY_TAG,
};

/// How the simulation resolves receive patterns.
#[derive(Debug, Clone, Default)]
pub enum MatchPolicy {
    /// Every receive posts its recorded (matched) source — the schedule
    /// the trace itself describes.
    #[default]
    Recorded,
    /// The receives named by the [`MatchPlan`] post their forced source
    /// pattern instead of the recorded one; all other receives stay
    /// recorded. Used to replay a race witness: force the racy wildcard
    /// onto its alternate sender (and the receive that originally
    /// consumed that sender onto the displaced one) and see whether the
    /// program still runs to completion.
    Witness(MatchPlan),
}

impl MatchPolicy {
    fn src_pattern(&self, rank: Rank, seq: Seq, recorded: Rank) -> Rank {
        match self {
            MatchPolicy::Recorded => recorded,
            MatchPolicy::Witness(plan) => plan.source_for((rank, seq), recorded),
        }
    }
}

/// One send the simulation offered to the matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendRec {
    /// Sending rank.
    pub src: Rank,
    /// Sequence number of the send event.
    pub seq: Seq,
    /// Destination rank.
    pub dst: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Payload size.
    pub bytes: u64,
    /// True when the send completes without a rendezvous (standard /
    /// buffered / ready blocking sends and every isend): the message can
    /// sit in the receiver's eager buffer until consumed.
    pub eager: bool,
}

/// One matched send/receive pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchPair {
    /// `(rank, seq)` of the send event.
    pub send: (Rank, Seq),
    /// `(rank, seq)` of the receive event (the irecv for nonblocking).
    pub recv: (Rank, Seq),
    /// Sequence number, on the receiving rank, of the event that
    /// *completed* the receive: the recv itself when blocking, the wait
    /// that resolved the request when nonblocking.
    pub completion: Seq,
    /// Tag of the matched message.
    pub tag: Tag,
    /// True when the receive was posted with `MPI_ANY_SOURCE`.
    pub posted_any: bool,
}

/// The communication structure the simulation established.
#[derive(Debug, Clone, Default)]
pub struct Matching {
    /// Every send offered to the matcher, in issue order.
    pub sends: Vec<SendRec>,
    /// Every matched pair, in match order.
    pub pairs: Vec<MatchPair>,
    /// True when every rank ran its program to the end (no rank stuck at
    /// quiescence). Witness replays key off this.
    pub completed: bool,
}

/// Diagnostics plus the matching they were derived from.
#[derive(Debug, Clone, Default)]
pub struct ProgressOutcome {
    /// Findings of passes 1, 2 and 5.
    pub diags: Vec<Diagnostic>,
    /// The send/receive structure, for the happens-before passes.
    pub matching: Matching,
}

/// Runs passes 1, 2 and 5 over an in-memory trace (diagnostics only).
pub fn lint_progress(trace: &MemTrace) -> Vec<Diagnostic> {
    run_progress(trace, &MatchPolicy::Recorded).diags
}

/// Runs the progress simulation under `policy`, returning diagnostics and
/// the matching.
pub fn run_progress(trace: &MemTrace, policy: &MatchPolicy) -> ProgressOutcome {
    if trace.num_ranks() == 0 {
        return ProgressOutcome::default();
    }
    let mut sim = Sim::new(trace, policy);
    sim.prescan();
    sim.run();
    sim.finish()
}

/// Result of re-replaying the trace under a forced-match plan: the
/// matching the forced schedule established plus its classified
/// [`ForcedOutcome`].
#[derive(Debug, Clone)]
pub struct ForcedReplay {
    /// What the forced schedule did.
    pub outcome: ForcedOutcome,
    /// The matching the forced replay established.
    pub matching: Matching,
    /// Diagnostics the forced replay raised (deadlock cycles, leftover
    /// envelopes). For a `Deadlocked` outcome the `MPG-DEADLOCK` entries
    /// name the concrete wait-for cycle.
    pub diags: Vec<Diagnostic>,
}

/// The single forced-replay code path: re-executes the trace under
/// `plan` and classifies what happened. Pass 4's witness validation and
/// the pass-8 explorer both go through here, so a forced-match sequence
/// printed by any finding re-replays identically everywhere.
pub fn forced_replay(trace: &MemTrace, plan: &MatchPlan) -> ForcedReplay {
    let out = run_progress(trace, &MatchPolicy::Witness(plan.clone()));
    let outcome = if out.matching.completed {
        ForcedOutcome::Completed
    } else if out.diags.iter().any(|d| d.rule == Rule::Deadlock) {
        ForcedOutcome::Deadlocked
    } else {
        ForcedOutcome::Stuck
    };
    ForcedReplay {
        outcome,
        matching: out.matching,
        diags: out.diags,
    }
}

/// State of one nonblocking request during the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqState {
    /// An isend: completes locally under the eager assumption.
    SendDone,
    /// An irecv posted at `seq`, expecting a message from `src`.
    RecvPending {
        /// Expected source (the recorded matched peer).
        src: Rank,
        /// Sequence number of the initiating irecv.
        seq: Seq,
    },
    /// An irecv whose message arrived; `pair` indexes the matching's pair
    /// list so the resolving wait can stamp the completion point.
    RecvDone {
        /// Index into `Sim::pairs`, when the irecv actually matched.
        pair: Option<usize>,
    },
}

/// Signature a rank presents when arriving at a collective epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CollSig {
    kind: &'static str,
    root: Option<Rank>,
    bytes: Option<u64>,
    comm_size: u32,
}

impl fmt::Display for CollSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.kind)?;
        if let Some(root) = self.root {
            write!(f, "root={root}, ")?;
        }
        if let Some(bytes) = self.bytes {
            write!(f, "{bytes}B, ")?;
        }
        write!(f, "comm={})", self.comm_size)
    }
}

fn coll_sig(kind: &EventKind) -> Option<CollSig> {
    let (name, root, bytes, comm_size) = match *kind {
        EventKind::Barrier { comm_size } => ("barrier", None, None, comm_size),
        EventKind::Bcast {
            root,
            bytes,
            comm_size,
        } => ("bcast", Some(root), Some(bytes), comm_size),
        EventKind::Reduce {
            root,
            bytes,
            comm_size,
        } => ("reduce", Some(root), Some(bytes), comm_size),
        EventKind::Allreduce { bytes, comm_size } => ("allreduce", None, Some(bytes), comm_size),
        EventKind::Scatter {
            root,
            bytes,
            comm_size,
        } => ("scatter", Some(root), Some(bytes), comm_size),
        EventKind::Gather {
            root,
            bytes,
            comm_size,
        } => ("gather", Some(root), Some(bytes), comm_size),
        EventKind::Allgather { bytes, comm_size } => ("allgather", None, Some(bytes), comm_size),
        EventKind::Alltoall { bytes, comm_size } => ("alltoall", None, Some(bytes), comm_size),
        _ => return None,
    };
    Some(CollSig {
        kind: name,
        root,
        bytes,
        comm_size,
    })
}

/// One collective epoch: the k-th collective event on each rank (the same
/// grouping the replayer uses — sub-communicator collectives are expanded
/// to point-to-point traffic by the tracer, so traced collectives are
/// always world-sized).
struct EpochSlot {
    sig: CollSig,
    first: (Rank, Seq),
    arrived: Vec<(Rank, Seq)>,
    skews: Vec<String>,
}

struct Sim<'a> {
    ranks: Vec<&'a [EventRecord]>,
    p: usize,
    policy: &'a MatchPolicy,
    pc: Vec<usize>,
    offered: Vec<bool>,
    matcher: EnvelopeMatcher<LintSend, LintRecv>,
    issue: u64,
    matched: HashSet<(Rank, Seq)>,
    reqs: Vec<HashMap<ReqId, ReqState>>,
    coll_count: Vec<u64>,
    epochs: BTreeMap<u64, EpochSlot>,
    skip: HashSet<(Rank, Seq)>,
    sends: Vec<SendRec>,
    pairs: Vec<MatchPair>,
    diags: Vec<Diagnostic>,
}

impl<'a> Sim<'a> {
    fn new(trace: &'a MemTrace, policy: &'a MatchPolicy) -> Self {
        let p = trace.num_ranks();
        Sim {
            ranks: (0..p).map(|r| trace.rank(r)).collect(),
            p,
            policy,
            pc: vec![0; p],
            offered: vec![false; p],
            matcher: EnvelopeMatcher::new(),
            issue: 0,
            matched: HashSet::new(),
            reqs: vec![HashMap::new(); p],
            coll_count: vec![0; p],
            epochs: BTreeMap::new(),
            skip: HashSet::new(),
            sends: Vec::new(),
            pairs: Vec::new(),
            diags: Vec::new(),
        }
    }

    /// Pass over every event flagging peers outside the communicator
    /// (`MPG-BAD-PEER`) and marking events the simulation must treat as
    /// local no-ops (bad peers would never match; self-messages are
    /// already reported by validation).
    fn prescan(&mut self) {
        let p = self.p;
        for r in 0..p {
            for ev in self.ranks[r] {
                let (peer, what) = match ev.kind {
                    EventKind::Send { peer, .. } | EventKind::Isend { peer, .. } => {
                        (Some(peer), "send names destination")
                    }
                    EventKind::Recv { peer, .. } | EventKind::Irecv { peer, .. } => {
                        (Some(peer), "receive names source")
                    }
                    EventKind::Bcast { root, .. }
                    | EventKind::Reduce { root, .. }
                    | EventKind::Scatter { root, .. }
                    | EventKind::Gather { root, .. } => (Some(root), "collective names root"),
                    _ => (None, ""),
                };
                let Some(peer) = peer else { continue };
                if peer as usize >= p {
                    self.diags.push(
                        Diagnostic::new(
                            Rule::BadPeer,
                            format!("{what} rank {peer} but the trace has {p} ranks"),
                        )
                        .at(ev.rank, ev.seq),
                    );
                    if !ev.kind.is_collective() {
                        self.skip.insert((ev.rank, ev.seq));
                    }
                } else if peer == ev.rank && !ev.kind.is_collective() {
                    // Self-messages are a validate-pass finding
                    // (MPG-SELF-MESSAGE); skip them here so the matcher
                    // never sees a rank-local channel.
                    self.skip.insert((ev.rank, ev.seq));
                }
            }
        }
    }

    fn run(&mut self) {
        let mut progressed = true;
        while progressed {
            progressed = false;
            for r in 0..self.p {
                while self.step(r) {
                    progressed = true;
                }
            }
        }
    }

    fn next_issue(&mut self) -> u64 {
        let i = self.issue;
        self.issue += 1;
        i
    }

    fn offer_send(&mut self, env: LintSend) {
        if let Some((s, pr)) = self.matcher.post_send(env) {
            self.on_match(s, pr);
        }
    }

    fn offer_recv(&mut self, env: LintRecv) {
        if let Some((s, pr)) = self.matcher.post_recv(env) {
            self.on_match(s, pr);
        }
    }

    fn on_match(&mut self, s: LintSend, r: LintRecv) {
        if s.bytes != r.bytes {
            self.diags.push(
                Diagnostic::new(
                    Rule::CountMismatch,
                    format!(
                        "matched pair disagrees on payload: rank {} seq {} sends {} byte(s), \
                         rank {} seq {} expects {}",
                        s.src, s.seq, s.bytes, r.dst, r.seq, r.bytes
                    ),
                )
                .at(r.dst, r.seq)
                .involving([s.src]),
            );
        }
        self.matched.insert((s.src, s.seq));
        self.matched.insert((r.dst, r.seq));
        let pair = self.pairs.len();
        self.pairs.push(MatchPair {
            send: (s.src, s.seq),
            recv: (r.dst, r.seq),
            completion: r.seq,
            tag: s.tag,
            posted_any: r.posted_any,
        });
        if let Some(req) = r.req {
            if let Some(st) = self.reqs[r.dst as usize].get_mut(&req) {
                *st = ReqState::RecvDone { pair: Some(pair) };
            }
        }
    }

    /// A wait at `seq` resolved `req`: stamp the completion point on the
    /// irecv's pair (if it matched) and drop the request.
    fn resolve_req(&mut self, r: usize, req: &ReqId, seq: Seq) {
        if let Some(ReqState::RecvDone { pair: Some(idx) }) = self.reqs[r].remove(req) {
            self.pairs[idx].completion = seq;
        }
    }

    fn req_pending(&self, r: usize, req: &ReqId) -> Option<(Rank, Seq)> {
        match self.reqs[r].get(req) {
            Some(ReqState::RecvPending { src, seq }) => Some((*src, *seq)),
            _ => None,
        }
    }

    /// Executes the current event of rank `r` if its blocking condition is
    /// satisfied. Returns true when the rank advanced.
    fn step(&mut self, r: usize) -> bool {
        let events = self.ranks[r];
        let i = self.pc[r];
        if i >= events.len() {
            return false;
        }
        let ev = &events[i];
        let rank = ev.rank;
        let seq = ev.seq;
        let advance = match &ev.kind {
            EventKind::Init | EventKind::Finalize | EventKind::Compute { .. } => true,
            EventKind::Test { req, completed } => {
                if *completed {
                    self.resolve_req(r, req, seq);
                }
                true
            }
            EventKind::Send {
                peer,
                tag,
                bytes,
                protocol,
            } => {
                if self.skip.contains(&(rank, seq)) {
                    true
                } else {
                    if !self.offered[r] {
                        self.offered[r] = true;
                        let issue = self.next_issue();
                        self.sends.push(SendRec {
                            src: rank,
                            seq,
                            dst: *peer,
                            tag: *tag,
                            bytes: *bytes,
                            eager: *protocol != SendProtocol::Synchronous,
                        });
                        let env = LintSend {
                            src: rank,
                            dst: *peer,
                            tag: *tag,
                            bytes: *bytes,
                            seq,
                            issue,
                        };
                        self.offer_send(env);
                    }
                    // Only the synchronous form waits for the match; the
                    // eager assumption keeps head-to-head standard sends
                    // from reporting false deadlocks.
                    *protocol != SendProtocol::Synchronous || self.matched.contains(&(rank, seq))
                }
            }
            EventKind::Recv {
                peer,
                tag,
                bytes,
                posted_any,
            } => {
                if self.skip.contains(&(rank, seq)) {
                    true
                } else {
                    if !self.offered[r] {
                        self.offered[r] = true;
                        let env = LintRecv {
                            dst: rank,
                            src_pattern: self.policy.src_pattern(rank, seq, *peer),
                            tag_pattern: *tag,
                            bytes: *bytes,
                            seq,
                            posted_any: *posted_any,
                            req: None,
                        };
                        self.offer_recv(env);
                    }
                    self.matched.contains(&(rank, seq))
                }
            }
            EventKind::Isend {
                peer,
                tag,
                bytes,
                req,
            } => {
                self.reqs[r].insert(*req, ReqState::SendDone);
                if !self.skip.contains(&(rank, seq)) {
                    let issue = self.next_issue();
                    self.sends.push(SendRec {
                        src: rank,
                        seq,
                        dst: *peer,
                        tag: *tag,
                        bytes: *bytes,
                        eager: true,
                    });
                    let env = LintSend {
                        src: rank,
                        dst: *peer,
                        tag: *tag,
                        bytes: *bytes,
                        seq,
                        issue,
                    };
                    self.offer_send(env);
                }
                true
            }
            EventKind::Irecv {
                peer,
                tag,
                bytes,
                req,
                posted_any,
            } => {
                if self.skip.contains(&(rank, seq)) {
                    self.reqs[r].insert(*req, ReqState::RecvDone { pair: None });
                } else {
                    self.reqs[r].insert(*req, ReqState::RecvPending { src: *peer, seq });
                    let env = LintRecv {
                        dst: rank,
                        src_pattern: self.policy.src_pattern(rank, seq, *peer),
                        tag_pattern: *tag,
                        bytes: *bytes,
                        seq,
                        posted_any: *posted_any,
                        req: Some(*req),
                    };
                    self.offer_recv(env);
                }
                true
            }
            EventKind::Wait { req } => {
                if self.req_pending(r, req).is_some() {
                    false
                } else {
                    self.resolve_req(r, req, seq);
                    true
                }
            }
            EventKind::WaitAll { reqs } => {
                if reqs.iter().any(|q| self.req_pending(r, q).is_some()) {
                    false
                } else {
                    for q in reqs {
                        self.resolve_req(r, q, seq);
                    }
                    true
                }
            }
            EventKind::WaitSome { completed, .. } => {
                if completed.iter().any(|q| self.req_pending(r, q).is_some()) {
                    false
                } else {
                    for q in completed {
                        self.resolve_req(r, q, seq);
                    }
                    true
                }
            }
            kind if kind.is_collective() => {
                if !self.offered[r] {
                    self.offered[r] = true;
                    self.arrive_collective(r, ev);
                }
                let k = self.coll_count[r] - 1;
                self.epochs
                    .get(&k)
                    .is_some_and(|s| s.arrived.len() == self.p)
            }
            _ => true,
        };
        if advance {
            self.pc[r] += 1;
            self.offered[r] = false;
        }
        advance
    }

    fn arrive_collective(&mut self, r: usize, ev: &EventRecord) {
        let rank = ev.rank;
        let sig = coll_sig(&ev.kind).expect("collective event");
        let k = self.coll_count[r];
        self.coll_count[r] += 1;
        let world_bad = sig.comm_size as usize != self.p;
        let slot = self.epochs.entry(k).or_insert_with(|| EpochSlot {
            sig: sig.clone(),
            first: (rank, ev.seq),
            arrived: Vec::new(),
            skews: Vec::new(),
        });
        if !slot.arrived.is_empty() && slot.sig != sig {
            slot.skews.push(format!(
                "rank {} calls {} but rank {} calls {}",
                slot.first.0, slot.sig, rank, sig
            ));
        }
        if world_bad {
            slot.skews.push(format!(
                "rank {rank} names comm size {} but the trace has {} ranks",
                sig.comm_size, self.p
            ));
        }
        slot.arrived.push((rank, ev.seq));
    }

    /// Wait-for edges of a rank stuck at quiescence: which ranks could
    /// unblock it.
    fn wait_edges(&self, r: usize) -> Vec<Rank> {
        let ev = &self.ranks[r][self.pc[r]];
        match &ev.kind {
            EventKind::Send { peer, .. } | EventKind::Recv { peer, .. } => vec![*peer],
            EventKind::Wait { req } => self
                .req_pending(r, req)
                .map(|(src, _)| src)
                .into_iter()
                .collect(),
            EventKind::WaitAll { reqs } => reqs
                .iter()
                .filter_map(|q| self.req_pending(r, q))
                .map(|(src, _)| src)
                .collect(),
            EventKind::WaitSome { completed, .. } => completed
                .iter()
                .filter_map(|q| self.req_pending(r, q))
                .map(|(src, _)| src)
                .collect(),
            kind if kind.is_collective() => {
                let k = self.coll_count[r] - 1;
                let arrived: HashSet<Rank> = self
                    .epochs
                    .get(&k)
                    .map(|s| s.arrived.iter().map(|&(rank, _)| rank).collect())
                    .unwrap_or_default();
                (0..self.p as Rank)
                    .filter(|rank| !arrived.contains(rank))
                    .collect()
            }
            _ => Vec::new(),
        }
    }

    /// The envelope-bearing `(rank, seq)` ops a stuck rank contributes to a
    /// deadlock cycle (its blocked event, plus the irecvs a wait covers) —
    /// used to suppress redundant unmatched-envelope diagnostics.
    fn blocked_ops(&self, r: usize) -> Vec<(Rank, Seq)> {
        let ev = &self.ranks[r][self.pc[r]];
        let mut ops = vec![(ev.rank, ev.seq)];
        let reqs: &[ReqId] = match &ev.kind {
            EventKind::Wait { req } => std::slice::from_ref(req),
            EventKind::WaitAll { reqs } => reqs,
            EventKind::WaitSome { completed, .. } => completed,
            _ => &[],
        };
        for q in reqs {
            if let Some((_, seq)) = self.req_pending(r, q) {
                ops.push((ev.rank, seq));
            }
        }
        ops
    }

    fn finish(mut self) -> ProgressOutcome {
        let p = self.p;
        let stuck: Vec<usize> = (0..p)
            .filter(|&r| self.pc[r] < self.ranks[r].len())
            .collect();
        let completed = stuck.is_empty();

        // Pass 2: wait-for graph over the stuck ranks, Tarjan SCC.
        let mut cycle_ops: HashSet<(Rank, Seq)> = HashSet::new();
        if !stuck.is_empty() {
            let mut adj: HashMap<Rank, Vec<Rank>> = HashMap::new();
            for &r in &stuck {
                let mut targets = self.wait_edges(r);
                targets.sort_unstable();
                targets.dedup();
                adj.insert(r as Rank, targets);
            }
            for comp in cyclic_sccs(&adj) {
                let members: HashSet<Rank> = comp.iter().copied().collect();
                let mut parts = Vec::new();
                for &rank in &comp {
                    let r = rank as usize;
                    let ev = &self.ranks[r][self.pc[r]];
                    let within: Vec<Rank> = self
                        .wait_edges(r)
                        .into_iter()
                        .filter(|t| members.contains(t))
                        .collect();
                    parts.push(format!(
                        "rank {rank} blocked at {} (seq {}) waiting on {:?}",
                        ev.kind.name(),
                        ev.seq,
                        within
                    ));
                    for op in self.blocked_ops(r) {
                        cycle_ops.insert(op);
                    }
                }
                let span = {
                    let r = comp[0] as usize;
                    (comp[0], self.ranks[r][self.pc[r]].seq)
                };
                self.diags.push(
                    Diagnostic::new(
                        Rule::Deadlock,
                        format!("wait-for cycle among ranks {comp:?}: {}", parts.join("; ")),
                    )
                    .at(span.0, span.1)
                    .involving(comp),
                );
            }
        }

        // Pass 5: collective epoch consistency.
        for (k, slot) in &self.epochs {
            let arrived_ranks: Vec<Rank> = slot.arrived.iter().map(|&(r, _)| r).collect();
            if !slot.skews.is_empty() {
                self.diags.push(
                    Diagnostic::new(
                        Rule::CollectiveSkew,
                        format!("collective epoch {k}: {}", slot.skews.join("; ")),
                    )
                    .at(slot.first.0, slot.first.1)
                    .involving(arrived_ranks.iter().copied()),
                );
            }
            if slot.arrived.len() < p {
                let missing: Vec<Rank> = (0..p as Rank)
                    .filter(|r| !arrived_ranks.contains(r))
                    .collect();
                self.diags.push(
                    Diagnostic::new(
                        Rule::CollectiveSkew,
                        format!(
                            "collective epoch {k} ({}): ranks {missing:?} never reach it",
                            slot.sig
                        ),
                    )
                    .at(slot.first.0, slot.first.1)
                    .involving(arrived_ranks.iter().copied().chain(missing.iter().copied())),
                );
            }
        }

        // Pass 1 residue: leftover envelopes, refined into tag mismatches
        // where a send/receive pair agrees on the channel.
        let (sends, recvs) = std::mem::take(&mut self.matcher).into_unmatched();
        let sends: Vec<LintSend> = sends
            .into_iter()
            .filter(|s| !cycle_ops.contains(&(s.src, s.seq)))
            .collect();
        let recvs: Vec<LintRecv> = recvs
            .into_iter()
            .filter(|r| !cycle_ops.contains(&(r.dst, r.seq)))
            .collect();
        let mut send_used = vec![false; sends.len()];
        for rv in &recvs {
            let hit = sends.iter().enumerate().position(|(i, s)| {
                !send_used[i]
                    && s.dst == rv.dst
                    && (rv.src_pattern == ANY_SOURCE || s.src == rv.src_pattern)
                    && rv.tag_pattern != ANY_TAG
                    && s.tag != rv.tag_pattern
            });
            if let Some(i) = hit {
                send_used[i] = true;
                let s = &sends[i];
                self.diags.push(
                    Diagnostic::new(
                        Rule::TagMismatch,
                        format!(
                            "rank {} sends tag {} to rank {} (seq {}) but the receive on \
                             rank {} (seq {}) expects tag {}",
                            s.src, s.tag, s.dst, s.seq, rv.dst, rv.seq, rv.tag_pattern
                        ),
                    )
                    .at(rv.dst, rv.seq)
                    .involving([s.src]),
                );
            } else {
                let mut d = Diagnostic::new(
                    Rule::UnmatchedRecv,
                    format!(
                        "receive posted for src {} tag {} is never satisfied",
                        fmt_rank(rv.src_pattern),
                        fmt_tag(rv.tag_pattern)
                    ),
                )
                .at(rv.dst, rv.seq);
                if (rv.src_pattern as usize) < p {
                    d = d.involving([rv.src_pattern]);
                }
                self.diags.push(d);
            }
        }
        for (i, s) in sends.iter().enumerate() {
            if !send_used[i] {
                self.diags.push(
                    Diagnostic::new(
                        Rule::UnmatchedSend,
                        format!(
                            "send to rank {} (tag {}, {} byte(s)) is never received",
                            s.dst, s.tag, s.bytes
                        ),
                    )
                    .at(s.src, s.seq)
                    .involving([s.dst]),
                );
            }
        }

        ProgressOutcome {
            diags: self.diags,
            matching: Matching {
                sends: self.sends,
                pairs: self.pairs,
                completed,
            },
        }
    }
}

fn fmt_rank(r: Rank) -> String {
    if r == ANY_SOURCE {
        "ANY".to_string()
    } else {
        r.to_string()
    }
}

fn fmt_tag(t: Tag) -> String {
    if t == ANY_TAG {
        "ANY".to_string()
    } else {
        t.to_string()
    }
}

/// Tarjan's strongly-connected components over the wait-for graph,
/// returning only the cyclic components (size ≥ 2; self-loops cannot occur
/// because self-messages are excluded upstream). Components and their
/// members are returned in ascending rank order for determinism.
fn cyclic_sccs(adj: &HashMap<Rank, Vec<Rank>>) -> Vec<Vec<Rank>> {
    struct State<'g> {
        adj: &'g HashMap<Rank, Vec<Rank>>,
        index: HashMap<Rank, usize>,
        low: HashMap<Rank, usize>,
        on_stack: HashSet<Rank>,
        stack: Vec<Rank>,
        next: usize,
        out: Vec<Vec<Rank>>,
    }

    fn visit(st: &mut State<'_>, v: Rank) {
        st.index.insert(v, st.next);
        st.low.insert(v, st.next);
        st.next += 1;
        st.stack.push(v);
        st.on_stack.insert(v);
        for &w in st.adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
            if !st.index.contains_key(&w) {
                if st.adj.contains_key(&w) {
                    visit(st, w);
                    let lw = st.low[&w];
                    let lv = st.low.get_mut(&v).unwrap();
                    *lv = (*lv).min(lw);
                }
                // Edges to ranks that are not blocked can never close a
                // cycle; ignore them.
            } else if st.on_stack.contains(&w) {
                let iw = st.index[&w];
                let lv = st.low.get_mut(&v).unwrap();
                *lv = (*lv).min(iw);
            }
        }
        if st.low[&v] == st.index[&v] {
            let mut comp = Vec::new();
            while let Some(w) = st.stack.pop() {
                st.on_stack.remove(&w);
                comp.push(w);
                if w == v {
                    break;
                }
            }
            if comp.len() >= 2 {
                comp.sort_unstable();
                st.out.push(comp);
            }
        }
    }

    let mut nodes: Vec<Rank> = adj.keys().copied().collect();
    nodes.sort_unstable();
    let mut st = State {
        adj,
        index: HashMap::new(),
        low: HashMap::new(),
        on_stack: HashSet::new(),
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in nodes {
        if !st.index.contains_key(&v) {
            visit(&mut st, v);
        }
    }
    st.out.sort();
    st.out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scc_finds_two_cycles() {
        let mut adj = HashMap::new();
        adj.insert(0, vec![1]);
        adj.insert(1, vec![0]);
        adj.insert(2, vec![3]);
        adj.insert(3, vec![2]);
        adj.insert(4, vec![0]); // blocked on the cycle but not in it
        let comps = cyclic_sccs(&adj);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn scc_ignores_edges_to_unblocked_ranks() {
        let mut adj = HashMap::new();
        adj.insert(0, vec![7]); // rank 7 is not blocked (absent from adj)
        assert!(cyclic_sccs(&adj).is_empty());
    }

    #[test]
    fn coll_sig_display() {
        let sig = coll_sig(&EventKind::Bcast {
            root: 2,
            bytes: 64,
            comm_size: 4,
        })
        .unwrap();
        assert_eq!(sig.to_string(), "bcast(root=2, 64B, comm=4)");
        assert_eq!(
            coll_sig(&EventKind::Barrier { comm_size: 8 })
                .unwrap()
                .to_string(),
            "barrier(comm=8)"
        );
        assert!(coll_sig(&EventKind::Init).is_none());
    }
}
