//! Pass 4: per-trace wildcard race detection on the happens-before index.
//!
//! A trace records *one* resolution of every wildcard receive, but the
//! program admits any resolution consistent with the happens-before
//! relation of the recorded graph. For each wildcard receive `R` that
//! matched send `S`, this pass enumerates every envelope-compatible send
//! `S'` whose issue is **concurrent** with `S` — by the HB relation
//! neither must precede the other, so an execution exists in which `S'`
//! arrives first. (Sends from `S`'s own source are never alternates:
//! MPI's non-overtaking rule orders them behind `S` on the channel.)
//!
//! Concurrency alone over-approximates: the surrounding program can pin a
//! concurrent message elsewhere (e.g. a later receive that *specifically*
//! names that source has no other way to complete). Every candidate is
//! therefore validated by **witness replay**: the progress simulation is
//! re-run under a witness `MatchPolicy` that forces `R` onto `S'`'s
//! source (and the wildcard receive that originally consumed `S'` onto
//! `S`'s source, swapping the two messages). Only candidates whose forced
//! schedule runs every rank to completion are reported, so each
//! `MPG-WILD-RACE` diagnostic carries a concrete, replayable alternate
//! match — never a hypothetical one.

use crate::progress::{forced_replay, MatchPair, Matching};
use mpg_core::forced::MatchPlan;
use mpg_core::HbIndex;
use mpg_trace::{Diagnostic, EventKind, MemTrace, Rank, Rule, Seq, ANY_TAG};
use std::collections::{BTreeMap, HashMap};

/// One validated alternate match for a racy wildcard receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceWitness {
    /// The wildcard receive, `(rank, seq)`.
    pub recv: (Rank, Seq),
    /// The send the trace recorded as matched.
    pub matched: (Rank, Seq),
    /// The concurrent, envelope-compatible send `recv` could have taken.
    pub alternate: (Rank, Seq),
    /// The wildcard receive that consumed `alternate` in the recorded
    /// schedule (swapped onto `matched` during witness replay); `None`
    /// when `alternate` went unmatched.
    pub displaced: Option<(Rank, Seq)>,
}

/// One wildcard receive with at least one validated alternate match.
#[derive(Debug, Clone)]
pub struct RaceFinding {
    /// The wildcard receive, `(rank, seq)`.
    pub recv: (Rank, Seq),
    /// The recorded match.
    pub matched: (Rank, Seq),
    /// Tag of the matched message.
    pub tag: mpg_trace::Tag,
    /// Every validated alternate, one per alternate source, ascending.
    pub witnesses: Vec<RaceWitness>,
}

/// The forced-match plan a witness describes: the racy receive onto the
/// alternate source, and the displaced wildcard (if any) onto the
/// recorded source — the two messages swap.
pub fn witness_plan(w: &RaceWitness) -> MatchPlan {
    let mut plan = MatchPlan::new().force(w.recv, w.alternate.0);
    if let Some(displaced) = w.displaced {
        plan = plan.force(displaced, w.matched.0);
    }
    plan
}

/// Replays the progress simulation with the witness's matching forced,
/// through the shared [`forced_replay`] path. Returns the resulting
/// [`Matching`] when the forced schedule completes *and* the racy
/// receive really did take the alternate source; `None` when the witness
/// is infeasible.
pub fn witness_matching(trace: &MemTrace, w: &RaceWitness) -> Option<Matching> {
    let rep = forced_replay(trace, &witness_plan(w));
    let m = rep.matching;
    if !m.completed {
        return None;
    }
    let took_alternate = m
        .pairs
        .iter()
        .any(|p| p.recv == w.recv && p.send.0 == w.alternate.0);
    took_alternate.then_some(m)
}

/// The receive's *posted* tag pattern (traces record the matched tag for
/// the diagnostic text, but compatibility is against the pattern).
fn posted_tag(trace: &MemTrace, recv: (Rank, Seq)) -> Option<mpg_trace::Tag> {
    match trace.rank(recv.0 as usize).get(recv.1 as usize)?.kind {
        EventKind::Recv { tag, .. } | EventKind::Irecv { tag, .. } => Some(tag),
        _ => None,
    }
}

/// Enumerates the unvalidated alternate-match candidates of every
/// wildcard pair in `matching`: envelope-compatible sends concurrent
/// with the recorded match, earliest per alternate source (the
/// non-overtaking rule hands a forced pattern the earliest unconsumed
/// message of that source, so later ones are subsumed). With
/// `include_pinned` false, alternates whose recorded consumer is a
/// *specific* (non-wildcard) receive are skipped — swapping them would
/// need a cascade of reassignments, so they are not single-swap
/// alternates for pass 4. The pass-8 explorer sets it true: forcing the
/// wildcard anyway and watching the specific receive starve is exactly
/// how alternate-schedule deadlocks are found.
pub(crate) fn wildcard_candidates(
    trace: &MemTrace,
    matching: &Matching,
    hb: &HbIndex,
    include_pinned: bool,
) -> Vec<(MatchPair, Vec<RaceWitness>)> {
    let consumer_of: HashMap<(Rank, Seq), &MatchPair> =
        matching.pairs.iter().map(|p| (p.send, p)).collect();
    let mut out = Vec::new();
    for pair in matching.pairs.iter().filter(|p| p.posted_any) {
        let (recv, matched) = (pair.recv, pair.send);
        let Some(tag_pattern) = posted_tag(trace, recv) else {
            continue;
        };
        let mut candidates: BTreeMap<Rank, RaceWitness> = BTreeMap::new();
        for s in &matching.sends {
            if s.src == matched.0
                || s.dst != recv.0
                || (tag_pattern != ANY_TAG && s.tag != tag_pattern)
                || !hb.concurrent((s.src, s.seq), matched)
            {
                continue;
            }
            let displaced = match consumer_of.get(&(s.src, s.seq)) {
                Some(p) if !p.posted_any => {
                    if !include_pinned {
                        continue;
                    }
                    // The specific receive cannot be re-pointed; force
                    // only the wildcard and let the replay decide.
                    None
                }
                Some(p) => Some(p.recv),
                None => None,
            };
            let w = RaceWitness {
                recv,
                matched,
                alternate: (s.src, s.seq),
                displaced,
            };
            candidates
                .entry(s.src)
                .and_modify(|held| {
                    if s.seq < held.alternate.1 {
                        *held = w;
                    }
                })
                .or_insert(w);
        }
        if !candidates.is_empty() {
            out.push((*pair, candidates.into_values().collect()));
        }
    }
    out
}

/// Finds every wildcard receive with a validated concurrent alternate.
pub fn find_races(trace: &MemTrace, matching: &Matching, hb: &HbIndex) -> Vec<RaceFinding> {
    let mut findings = Vec::new();
    for (pair, candidates) in wildcard_candidates(trace, matching, hb, false) {
        let witnesses: Vec<RaceWitness> = candidates
            .into_iter()
            .filter(|w| witness_matching(trace, w).is_some())
            .collect();
        if !witnesses.is_empty() {
            findings.push(RaceFinding {
                recv: pair.recv,
                matched: pair.send,
                tag: pair.tag,
                witnesses,
            });
        }
    }
    findings
}

/// Pass 4 entry point: renders [`find_races`] as diagnostics.
pub fn lint_races(trace: &MemTrace, matching: &Matching, hb: &HbIndex) -> Vec<Diagnostic> {
    find_races(trace, matching, hb)
        .into_iter()
        .map(|f| {
            let alts = f
                .witnesses
                .iter()
                .map(|w| format!("rank {} seq {}", w.alternate.0, w.alternate.1))
                .collect::<Vec<_>>()
                .join(", ");
            Diagnostic::new(
                Rule::WildRace,
                format!(
                    "wildcard receive (tag {}) matched the send from rank {} seq {}, but \
                     {alts} {} concurrent and envelope-compatible; forcing the alternate \
                     match replays to completion, so the resolution depends on arrival \
                     timing",
                    f.tag,
                    f.matched.0,
                    f.matched.1,
                    if f.witnesses.len() == 1 { "is" } else { "are" },
                ),
            )
            .at(f.recv.0, f.recv.1)
            .involving(
                f.witnesses
                    .iter()
                    .map(|w| w.alternate.0)
                    .chain([f.matched.0]),
            )
        })
        .collect()
}
