//! Wait-state classification: where does the time go?
//!
//! Scalasca-style post-mortem analysis over a quiet-recorded
//! [`EventGraph`]: every cycle of every rank's run is attributed to
//! exactly one bucket — compute, transfer, or one of the five
//! [`WaitClass`]es — and the decomposition is *exact*:
//!
//! ```text
//! compute + transfer + Σ waits  ==  makespan × ranks
//! ```
//!
//! The identity holds by telescoping (each rank's gaps, event windows and
//! exit tail tile its `[0, makespan]` interval) and is asserted by
//! [`PerfReport::identity_holds`]; `mpgtool analyze` refuses to print a
//! report that violates it.
//!
//! Classification rides on the zero-drift slack sweep
//! ([`SlackSweep`]): a blocking operation's wait
//! interval is the part of its window spent blocked on its latest
//! incoming message arm, and the *class* of that arm names the culprit —
//! a message-path arm is a late **sender**, an acknowledgement arm a late
//! **receiver**, a collective hub arm either a single late rank
//! ([`WaitClass::WaitAtCollective`], with the root cause identified) or
//! diffuse entry imbalance ([`WaitClass::ImbalanceAtCollective`]).

use std::collections::HashMap;

use mpg_core::{Cycles, DeltaClass, EventGraph, NodeId, SlackSweep};
use mpg_trace::{Diagnostic, EventKind, MemTrace, Rule, Tag};

use crate::slack::ChainSummary;

/// Why a rank was blocked, per the standard wait-state taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitClass {
    /// A receive (or receive-completing wait) posted before its message
    /// was sent: time blocked on the sender.
    LateSender,
    /// A synchronous send blocked past its payload transfer because the
    /// receiver had not arrived: time blocked on the acknowledgement.
    LateReceiver,
    /// Blocked in a collective whose cost is dominated by one late rank.
    WaitAtCollective,
    /// Blocked in a collective whose entry times are diffusely spread —
    /// no single rank explains the cost.
    ImbalanceAtCollective,
    /// Time between a rank's last event and the global makespan (ranks
    /// that finish early idle here; a crashed rank idles its whole tail).
    ExitSkew,
}

impl WaitClass {
    /// Every class, in reporting order (also the index order of the
    /// per-class arrays in [`PerfReport`]).
    pub const ALL: [WaitClass; 5] = [
        WaitClass::LateSender,
        WaitClass::LateReceiver,
        WaitClass::WaitAtCollective,
        WaitClass::ImbalanceAtCollective,
        WaitClass::ExitSkew,
    ];

    /// Stable snake_case label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            WaitClass::LateSender => "late_sender",
            WaitClass::LateReceiver => "late_receiver",
            WaitClass::WaitAtCollective => "wait_at_collective",
            WaitClass::ImbalanceAtCollective => "imbalance_at_collective",
            WaitClass::ExitSkew => "exit_skew",
        }
    }

    /// Index into the `[Cycles; 5]` per-class arrays.
    pub fn idx(self) -> usize {
        match self {
            WaitClass::LateSender => 0,
            WaitClass::LateReceiver => 1,
            WaitClass::WaitAtCollective => 2,
            WaitClass::ImbalanceAtCollective => 3,
            WaitClass::ExitSkew => 4,
        }
    }
}

/// One classified wait interval: a blocking operation that spent part of
/// its window blocked on a remote cause.
#[derive(Debug, Clone)]
pub struct WaitInterval {
    /// Rank that waited.
    pub rank: u32,
    /// Sequence number of the blocked event.
    pub seq: u64,
    /// Operation name (the event kind's stable label).
    pub op: &'static str,
    /// Message tag, when the blocked operation carries one (blocking
    /// point-to-point only; wait-family completions have no tag).
    pub tag: Option<Tag>,
    /// Why the rank was blocked.
    pub class: WaitClass,
    /// The rank that caused the wait (sender, receiver, or the last rank
    /// into a collective).
    pub cause: Option<u32>,
    /// Cycles spent blocked.
    pub wait: Cycles,
    /// The operation's full window (wait + transfer residue).
    pub window: Cycles,
    /// Whether the binding arm behind this wait has zero slack — i.e. the
    /// wait sits on the static critical path and shortening it shortens
    /// the run.
    pub on_critical: bool,
}

/// Per-collective-instance wait summary used for the imbalance split and
/// the `MPG-COLLECTIVE-IMBALANCE` rule.
#[derive(Debug, Clone)]
pub struct CollectiveWait {
    /// Operation name (barrier, allreduce, …).
    pub op: &'static str,
    /// `(rank, seq)` of the last rank into the hub — the root cause.
    pub cause: (u32, u64),
    /// Participating ranks.
    pub members: usize,
    /// Σ member wait intervals.
    pub total_wait: Cycles,
    /// Σ member windows (for thresholding the rule).
    pub window_total: Cycles,
    /// Cycles the instance would save if the latest rank entered at the
    /// second-latest rank's time — the single-culprit share of the wait.
    pub saved: Cycles,
    /// True when `saved` explains at least half of `total_wait`: the
    /// members' waits are classified [`WaitClass::WaitAtCollective`];
    /// otherwise [`WaitClass::ImbalanceAtCollective`].
    pub dominated: bool,
}

/// One rank's exact time decomposition.
#[derive(Debug, Clone)]
pub struct RankBreakdown {
    /// The rank.
    pub rank: u32,
    /// Gaps between events plus Init/Finalize/Compute windows.
    pub compute: Cycles,
    /// Communication windows minus their wait intervals.
    pub transfer: Cycles,
    /// Wait cycles per class (indexed by [`WaitClass::idx`]).
    pub wait: [Cycles; 5],
}

impl RankBreakdown {
    /// Total wait cycles across all classes.
    pub fn wait_total(&self) -> Cycles {
        self.wait.iter().sum()
    }
}

/// Wait cycles aggregated under one key (a tag or an operation name).
#[derive(Debug, Clone)]
pub struct KeyedWait {
    /// The aggregation key.
    pub key: String,
    /// Number of wait intervals aggregated.
    pub count: usize,
    /// Σ wait cycles.
    pub wait: Cycles,
}

/// The full static performance report of one trace.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Number of ranks.
    pub ranks: usize,
    /// Re-timed span of the run: max over ranks of (last end − first
    /// start) in each rank's own clock.
    pub makespan: Cycles,
    /// Σ compute cycles (gaps + local windows) across ranks.
    pub compute: Cycles,
    /// Σ transfer cycles (communication windows minus waits).
    pub transfer: Cycles,
    /// Σ wait cycles per class (indexed by [`WaitClass::idx`]).
    pub wait: [Cycles; 5],
    /// Per-rank decomposition.
    pub per_rank: Vec<RankBreakdown>,
    /// Every classified wait interval (sorted by rank, then seq).
    pub waits: Vec<WaitInterval>,
    /// Per-collective-instance summaries, in graph order.
    pub collectives: Vec<CollectiveWait>,
    /// Wait cycles aggregated by message tag (tagged p2p waits only).
    pub by_tag: Vec<KeyedWait>,
    /// Wait cycles aggregated by operation name.
    pub by_op: Vec<KeyedWait>,
    /// Tight chains walked back from each rank's final node, longest
    /// finish first (index 0 is the static critical path).
    pub chains: Vec<ChainSummary>,
    /// Edges with zero slack (the static critical network).
    pub zero_slack_edges: usize,
    /// Total edges in the recorded graph.
    pub edge_count: usize,
    /// Cross-rank causality violations clamped by the sweep (nonzero ⇒
    /// the trace clocks disagree with message order; see DESIGN.md §11).
    pub causality_clamps: usize,
    /// Nodes whose forward-sweep time disagreed with the observed time.
    pub retime_mismatches: usize,
}

impl PerfReport {
    /// Total wait cycles across all classes and ranks.
    pub fn wait_total(&self) -> Cycles {
        self.wait.iter().sum()
    }

    /// Cycles spent doing useful work (compute + transfer).
    pub fn busy(&self) -> Cycles {
        self.compute + self.transfer
    }

    /// The exact accounting identity:
    /// `compute + transfer + Σ waits == makespan × ranks`.
    pub fn identity_holds(&self) -> bool {
        self.busy() + self.wait_total() == self.makespan * self.ranks as Cycles
    }

    /// Share of total rank-time spent busy, in `[0, 1]`.
    pub fn efficiency(&self) -> f64 {
        let total = self.makespan * self.ranks as Cycles;
        if total == 0 {
            return 1.0;
        }
        self.busy() as f64 / total as f64
    }

    /// Critical-path imbalance: share of total rank-time lost to waits
    /// (`1 − efficiency`); 0 for a perfectly packed run.
    pub fn imbalance(&self) -> f64 {
        1.0 - self.efficiency()
    }

    /// Renders the report as one JSON object (hand-rolled, like the
    /// diagnostic path; the workspace takes no serialization dependency).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\"ranks\":{},\"makespan\":{},\"compute\":{},\"transfer\":{}",
            self.ranks, self.makespan, self.compute, self.transfer
        );
        s.push_str(",\"wait\":{");
        for (i, class) in WaitClass::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", class.label(), self.wait[class.idx()]);
        }
        let _ = write!(
            s,
            "}},\"wait_total\":{},\"identity_holds\":{},\"efficiency\":{:.6},\"imbalance\":{:.6}",
            self.wait_total(),
            self.identity_holds(),
            self.efficiency(),
            self.imbalance()
        );
        let _ = write!(
            s,
            ",\"zero_slack_edges\":{},\"edge_count\":{},\"causality_clamps\":{},\"retime_mismatches\":{}",
            self.zero_slack_edges, self.edge_count, self.causality_clamps, self.retime_mismatches
        );
        s.push_str(",\"per_rank\":[");
        for (i, r) in self.per_rank.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"rank\":{},\"compute\":{},\"transfer\":{},\"wait\":{}}}",
                r.rank,
                r.compute,
                r.transfer,
                r.wait_total()
            );
        }
        s.push_str("],\"by_tag\":[");
        for (i, k) in self.by_tag.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"tag\":\"{}\",\"count\":{},\"wait\":{}}}",
                k.key, k.count, k.wait
            );
        }
        s.push_str("],\"by_op\":[");
        for (i, k) in self.by_op.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"op\":\"{}\",\"count\":{},\"wait\":{}}}",
                k.key, k.count, k.wait
            );
        }
        s.push_str("],\"collectives\":[");
        for (i, c) in self.collectives.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"op\":\"{}\",\"members\":{},\"total_wait\":{},\"saved\":{},\"cause_rank\":{},\"dominated\":{}}}",
                c.op, c.members, c.total_wait, c.saved, c.cause.0, c.dominated
            );
        }
        s.push_str("],\"chains\":[");
        for (i, c) in self.chains.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"rank\":{},\"finish\":{},\"steps\":{},\"message_hops\":{},\"ranks_touched\":{},\"wait_cycles\":{}}}",
                c.rank, c.finish, c.steps, c.message_hops, c.ranks_touched, c.wait_cycles
            );
        }
        s.push_str("]}");
        s
    }
}

/// Thresholds gating the performance lint rules. The defaults are
/// conservative: a wait must consume a quarter of its window *and* at
/// least `min_cycles` before it is worth a finding.
#[derive(Debug, Clone)]
pub struct PerfThresholds {
    /// A wait must be at least this fraction of its window (or a
    /// collective's total wait this fraction of its window sum).
    pub wait_frac: f64,
    /// …and at least this many cycles (filters trivia on tiny traces).
    pub min_cycles: Cycles,
    /// `MPG-SERIAL-CHAIN`: the critical path must serialize through at
    /// least this many distinct ranks…
    pub serial_ranks: usize,
    /// …with at least this fraction of the makespan spent in chain waits.
    pub serial_wait_frac: f64,
}

impl Default for PerfThresholds {
    fn default() -> Self {
        PerfThresholds {
            wait_frac: 0.25,
            min_cycles: 10_000,
            serial_ranks: 4,
            serial_wait_frac: 0.5,
        }
    }
}

fn tag_of(kind: &EventKind) -> Option<Tag> {
    match kind {
        EventKind::Send { tag, .. }
        | EventKind::Recv { tag, .. }
        | EventKind::Isend { tag, .. }
        | EventKind::Irecv { tag, .. } => Some(*tag),
        _ => None,
    }
}

/// Classifies every wait interval in a quiet-recorded graph and decomposes
/// the whole run into compute / transfer / wait buckets.
///
/// `trace` must be the trace `graph` was recorded from (the trace supplies
/// event windows and gaps; the graph supplies arm structure and the slack
/// sweep). The decomposition tiles each rank's `[0, makespan]` exactly —
/// see [`PerfReport::identity_holds`].
pub fn analyze_graph(trace: &MemTrace, graph: &EventGraph) -> PerfReport {
    let sweep = SlackSweep::sweep(graph);

    // ---- collective instances: dominance split ----------------------------
    // Entries: src → hub edges; members: hub → end edges. The latest
    // entrant is the root cause; `saved` is what would be reclaimed if it
    // entered at the second-latest time.
    let mut hub_entries: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    let mut hub_members: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    let mut hub_order: Vec<NodeId> = Vec::new();
    for e in graph.edges() {
        if e.dst.hub && !e.src.hub {
            let slot = hub_entries.entry(e.dst).or_default();
            if slot.is_empty() {
                hub_order.push(e.dst);
            }
            slot.push(e.src);
        } else if e.src.hub && !e.dst.hub {
            hub_members.entry(e.src).or_default().push(e.dst);
        }
    }
    let mut collectives = Vec::new();
    // Per-member-end-node classification decided at the instance level.
    let mut coll_class: HashMap<NodeId, (WaitClass, u32)> = HashMap::new();
    for hub in &hub_order {
        let entries = &hub_entries[hub];
        let members = hub_members.get(hub).map_or(&[][..], |m| m.as_slice());
        let hub_t = sweep.time(*hub).unwrap_or(0);
        // Latest entrant (first wins on ties — entry edges are emitted in
        // rank order, so ties resolve to the lowest rank).
        let mut latest: Option<(NodeId, Cycles)> = None;
        let mut second = 0;
        for src in entries {
            let t = sweep.time(*src).unwrap_or(0);
            match latest {
                None => latest = Some((*src, t)),
                Some((_, lt)) if t > lt => {
                    second = lt;
                    latest = Some((*src, t));
                }
                Some(_) => second = second.max(t),
            }
        }
        let Some((cause_node, _)) = latest else {
            continue;
        };
        let mut total_wait = 0;
        let mut window_total = 0;
        let mut saved = 0;
        let mut op = "collective";
        for m in members {
            let w = sweep.wait(*m);
            total_wait += w;
            let start = NodeId::start(m.rank, m.seq);
            if let (Some(s), Some(t)) = (sweep.time(start), sweep.time(*m)) {
                window_total += t - s;
            }
            saved += w.min(hub_t.saturating_sub(second));
            if let Some(label) = graph.node_label(m) {
                op = label.kind;
            }
        }
        let dominated = entries.len() >= 2 && saved * 2 >= total_wait && total_wait > 0;
        let class = if dominated {
            WaitClass::WaitAtCollective
        } else {
            WaitClass::ImbalanceAtCollective
        };
        for m in members {
            coll_class.insert(*m, (class, cause_node.rank));
        }
        collectives.push(CollectiveWait {
            op,
            cause: (cause_node.rank, cause_node.seq),
            members: members.len(),
            total_wait,
            window_total,
            saved,
            dominated,
        });
    }

    // ---- classification of p2p waits --------------------------------------
    // The binding arm's class names the culprit.
    let classify = |end: NodeId| -> Option<(WaitClass, Option<u32>, bool)> {
        let arm = sweep.binding_arm(end)?;
        let e = graph.edge(arm);
        let on_critical = sweep.slack(arm) == 0;
        if e.src.hub {
            let (class, cause) = coll_class.get(&end).copied()?;
            return Some((class, Some(cause), on_critical));
        }
        let class = match e.class {
            DeltaClass::Lambda => WaitClass::LateReceiver,
            _ => WaitClass::LateSender,
        };
        Some((class, Some(e.src.rank), on_critical))
    };

    // ---- exact per-rank decomposition (telescoping walk) ------------------
    // Each rank's [0, makespan] tiles into: gaps between events (compute),
    // event windows (split wait / residue), and the exit tail (ExitSkew).
    // The makespan here is the trace-walk one so the identity holds even
    // on traces whose clocks violate causality.
    let ranks = trace.num_ranks();
    let mut spans: Vec<Cycles> = Vec::with_capacity(ranks);
    for r in 0..ranks {
        let evs = trace.rank(r);
        let span = match (evs.first(), evs.last()) {
            (Some(first), Some(last)) => last.t_end - first.t_start,
            _ => 0,
        };
        spans.push(span);
    }
    let makespan = spans.iter().copied().max().unwrap_or(0);

    let mut per_rank = Vec::with_capacity(ranks);
    let mut waits = Vec::new();
    let mut compute_total = 0;
    let mut transfer_total = 0;
    let mut wait_total = [0; 5];
    let mut by_tag: HashMap<Tag, (usize, Cycles)> = HashMap::new();
    let mut by_op: HashMap<&'static str, (usize, Cycles)> = HashMap::new();
    for (r, &span) in spans.iter().enumerate() {
        let evs = trace.rank(r);
        let mut row = RankBreakdown {
            rank: r as u32,
            compute: 0,
            transfer: 0,
            wait: [0; 5],
        };
        let mut prev_end: Option<Cycles> = None;
        for ev in evs {
            if let Some(p) = prev_end {
                row.compute += ev.t_start.saturating_sub(p);
            }
            prev_end = Some(ev.t_end);
            let dur = ev.duration();
            let end = NodeId::end(ev.rank, ev.seq);
            let w = sweep.wait(end);
            let classified = if w > 0 { classify(end) } else { None };
            match classified {
                Some((class, cause, on_critical)) => {
                    row.wait[class.idx()] += w;
                    let residue = dur - w;
                    if ev.kind.is_communication() {
                        row.transfer += residue;
                    } else {
                        row.compute += residue;
                    }
                    let tag = tag_of(&ev.kind);
                    if let Some(t) = tag {
                        let slot = by_tag.entry(t).or_insert((0, 0));
                        slot.0 += 1;
                        slot.1 += w;
                    }
                    let slot = by_op.entry(ev.kind.name()).or_insert((0, 0));
                    slot.0 += 1;
                    slot.1 += w;
                    waits.push(WaitInterval {
                        rank: ev.rank,
                        seq: ev.seq,
                        op: ev.kind.name(),
                        tag,
                        class,
                        cause,
                        wait: w,
                        window: dur,
                        on_critical,
                    });
                }
                None => {
                    if ev.kind.is_communication() {
                        row.transfer += dur;
                    } else {
                        row.compute += dur;
                    }
                }
            }
        }
        // Exit tail: from the rank's last event to the makespan. An empty
        // rank idles the whole run.
        row.wait[WaitClass::ExitSkew.idx()] += makespan - span;
        compute_total += row.compute;
        transfer_total += row.transfer;
        for (acc, w) in wait_total.iter_mut().zip(row.wait.iter()) {
            *acc += w;
        }
        per_rank.push(row);
    }

    let mut by_tag: Vec<KeyedWait> = by_tag
        .into_iter()
        .map(|(tag, (count, wait))| KeyedWait {
            key: tag.to_string(),
            count,
            wait,
        })
        .collect();
    by_tag.sort_by(|a, b| b.wait.cmp(&a.wait).then_with(|| a.key.cmp(&b.key)));
    let mut by_op: Vec<KeyedWait> = by_op
        .into_iter()
        .map(|(op, (count, wait))| KeyedWait {
            key: op.to_string(),
            count,
            wait,
        })
        .collect();
    by_op.sort_by(|a, b| b.wait.cmp(&a.wait).then_with(|| a.key.cmp(&b.key)));

    let chains = crate::slack::rank_chains(graph, &sweep);

    PerfReport {
        ranks,
        makespan,
        compute: compute_total,
        transfer: transfer_total,
        wait: wait_total,
        per_rank,
        waits,
        collectives,
        by_tag,
        by_op,
        chains,
        zero_slack_edges: sweep.zero_slack_edges(),
        edge_count: graph.edge_count(),
        causality_clamps: sweep.causality_clamps,
        retime_mismatches: sweep.retime_mismatches,
    }
}

/// Threshold-gated wait-state rules: `MPG-LATE-SENDER` for critical-path
/// late-sender waits, `MPG-COLLECTIVE-IMBALANCE` for wait-dominated
/// collectives. Both are advisory ([`Severity::Info`](mpg_trace::Severity))
/// — a slow run is not a defective run — but participate in the `--deny`
/// escalation contract like every other rule.
pub fn lint_waitstates(report: &PerfReport, thresholds: &PerfThresholds) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for w in &report.waits {
        if w.class != WaitClass::LateSender || !w.on_critical {
            continue;
        }
        if w.wait < thresholds.min_cycles
            || (w.wait as f64) < thresholds.wait_frac * w.window as f64
        {
            continue;
        }
        let cause = w.cause.unwrap_or(w.rank);
        let mut d = Diagnostic::new(
            Rule::LateSender,
            format!(
                "{} blocked {} of {} cycles on late sender rank {} (zero-slack arm: shortening this wait shortens the run)",
                w.op, w.wait, w.window, cause
            ),
        )
        .at(w.rank, w.seq);
        d = d.involving([cause]);
        diags.push(d);
    }
    for c in &report.collectives {
        if c.total_wait < thresholds.min_cycles
            || (c.total_wait as f64) < thresholds.wait_frac * c.window_total as f64
        {
            continue;
        }
        let msg = if c.dominated {
            format!(
                "{} over {} ranks wasted {} cycles waiting; rank {}'s late entry explains {} of them",
                c.op, c.members, c.total_wait, c.cause.0, c.saved
            )
        } else {
            format!(
                "{} over {} ranks wasted {} cycles to diffuse entry imbalance (no single rank dominates)",
                c.op, c.members, c.total_wait
            )
        };
        diags.push(Diagnostic::new(Rule::CollectiveImbalance, msg).at(c.cause.0, c.cause.1));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_core::{PerturbationModel, ReplayConfig, Replayer};
    use mpg_noise::PlatformSignature;
    use mpg_sim::Simulation;

    fn record(p: u32, f: impl Fn(&mut mpg_sim::RankCtx) + Sync) -> (MemTrace, EventGraph) {
        let trace = Simulation::new(p, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(f)
            .unwrap()
            .trace;
        let cfg = ReplayConfig::new(PerturbationModel::quiet("q"))
            .seed(0)
            .record_graph(true);
        let graph = Replayer::new(cfg).run(&trace).unwrap().graph.unwrap();
        (trace, graph)
    }

    fn assert_identity(r: &PerfReport) {
        assert!(
            r.identity_holds(),
            "busy {} + waits {} != makespan {} x ranks {}",
            r.busy(),
            r.wait_total(),
            r.makespan,
            r.ranks
        );
    }

    #[test]
    fn late_sender_classified_with_cause() {
        let (trace, graph) = record(2, |ctx| match ctx.rank() {
            0 => {
                ctx.compute(100_000);
                ctx.send(1, 7, 64);
            }
            _ => {
                ctx.recv(0, 7);
            }
        });
        let report = analyze_graph(&trace, &graph);
        assert_identity(&report);
        let ls = report.wait[WaitClass::LateSender.idx()];
        assert!(ls > 50_000, "late-sender wait {ls}");
        let w = report
            .waits
            .iter()
            .find(|w| w.class == WaitClass::LateSender)
            .expect("late-sender interval");
        assert_eq!(w.rank, 1);
        assert_eq!(w.cause, Some(0));
        assert_eq!(w.tag, Some(7));
        assert!(w.on_critical);
        // The tag aggregation sees it.
        assert_eq!(report.by_tag[0].key, "7");
        assert!(report.by_tag[0].wait >= w.wait);
        // And the rule fires under default thresholds.
        let diags = lint_waitstates(&report, &PerfThresholds::default());
        assert!(
            diags.iter().any(|d| d.rule == Rule::LateSender),
            "{diags:?}"
        );
    }

    #[test]
    fn late_receiver_classified_on_sync_send() {
        let (trace, graph) = record(2, |ctx| match ctx.rank() {
            0 => {
                ctx.ssend(1, 0, 1 << 16);
            }
            _ => {
                ctx.compute(100_000);
                ctx.recv(0, 0);
            }
        });
        let report = analyze_graph(&trace, &graph);
        assert_identity(&report);
        let lr = report.wait[WaitClass::LateReceiver.idx()];
        assert!(lr > 50_000, "late-receiver wait {lr}: {:?}", report.waits);
        let w = report
            .waits
            .iter()
            .find(|w| w.class == WaitClass::LateReceiver)
            .expect("late-receiver interval");
        assert_eq!(w.rank, 0);
        assert_eq!(w.cause, Some(1));
    }

    #[test]
    fn dominated_collective_names_root_cause() {
        let (trace, graph) = record(4, |ctx| {
            if ctx.rank() == 3 {
                ctx.compute(200_000);
            } else {
                ctx.compute(1_000);
            }
            ctx.barrier();
        });
        let report = analyze_graph(&trace, &graph);
        assert_identity(&report);
        assert!(report.wait[WaitClass::WaitAtCollective.idx()] > 100_000);
        assert_eq!(report.wait[WaitClass::ImbalanceAtCollective.idx()], 0);
        let c = report.collectives.iter().find(|c| c.dominated).unwrap();
        assert_eq!(c.cause.0, 3);
        assert_eq!(c.members, 4);
        let diags = lint_waitstates(&report, &PerfThresholds::default());
        assert!(
            diags.iter().any(|d| d.rule == Rule::CollectiveImbalance),
            "{diags:?}"
        );
    }

    #[test]
    fn spread_collective_is_imbalance() {
        let (trace, graph) = record(4, |ctx| {
            ctx.compute([1_000, 100_000, 199_000, 200_000][ctx.rank() as usize]);
            ctx.barrier();
        });
        let report = analyze_graph(&trace, &graph);
        assert_identity(&report);
        // The two latest entrants nearly tie: removing the latest rank's
        // lateness saves only the 1k gap to the second-latest, far under
        // half of the total wait — diffuse imbalance.
        assert!(report.wait[WaitClass::ImbalanceAtCollective.idx()] > 0);
        let c = &report.collectives[0];
        assert!(!c.dominated, "{c:?}");
    }

    #[test]
    fn exit_skew_accounts_for_early_finishers() {
        let (trace, graph) = record(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.compute(100_000);
            }
        });
        let report = analyze_graph(&trace, &graph);
        assert_identity(&report);
        // Rank 1 finishes ~100k cycles early and idles to the makespan.
        assert!(report.wait[WaitClass::ExitSkew.idx()] > 50_000);
        assert!(report.per_rank[1].wait[WaitClass::ExitSkew.idx()] > 50_000);
        assert_eq!(report.per_rank[0].wait[WaitClass::ExitSkew.idx()], 0);
    }

    #[test]
    fn report_json_is_wellformed() {
        let (trace, graph) = record(2, |ctx| match ctx.rank() {
            0 => {
                ctx.compute(100_000);
                ctx.send(1, 7, 64);
            }
            _ => {
                ctx.recv(0, 7);
            }
        });
        let report = analyze_graph(&trace, &graph);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"identity_holds\":true"), "{json}");
        assert!(json.contains("\"late_sender\":"), "{json}");
        assert!(json.contains("\"chains\":["), "{json}");
        // Balanced braces/brackets (no serializer to lean on).
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }
}
