//! Pass 7: HB-powered synchronization findings.
//!
//! **`MPG-REDUNDANT-SYNC`** — a barrier is *removable* when deleting it
//! cannot enlarge the set of feasible matchings. A barrier constrains
//! matching in exactly one way: a receive that completes before the
//! barrier can never match a send issued after it. The pass collects every
//! envelope-compatible `(receive, send)` pair whose match is forbidden by
//! the full graph's completion order, then rebuilds the happens-before
//! index with the barrier's hub bypassed ([`HbIndex::build_bypassing`]);
//! if every forbidden pair stays forbidden, the barrier orders no
//! communication and is flagged. Consecutive barriers are each tested with
//! the other still present, so two back-to-back barriers are *individually*
//! removable even though removing both could differ — the diagnostic says
//! as much. Data-carrying collectives (bcast, reduce, …) are never
//! flagged: they move payload, so removal is not a pure-synchronization
//! question.
//!
//! **`MPG-BUFFER-WATERMARK`** — eager sends (standard/buffered/ready and
//! every isend) complete without a rendezvous; until the matching receive
//! completes, the payload occupies the receiver's eager buffer. For each
//! receiver the pass computes, at every receive-completion point, how many
//! eager messages could simultaneously be resident: message `j` counts
//! when its consuming receive has not yet completed and the happens-before
//! relation does **not** force its send to issue only after this point
//! (`!completes_before`). The per-rank high-water mark above the advisory
//! threshold means senders can outrun the receiver's consumption.

use crate::progress::{Matching, SendRec};
use mpg_core::{EventGraph, HbIndex, NodeId};
use mpg_trace::{Diagnostic, EventKind, MemTrace, Rank, Rule, Seq, Tag, ANY_SOURCE, ANY_TAG};
use std::collections::{BTreeMap, HashMap};

/// Tunables for the synchronization pass.
#[derive(Debug, Clone, Copy)]
pub struct SyncOptions {
    /// `MPG-BUFFER-WATERMARK` fires when a receiver's in-flight eager-send
    /// high-water mark strictly exceeds this.
    pub watermark: usize,
}

impl Default for SyncOptions {
    fn default() -> Self {
        SyncOptions { watermark: 8 }
    }
}

/// A collective hub and its per-rank entry events, in resolution order.
struct Hub {
    node: NodeId,
    entries: Vec<(Rank, Seq)>,
}

fn collect_hubs(graph: &EventGraph) -> Vec<Hub> {
    let mut order: Vec<NodeId> = Vec::new();
    let mut entries: HashMap<NodeId, Vec<(Rank, Seq)>> = HashMap::new();
    for e in graph.edges() {
        if e.dst.hub {
            entries.entry(e.dst).or_insert_with(|| {
                order.push(e.dst);
                Vec::new()
            });
            entries
                .get_mut(&e.dst)
                .expect("just inserted")
                .push((e.src.rank, e.src.seq));
        }
    }
    order
        .into_iter()
        .map(|node| {
            let mut ent = entries.remove(&node).unwrap_or_default();
            ent.sort_unstable();
            Hub { node, entries: ent }
        })
        .collect()
}

/// The matches the recorded graph forbids: envelope-compatible
/// `(receive-completion event, send event)` pairs where the receive must
/// complete before the send can issue.
fn forbidden_matches(
    trace: &MemTrace,
    matching: &Matching,
    hb: &HbIndex,
) -> Vec<((Rank, Seq), (Rank, Seq))> {
    // Posted patterns of every matched receive, keyed by the receive event.
    let mut out = Vec::new();
    for pair in &matching.pairs {
        let (rrank, rseq) = pair.recv;
        let Some(ev) = trace.rank(rrank as usize).get(rseq as usize) else {
            continue;
        };
        let (src_pat, tag_pat): (Rank, Tag) = match ev.kind {
            EventKind::Recv {
                peer,
                tag,
                posted_any,
                ..
            }
            | EventKind::Irecv {
                peer,
                tag,
                posted_any,
                ..
            } => (if posted_any { ANY_SOURCE } else { peer }, tag),
            _ => continue,
        };
        let completion = (rrank, pair.completion);
        for s in &matching.sends {
            if s.dst != rrank
                || (src_pat != ANY_SOURCE && s.src != src_pat)
                || (tag_pat != ANY_TAG && s.tag != tag_pat)
            {
                continue;
            }
            if hb.completes_before(completion, (s.src, s.seq)) {
                out.push((completion, (s.src, s.seq)));
            }
        }
    }
    out
}

/// `MPG-REDUNDANT-SYNC` over every barrier epoch in the graph.
fn redundant_barriers(
    trace: &MemTrace,
    graph: &EventGraph,
    hb: &HbIndex,
    matching: &Matching,
) -> Vec<Diagnostic> {
    let hubs = collect_hubs(graph);
    let barriers: Vec<&Hub> = hubs
        .iter()
        .filter(|h| {
            !h.entries.is_empty()
                && h.entries.iter().all(|&(r, s)| {
                    matches!(
                        trace.rank(r as usize).get(s as usize).map(|e| &e.kind),
                        Some(EventKind::Barrier { .. })
                    )
                })
        })
        .collect();
    if barriers.is_empty() {
        return Vec::new();
    }
    let forbidden = forbidden_matches(trace, matching, hb);
    let mut diags = Vec::new();
    for hub in barriers {
        let without = HbIndex::build_bypassing(graph, hub.node);
        let preserved = forbidden
            .iter()
            .all(|&(recv, send)| without.completes_before(recv, send));
        if preserved {
            let (rank, seq) = (hub.node.rank, hub.node.seq);
            diags.push(
                Diagnostic::new(
                    Rule::RedundantSync,
                    format!(
                        "barrier (seq {seq} on rank {rank}) orders no communication: every \
                         send/receive match it forbids is already forbidden by the rest of \
                         the graph, so this barrier alone can be removed without enabling \
                         any new schedule"
                    ),
                )
                .at(rank, seq)
                .involving(hub.entries.iter().map(|&(r, _)| r)),
            );
        }
    }
    diags
}

/// `MPG-BUFFER-WATERMARK` per receiving rank.
fn buffer_watermarks(hb: &HbIndex, matching: &Matching, opts: &SyncOptions) -> Vec<Diagnostic> {
    let send_info: HashMap<(Rank, Seq), &SendRec> =
        matching.sends.iter().map(|s| ((s.src, s.seq), s)).collect();
    // Eager matched traffic per receiver: (completion seq, send event).
    type EagerMsg = (Seq, (Rank, Seq));
    let mut per_dst: BTreeMap<Rank, Vec<EagerMsg>> = BTreeMap::new();
    for pair in &matching.pairs {
        if send_info
            .get(&pair.send)
            .is_some_and(|s| s.eager && s.src != pair.recv.0)
        {
            per_dst
                .entry(pair.recv.0)
                .or_default()
                .push((pair.completion, pair.send));
        }
    }
    let mut diags = Vec::new();
    for (dst, msgs) in per_dst {
        let mut peak = 0usize;
        let mut peak_at: Seq = 0;
        let mut peak_srcs: Vec<Rank> = Vec::new();
        for &(c_i, _) in &msgs {
            let resident: Vec<(Rank, Seq)> = msgs
                .iter()
                .filter(|&&(c_j, send_j)| c_j >= c_i && !hb.completes_before((dst, c_i), send_j))
                .map(|&(_, send_j)| send_j)
                .collect();
            if resident.len() > peak {
                peak = resident.len();
                peak_at = c_i;
                peak_srcs = resident.iter().map(|&(r, _)| r).collect();
            }
        }
        if peak > opts.watermark {
            diags.push(
                Diagnostic::new(
                    Rule::BufferWatermark,
                    format!(
                        "rank {dst} may hold up to {peak} in-flight eager sends at once \
                         (high-water at receive completing seq {peak_at}, advisory \
                         threshold {}); senders outrun the receiver's consumption",
                        opts.watermark
                    ),
                )
                .at(dst, peak_at)
                .involving(peak_srcs),
            );
        }
    }
    diags
}

/// Pass 7 entry point.
pub fn lint_sync(
    trace: &MemTrace,
    graph: &EventGraph,
    hb: &HbIndex,
    matching: &Matching,
    opts: &SyncOptions,
) -> Vec<Diagnostic> {
    let mut diags = redundant_barriers(trace, graph, hb, matching);
    diags.extend(buffer_watermarks(hb, matching, opts));
    diags
}
