//! Pass 3: causality verification of a recorded [`EventGraph`].
//!
//! The message-passing graph of a run that actually happened is a DAG whose
//! local edges follow each rank's program order (§2's subevent structure,
//! §4.1's completed-run assumption). A graph stitched from corrupt or
//! adversarial traces can violate either property; this pass reports
//! `MPG-CYCLE` for causal cycles and `MPG-CAUSALITY` for same-rank edges
//! that run backwards in per-rank program order. Same-rank *forward*
//! message edges are legitimate — the replayer's acknowledgement arm ties
//! an isend to its own wait, and self-sends tie a send to its receive.

use std::collections::BTreeSet;

use mpg_core::graph::{EventGraph, NodeId, Point};
use mpg_trace::{Diagnostic, Rank, Rule};

fn point_order(p: Point) -> u8 {
    match p {
        Point::Start => 0,
        Point::End => 1,
    }
}

/// Lints a recorded event graph for causality defects.
pub fn lint_graph(graph: &EventGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    if let Err(residue) = graph.verify_acyclic() {
        let ranks: BTreeSet<Rank> = residue.iter().map(|n| n.rank).collect();
        let span = residue.first().copied();
        let mut d = Diagnostic::new(
            Rule::Cycle,
            format!(
                "event graph is not a DAG: {} subevent(s) lie on or downstream of a causal cycle",
                residue.len()
            ),
        )
        .involving(ranks);
        if let Some(n) = span {
            d = d.at(n.rank, n.seq);
        }
        diags.push(d);
    }

    for e in graph.edges() {
        // Collective hub nodes sit on the lowest participating rank but are
        // logically global; their edges carry no per-rank order.
        if e.src.hub || e.dst.hub {
            continue;
        }
        if e.src.rank != e.dst.rank {
            continue;
        }
        if key(&e.src) > key(&e.dst) {
            diags.push(
                Diagnostic::new(
                    Rule::Causality,
                    format!(
                        "{} edge runs backwards in rank {}'s program order \
                         (seq {} {:?} -> seq {} {:?})",
                        if e.is_message { "message" } else { "local" },
                        e.src.rank,
                        e.src.seq,
                        e.src.point,
                        e.dst.seq,
                        e.dst.point
                    ),
                )
                .at(e.dst.rank, e.dst.seq),
            );
        }
    }

    diags
}

fn key(n: &NodeId) -> (u64, u8) {
    (n.seq, point_order(n.point))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_core::graph::Edge;
    use mpg_core::perturb::DeltaClass;

    fn edge(src: NodeId, dst: NodeId, is_message: bool) -> Edge {
        Edge {
            src,
            dst,
            base: 0,
            class: DeltaClass::None,
            sampled: 0,
            is_message,
        }
    }

    #[test]
    fn clean_graph_passes() {
        let mut g = EventGraph::new(2);
        g.add_edge(edge(NodeId::start(0, 0), NodeId::end(0, 0), false));
        g.add_edge(edge(NodeId::end(0, 0), NodeId::start(0, 1), false));
        g.add_edge(edge(NodeId::start(0, 1), NodeId::end(1, 1), true));
        assert!(lint_graph(&g).is_empty());
    }

    #[test]
    fn cycle_reports_mpg_cycle() {
        let mut g = EventGraph::new(2);
        g.add_edge(edge(NodeId::end(0, 1), NodeId::end(1, 1), true));
        g.add_edge(edge(NodeId::end(1, 1), NodeId::end(0, 1), true));
        let diags = lint_graph(&g);
        assert!(diags.iter().any(|d| d.rule == Rule::Cycle), "{diags:?}");
    }

    #[test]
    fn backward_local_edge_reports_causality() {
        let mut g = EventGraph::new(1);
        g.add_edge(edge(NodeId::end(0, 5), NodeId::start(0, 2), false));
        let diags = lint_graph(&g);
        assert!(diags.iter().any(|d| d.rule == Rule::Causality), "{diags:?}");
    }

    #[test]
    fn backward_same_rank_message_edge_reports_causality() {
        let mut g = EventGraph::new(1);
        g.add_edge(edge(NodeId::end(0, 5), NodeId::end(0, 2), true));
        let diags = lint_graph(&g);
        assert_eq!(
            diags.iter().filter(|d| d.rule == Rule::Causality).count(),
            1
        );
    }

    #[test]
    fn forward_same_rank_message_edge_is_legitimate() {
        // The replayer's acknowledgement arm ties an isend to its own wait
        // with a message-class edge; forward in program order, not a defect.
        let mut g = EventGraph::new(1);
        g.add_edge(edge(NodeId::end(0, 3), NodeId::end(0, 5), true));
        assert!(lint_graph(&g).is_empty());
    }

    #[test]
    fn hub_edges_are_exempt() {
        let mut g = EventGraph::new(2);
        // Hub fan-in/fan-out can touch the hub's own rank "backwards".
        g.add_edge(edge(NodeId::hub(0, 3), NodeId::end(0, 3), false));
        assert!(lint_graph(&g).is_empty());
    }
}
