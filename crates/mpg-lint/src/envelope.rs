//! Lightweight send/receive envelopes for the lint progress simulation.
//!
//! The simulator's own envelope types carry timing and completion state the
//! lint passes do not need; these carry exactly what the matching rules and
//! the diagnostics require: the channel, the pattern, the payload size, and
//! the `(rank, seq)` provenance used to point diagnostics at trace lines.

use mpg_sim::{RecvEnvelope, SendEnvelope};
use mpg_trace::{Rank, ReqId, Seq, Tag};

/// An offered (possibly unmatched) send, as the lint matcher sees it.
#[derive(Debug, Clone)]
pub(crate) struct LintSend {
    /// Sender rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Payload size.
    pub bytes: u64,
    /// Sequence number of the send event on `src`.
    pub seq: Seq,
    /// Global issue stamp (the matcher's wildcard arrival order).
    pub issue: u64,
}

impl SendEnvelope for LintSend {
    fn src(&self) -> Rank {
        self.src
    }

    fn dst(&self) -> Rank {
        self.dst
    }

    fn tag(&self) -> Tag {
        self.tag
    }

    fn arrival(&self) -> u64 {
        self.issue
    }
}

/// A posted (possibly unmatched) receive, as the lint matcher sees it.
///
/// Traces record the *matched* source, so the pattern posted here is the
/// resolution the original run chose; the original wildcard survives only
/// in `posted_any`, which drives the `MPG-WILD-RACE` feasibility probe.
#[derive(Debug, Clone)]
pub(crate) struct LintRecv {
    /// Receiver rank.
    pub dst: Rank,
    /// Source pattern (the recorded matched source, or `ANY_SOURCE` for
    /// feasibility probes).
    pub src_pattern: Rank,
    /// Tag pattern.
    pub tag_pattern: Tag,
    /// Expected payload size.
    pub bytes: u64,
    /// Sequence number of the receive event on `dst`.
    pub seq: Seq,
    /// True when the original receive was posted with `MPI_ANY_SOURCE`.
    pub posted_any: bool,
    /// The nonblocking request this receive completes, if any.
    pub req: Option<ReqId>,
}

impl RecvEnvelope for LintRecv {
    fn dst(&self) -> Rank {
        self.dst
    }

    fn src_pattern(&self) -> Rank {
        self.src_pattern
    }

    fn tag_pattern(&self) -> Tag {
        self.tag_pattern
    }
}
