//! Pass 8: bounded schedule-space exploration (predictive analysis).
//!
//! The recorded trace is *one* point in the space of schedules the
//! program admits: every wildcard receive could have resolved to any
//! envelope-compatible, happens-before-concurrent sender. Pass 4 proves
//! single swaps exist and stops; this pass walks the space those swaps
//! open up, DPOR-style:
//!
//! * **Seeding.** The frontier starts from the pass-4 candidate
//!   enumeration over the recorded matching — including alternates whose
//!   recorded consumer is a *specific* receive, which pass 4 must skip
//!   (they are not single-swap witnesses) but which are exactly where
//!   alternate-schedule deadlocks hide: force the wildcard anyway and
//!   the pinned receive starves.
//! * **Exploration.** Each frontier entry is a [`MatchPlan`]; it is
//!   re-replayed through the shared [`forced_replay`] path and
//!   classified. A completed alternate is branched further: new
//!   candidates are enumerated *on the alternate matching* and appended,
//!   up to the depth bound.
//! * **Pruning.** A sleep set over canonical plan keys kills every
//!   rediscovery of an already-scheduled resolution set (two discovery
//!   orders of the same swaps are the same schedule). A persistent-set
//!   restriction only branches on receives at or after the deepest
//!   already-forced receive in the current match order — swaps at
//!   earlier receives commute with the suffix and are covered by the
//!   sibling branch seeded at shallower depth. Pruning can only cost
//!   *coverage*, never soundness: every emitted finding is validated by
//!   its own concrete forced replay.
//! * **Honest coverage.** [`ExploreStats`] counts schedules replayed,
//!   plans pruned, and — when the budget runs out or a cancel token
//!   fires — exactly how many frontier entries went unexplored. The
//!   report renders this always; truncation is never silent.
//!
//! Two rules come out: `MPG-MAY-DEADLOCK` when a forced replay reaches a
//! wait-for cycle (the finding names the full forced match sequence, so
//! anyone can re-replay it), and `MPG-SCHEDULE-DIVERGENCE` when a
//! completed alternate shifts the estimated makespan past a threshold —
//! quantifying how schedule-sensitive the paper's replay predictions
//! are. Deeper-than-seed branching reuses the *recorded* happens-before
//! index as a concurrency over-approximation; that is fine for the same
//! reason pruning is: candidates are hypotheses, replays are proof.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::hb_races::wildcard_candidates;
use crate::progress::{forced_replay, Matching};
use crate::LintContext;
use mpg_core::forced::{ForcedOutcome, MatchPlan};
use mpg_core::{CancelReason, CancelToken};
use mpg_trace::{sort_diagnostics, Diagnostic, EventKind, MemTrace, Rank, Rule, Seq, Severity};

/// Tunables of the schedule-space explorer.
#[derive(Debug, Clone, Default)]
pub struct ExploreOptions {
    /// Maximum number of forced replays. `0` disables the pass entirely —
    /// the pass-manager default, so plain `lint_full` output is
    /// bit-identical to pre-explorer builds.
    pub budget: u64,
    /// Maximum forced-match decisions per plan (exploration depth).
    pub depth: usize,
    /// `MPG-SCHEDULE-DIVERGENCE` fires when an alternate schedule shifts
    /// the estimated makespan by more than this percentage.
    pub divergence_pct: f64,
    /// Deterministic rotation of the seed frontier: different seeds visit
    /// the space in a different order under small budgets.
    pub seed: u64,
    /// Optional cooperative-cancellation token, polled between replays.
    /// Never part of the configuration fingerprint.
    pub cancel: Option<CancelToken>,
}

impl ExploreOptions {
    /// The CLI/service defaults (`mpgtool explore` without flags):
    /// budget 64, depth 3, 10% divergence threshold, seed 0.
    pub fn cli_default() -> Self {
        ExploreOptions {
            budget: 64,
            depth: 3,
            divergence_pct: 10.0,
            seed: 0,
            ..ExploreOptions::default()
        }
    }

    /// Set the budget (builder).
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Configuration fingerprint for frontier-checkpoint cache keys:
    /// exactly the knobs that change the explored set. The cancel token
    /// is deliberately excluded.
    pub fn fingerprint(&self) -> String {
        format!(
            "budget={};depth={};div={};seed={}",
            self.budget, self.depth, self.divergence_pct, self.seed
        )
    }
}

/// Coverage accounting of one exploration run. Rendered in every report
/// so truncation is never silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Forced replays actually executed.
    pub explored: u64,
    /// Of those, plans whose forcing wedged without a wait-for cycle
    /// (infeasible forcings; no finding derived).
    pub infeasible: u64,
    /// Frontier extensions dropped by sleep-set or persistent-set
    /// pruning.
    pub pruned: u64,
    /// Frontier entries left unexplored when the budget ran out or the
    /// run was cancelled (`0` means the frontier was exhausted).
    pub frontier_unexplored: u64,
    /// Deepest plan explored (forced-match decisions).
    pub max_depth: u64,
    /// True when the loop stopped on the budget, not on an empty
    /// frontier.
    pub budget_exhausted: bool,
    /// Why the run was cut short, when a cancel token fired mid-walk.
    pub cancelled: Option<CancelReason>,
}

impl ExploreStats {
    /// One-line coverage clause for report text.
    pub fn coverage(&self) -> String {
        if let Some(reason) = self.cancelled {
            format!(
                "coverage incomplete: cancelled ({reason}), {} frontier schedule(s) unexplored",
                self.frontier_unexplored
            )
        } else if self.budget_exhausted {
            format!(
                "coverage incomplete: budget exhausted, {} frontier schedule(s) unexplored",
                self.frontier_unexplored
            )
        } else {
            "coverage complete: frontier exhausted".to_string()
        }
    }

    /// Hand-rolled JSON object (matches the workspace's dependency-free
    /// style).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"explored\":{},\"infeasible\":{},\"pruned\":{},\"frontier_unexplored\":{},\
             \"max_depth\":{},\"budget_exhausted\":{},\"cancelled\":{}}}",
            self.explored,
            self.infeasible,
            self.pruned,
            self.frontier_unexplored,
            self.max_depth,
            self.budget_exhausted,
            match self.cancelled {
                Some(r) => format!("\"{r}\""),
                None => "null".to_string(),
            }
        )
    }
}

/// What a finding claims about its plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ExploreFindingKind {
    /// The forced replay reached a wait-for cycle among these ranks.
    MayDeadlock {
        /// Ranks on the wait-for cycle.
        cycle: Vec<Rank>,
    },
    /// The forced replay completed with a shifted makespan estimate.
    Divergence {
        /// Estimated makespan of the recorded matching (cycles).
        base: u64,
        /// Estimated makespan of the alternate matching (cycles).
        alt: u64,
        /// Relative shift, percent.
        pct: f64,
    },
}

/// One witness-validated explorer finding: the forced-match plan plus
/// what re-replaying it does. Feeding `plan` back through
/// [`forced_replay`] reproduces the claim independently.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreFinding {
    /// The forced-match sequence (re-replayable).
    pub plan: MatchPlan,
    /// The seed wildcard receive the plan pivots on (diagnostic span).
    pub recv: (Rank, Seq),
    /// The validated claim.
    pub kind: ExploreFindingKind,
}

impl ExploreFinding {
    /// Render as a diagnostic.
    fn to_diag(&self) -> Diagnostic {
        match &self.kind {
            ExploreFindingKind::MayDeadlock { cycle } => Diagnostic::new(
                Rule::MayDeadlock,
                format!(
                    "recorded run completed, but the alternate wildcard matching \
                     [{}] replays to a wait-for cycle among ranks {cycle:?}; re-replay \
                     by forcing each listed receive onto its listed source",
                    self.plan
                ),
            )
            .at(self.recv.0, self.recv.1)
            .involving(cycle.iter().copied()),
            ExploreFindingKind::Divergence { base, alt, pct } => Diagnostic::new(
                Rule::ScheduleDivergence,
                format!(
                    "alternate wildcard matching [{}] completes but shifts the estimated \
                     makespan by {pct:.1}% ({base} -> {alt} cycles)",
                    self.plan
                ),
            )
            .at(self.recv.0, self.recv.1)
            .involving(self.plan.forced().iter().map(|f| f.source)),
        }
    }
}

/// Findings + coverage of one exploration over a built [`LintContext`].
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Witness-validated findings, in discovery order.
    pub findings: Vec<ExploreFinding>,
    /// Coverage accounting.
    pub stats: ExploreStats,
}

impl ExploreReport {
    /// The findings rendered as diagnostics.
    pub fn diags(&self) -> Vec<Diagnostic> {
        self.findings.iter().map(ExploreFinding::to_diag).collect()
    }
}

/// The pass-8 entry point over a shared context. Requires a completed
/// recorded matching and a happens-before index; degrades to an empty
/// report otherwise (the progress/causality passes already own those
/// failures). A zero budget does no work at all.
pub fn explore(ctx: &LintContext<'_>, opts: &ExploreOptions) -> ExploreReport {
    let mut report = ExploreReport::default();
    if opts.budget == 0 || !ctx.progress.matching.completed {
        return report;
    }
    let Some(hb) = ctx.hb.as_ref() else {
        return report;
    };
    let trace = ctx.trace;
    let base = matching_makespan(trace, &ctx.progress.matching);
    let stats = &mut report.stats;

    // Sleep set: canonical keys of every plan ever scheduled.
    let mut sleep: HashSet<String> = HashSet::new();
    let mut frontier: VecDeque<(MatchPlan, usize)> = VecDeque::new();

    // Seed from the recorded matching, pinned-consumer alternates
    // included. The seed rotation makes small budgets sample different
    // neighborhoods deterministically.
    let mut seeds = extensions(trace, &ctx.progress.matching, hb, &MatchPlan::new());
    if !seeds.is_empty() {
        let rot = (opts.seed as usize) % seeds.len();
        seeds.rotate_left(rot);
    }
    for plan in seeds {
        if sleep.insert(plan.canonical_key()) {
            frontier.push_back((plan, 1));
        } else {
            stats.pruned += 1;
        }
    }

    while let Some((plan, depth)) = frontier.pop_front() {
        if let Some(token) = &opts.cancel {
            if let Some(reason) = token.fired() {
                stats.cancelled = Some(reason);
                stats.frontier_unexplored = frontier.len() as u64 + 1;
                break;
            }
        }
        if stats.explored >= opts.budget {
            stats.budget_exhausted = true;
            stats.frontier_unexplored = frontier.len() as u64 + 1;
            break;
        }
        stats.explored += 1;
        stats.max_depth = stats.max_depth.max(depth as u64);
        let seed_recv = plan.forced()[0].recv;
        let rep = forced_replay(trace, &plan);
        match rep.outcome {
            ForcedOutcome::Deadlocked => {
                // Tarjan already named the cycle; take the first cycle's
                // ranks as the finding's subject.
                let cycle = rep
                    .diags
                    .iter()
                    .find(|d| d.rule == Rule::Deadlock)
                    .map(|d| d.ranks.clone())
                    .unwrap_or_default();
                report.findings.push(ExploreFinding {
                    plan,
                    recv: seed_recv,
                    kind: ExploreFindingKind::MayDeadlock { cycle },
                });
            }
            ForcedOutcome::Completed => {
                if let (Some(b), Some(alt)) = (base, matching_makespan(trace, &rep.matching)) {
                    if b > 0 {
                        let pct = (alt.abs_diff(b)) as f64 * 100.0 / b as f64;
                        if pct > opts.divergence_pct {
                            report.findings.push(ExploreFinding {
                                plan: plan.clone(),
                                recv: seed_recv,
                                kind: ExploreFindingKind::Divergence { base: b, alt, pct },
                            });
                        }
                    }
                }
                if depth < opts.depth {
                    for next in extensions(trace, &rep.matching, hb, &plan) {
                        if sleep.insert(next.canonical_key()) {
                            frontier.push_back((next, depth + 1));
                        } else {
                            stats.pruned += 1;
                        }
                    }
                }
            }
            // The forcing wedged without a cycle: the forced message was
            // pinned elsewhere in a way that starves the plan without
            // mutual blocking. Not a witness of anything; counted so the
            // coverage line stays honest.
            ForcedOutcome::Stuck => stats.infeasible += 1,
        }
    }
    report
}

/// Extensions of `plan` from the candidates of `matching` (the matching
/// its forced replay established). Implements the persistent-set
/// restriction: only branch on wildcard receives whose pair position in
/// the current match order is at or after the deepest already-forced
/// receive — earlier swaps commute with this suffix and belong to the
/// sibling branch that forced them first. Conflicting forcings (a
/// receive or its displaced partner already pinned by the plan) are
/// skipped.
fn extensions(
    trace: &MemTrace,
    matching: &Matching,
    hb: &mpg_core::HbIndex,
    plan: &MatchPlan,
) -> Vec<MatchPlan> {
    let pos: HashMap<(Rank, Seq), usize> = matching
        .pairs
        .iter()
        .enumerate()
        .map(|(i, p)| (p.recv, i))
        .collect();
    let floor = plan
        .forced()
        .iter()
        .filter_map(|f| pos.get(&f.recv).copied())
        .max()
        .unwrap_or(0);
    let mut out = Vec::new();
    for (pair, candidates) in wildcard_candidates(trace, matching, hb, true) {
        if plan.forces(pair.recv) || pos.get(&pair.recv).copied().unwrap_or(0) < floor {
            continue;
        }
        for w in candidates {
            if w.displaced.is_some_and(|d| plan.forces(d)) {
                continue;
            }
            let mut next = plan.clone().force(w.recv, w.alternate.0);
            if let Some(displaced) = w.displaced {
                next = next.force(displaced, w.matched.0);
            }
            out.push(next);
        }
    }
    out
}

/// Estimated makespan of a matching: a timed lockstep pass over the
/// trace that keeps every event's *recorded duration* but re-wires the
/// cross-rank ordering to `matching`'s pairs — receive completions wait
/// for their matched send's finish time, collectives wait for the
/// latest arrival. Comparing the recorded and an alternate matching
/// through the same estimator isolates exactly the schedule's
/// contribution to the makespan. Returns `None` if the pass cannot run
/// every rank to the end (never the case for a completed matching).
pub fn matching_makespan(trace: &MemTrace, matching: &Matching) -> Option<u64> {
    let p = trace.num_ranks();
    if p == 0 {
        return Some(0);
    }
    // (recv rank, completion seq) -> sends that must finish first.
    let mut deps: HashMap<(Rank, Seq), Vec<(Rank, Seq)>> = HashMap::new();
    for pair in &matching.pairs {
        deps.entry((pair.recv.0, pair.completion))
            .or_default()
            .push(pair.send);
    }
    let mut send_end: HashMap<(Rank, Seq), u64> = HashMap::new();
    let mut clock = vec![0u64; p];
    let mut pc = vec![0usize; p];
    // Collective epochs: (count per rank, per-epoch arrivals + max entry).
    let mut coll_count = vec![0u64; p];
    let mut epochs: HashMap<u64, (usize, u64)> = HashMap::new();
    let mut arrived = vec![false; p];

    let mut progressed = true;
    while progressed {
        progressed = false;
        for r in 0..p {
            loop {
                let events = trace.rank(r);
                let Some(ev) = events.get(pc[r]) else { break };
                let dur = ev.t_end.saturating_sub(ev.t_start);
                if ev.kind.is_collective() {
                    if !arrived[r] {
                        arrived[r] = true;
                        let k = coll_count[r];
                        coll_count[r] += 1;
                        let slot = epochs.entry(k).or_insert((0, 0));
                        slot.0 += 1;
                        slot.1 = slot.1.max(clock[r]);
                    }
                    let k = coll_count[r] - 1;
                    let &(n, entry_max) = epochs.get(&k).expect("arrived epoch");
                    if n < p {
                        break;
                    }
                    clock[r] = entry_max + dur;
                    arrived[r] = false;
                } else {
                    let mut start = clock[r];
                    if let Some(sends) = deps.get(&(ev.rank, ev.seq)) {
                        let mut ready = true;
                        for s in sends {
                            match send_end.get(s) {
                                Some(&t) => start = start.max(t),
                                None => {
                                    ready = false;
                                    break;
                                }
                            }
                        }
                        if !ready {
                            break;
                        }
                    }
                    let end = start + dur;
                    if matches!(ev.kind, EventKind::Send { .. } | EventKind::Isend { .. }) {
                        send_end.insert((ev.rank, ev.seq), end);
                    }
                    clock[r] = end;
                }
                pc[r] += 1;
                progressed = true;
            }
        }
    }
    if (0..p).any(|r| pc[r] < trace.rank(r).len()) {
        return None;
    }
    Some(clock.into_iter().max().unwrap_or(0))
}

/// Full lint plus exploration: validation, the pass manager, then the
/// explorer's findings merged in, with the coverage stats alongside.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Merged, sorted diagnostics (full lint + explore findings).
    pub diags: Vec<Diagnostic>,
    /// The explorer's structured findings (re-replayable plans).
    pub findings: Vec<ExploreFinding>,
    /// Coverage accounting.
    pub stats: ExploreStats,
    /// Why the run was cut short, when it was (context build or
    /// exploration).
    pub cancelled: Option<CancelReason>,
}

/// Runs the full lint with the explorer enabled at `opts`. With
/// `opts.budget == 0` the diagnostics are exactly [`crate::lint_full`]'s
/// (bit-identical; the explorer never runs).
pub fn lint_explore(trace: &MemTrace, opts: &ExploreOptions) -> ExploreOutcome {
    lint_explore_with(trace, opts, None)
}

/// [`lint_explore`] with the graph and happens-before artifacts memoized
/// through a [`CacheStore`](mpg_core::CacheStore) (see
/// [`LintContext::build_cached`]).
pub fn lint_explore_with(
    trace: &MemTrace,
    opts: &ExploreOptions,
    cache: Option<(&mpg_core::CacheStore, &str)>,
) -> ExploreOutcome {
    let mut diags = mpg_trace::validate_trace_diagnostics(trace);
    if diags.iter().any(|d| d.severity == Severity::Error) {
        sort_diagnostics(&mut diags);
        return ExploreOutcome {
            diags,
            findings: Vec::new(),
            stats: ExploreStats::default(),
            cancelled: None,
        };
    }
    let (ctx, build_cancelled) = match (&opts.cancel, cache) {
        (Some(token), _) => LintContext::build_cancellable(trace, token),
        (None, Some((store, key))) => (LintContext::build_cached(trace, store, key), None),
        (None, None) => (LintContext::build(trace), None),
    };
    let report = explore(&ctx, opts);
    let mut diags = crate::lint_over_context(diags, ctx);
    diags.extend(report.diags());
    sort_diagnostics(&mut diags);
    let cancelled = build_cancelled.or(report.stats.cancelled);
    ExploreOutcome {
        diags,
        findings: report.findings,
        stats: report.stats,
        cancelled,
    }
}

// ---- frontier checkpoints ---------------------------------------------

/// Schema byte of the frontier-checkpoint payload; bump on layout change
/// so stale checkpoints miss instead of misparsing.
const FRONTIER_SCHEMA: u8 = 1;

/// Serializes an explore outcome as an explored-frontier checkpoint for
/// the artifact cache: the merged diagnostics, the coverage stats, and
/// the trace dimensions a warm run needs to re-render byte-identically.
/// Cancelled runs should not be checkpointed (partial coverage).
pub fn encode_frontier(out: &ExploreOutcome, total_events: u64, num_ranks: u32) -> Vec<u8> {
    let mut bytes = vec![FRONTIER_SCHEMA];
    bytes.extend_from_slice(&total_events.to_le_bytes());
    bytes.extend_from_slice(&num_ranks.to_le_bytes());
    let s = &out.stats;
    bytes.extend_from_slice(&s.explored.to_le_bytes());
    bytes.extend_from_slice(&s.infeasible.to_le_bytes());
    bytes.extend_from_slice(&s.pruned.to_le_bytes());
    bytes.extend_from_slice(&s.frontier_unexplored.to_le_bytes());
    bytes.extend_from_slice(&s.max_depth.to_le_bytes());
    bytes.push(s.budget_exhausted as u8);
    bytes.extend_from_slice(&(out.diags.len() as u32).to_le_bytes());
    for d in &out.diags {
        put_str(&mut bytes, d.rule.code());
        bytes.push(match d.severity {
            Severity::Info => 0,
            Severity::Warning => 1,
            Severity::Error => 2,
        });
        put_str(&mut bytes, &d.message);
        bytes.extend_from_slice(&(d.ranks.len() as u32).to_le_bytes());
        for &r in &d.ranks {
            bytes.extend_from_slice(&r.to_le_bytes());
        }
        match d.span {
            Some((rank, seq)) => {
                bytes.push(1);
                bytes.extend_from_slice(&rank.to_le_bytes());
                bytes.extend_from_slice(&seq.to_le_bytes());
            }
            None => bytes.push(0),
        }
    }
    bytes
}

/// Decodes a frontier checkpoint; `None` on any truncation, unknown
/// schema, or unknown rule code (a silent cache miss, like every other
/// artifact).
pub fn decode_frontier(bytes: &[u8]) -> Option<(Vec<Diagnostic>, ExploreStats, u64, u32)> {
    use mpg_core::forced::{read_u32, read_u64};
    let mut pos = 0usize;
    if *bytes.first()? != FRONTIER_SCHEMA {
        return None;
    }
    pos += 1;
    let total_events = read_u64(bytes, &mut pos)?;
    let num_ranks = read_u32(bytes, &mut pos)?;
    let mut stats = ExploreStats {
        explored: read_u64(bytes, &mut pos)?,
        infeasible: read_u64(bytes, &mut pos)?,
        pruned: read_u64(bytes, &mut pos)?,
        frontier_unexplored: read_u64(bytes, &mut pos)?,
        max_depth: read_u64(bytes, &mut pos)?,
        ..ExploreStats::default()
    };
    stats.budget_exhausted = match bytes.get(pos)? {
        0 => false,
        1 => true,
        _ => return None,
    };
    pos += 1;
    let n = read_u32(bytes, &mut pos)? as usize;
    let mut diags = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let rule = Rule::from_code(&get_str(bytes, &mut pos)?)?;
        let severity = match bytes.get(pos)? {
            0 => Severity::Info,
            1 => Severity::Warning,
            2 => Severity::Error,
            _ => return None,
        };
        pos += 1;
        let message = get_str(bytes, &mut pos)?;
        let nranks = read_u32(bytes, &mut pos)? as usize;
        if nranks > bytes.len().saturating_sub(pos) / 4 {
            return None;
        }
        let mut ranks = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            ranks.push(read_u32(bytes, &mut pos)?);
        }
        let span = match bytes.get(pos)? {
            0 => {
                pos += 1;
                None
            }
            1 => {
                pos += 1;
                let rank = read_u32(bytes, &mut pos)?;
                let seq = read_u64(bytes, &mut pos)?;
                Some((rank, seq))
            }
            _ => return None,
        };
        diags.push(Diagnostic {
            rule,
            severity,
            message,
            ranks,
            span,
        });
    }
    if pos != bytes.len() {
        return None;
    }
    Some((diags, stats, total_events, num_ranks))
}

fn put_str(bytes: &mut Vec<u8>, s: &str) {
    bytes.extend_from_slice(&(s.len() as u32).to_le_bytes());
    bytes.extend_from_slice(s.as_bytes());
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = mpg_core::forced::read_u32(bytes, pos)? as usize;
    let b = bytes.get(*pos..pos.checked_add(len)?)?;
    *pos += len;
    String::from_utf8(b.to_vec()).ok()
}

/// JSON body shared by `mpgtool explore --json` and any future service
/// surface: diagnostics plus the coverage stats object.
pub fn explore_json(diags: &[Diagnostic], stats: &ExploreStats) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.to_json());
    }
    out.push_str("],\"explore\":");
    out.push_str(&stats.to_json());
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_coverage_text() {
        let complete = ExploreStats::default();
        assert_eq!(complete.coverage(), "coverage complete: frontier exhausted");
        let exhausted = ExploreStats {
            budget_exhausted: true,
            frontier_unexplored: 3,
            ..ExploreStats::default()
        };
        assert!(exhausted.coverage().contains("budget exhausted"));
        assert!(exhausted.coverage().contains("3 frontier schedule(s)"));
        let cancelled = ExploreStats {
            cancelled: Some(CancelReason::DeadlineExceeded),
            frontier_unexplored: 1,
            ..ExploreStats::default()
        };
        assert!(cancelled.coverage().contains("cancelled"));
    }

    #[test]
    fn frontier_roundtrip() {
        let out = ExploreOutcome {
            diags: vec![
                Diagnostic::new(Rule::MayDeadlock, "cycle under [rank 0 seq 1 <- rank 2]")
                    .at(0, 1)
                    .involving([0, 1]),
                Diagnostic::new(Rule::WildRace, "advisory"),
            ],
            findings: Vec::new(),
            stats: ExploreStats {
                explored: 9,
                infeasible: 1,
                pruned: 4,
                frontier_unexplored: 2,
                max_depth: 3,
                budget_exhausted: true,
                cancelled: None,
            },
            cancelled: None,
        };
        let bytes = encode_frontier(&out, 120, 8);
        let (diags, stats, events, ranks) = decode_frontier(&bytes).unwrap();
        assert_eq!(diags, out.diags);
        assert_eq!(stats, out.stats);
        assert_eq!((events, ranks), (120, 8));
        // Any corruption or truncation is a clean miss.
        assert!(decode_frontier(&bytes[..bytes.len() - 1]).is_none());
        let mut bad = bytes.clone();
        bad[0] = 99;
        assert!(decode_frontier(&bad).is_none());
    }

    #[test]
    fn options_fingerprint_excludes_token() {
        let a = ExploreOptions::cli_default();
        let mut b = ExploreOptions::cli_default();
        b.cancel = Some(CancelToken::new());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), a.clone().budget(7).fingerprint());
    }
}
