#![warn(missing_docs)]

//! Baseline comparator: a general discrete-event simulator and a
//! Dimemas-like trace-replay model (§1, §1.1).
//!
//! "One technique … is to simulate perturbations in message latency and
//! processor compute time… This is easily modeled as a discrete event
//! simulation… Unlike a general discrete event model, we chose to directly
//! analyze the message-passing graph."
//!
//! This crate is the "general discrete event model" the paper chose *not*
//! to build, implemented so the choice can be evaluated (experiment E8):
//!
//! * [`engine`] — a minimal, generic future-event-list DES core;
//! * [`dimemas`] — a trace replayer driven by that core, implementing the
//!   published Dimemas communication model (§1.1): machine latency,
//!   bandwidth (size/bandwidth transfer), resource contention (a finite
//!   number of concurrent "buses"), flight time, and a CPU-speed ratio —
//!   re-simulating absolute timestamps rather than propagating drifts;
//! * [`compare`] — agreement metrics between the two predictors.

pub mod compare;
pub mod dimemas;
pub mod engine;

pub use compare::{agreement, Agreement};
pub use dimemas::{DimemasReplay, DimemasReport, MachineModel};
pub use engine::EventQueue;

/// Cycle unit shared across the workspace.
pub type Cycles = u64;
