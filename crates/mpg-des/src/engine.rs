//! A minimal generic discrete-event simulation core: a future event list
//! with stable FIFO ordering among simultaneous events.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycles;

/// A time-ordered event queue. Events at equal times pop in insertion
/// order, so simulations are deterministic.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(Cycles, u64)>>,
    payloads: Vec<Option<T>>,
    now: Cycles,
    scheduled: u64,
    processed: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            now: 0,
            scheduled: 0,
            processed: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — a DES must never travel backwards.
    pub fn schedule(&mut self, at: Cycles, payload: T) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let id = self.payloads.len() as u64;
        self.payloads.push(Some(payload));
        self.heap.push(Reverse((at, id)));
        self.scheduled += 1;
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(Cycles, T)> {
        let Reverse((t, id)) = self.heap.pop()?;
        self.now = t;
        self.processed += 1;
        let payload = self.payloads[id as usize]
            .take()
            .expect("event popped twice");
        Some((t, payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events processed so far (throughput accounting for E8).
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

/// A pool of `n` identical resources (Dimemas's "buses") tracked by their
/// next-free times; `acquire` returns when a unit is available and books it.
#[derive(Debug, Clone)]
pub struct ResourcePool {
    free_at: Vec<Cycles>,
}

impl ResourcePool {
    /// A pool of `n` units; `n == 0` means unlimited (every acquire is
    /// immediate).
    pub fn new(n: usize) -> Self {
        Self {
            free_at: vec![0; n],
        }
    }

    /// Books one unit for `[max(ready, unit_free), +duration)`; returns the
    /// actual start time.
    pub fn acquire(&mut self, ready: Cycles, duration: Cycles) -> Cycles {
        if self.free_at.is_empty() {
            return ready;
        }
        // Earliest-free unit (ties: lowest index) — deterministic.
        let (idx, &free) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|&(i, &f)| (f, i))
            .expect("non-empty pool");
        let start = ready.max(free);
        self.free_at[idx] = start + duration;
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), 30);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn unlimited_pool_never_waits() {
        let mut p = ResourcePool::new(0);
        assert_eq!(p.acquire(100, 1_000_000), 100);
        assert_eq!(p.acquire(100, 1_000_000), 100);
    }

    #[test]
    fn single_bus_serializes() {
        let mut p = ResourcePool::new(1);
        assert_eq!(p.acquire(0, 100), 0);
        assert_eq!(p.acquire(0, 100), 100);
        assert_eq!(p.acquire(0, 100), 200);
        // A later-ready request starts at its ready time when the bus is
        // already free.
        assert_eq!(p.acquire(1_000, 100), 1_000);
    }

    #[test]
    fn two_buses_pair_up() {
        let mut p = ResourcePool::new(2);
        assert_eq!(p.acquire(0, 100), 0);
        assert_eq!(p.acquire(0, 100), 0);
        assert_eq!(p.acquire(0, 100), 100);
    }
}
