//! A Dimemas-like trace replayer on the generic DES core (§1.1).
//!
//! "A simple model is assumed for communication which consists of
//! (a) machine latency, (b) machine resources contention, (c) message
//! transfer (message size/bandwidth), (d) network contention, and
//! (e) flight time."
//!
//! Differences from the graph-traversal analyzer, mirroring the paper's
//! comparison points:
//!
//! 1. absolute timestamps are **re-simulated** from model parameters, not
//!    drift-propagated from the traced timings — so the prediction quality
//!    depends entirely on the machine model;
//! 2. the trace is loaded **in core** ("Dimemas can handle large traces by
//!    reducing their information content in a preprocessing step");
//! 3. OS noise is **not** modeled (the paper's difference #1) — only CPU
//!    speed scaling;
//! 4. every operation flows through a future-event list, the "general
//!    discrete event model" overhead the paper's direct traversal avoids.

use std::collections::HashMap;

use crate::engine::{EventQueue, ResourcePool};
use crate::Cycles;
use mpg_noise::PlatformSignature;
use mpg_trace::{EventKind, EventRecord, MemTrace, Rank, ReqId, Tag};

/// The Dimemas communication/machine model.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Model label.
    pub name: String,
    /// Machine latency per message hop (cycles).
    pub latency: f64,
    /// Transfer cost (cycles/byte) — the `size/bandwidth` term.
    pub cycles_per_byte: f64,
    /// Relative CPU cost factor: traced compute bursts are multiplied by
    /// this (1.0 = same speed).
    pub cpu_factor: f64,
    /// Concurrent transfer limit ("machine resources contention"); 0 means
    /// unlimited.
    pub buses: usize,
    /// Extra per-hop flight time (cycles).
    pub flight_time: f64,
    /// Per-operation software overhead (cycles).
    pub overhead: Cycles,
}

impl MachineModel {
    /// Builds a model from a platform signature using distribution means
    /// (Dimemas parameterizes with scalars — the paper's difference #1).
    pub fn from_signature(sig: &PlatformSignature) -> Self {
        Self {
            name: format!("dimemas:{}", sig.name),
            latency: sig.mean_latency(),
            cycles_per_byte: sig.bandwidth.cycles_per_byte,
            cpu_factor: 1.0,
            buses: 0,
            flight_time: 0.0,
            overhead: sig.sw_overhead,
        }
    }

    fn wire(&self, bytes: u64) -> Cycles {
        (self.latency + self.flight_time + self.cycles_per_byte * bytes as f64).round() as Cycles
    }

    fn hop(&self) -> Cycles {
        (self.latency + self.flight_time).round() as Cycles
    }

    fn transfer_only(&self, bytes: u64) -> Cycles {
        (self.cycles_per_byte * bytes as f64).round() as Cycles
    }
}

/// Replay outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimemasReport {
    /// Predicted absolute finish time per rank.
    pub finish_times: Vec<Cycles>,
    /// DES events processed (throughput accounting).
    pub des_events: u64,
}

impl DimemasReport {
    /// Predicted makespan.
    pub fn makespan(&self) -> Cycles {
        self.finish_times.iter().copied().max().unwrap_or(0)
    }
}

/// Replay failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimemasError {
    /// Matching got stuck: the trace is not a completed run.
    Stuck(String),
}

impl std::fmt::Display for DimemasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimemasError::Stuck(m) => write!(f, "dimemas replay stuck: {m}"),
        }
    }
}

impl std::error::Error for DimemasError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Blocked {
    No,
    AtSend,
    AtRecv { src: Rank, tag: Tag },
    AtWait { reqs: Vec<ReqId> },
    AtColl,
}

#[derive(Debug, Clone)]
struct PendingSend {
    tag: Tag,
    bytes: u64,
    ready: Cycles,
    /// Sender rank and whether its cursor is blocked on this send.
    src: Rank,
    blocking: bool,
    /// Isend request to complete, when nonblocking.
    req: Option<ReqId>,
}

#[derive(Debug, Clone, Copy)]
struct PostedIrecv {
    tag: Tag,
    req: ReqId,
    posted: Cycles,
}

#[derive(Debug)]
struct RankState {
    idx: usize,
    clock: Cycles,
    blocked: Blocked,
    completions: HashMap<ReqId, Cycles>,
    coll_epoch: u64,
}

/// The replayer.
pub struct DimemasReplay {
    model: MachineModel,
}

impl DimemasReplay {
    /// Creates a replayer for one machine model.
    pub fn new(model: MachineModel) -> Self {
        Self { model }
    }

    /// Re-simulates `trace` on the modeled machine.
    pub fn run(&self, trace: &MemTrace) -> Result<DimemasReport, DimemasError> {
        Runner::new(&self.model, trace).run()
    }
}

struct Runner<'m> {
    model: &'m MachineModel,
    events: Vec<Vec<EventRecord>>,
    states: Vec<RankState>,
    queue: EventQueue<Rank>,
    buses: ResourcePool,
    sends: HashMap<(Rank, Rank), Vec<PendingSend>>,
    irecvs: HashMap<(Rank, Rank), Vec<PostedIrecv>>,
    colls: HashMap<u64, Vec<(Rank, Cycles)>>,
}

impl<'m> Runner<'m> {
    fn new(model: &'m MachineModel, trace: &MemTrace) -> Self {
        let p = trace.num_ranks();
        // In-core load: the documented Dimemas contrast with streaming.
        let events: Vec<Vec<EventRecord>> = (0..p).map(|r| trace.rank(r).to_vec()).collect();
        let mut queue = EventQueue::new();
        for r in 0..p {
            queue.schedule(0, r as Rank);
        }
        Self {
            model,
            events,
            states: (0..p)
                .map(|_| RankState {
                    idx: 0,
                    clock: 0,
                    blocked: Blocked::No,
                    completions: HashMap::new(),
                    coll_epoch: 0,
                })
                .collect(),
            queue,
            buses: ResourcePool::new(model.buses),
            sends: HashMap::new(),
            irecvs: HashMap::new(),
            colls: HashMap::new(),
        }
    }

    fn run(mut self) -> Result<DimemasReport, DimemasError> {
        while let Some((_, r)) = self.queue.pop() {
            self.advance(r)?;
        }
        // Everyone must have drained their trace.
        for (r, st) in self.states.iter().enumerate() {
            if st.idx < self.events[r].len() {
                return Err(DimemasError::Stuck(format!(
                    "rank {r} stopped at event {} of {} ({:?})",
                    st.idx,
                    self.events[r].len(),
                    self.states[r].blocked
                )));
            }
        }
        Ok(DimemasReport {
            finish_times: self.states.iter().map(|s| s.clock).collect(),
            des_events: self.queue.processed(),
        })
    }

    /// Books a transfer; returns `(recv_end, send_end)`.
    ///
    /// Store-and-forward semantics: the data leaves when the sender is
    /// ready (and a bus frees up); the receive completes at
    /// `max(arrival, receiver ready)`; the synchronous send completes one
    /// hop after the receive.
    fn transfer(&mut self, send_ready: Cycles, recv_ready: Cycles, bytes: u64) -> (Cycles, Cycles) {
        let start = self
            .buses
            .acquire(send_ready, self.model.transfer_only(bytes));
        let recv_end = (start + self.model.wire(bytes)).max(recv_ready);
        let send_end = recv_end + self.model.hop();
        (recv_end, send_end)
    }

    fn resume(&mut self, r: Rank, at: Cycles) {
        let st = &mut self.states[r as usize];
        st.clock = at;
        st.blocked = Blocked::No;
        st.idx += 1;
        self.queue.schedule(at, r);
    }

    /// Processes one event for rank `r` (or parks it).
    fn advance(&mut self, r: Rank) -> Result<(), DimemasError> {
        let ri = r as usize;
        if self.states[ri].blocked != Blocked::No {
            return Ok(()); // woken spuriously; the resolver will reschedule
        }
        let Some(ev) = self.events[ri].get(self.states[ri].idx).cloned() else {
            return Ok(()); // trace drained
        };
        let p = self.states.len() as Rank;
        // Malformed traces (peers or communicator sizes out of range) are
        // reported, never indexed blindly.
        let check = |peer: Rank| -> Result<(), DimemasError> {
            if peer < p && peer != r {
                Ok(())
            } else {
                Err(DimemasError::Stuck(format!(
                    "rank {r} event {} names invalid peer {peer} (p={p})",
                    ev.seq
                )))
            }
        };
        match &ev.kind {
            EventKind::Send { peer, .. }
            | EventKind::Isend { peer, .. }
            | EventKind::Recv { peer, .. }
            | EventKind::Irecv { peer, .. } => check(*peer)?,
            EventKind::Barrier { comm_size }
            | EventKind::Bcast { comm_size, .. }
            | EventKind::Reduce { comm_size, .. }
            | EventKind::Allreduce { comm_size, .. }
            | EventKind::Scatter { comm_size, .. }
            | EventKind::Gather { comm_size, .. }
            | EventKind::Allgather { comm_size, .. }
            | EventKind::Alltoall { comm_size, .. }
                if *comm_size != p =>
            {
                return Err(DimemasError::Stuck(format!(
                    "rank {r} collective names comm size {comm_size}, trace has {p} ranks"
                )));
            }
            _ => {}
        }
        let t = self.states[ri].clock;
        let o = self.model.overhead;
        match ev.kind {
            EventKind::Init | EventKind::Finalize => {
                // Bookkeeping retains its traced duration (CPU-scaled).
                let d = (ev.duration() as f64 * self.model.cpu_factor).round() as Cycles;
                self.resume(r, t + d);
            }
            EventKind::Compute { .. } => {
                // Dimemas replays the traced burst scaled by CPU factor; it
                // has no concept of "pure work vs noise" (difference #1).
                let d = (ev.duration() as f64 * self.model.cpu_factor).round() as Cycles;
                self.resume(r, t + d);
            }
            EventKind::Send {
                peer,
                tag,
                bytes,
                protocol,
            } => {
                // Buffered/ready sends complete locally (§3.1.1); standard
                // and synchronous sends block until the transfer books.
                let local_completion = matches!(
                    protocol,
                    mpg_trace::SendProtocol::Buffered | mpg_trace::SendProtocol::Ready
                );
                if local_completion {
                    if !self.try_complete_against_receiver_nb_local(r, peer, tag, bytes, t + o) {
                        self.sends.entry((r, peer)).or_default().push(PendingSend {
                            tag,
                            bytes,
                            ready: t + o,
                            src: r,
                            blocking: false,
                            req: None,
                        });
                    }
                    self.resume(r, t + o + self.model.transfer_only(bytes));
                    return Ok(());
                }
                // Is the receiver already blocked on this receive, or has it
                // posted a matching irecv?
                if self.try_complete_against_receiver(r, peer, tag, bytes, t + o) {
                    return Ok(());
                }
                self.sends.entry((r, peer)).or_default().push(PendingSend {
                    tag,
                    bytes,
                    ready: t + o,
                    src: r,
                    blocking: true,
                    req: None,
                });
                self.states[ri].blocked = Blocked::AtSend;
            }
            EventKind::Isend {
                peer,
                tag,
                bytes,
                req,
            } => {
                if !self.try_complete_against_receiver_nb(r, peer, tag, bytes, t + o, req) {
                    self.sends.entry((r, peer)).or_default().push(PendingSend {
                        tag,
                        bytes,
                        ready: t + o,
                        src: r,
                        blocking: false,
                        req: Some(req),
                    });
                }
                self.resume(r, t + o);
            }
            EventKind::Recv { peer, tag, .. } => {
                if let Some(ps) = self.take_send(peer, r, tag) {
                    let (recv_end, send_end) = self.transfer(ps.ready, t + o, ps.bytes);
                    self.settle_sender(&ps, send_end);
                    self.resume(r, recv_end);
                } else {
                    self.states[ri].blocked = Blocked::AtRecv { src: peer, tag };
                }
            }
            EventKind::Irecv { peer, tag, req, .. } => {
                if let Some(ps) = self.take_send(peer, r, tag) {
                    let (recv_end, send_end) = self.transfer(ps.ready, t + o, ps.bytes);
                    self.settle_sender(&ps, send_end);
                    self.states[ri].completions.insert(req, recv_end);
                    self.maybe_wake_waiter(r);
                } else {
                    self.irecvs.entry((peer, r)).or_default().push(PostedIrecv {
                        tag,
                        req,
                        posted: t + o,
                    });
                }
                self.resume(r, t + o);
            }
            EventKind::Wait { req } => self.block_on_waits(r, vec![req], t, o),
            EventKind::WaitAll { ref reqs } => self.block_on_waits(r, reqs.clone(), t, o),
            EventKind::WaitSome { ref completed, .. } => {
                self.block_on_waits(r, completed.clone(), t, o);
            }
            EventKind::Test { req, completed } => {
                if completed {
                    self.block_on_waits(r, vec![req], t, o);
                } else {
                    self.resume(r, t + o);
                }
            }
            EventKind::Barrier { comm_size }
            | EventKind::Bcast { comm_size, .. }
            | EventKind::Reduce { comm_size, .. }
            | EventKind::Allreduce { comm_size, .. }
            | EventKind::Scatter { comm_size, .. }
            | EventKind::Gather { comm_size, .. }
            | EventKind::Allgather { comm_size, .. }
            | EventKind::Alltoall { comm_size, .. } => {
                let epoch = self.states[ri].coll_epoch;
                self.states[ri].coll_epoch += 1;
                self.states[ri].blocked = Blocked::AtColl;
                let entries = self.colls.entry(epoch).or_default();
                entries.push((r, t + o));
                if entries.len() == comm_size as usize {
                    let entries = self.colls.remove(&epoch).expect("just filled");
                    let (rounds, bytes) = match ev.kind {
                        EventKind::Reduce { bytes, .. } | EventKind::Gather { bytes, .. } => {
                            (1, bytes)
                        }
                        EventKind::Bcast {
                            bytes, comm_size, ..
                        }
                        | EventKind::Allreduce { bytes, comm_size }
                        | EventKind::Scatter {
                            bytes, comm_size, ..
                        }
                        | EventKind::Allgather { bytes, comm_size } => {
                            ((f64::from(comm_size)).log2().ceil() as u32, bytes)
                        }
                        EventKind::Alltoall { bytes, comm_size } => {
                            (comm_size.saturating_sub(1), bytes)
                        }
                        _ => ((f64::from(comm_size)).log2().ceil() as u32, 0),
                    };
                    let enter = entries.iter().map(|&(_, e)| e).max().expect("non-empty");
                    let per_round = self.model.wire(bytes) + 100 + bytes;
                    let done = enter + u64::from(rounds) * per_round;
                    for (pr, _) in entries {
                        self.resume(pr, done);
                    }
                }
            }
        }
        Ok(())
    }

    fn take_send(&mut self, src: Rank, dst: Rank, tag: Tag) -> Option<PendingSend> {
        let q = self.sends.get_mut(&(src, dst))?;
        let i = q.iter().position(|s| s.tag == tag)?;
        Some(q.remove(i))
    }

    /// Sender-side completion after a transfer is booked.
    fn settle_sender(&mut self, ps: &PendingSend, send_end: Cycles) {
        if ps.blocking {
            debug_assert_eq!(self.states[ps.src as usize].blocked, Blocked::AtSend);
            self.resume(ps.src, send_end);
        } else if let Some(req) = ps.req {
            self.states[ps.src as usize]
                .completions
                .insert(req, send_end);
            self.maybe_wake_waiter(ps.src);
        }
    }

    /// A blocking send arriving when the receiver is already waiting (or has
    /// a matching irecv posted). Returns true when fully handled.
    fn try_complete_against_receiver(
        &mut self,
        src: Rank,
        dst: Rank,
        tag: Tag,
        bytes: u64,
        send_ready: Cycles,
    ) -> bool {
        if let Blocked::AtRecv {
            src: want_src,
            tag: want_tag,
        } = self.states[dst as usize].blocked
        {
            if want_src == src && want_tag == tag {
                let recv_ready = self.states[dst as usize].clock + self.model.overhead;
                let (recv_end, send_end) = self.transfer(send_ready, recv_ready, bytes);
                self.resume(dst, recv_end);
                self.resume(src, send_end);
                return true;
            }
        }
        if let Some(ir) = self.take_irecv(src, dst, tag) {
            let (recv_end, send_end) = self.transfer(send_ready, ir.posted, bytes);
            self.states[dst as usize]
                .completions
                .insert(ir.req, recv_end);
            self.maybe_wake_waiter(dst);
            self.resume(src, send_end);
            return true;
        }
        false
    }

    /// Isend counterpart of the above; the sender never blocks.
    fn try_complete_against_receiver_nb(
        &mut self,
        src: Rank,
        dst: Rank,
        tag: Tag,
        bytes: u64,
        send_ready: Cycles,
        req: ReqId,
    ) -> bool {
        if let Blocked::AtRecv {
            src: want_src,
            tag: want_tag,
        } = self.states[dst as usize].blocked
        {
            if want_src == src && want_tag == tag {
                let recv_ready = self.states[dst as usize].clock + self.model.overhead;
                let (recv_end, send_end) = self.transfer(send_ready, recv_ready, bytes);
                self.resume(dst, recv_end);
                self.states[src as usize].completions.insert(req, send_end);
                self.maybe_wake_waiter(src);
                return true;
            }
        }
        if let Some(ir) = self.take_irecv(src, dst, tag) {
            let (recv_end, send_end) = self.transfer(send_ready, ir.posted, bytes);
            self.states[dst as usize]
                .completions
                .insert(ir.req, recv_end);
            self.maybe_wake_waiter(dst);
            self.states[src as usize].completions.insert(req, send_end);
            self.maybe_wake_waiter(src);
            return true;
        }
        false
    }

    /// Buffered/ready send against an already-waiting receiver: books the
    /// transfer and completes the receiver, but never blocks the sender.
    fn try_complete_against_receiver_nb_local(
        &mut self,
        src: Rank,
        dst: Rank,
        tag: Tag,
        bytes: u64,
        send_ready: Cycles,
    ) -> bool {
        if let Blocked::AtRecv {
            src: want_src,
            tag: want_tag,
        } = self.states[dst as usize].blocked
        {
            if want_src == src && want_tag == tag {
                let recv_ready = self.states[dst as usize].clock + self.model.overhead;
                let (recv_end, _send_end) = self.transfer(send_ready, recv_ready, bytes);
                self.resume(dst, recv_end);
                return true;
            }
        }
        if let Some(ir) = self.take_irecv(src, dst, tag) {
            let (recv_end, _send_end) = self.transfer(send_ready, ir.posted, bytes);
            self.states[dst as usize]
                .completions
                .insert(ir.req, recv_end);
            self.maybe_wake_waiter(dst);
            return true;
        }
        false
    }

    fn take_irecv(&mut self, src: Rank, dst: Rank, tag: Tag) -> Option<PostedIrecv> {
        let q = self.irecvs.get_mut(&(src, dst))?;
        let i = q.iter().position(|p| p.tag == tag)?;
        Some(q.remove(i))
    }

    fn block_on_waits(&mut self, r: Rank, reqs: Vec<ReqId>, t: Cycles, o: Cycles) {
        let st = &mut self.states[r as usize];
        if reqs.iter().all(|req| st.completions.contains_key(req)) {
            let latest = reqs
                .iter()
                .map(|req| st.completions.remove(req).expect("checked"))
                .max()
                .unwrap_or(0);
            self.resume(r, (t + o).max(latest));
        } else {
            st.blocked = Blocked::AtWait { reqs };
        }
    }

    /// Rechecks a rank blocked on a wait after one of its requests
    /// completed.
    fn maybe_wake_waiter(&mut self, r: Rank) {
        let ri = r as usize;
        let Blocked::AtWait { reqs } = self.states[ri].blocked.clone() else {
            return;
        };
        if reqs
            .iter()
            .all(|req| self.states[ri].completions.contains_key(req))
        {
            let t = self.states[ri].clock;
            let o = self.model.overhead;
            let latest = reqs
                .iter()
                .map(|req| self.states[ri].completions.remove(req).expect("checked"))
                .max()
                .unwrap_or(0);
            self.resume(r, (t + o).max(latest));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_noise::PlatformSignature;
    use mpg_sim::Simulation;

    fn traced(p: u32, f: impl Fn(&mut mpg_sim::RankCtx) + Sync) -> MemTrace {
        Simulation::new(p, PlatformSignature::quiet("lab"))
            .ideal_clocks()
            .run(f)
            .unwrap()
            .trace
    }

    fn model() -> MachineModel {
        MachineModel::from_signature(&PlatformSignature::quiet("lab"))
    }

    #[test]
    fn replays_compute_only() {
        let trace = traced(1, |ctx| ctx.compute(100_000));
        let report = DimemasReplay::new(model()).run(&trace).unwrap();
        // init(1000) + compute(100_000) + finalize(1000)
        assert_eq!(report.finish_times, vec![102_000]);
    }

    #[test]
    fn cpu_factor_scales_compute() {
        let trace = traced(1, |ctx| ctx.compute(100_000));
        let mut m = model();
        m.cpu_factor = 2.0;
        let report = DimemasReplay::new(m).run(&trace).unwrap();
        assert_eq!(report.makespan(), 204_000);
    }

    #[test]
    fn same_model_reproduces_simulated_pingpong() {
        // Replaying a quiet-platform trace with the quiet machine model must
        // land very close to the original timings.
        let trace = traced(2, |ctx| {
            for _ in 0..10 {
                if ctx.rank() == 0 {
                    ctx.send(1, 0, 1000);
                    ctx.recv(1, 1);
                } else {
                    ctx.recv(0, 0);
                    ctx.send(0, 1, 1000);
                }
            }
        });
        let original_end = trace.rank(0).last().unwrap().t_end;
        let report = DimemasReplay::new(model()).run(&trace).unwrap();
        let rel_err = (report.makespan() as f64 - original_end as f64).abs() / original_end as f64;
        assert!(rel_err < 0.05, "rel_err = {rel_err}");
    }

    #[test]
    fn higher_latency_model_predicts_slowdown() {
        let trace = traced(2, |ctx| {
            for _ in 0..20 {
                if ctx.rank() == 0 {
                    ctx.send(1, 0, 64);
                    ctx.recv(1, 1);
                } else {
                    ctx.recv(0, 0);
                    ctx.send(0, 1, 64);
                }
            }
        });
        let base = DimemasReplay::new(model()).run(&trace).unwrap().makespan();
        let mut slow = model();
        slow.latency *= 10.0;
        let slowed = DimemasReplay::new(slow).run(&trace).unwrap().makespan();
        // Critical path gains ~2 wire hops × (20k − 2k) per iteration (the
        // ack hops overlap with the reverse transfer).
        assert!(
            slowed > base + 20 * 2 * 15_000,
            "slowed={slowed} base={base}"
        );
    }

    #[test]
    fn bus_contention_serializes_transfers() {
        // Four simultaneous pairwise transfers of a large message.
        let trace = traced(8, |ctx| {
            let r = ctx.rank();
            if r % 2 == 0 {
                ctx.send(r + 1, 0, 1 << 20);
            } else {
                ctx.recv(r - 1, 0);
            }
        });
        let free = DimemasReplay::new(model()).run(&trace).unwrap().makespan();
        let mut contended_model = model();
        contended_model.buses = 1;
        let contended = DimemasReplay::new(contended_model)
            .run(&trace)
            .unwrap()
            .makespan();
        // One bus forces the four 512k-cycle transfers to serialize.
        assert!(
            contended > free + 3 * 500_000,
            "contended={contended} free={free}"
        );
    }

    #[test]
    fn nonblocking_trace_replays() {
        let trace = traced(2, |ctx| {
            if ctx.rank() == 0 {
                let a = ctx.isend(1, 0, 128);
                let b = ctx.irecv(1, 1);
                ctx.compute(10_000);
                ctx.waitall(&[a, b]);
            } else {
                let a = ctx.irecv(0, 0);
                let b = ctx.isend(0, 1, 256);
                ctx.waitall(&[a, b]);
            }
        });
        let report = DimemasReplay::new(model()).run(&trace).unwrap();
        assert!(report.makespan() > 0);
    }

    #[test]
    fn collective_trace_replays() {
        let trace = traced(8, |ctx| {
            ctx.compute(10_000);
            ctx.allreduce(256);
            ctx.barrier();
        });
        let report = DimemasReplay::new(model()).run(&trace).unwrap();
        // 3 rounds × (wire(256)+356) for allreduce + 3 × (wire(0)+100).
        assert!(report.makespan() > 10_000);
        assert_eq!(report.finish_times.len(), 8);
    }

    #[test]
    fn stuck_trace_detected() {
        let mut mt = MemTrace::new(1);
        mt.push(EventRecord {
            rank: 0,
            seq: 0,
            t_start: 0,
            t_end: 10,
            kind: EventKind::Recv {
                peer: 0,
                tag: 0,
                bytes: 0,
                posted_any: false,
            },
        });
        let err = DimemasReplay::new(model()).run(&mt).unwrap_err();
        assert!(matches!(err, DimemasError::Stuck(_)));
    }

    #[test]
    fn deterministic() {
        let trace = traced(4, |ctx| {
            ctx.compute(5_000);
            ctx.allreduce(64);
        });
        let a = DimemasReplay::new(model()).run(&trace).unwrap();
        let b = DimemasReplay::new(model()).run(&trace).unwrap();
        assert_eq!(a, b);
    }
}
