//! Agreement metrics between the graph-traversal analyzer and the DES
//! baseline (experiment E8).

/// Pairwise comparison of two predicted makespans against a ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Agreement {
    /// Ground-truth makespan (e.g. a direct simulation on the target
    /// platform).
    pub truth: f64,
    /// Graph-traversal prediction.
    pub graph: f64,
    /// DES (Dimemas-like) prediction.
    pub des: f64,
}

impl Agreement {
    /// Relative error of the graph prediction.
    pub fn graph_rel_err(&self) -> f64 {
        rel_err(self.graph, self.truth)
    }

    /// Relative error of the DES prediction.
    pub fn des_rel_err(&self) -> f64 {
        rel_err(self.des, self.truth)
    }

    /// Relative disagreement between the two predictors.
    pub fn mutual_rel_err(&self) -> f64 {
        rel_err(self.graph, self.des)
    }
}

fn rel_err(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        if a == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (a - b).abs() / b.abs()
    }
}

/// Convenience constructor.
pub fn agreement(truth: f64, graph: f64, des: f64) -> Agreement {
    Agreement { truth, graph, des }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_errors() {
        let a = agreement(100.0, 110.0, 90.0);
        assert!((a.graph_rel_err() - 0.1).abs() < 1e-12);
        assert!((a.des_rel_err() - 0.1).abs() < 1e-12);
        assert!((a.mutual_rel_err() - 20.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn zero_truth() {
        let a = agreement(0.0, 0.0, 5.0);
        assert_eq!(a.graph_rel_err(), 0.0);
        assert_eq!(a.des_rel_err(), f64::INFINITY);
    }
}
