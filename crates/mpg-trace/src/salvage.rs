//! Salvage reader: best-effort recovery of damaged trace streams.
//!
//! The strict reader ([`crate::reader`]) refuses the first defect it sees —
//! correct for pipelines, useless for a post-mortem where the trace *is*
//! the crash evidence. This module reads what the strict reader rejects:
//! it walks a byte buffer frame by frame, resynchronizes to the next
//! CRC-valid frame after a torn or corrupt region, reorders and
//! deduplicates surviving frames by their recorded first sequence number,
//! and reports exactly what was lost in a [`RankSalvage`]. It never
//! returns an error and never panics on untrusted bytes: any input, even
//! random garbage, yields a (possibly empty) record list plus an honest
//! damage report.
//!
//! Salvage operates on a fully-read byte buffer rather than a stream:
//! resynchronization needs random access, and recovery is a cold path run
//! on files that already fit the writer's evidence (one file per rank).

use crate::codec::{get_varint, Decoder, MAGIC};
use crate::event::EventRecord;
use crate::frame::{checked_frame_at, Footer, FOOTER_LEN, FOOTER_MARKER, FRAME_MARKER, MAGIC2};

/// What the end of a salvaged stream looked like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealStatus {
    /// A valid footer was found (the writer finished cleanly).
    Sealed,
    /// No footer: the writer crashed or the tail was lost.
    Unsealed,
    /// Legacy v1 stream — the format has no seal.
    LegacyV1,
    /// The rank's file is absent entirely.
    Missing,
}

impl SealStatus {
    /// Stable lower-case name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            SealStatus::Sealed => "sealed",
            SealStatus::Unsealed => "unsealed",
            SealStatus::LegacyV1 => "legacy-v1",
            SealStatus::Missing => "missing",
        }
    }
}

/// Damage report for one rank's salvaged stream.
#[derive(Debug, Clone)]
pub struct RankSalvage {
    /// Rank the stream belongs to.
    pub rank: u32,
    /// Whether the rank's file existed at all.
    pub present: bool,
    /// Size of the file in bytes (0 when missing).
    pub file_len: u64,
    /// Seal state of the stream's tail.
    pub seal: SealStatus,
    /// CRC-valid frames whose records were recovered.
    pub frames_recovered: u64,
    /// Frames lost: one per corrupt byte region skipped, plus any
    /// duplicate/overlapping frames discarded during reordering.
    pub frames_dropped: u64,
    /// Bytes skipped while resynchronizing past damage.
    pub bytes_skipped: u64,
    /// Records decoded successfully.
    pub records_recovered: u64,
    /// Records known lost, from sequence-number gaps between surviving
    /// frames and (when sealed) the footer's total record count.
    pub records_lost: u64,
    /// Whether the stream ended mid-frame (torn tail).
    pub truncated_tail: bool,
    /// Human-readable damage notes.
    pub notes: Vec<String>,
}

impl RankSalvage {
    fn new(rank: u32) -> Self {
        Self {
            rank,
            present: true,
            file_len: 0,
            seal: SealStatus::Unsealed,
            frames_recovered: 0,
            frames_dropped: 0,
            bytes_skipped: 0,
            records_recovered: 0,
            records_lost: 0,
            truncated_tail: false,
            notes: Vec::new(),
        }
    }

    /// Report for a rank whose file is missing entirely.
    pub fn missing(rank: u32) -> Self {
        let mut s = Self::new(rank);
        s.present = false;
        s.seal = SealStatus::Missing;
        s.notes.push("rank file missing".into());
        s
    }

    /// True when the stream needed no recovery at all: every byte
    /// accounted for, nothing lost, and a clean seal (or a fully-readable
    /// legacy stream).
    pub fn is_clean(&self) -> bool {
        self.present
            && self.frames_dropped == 0
            && self.bytes_skipped == 0
            && self.records_lost == 0
            && !self.truncated_tail
            && self.notes.is_empty()
            && matches!(self.seal, SealStatus::Sealed | SealStatus::LegacyV1)
    }

    /// One-line damage summary, e.g. for `mpgtool fsck` output.
    pub fn summary(&self) -> String {
        if !self.present {
            return format!("rank {}: file missing", self.rank);
        }
        format!(
            "rank {}: {} record(s) from {} frame(s), {} frame(s) dropped, \
             {} byte(s) skipped, {} record(s) lost, seal {}",
            self.rank,
            self.records_recovered,
            self.frames_recovered,
            self.frames_dropped,
            self.bytes_skipped,
            self.records_lost,
            self.seal.name()
        )
    }
}

/// Decodes one frame payload standalone, feeding records to `sink`.
/// Returns the frame's first sequence number, how many records decoded,
/// and an error note if the payload ended mid-record despite its CRC
/// passing. Decoding is deterministic, so a second pass over the same
/// payload yields the identical records and note.
fn decode_payload_into(
    rank: u32,
    payload: &[u8],
    sink: &mut dyn FnMut(EventRecord),
) -> Result<(u64, u64, Option<String>), ()> {
    let mut body = payload;
    let first_seq = get_varint(&mut body).map_err(|_| ())?;
    let mut dec = Decoder::new(rank);
    dec.reset_frame(first_seq);
    let mut count = 0u64;
    loop {
        match dec.decode(&mut body) {
            Ok(Some(rec)) => {
                count += 1;
                sink(rec);
            }
            Ok(None) => return Ok((first_seq, count, None)),
            Err(e) => {
                return Ok((
                    first_seq,
                    count,
                    Some(format!("record decode failed inside CRC-valid frame: {e}")),
                ))
            }
        }
    }
}

/// Finds the next offset at or after `from` holding a CRC-valid frame or
/// footer. CRC validation runs only at marker bytes, so the scan is cheap.
fn resync(bytes: &[u8], from: usize) -> Option<usize> {
    (from..bytes.len()).find(|&i| match bytes[i] {
        FRAME_MARKER => checked_frame_at(&bytes[i..]).is_some(),
        FOOTER_MARKER => Footer::parse(&bytes[i..]).is_some(),
        _ => false,
    })
}

/// Salvages whatever records survive in `bytes`, attributing them to
/// `rank`. Never fails: damage is reported, not raised.
pub fn salvage_bytes(rank: u32, bytes: &[u8]) -> (Vec<EventRecord>, RankSalvage) {
    let mut records = Vec::new();
    let report = salvage_into(rank, bytes, &mut |rec| records.push(rec));
    (records, report)
}

/// Sink-driven salvage core: like [`salvage_bytes`] but recovered records
/// are pushed to `sink` instead of collected, in recovery order (sorted,
/// deduplicated). With a discarding sink this produces a damage report
/// without ever materializing the trace — peak memory is per-frame
/// metadata, which is what lets `mpgtool fsck` audit rank files far
/// larger than RAM.
///
/// The cost of that bound is one extra decode: pass 1 counts each frame's
/// records (to do gap accounting before the sort), pass 2 re-decodes the
/// surviving frames into the sink. Salvage is a cold recovery path, so
/// the trade goes to memory.
pub fn salvage_into(rank: u32, bytes: &[u8], sink: &mut dyn FnMut(EventRecord)) -> RankSalvage {
    let mut s = RankSalvage::new(rank);
    s.file_len = bytes.len() as u64;

    if bytes.len() >= 4 && &bytes[..4] == MAGIC {
        return salvage_legacy(rank, bytes, s, sink);
    }

    let mut pos = if bytes.len() >= 4 && &bytes[..4] == MAGIC2 {
        4
    } else {
        // Header clobbered or absent: scan for frames from the start — a
        // torn-off prefix must not cost us the rest of the file.
        s.notes.push("bad or missing magic header".into());
        0
    };

    // Pass 1: locate every CRC-valid frame and the footer, resyncing past
    // damaged regions. Only each frame's position, first_seq and record
    // count are kept — records are decoded again into the sink in pass 2,
    // so memory stays O(frames), not O(records).
    let mut frames: Vec<(u64, u64, std::ops::Range<usize>)> = Vec::new();
    let mut footer: Option<Footer> = None;
    while pos < bytes.len() {
        if let Some((payload, total)) = checked_frame_at(&bytes[pos..]) {
            match decode_payload_into(rank, payload, &mut |_| {}) {
                Ok((first_seq, count, err_note)) => {
                    if let Some(note) = err_note {
                        s.notes.push(note);
                    }
                    // Out-of-order frames (reordered writeback) are fully
                    // recoverable via the pass-2 sort, but the file is not
                    // *clean*: the strict reader would refuse it.
                    if frames.last().is_some_and(|(p, _, _)| first_seq < *p) {
                        s.notes.push(format!(
                            "frame order violation: seq {first_seq} arrived late"
                        ));
                    }
                    s.frames_recovered += 1;
                    let start = pos + (total - payload.len());
                    frames.push((first_seq, count, start..start + payload.len()));
                }
                Err(()) => {
                    s.frames_dropped += 1;
                    s.notes.push("frame payload missing first_seq".into());
                }
            }
            pos += total;
            continue;
        }
        if let Some(f) = Footer::parse(&bytes[pos..]) {
            footer = Some(f);
            pos += FOOTER_LEN;
            if pos < bytes.len() {
                let rest = bytes.len() - pos;
                s.bytes_skipped += rest as u64;
                s.notes
                    .push(format!("{rest} trailing byte(s) after footer"));
            }
            break;
        }
        // Damage: skip to the next valid frame or footer.
        match resync(bytes, pos + 1) {
            Some(next) => {
                s.bytes_skipped += (next - pos) as u64;
                s.frames_dropped += 1;
                s.notes.push(format!(
                    "skipped {} corrupt byte(s) at offset {pos}",
                    next - pos
                ));
                pos = next;
            }
            None => {
                let rest = bytes.len() - pos;
                s.bytes_skipped += rest as u64;
                s.truncated_tail = true;
                s.notes.push(format!(
                    "torn tail: {rest} unrecoverable byte(s) at offset {pos}"
                ));
                break;
            }
        }
    }
    s.seal = if footer.is_some() {
        SealStatus::Sealed
    } else {
        SealStatus::Unsealed
    };

    // Pass 2: order surviving frames by first sequence number and drop
    // duplicates/overlaps. Frame duplication or reordering (replayed
    // buffers, spliced files) then costs nothing: every record is still
    // recovered exactly once, in order. Surviving frames are decoded a
    // second time, straight into the sink.
    frames.sort_by_key(|(first_seq, _, _)| *first_seq);
    let mut expected_seq = 0u64;
    for (first_seq, n, payload_range) in frames {
        if first_seq > expected_seq {
            s.records_lost += first_seq - expected_seq;
            s.notes.push(format!(
                "sequence gap: records {expected_seq}..{first_seq} lost"
            ));
        } else if first_seq < expected_seq {
            s.frames_dropped += 1;
            s.notes.push(format!(
                "dropped duplicate/overlapping frame at seq {first_seq}"
            ));
            continue;
        }
        expected_seq = first_seq + n;
        s.records_recovered += n;
        // The pass-1 note (if any) already covers a mid-payload failure.
        let _ = decode_payload_into(rank, &bytes[payload_range], sink);
    }

    if let Some(f) = footer {
        if f.records > expected_seq {
            // The seal says more records existed than any surviving frame
            // covers — the tail frames were lost even though the footer
            // survived.
            s.records_lost += f.records - expected_seq;
            s.notes.push(format!(
                "footer records {} exceed recovered coverage {expected_seq}",
                f.records
            ));
        } else if f.records < expected_seq || f.frames != s.frames_recovered {
            s.notes.push(format!(
                "footer counts disagree with stream ({} records / {} frames)",
                f.records, f.frames
            ));
        }
    }
    s
}

fn salvage_legacy(
    rank: u32,
    bytes: &[u8],
    mut s: RankSalvage,
    sink: &mut dyn FnMut(EventRecord),
) -> RankSalvage {
    s.seal = SealStatus::LegacyV1;
    let mut dec = Decoder::new(rank);
    let mut input = &bytes[4..];
    loop {
        match dec.decode(&mut input) {
            Ok(Some(rec)) => {
                s.records_recovered += 1;
                sink(rec);
            }
            Ok(None) => break,
            Err(e) => {
                // v1 has no frames to resync to: everything after the
                // first bad byte is unrecoverable.
                s.bytes_skipped += input.len() as u64;
                s.truncated_tail = true;
                s.notes.push(format!(
                    "legacy stream unreadable past record {}: {e}",
                    s.records_recovered
                ));
                break;
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::writer::TraceWriter;

    fn rec(seq: u64, t: u64) -> EventRecord {
        EventRecord {
            rank: 1,
            seq,
            t_start: t,
            t_end: t + 5,
            kind: EventKind::Compute { work: 5 },
        }
    }

    fn sample(n: u64, buffer_bytes: usize) -> (Vec<EventRecord>, Vec<u8>) {
        let records: Vec<_> = (0..n).map(|i| rec(i, i * 10)).collect();
        let mut w = TraceWriter::new(Vec::new(), buffer_bytes);
        for r in &records {
            w.record(r).unwrap();
        }
        (records, w.finish().unwrap())
    }

    #[test]
    fn clean_file_salvages_clean() {
        let (records, bytes) = sample(200, 64);
        let (out, report) = salvage_bytes(1, &bytes);
        assert_eq!(out, records);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.seal, SealStatus::Sealed);
        assert_eq!(report.records_recovered, 200);
    }

    #[test]
    fn truncated_file_keeps_whole_frames() {
        let (records, bytes) = sample(200, 64);
        let cut = bytes.len() * 2 / 3;
        let (out, report) = salvage_bytes(1, &bytes[..cut]);
        assert!(!out.is_empty());
        assert!(out.len() < records.len());
        assert_eq!(out, records[..out.len()]);
        assert_eq!(report.seal, SealStatus::Unsealed);
        assert!(report.truncated_tail);
        assert!(!report.is_clean());
    }

    #[test]
    fn bitflip_loses_only_one_frame() {
        let (records, bytes) = sample(300, 64);
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x08;
        let (out, report) = salvage_bytes(1, &bad);
        assert!(report.frames_dropped >= 1);
        assert!(report.records_lost > 0);
        // Every surviving record matches the original at its seq.
        for r in &out {
            assert_eq!(*r, records[r.seq as usize]);
        }
        // Seqs stay strictly increasing across the gap.
        assert!(out.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn garbage_input_never_panics_and_reports_loss() {
        let garbage: Vec<u8> = (0..997u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let (out, report) = salvage_bytes(0, &garbage);
        assert!(out.is_empty());
        assert!(!report.is_clean());
        assert_eq!(report.seal, SealStatus::Unsealed);
    }

    #[test]
    fn empty_input_reports_unrecoverable_shape() {
        let (out, report) = salvage_bytes(0, &[]);
        assert!(out.is_empty());
        assert!(!report.is_clean());
    }

    #[test]
    fn legacy_v1_full_read_is_clean() {
        let records: Vec<_> = (0..50).map(|i| rec(i, i * 10)).collect();
        let mut w = TraceWriter::legacy_v1(Vec::new(), 64);
        for r in &records {
            w.record(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let (out, report) = salvage_bytes(1, &bytes);
        assert_eq!(out, records);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.seal, SealStatus::LegacyV1);
    }

    #[test]
    fn legacy_v1_truncated_keeps_prefix() {
        let records: Vec<_> = (0..50).map(|i| rec(i, i * 10)).collect();
        let mut w = TraceWriter::legacy_v1(Vec::new(), 1 << 16);
        for r in &records {
            w.record(r).unwrap();
        }
        let mut bytes = w.finish().unwrap();
        bytes.truncate(bytes.len() - 3);
        let (out, report) = salvage_bytes(1, &bytes);
        assert!(!out.is_empty() && out.len() < 50);
        assert_eq!(out, records[..out.len()]);
        assert!(report.truncated_tail);
    }

    #[test]
    fn duplicated_frame_recovers_every_record_once() {
        let (records, bytes) = sample(200, 64);
        // Duplicate the second frame by splicing its bytes in again.
        let first = checked_frame_at(&bytes[4..]).unwrap().1;
        let second = checked_frame_at(&bytes[4 + first..]).unwrap().1;
        let (s2, e2) = (4 + first, 4 + first + second);
        let mut dup = bytes[..e2].to_vec();
        dup.extend_from_slice(&bytes[s2..e2]);
        dup.extend_from_slice(&bytes[e2..]);
        let (out, report) = salvage_bytes(1, &dup);
        assert_eq!(out, records);
        assert_eq!(report.records_lost, 0);
        assert!(report.frames_dropped >= 1);
    }
}
