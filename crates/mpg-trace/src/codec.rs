//! Compact binary codec for trace records.
//!
//! Little-endian LEB128 varints throughout; timestamps are delta-encoded
//! against the previous record on the same stream so long runs stay small.
//! The format is self-framing: each record begins with a kind byte, so a
//! reader can stream records without an index (§4.2's windowed construction
//! depends on pure streaming).

use crate::event::{EventKind, EventRecord, SendProtocol};
use crate::TraceError;

/// Magic bytes opening every per-rank trace stream.
pub const MAGIC: &[u8; 4] = b"MPG1";

const K_INIT: u8 = 0;
const K_FINALIZE: u8 = 1;
const K_COMPUTE: u8 = 2;
const K_SEND: u8 = 3;
const K_RECV: u8 = 4;
const K_RECV_ANY: u8 = 5;
const K_ISEND: u8 = 6;
const K_IRECV: u8 = 7;
const K_IRECV_ANY: u8 = 8;
const K_WAIT: u8 = 9;
const K_WAITALL: u8 = 10;
const K_WAITSOME: u8 = 11;
const K_BARRIER: u8 = 12;
const K_BCAST: u8 = 13;
const K_REDUCE: u8 = 14;
const K_ALLREDUCE: u8 = 15;
const K_TEST_DONE: u8 = 16;
const K_TEST_PENDING: u8 = 17;
const K_SCATTER: u8 = 18;
const K_GATHER: u8 = 19;
const K_ALLGATHER: u8 = 20;
const K_ALLTOALL: u8 = 21;
const K_SEND_SYNC: u8 = 22;
const K_SEND_BUF: u8 = 23;
const K_SEND_RDY: u8 = 24;

/// Appends a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from the front of `input`, advancing it.
pub fn get_varint(input: &mut &[u8]) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input
            .split_first()
            .ok_or_else(|| TraceError::Corrupt("truncated varint".into()))?;
        *input = rest;
        if shift >= 64 {
            return Err(TraceError::Corrupt("varint overflow".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Stateful encoder: delta-encodes timestamps per stream.
#[derive(Debug, Default)]
pub struct Encoder {
    last_t: u64,
}

impl Encoder {
    /// Creates an encoder with timestamp base 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the encoding of `rec` to `buf`.
    ///
    /// Rank and seq are *not* stored per record: the stream is per-rank and
    /// dense, so the reader reconstructs both.
    pub fn encode(&mut self, rec: &EventRecord, buf: &mut Vec<u8>) {
        let (kind_byte, write_body): (u8, _) = match &rec.kind {
            EventKind::Init => (K_INIT, None),
            EventKind::Finalize => (K_FINALIZE, None),
            EventKind::Compute { work } => (K_COMPUTE, Some(vec![*work])),
            EventKind::Send {
                peer,
                tag,
                bytes,
                protocol,
            } => {
                let k = match protocol {
                    SendProtocol::Standard => K_SEND,
                    SendProtocol::Synchronous => K_SEND_SYNC,
                    SendProtocol::Buffered => K_SEND_BUF,
                    SendProtocol::Ready => K_SEND_RDY,
                };
                (k, Some(vec![u64::from(*peer), u64::from(*tag), *bytes]))
            }
            EventKind::Recv {
                peer,
                tag,
                bytes,
                posted_any,
            } => (
                if *posted_any { K_RECV_ANY } else { K_RECV },
                Some(vec![u64::from(*peer), u64::from(*tag), *bytes]),
            ),
            EventKind::Isend {
                peer,
                tag,
                bytes,
                req,
            } => (
                K_ISEND,
                Some(vec![u64::from(*peer), u64::from(*tag), *bytes, *req]),
            ),
            EventKind::Irecv {
                peer,
                tag,
                bytes,
                req,
                posted_any,
            } => (
                if *posted_any { K_IRECV_ANY } else { K_IRECV },
                Some(vec![u64::from(*peer), u64::from(*tag), *bytes, *req]),
            ),
            EventKind::Wait { req } => (K_WAIT, Some(vec![*req])),
            EventKind::WaitAll { reqs } => {
                let mut v = vec![reqs.len() as u64];
                v.extend(reqs.iter().copied());
                (K_WAITALL, Some(v))
            }
            EventKind::WaitSome { reqs, completed } => {
                let mut v = vec![reqs.len() as u64];
                v.extend(reqs.iter().copied());
                v.push(completed.len() as u64);
                v.extend(completed.iter().copied());
                (K_WAITSOME, Some(v))
            }
            EventKind::Barrier { comm_size } => (K_BARRIER, Some(vec![u64::from(*comm_size)])),
            EventKind::Bcast {
                root,
                bytes,
                comm_size,
            } => (
                K_BCAST,
                Some(vec![u64::from(*root), *bytes, u64::from(*comm_size)]),
            ),
            EventKind::Reduce {
                root,
                bytes,
                comm_size,
            } => (
                K_REDUCE,
                Some(vec![u64::from(*root), *bytes, u64::from(*comm_size)]),
            ),
            EventKind::Allreduce { bytes, comm_size } => {
                (K_ALLREDUCE, Some(vec![*bytes, u64::from(*comm_size)]))
            }
            EventKind::Test { req, completed } => (
                if *completed {
                    K_TEST_DONE
                } else {
                    K_TEST_PENDING
                },
                Some(vec![*req]),
            ),
            EventKind::Scatter {
                root,
                bytes,
                comm_size,
            } => (
                K_SCATTER,
                Some(vec![u64::from(*root), *bytes, u64::from(*comm_size)]),
            ),
            EventKind::Gather {
                root,
                bytes,
                comm_size,
            } => (
                K_GATHER,
                Some(vec![u64::from(*root), *bytes, u64::from(*comm_size)]),
            ),
            EventKind::Allgather { bytes, comm_size } => {
                (K_ALLGATHER, Some(vec![*bytes, u64::from(*comm_size)]))
            }
            EventKind::Alltoall { bytes, comm_size } => {
                (K_ALLTOALL, Some(vec![*bytes, u64::from(*comm_size)]))
            }
        };
        buf.push(kind_byte);
        let dt_start = rec.t_start.wrapping_sub(self.last_t);
        put_varint(buf, dt_start);
        put_varint(buf, rec.t_end - rec.t_start);
        self.last_t = rec.t_end;
        if let Some(fields) = write_body {
            for f in fields {
                put_varint(buf, f);
            }
        }
    }
}

/// Stateful decoder mirroring [`Encoder`].
#[derive(Debug)]
pub struct Decoder {
    last_t: u64,
    rank: u32,
    next_seq: u64,
}

impl Decoder {
    /// Creates a decoder producing records attributed to `rank`.
    pub fn new(rank: u32) -> Self {
        Self {
            last_t: 0,
            rank,
            next_seq: 0,
        }
    }

    /// Resets per-frame state at a v2 frame boundary: the timestamp delta
    /// base returns to 0 (each frame's first record carries an absolute
    /// timestamp) and sequence numbering continues from the frame's
    /// recorded `first_seq`, so frames decode independently.
    pub fn reset_frame(&mut self, first_seq: u64) {
        self.last_t = 0;
        self.next_seq = first_seq;
    }

    /// Sequence number the next decoded record will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Decodes one record from the front of `input`, advancing it.
    /// Returns `None` when `input` is empty.
    pub fn decode(&mut self, input: &mut &[u8]) -> Result<Option<EventRecord>, TraceError> {
        let Some((&kind_byte, rest)) = input.split_first() else {
            return Ok(None);
        };
        *input = rest;
        let dt_start = get_varint(input)?;
        let dur = get_varint(input)?;
        let t_start = self.last_t.wrapping_add(dt_start);
        // Untrusted input: a garbage duration must surface as a decode
        // error, not an overflow panic.
        let t_end = t_start
            .checked_add(dur)
            .ok_or_else(|| TraceError::Corrupt("timestamp overflow".into()))?;
        // State commits (last_t, next_seq) happen only after the whole record
        // decodes: a partial decode must leave the decoder reusable so the
        // streaming reader can retry once more bytes arrive.

        let v = |input: &mut &[u8]| get_varint(input);
        let rank32 = |x: u64, what: &str| -> Result<u32, TraceError> {
            u32::try_from(x).map_err(|_| TraceError::Corrupt(format!("{what} out of range")))
        };
        let kind = match kind_byte {
            K_INIT => EventKind::Init,
            K_FINALIZE => EventKind::Finalize,
            K_COMPUTE => EventKind::Compute { work: v(input)? },
            K_SEND | K_SEND_SYNC | K_SEND_BUF | K_SEND_RDY => EventKind::Send {
                peer: rank32(v(input)?, "peer")?,
                tag: rank32(v(input)?, "tag")?,
                bytes: v(input)?,
                protocol: match kind_byte {
                    K_SEND_SYNC => SendProtocol::Synchronous,
                    K_SEND_BUF => SendProtocol::Buffered,
                    K_SEND_RDY => SendProtocol::Ready,
                    _ => SendProtocol::Standard,
                },
            },
            K_RECV | K_RECV_ANY => EventKind::Recv {
                peer: rank32(v(input)?, "peer")?,
                tag: rank32(v(input)?, "tag")?,
                bytes: v(input)?,
                posted_any: kind_byte == K_RECV_ANY,
            },
            K_ISEND => EventKind::Isend {
                peer: rank32(v(input)?, "peer")?,
                tag: rank32(v(input)?, "tag")?,
                bytes: v(input)?,
                req: v(input)?,
            },
            K_IRECV | K_IRECV_ANY => EventKind::Irecv {
                peer: rank32(v(input)?, "peer")?,
                tag: rank32(v(input)?, "tag")?,
                bytes: v(input)?,
                req: v(input)?,
                posted_any: kind_byte == K_IRECV_ANY,
            },
            K_WAIT => EventKind::Wait { req: v(input)? },
            K_WAITALL => {
                let n = v(input)? as usize;
                let mut reqs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    reqs.push(v(input)?);
                }
                EventKind::WaitAll { reqs }
            }
            K_WAITSOME => {
                let n = v(input)? as usize;
                let mut reqs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    reqs.push(v(input)?);
                }
                let m = v(input)? as usize;
                let mut completed = Vec::with_capacity(m.min(1024));
                for _ in 0..m {
                    completed.push(v(input)?);
                }
                EventKind::WaitSome { reqs, completed }
            }
            K_BARRIER => EventKind::Barrier {
                comm_size: rank32(v(input)?, "comm")?,
            },
            K_BCAST => EventKind::Bcast {
                root: rank32(v(input)?, "root")?,
                bytes: v(input)?,
                comm_size: rank32(v(input)?, "comm")?,
            },
            K_REDUCE => EventKind::Reduce {
                root: rank32(v(input)?, "root")?,
                bytes: v(input)?,
                comm_size: rank32(v(input)?, "comm")?,
            },
            K_ALLREDUCE => EventKind::Allreduce {
                bytes: v(input)?,
                comm_size: rank32(v(input)?, "comm")?,
            },
            K_TEST_DONE | K_TEST_PENDING => EventKind::Test {
                req: v(input)?,
                completed: kind_byte == K_TEST_DONE,
            },
            K_SCATTER => EventKind::Scatter {
                root: rank32(v(input)?, "root")?,
                bytes: v(input)?,
                comm_size: rank32(v(input)?, "comm")?,
            },
            K_GATHER => EventKind::Gather {
                root: rank32(v(input)?, "root")?,
                bytes: v(input)?,
                comm_size: rank32(v(input)?, "comm")?,
            },
            K_ALLGATHER => EventKind::Allgather {
                bytes: v(input)?,
                comm_size: rank32(v(input)?, "comm")?,
            },
            K_ALLTOALL => EventKind::Alltoall {
                bytes: v(input)?,
                comm_size: rank32(v(input)?, "comm")?,
            },
            other => {
                return Err(TraceError::Corrupt(format!("unknown kind byte {other}")));
            }
        };
        self.last_t = t_end;
        let seq = self.next_seq;
        self.next_seq += 1;
        Ok(Some(EventRecord {
            rank: self.rank,
            seq,
            t_start,
            t_end,
            kind,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventRecord;

    fn roundtrip(records: Vec<EventRecord>) {
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        for r in &records {
            enc.encode(r, &mut buf);
        }
        let mut dec = Decoder::new(records.first().map_or(0, |r| r.rank));
        let mut input = buf.as_slice();
        let mut out = Vec::new();
        while let Some(r) = dec.decode(&mut input).unwrap() {
            out.push(r);
        }
        assert_eq!(records, out);
    }

    fn rec(seq: u64, t0: u64, t1: u64, kind: EventKind) -> EventRecord {
        EventRecord {
            rank: 3,
            seq,
            t_start: t0,
            t_end: t1,
            kind,
        }
    }

    #[test]
    fn roundtrip_all_kinds() {
        roundtrip(vec![
            rec(0, 0, 50, EventKind::Init),
            rec(1, 100, 150, EventKind::Compute { work: 490 }),
            rec(
                2,
                200,
                250,
                EventKind::Send {
                    peer: 1,
                    tag: 9,
                    bytes: 4096,
                    protocol: SendProtocol::Standard,
                },
            ),
            rec(
                3,
                300,
                350,
                EventKind::Send {
                    peer: 1,
                    tag: 9,
                    bytes: 1,
                    protocol: SendProtocol::Synchronous,
                },
            ),
            rec(
                4,
                400,
                450,
                EventKind::Send {
                    peer: 1,
                    tag: 9,
                    bytes: 1,
                    protocol: SendProtocol::Buffered,
                },
            ),
            rec(
                5,
                500,
                550,
                EventKind::Send {
                    peer: 1,
                    tag: 9,
                    bytes: 1,
                    protocol: SendProtocol::Ready,
                },
            ),
            rec(
                6,
                600,
                650,
                EventKind::Recv {
                    peer: 2,
                    tag: 0,
                    bytes: 64,
                    posted_any: true,
                },
            ),
            rec(
                7,
                700,
                750,
                EventKind::Isend {
                    peer: 0,
                    tag: 1,
                    bytes: 1,
                    req: 77,
                },
            ),
            rec(
                8,
                800,
                850,
                EventKind::Irecv {
                    peer: 1,
                    tag: 1,
                    bytes: 2,
                    req: 78,
                    posted_any: false,
                },
            ),
            rec(9, 900, 950, EventKind::Wait { req: 77 }),
            rec(
                10,
                1000,
                1050,
                EventKind::WaitAll {
                    reqs: vec![78, 79, 80],
                },
            ),
            rec(
                11,
                1100,
                1150,
                EventKind::WaitSome {
                    reqs: vec![81, 82],
                    completed: vec![82],
                },
            ),
            rec(
                12,
                1200,
                1250,
                EventKind::Test {
                    req: 5,
                    completed: true,
                },
            ),
            rec(
                13,
                1300,
                1350,
                EventKind::Test {
                    req: 5,
                    completed: false,
                },
            ),
            rec(14, 1400, 1450, EventKind::Barrier { comm_size: 128 }),
            rec(
                15,
                1500,
                1550,
                EventKind::Bcast {
                    root: 0,
                    bytes: 8,
                    comm_size: 128,
                },
            ),
            rec(
                16,
                1600,
                1650,
                EventKind::Reduce {
                    root: 5,
                    bytes: 8,
                    comm_size: 128,
                },
            ),
            rec(
                17,
                1700,
                1750,
                EventKind::Allreduce {
                    bytes: 16,
                    comm_size: 128,
                },
            ),
            rec(
                18,
                1800,
                1850,
                EventKind::Scatter {
                    root: 0,
                    bytes: 32,
                    comm_size: 128,
                },
            ),
            rec(
                19,
                1900,
                1950,
                EventKind::Gather {
                    root: 1,
                    bytes: 32,
                    comm_size: 128,
                },
            ),
            rec(
                20,
                2000,
                2050,
                EventKind::Allgather {
                    bytes: 8,
                    comm_size: 128,
                },
            ),
            rec(
                21,
                2100,
                2150,
                EventKind::Alltoall {
                    bytes: 4,
                    comm_size: 128,
                },
            ),
            rec(22, 2200, 2250, EventKind::Finalize),
        ]);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(vec![]);
    }

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(get_varint(&mut s).unwrap(), v);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn truncated_varint_errors() {
        let buf = [0x80u8, 0x80];
        let mut s = &buf[..];
        assert!(matches!(get_varint(&mut s), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn varint_overflow_errors() {
        let buf = [0xffu8; 11];
        let mut s = &buf[..];
        assert!(matches!(get_varint(&mut s), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn unknown_kind_errors() {
        let buf = [200u8, 0, 0];
        let mut dec = Decoder::new(0);
        let mut s = &buf[..];
        assert!(matches!(dec.decode(&mut s), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn delta_encoding_is_compact() {
        // Consecutive events with small gaps should cost only a few bytes each.
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        let base = 1_000_000_000_000u64; // large absolute time
        for i in 0..100u64 {
            enc.encode(
                &rec(i, base + i * 20, base + i * 20 + 10, EventKind::Init),
                &mut buf,
            );
        }
        // First record pays for the absolute base; the rest are tiny.
        assert!(buf.len() < 100 * 4 + 10, "len={}", buf.len());
    }

    #[test]
    fn decoder_assigns_dense_seq() {
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        for i in 0..3u64 {
            enc.encode(&rec(i, i * 10, i * 10 + 5, EventKind::Init), &mut buf);
        }
        let mut dec = Decoder::new(7);
        let mut s = buf.as_slice();
        let mut seqs = Vec::new();
        while let Some(r) = dec.decode(&mut s).unwrap() {
            assert_eq!(r.rank, 7);
            seqs.push(r.seq);
        }
        assert_eq!(seqs, vec![0, 1, 2]);
    }
}
