//! Out-of-core access to framed (`MPG2`) per-rank trace files.
//!
//! The streaming reader ([`crate::reader`]) already bounds memory to one
//! chunk plus one frame, but it still *copies* every byte through a heap
//! buffer and decodes strictly in file order on the caller's thread. This
//! module exploits the property the v2 frame layer was designed for — every
//! frame decodes standalone (absolute `first_seq` head, per-frame codec
//! reset) — to go further:
//!
//! * [`MappedFile`] maps a rank file read-only via `mmap(2)` (falling back
//!   to a heap read where mapping is unavailable), so trace bytes live in
//!   the page cache, not the process heap, and the kernel reclaims them
//!   under pressure;
//! * [`FrameIndex::scan`] locates every frame boundary in one cheap pass
//!   that parses only the 9-byte headers and the leading `first_seq`
//!   varint — no CRC work, no record decode;
//! * [`FrameCursor`] decodes frames lazily against the map, validating each
//!   frame's CRC and the chained whole-file checksum exactly as the strict
//!   reader would, just deferred to the moment the bytes are actually read;
//! * [`OocTraceSet::streams_prefetch`] decodes each rank on its own worker
//!   thread with a bounded frame lookahead, so a replay engine consuming
//!   the streams overlaps decode with traversal while peak memory stays
//!   `O(ranks × lookahead × frame)`.
//!
//! All four compose behind the same [`BoxedEventStream`] shape the replay
//! engine already consumes, which is what makes replay of traces bigger
//! than RAM a drop-in path rather than a second engine.

use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::codec::{get_varint, Decoder, MAGIC};
use crate::event::EventRecord;
use crate::fileset::BoxedEventStream;
use crate::frame::{
    crc32c, crc32c_append, parse_frame_header, Footer, FOOTER_LEN, FOOTER_MARKER, FRAME_HEADER_LEN,
    FRAME_MARKER, MAGIC2,
};
use crate::TraceError;

/// A read-only byte view of a file, memory-mapped when the platform allows
/// it and heap-buffered otherwise. The view is immutable and shareable
/// across threads; dropping the last handle unmaps.
pub struct MappedFile {
    ptr: *const u8,
    len: usize,
    /// Fallback storage when the file could not be mapped (non-unix
    /// platform, empty file, or a refused `mmap`). `ptr` points into it.
    heap: Option<Vec<u8>>,
}

// SAFETY: the mapping is read-only (PROT_READ, MAP_PRIVATE) and never
// mutated after construction, so shared references from any thread are fine.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MADV_SEQUENTIAL: c_int = 2;
    pub const MADV_DONTNEED: c_int = 4;
}

impl MappedFile {
    /// Opens and maps `path` read-only. Falls back to reading the whole
    /// file into a heap buffer when mapping is unavailable; the result is
    /// then correct but no longer out-of-core.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        #[cfg(unix)]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            // SAFETY: mapping a freshly-opened fd read-only with a length
            // taken from its metadata; the fd outlives the call and the
            // mapping survives its close.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 {
                // Frames are consumed front to back; tell the kernel so
                // readahead works for us. Failure is harmless.
                // SAFETY: ptr/len describe the mapping established above.
                unsafe { sys::madvise(ptr, len, sys::MADV_SEQUENTIAL) };
                return Ok(Self {
                    ptr: ptr as *const u8,
                    len,
                    heap: None,
                });
            }
        }
        let heap = std::fs::read(path)?;
        Ok(Self {
            ptr: heap.as_ptr(),
            len: heap.len(),
            heap: Some(heap),
        })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len describe either a live mapping or the owned heap
        // buffer; both are valid and immutable for `self`'s lifetime.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// File length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length file.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the bytes are backed by a real `mmap` (page cache) rather
    /// than the heap fallback.
    pub fn is_mapped(&self) -> bool {
        self.heap.is_none()
    }

    /// Tells the kernel the given byte range will not be touched again, so
    /// its resident pages can be dropped — this is what keeps a streaming
    /// consumer's RSS flat instead of growing with the file. The range is
    /// shrunk inward to page boundaries; a re-read after release is still
    /// correct (the pages refault from the page cache), just slower, so
    /// concurrent cursors over one shared map stay safe. No-op for the
    /// heap fallback.
    pub fn release(&self, range: std::ops::Range<usize>) {
        #[cfg(unix)]
        {
            const PAGE: usize = 4096;
            if self.heap.is_some() {
                return;
            }
            let start = range.start.div_ceil(PAGE) * PAGE;
            let end = (range.end.min(self.len) / PAGE) * PAGE;
            if end <= start {
                return;
            }
            // SAFETY: [start, end) lies inside the live mapping and is
            // page-aligned; DONTNEED on a read-only private file mapping
            // only drops residency, never content.
            unsafe {
                sys::madvise(
                    self.ptr.add(start) as *mut std::os::raw::c_void,
                    end - start,
                    sys::MADV_DONTNEED,
                );
            }
        }
        #[cfg(not(unix))]
        let _ = range;
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.heap.is_none() && self.len > 0 {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // exactly once.
            unsafe {
                sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
            }
        }
    }
}

impl std::fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.len)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// One frame's location inside a mapped rank file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameEntry {
    /// Byte offset of the payload (past the 9-byte header).
    pub payload_off: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Sequence number of the frame's first record (the payload's leading
    /// varint), read during the scan so random access can seek by seq.
    pub first_seq: u64,
}

/// Frame-boundary index of one sealed `MPG2` file: every frame's location
/// plus the parsed footer. Built by [`FrameIndex::scan`] in one pass that
/// reads only headers — CRCs are validated later, lazily, by the cursor.
#[derive(Debug, Clone)]
pub struct FrameIndex {
    frames: Vec<FrameEntry>,
    footer: Footer,
}

impl FrameIndex {
    /// Scans `bytes` (a whole rank file) for frame boundaries. Strict about
    /// structure — bad magic, a torn tail, a missing or lying footer are
    /// typed errors, exactly as the streaming reader treats them — but
    /// deliberately skips all CRC and record-decode work: a 1 GiB file
    /// indexes by touching ~13 bytes per frame.
    pub fn scan(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < 4 || &bytes[..4] == MAGIC {
            return Err(TraceError::Corrupt(
                "out-of-core access needs a framed (MPG2) file".into(),
            ));
        }
        if &bytes[..4] != MAGIC2 {
            return Err(TraceError::Corrupt(format!(
                "bad magic {:?}, expected {MAGIC2:?}",
                &bytes[..4]
            )));
        }
        let mut frames = Vec::new();
        let mut pos = 4usize;
        loop {
            let Some(&marker) = bytes.get(pos) else {
                return Err(TraceError::Unsealed(
                    "stream ended without a sealed footer (writer crashed?)".into(),
                ));
            };
            match marker {
                FRAME_MARKER => {
                    let hdr = parse_frame_header(&bytes[pos..]).ok_or_else(|| {
                        TraceError::Corrupt(format!("bad frame header at offset {pos}"))
                    })?;
                    let payload_off = pos + FRAME_HEADER_LEN;
                    let end = payload_off + hdr.len;
                    if end > bytes.len() {
                        return Err(TraceError::Unsealed("truncated frame payload".into()));
                    }
                    let mut head = &bytes[payload_off..end];
                    let first_seq = get_varint(&mut head)?;
                    frames.push(FrameEntry {
                        payload_off,
                        payload_len: hdr.len,
                        first_seq,
                    });
                    pos = end;
                }
                FOOTER_MARKER => {
                    if pos + FOOTER_LEN > bytes.len() {
                        return Err(TraceError::Unsealed("truncated footer".into()));
                    }
                    let footer = Footer::parse_strict(&bytes[pos..])?;
                    if pos + FOOTER_LEN != bytes.len() {
                        return Err(TraceError::Corrupt(
                            "trailing bytes after sealed footer".into(),
                        ));
                    }
                    if footer.frames != frames.len() as u64 {
                        return Err(TraceError::Corrupt(format!(
                            "footer says {} frames, index found {}",
                            footer.frames,
                            frames.len()
                        )));
                    }
                    return Ok(Self { frames, footer });
                }
                other => {
                    return Err(TraceError::Corrupt(format!(
                        "expected frame or footer marker at offset {pos}, found byte {other:#04x}"
                    )));
                }
            }
        }
    }

    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Record count promised by the footer.
    pub fn num_records(&self) -> u64 {
        self.footer.records
    }

    /// The sealed footer.
    pub fn footer(&self) -> &Footer {
        &self.footer
    }

    /// The indexed frames, in file order.
    pub fn frames(&self) -> &[FrameEntry] {
        &self.frames
    }
}

/// Lazily decodes one rank's records straight off a [`MappedFile`], frame
/// by frame. CRC validation (per-frame and the chained whole-file
/// checksum), sequence contiguity and footer counts are enforced exactly
/// as in the strict streaming reader — only *later*, when each frame is
/// first touched. Peak heap is the decoder state: payload bytes are read
/// in place from the map.
pub struct FrameCursor {
    map: Arc<MappedFile>,
    index: Arc<FrameIndex>,
    decoder: Decoder,
    /// Next frame to open.
    next_frame: usize,
    /// Remaining byte range of the currently open frame's record body.
    body: std::ops::Range<usize>,
    payload_crc: u32,
    records_seen: u64,
    last_t_end: u64,
    failed: bool,
    finished: bool,
    /// Byte offset below which consumed frames have been released back to
    /// the kernel ([`MappedFile::release`]).
    retired: usize,
}

/// Consumed frames are released to the kernel in chunks of at least this
/// many bytes — large enough that the `madvise` syscall cost vanishes,
/// small enough that peak RSS stays within a few MiB of the live window.
const RETIRE_CHUNK: usize = 1 << 20;

impl FrameCursor {
    /// Creates a cursor over a scanned file, attributing records to `rank`.
    pub fn new(map: Arc<MappedFile>, index: Arc<FrameIndex>, rank: u32) -> Self {
        Self {
            map,
            index,
            decoder: Decoder::new(rank),
            next_frame: 0,
            body: 0..0,
            payload_crc: 0,
            records_seen: 0,
            last_t_end: 0,
            failed: false,
            finished: false,
            retired: 0,
        }
    }

    /// Opens the next frame: validates its CRC, checks sequence contiguity
    /// and advances the chained checksum. Returns false at end of frames.
    fn open_next_frame(&mut self) -> Result<bool, TraceError> {
        let Some(entry) = self.index.frames().get(self.next_frame).copied() else {
            // Stream exhausted: everything before the footer is history.
            self.retire_below(self.map.len());
            return Ok(false);
        };
        // Everything before this frame's header has been fully consumed;
        // hand those pages back once enough have accumulated.
        self.retire_below(entry.payload_off.saturating_sub(FRAME_HEADER_LEN));
        let payload = &self.map.bytes()[entry.payload_off..entry.payload_off + entry.payload_len];
        let hdr = parse_frame_header(&self.map.bytes()[entry.payload_off - FRAME_HEADER_LEN..])
            .ok_or_else(|| TraceError::Corrupt("frame header vanished under cursor".into()))?;
        if crc32c(payload) != hdr.crc {
            return Err(TraceError::Checksum(format!(
                "frame {} payload checksum mismatch",
                self.next_frame
            )));
        }
        self.payload_crc = crc32c_append(self.payload_crc, payload);
        let mut head = payload;
        let first_seq = get_varint(&mut head)?;
        if first_seq != self.decoder.next_seq() {
            return Err(TraceError::Corrupt(format!(
                "frame sequence gap: expected {}, found {}",
                self.decoder.next_seq(),
                first_seq
            )));
        }
        self.decoder.reset_frame(first_seq);
        let body_start = entry.payload_off + (entry.payload_len - head.len());
        self.body = body_start..entry.payload_off + entry.payload_len;
        self.next_frame += 1;
        Ok(true)
    }

    /// Releases consumed bytes below `upto` once at least [`RETIRE_CHUNK`]
    /// of them have accumulated, keeping the cursor's resident window
    /// bounded however large the file is.
    fn retire_below(&mut self, upto: usize) {
        if upto.saturating_sub(self.retired) >= RETIRE_CHUNK {
            self.map.release(self.retired..upto);
            self.retired = upto;
        }
    }

    fn check_footer(&self) -> Result<(), TraceError> {
        let footer = self.index.footer();
        if footer.records != self.records_seen || footer.last_t_end != self.last_t_end {
            return Err(TraceError::Corrupt(format!(
                "footer counts disagree with stream: footer says {} records / last t_end {}, \
                 stream had {} / {}",
                footer.records, footer.last_t_end, self.records_seen, self.last_t_end
            )));
        }
        if footer.payload_crc != self.payload_crc {
            return Err(TraceError::Checksum(
                "whole-file payload checksum mismatch".into(),
            ));
        }
        Ok(())
    }

    fn try_decode(&mut self) -> Result<Option<EventRecord>, TraceError> {
        loop {
            if !self.body.is_empty() {
                let mut slice = &self.map.bytes()[self.body.clone()];
                match self.decoder.decode(&mut slice)? {
                    Some(rec) => {
                        self.body.start = self.body.end - slice.len();
                        self.records_seen += 1;
                        self.last_t_end = rec.t_end;
                        return Ok(Some(rec));
                    }
                    None => unreachable!("decode consumed an empty slice it was not given"),
                }
            }
            if !self.open_next_frame()? {
                if !self.finished {
                    self.finished = true;
                    self.check_footer()?;
                }
                return Ok(None);
            }
        }
    }

    /// Decodes the remainder of the currently open frame plus the next
    /// whole frame into `out`. Returns false once the stream is exhausted
    /// (footer validated). This is the prefetch workers' unit of work: one
    /// frame per channel send keeps the lookahead bound meaningful.
    fn next_batch(&mut self, out: &mut Vec<EventRecord>) -> Result<bool, TraceError> {
        if self.finished {
            return Ok(false);
        }
        let stop_after = self.next_frame;
        loop {
            match self.try_decode()? {
                Some(rec) => {
                    out.push(rec);
                    if self.body.is_empty() && self.next_frame > stop_after {
                        return Ok(true);
                    }
                }
                None => return Ok(!out.is_empty()),
            }
        }
    }
}

impl Iterator for FrameCursor {
    type Item = Result<EventRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.try_decode() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// A per-rank stream whose frames are decoded ahead of the consumer by a
/// dedicated worker thread, at most `lookahead` frames deep. Dropping the
/// stream stops and joins the worker.
pub struct PrefetchStream {
    rx: Option<Receiver<Result<Vec<EventRecord>, TraceError>>>,
    handle: Option<JoinHandle<()>>,
    current: std::vec::IntoIter<EventRecord>,
    failed: bool,
}

impl PrefetchStream {
    fn spawn(mut cursor: FrameCursor, lookahead: usize) -> Self {
        let (tx, rx) = sync_channel(lookahead.max(1));
        let handle = std::thread::spawn(move || loop {
            let mut batch = Vec::new();
            match cursor.next_batch(&mut batch) {
                Ok(true) => {
                    if tx.send(Ok(batch)).is_err() {
                        return; // consumer gone
                    }
                }
                Ok(false) => return,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        });
        Self {
            rx: Some(rx),
            handle: Some(handle),
            current: Vec::new().into_iter(),
            failed: false,
        }
    }
}

impl Iterator for PrefetchStream {
    type Item = Result<EventRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(rec) = self.current.next() {
                return Some(Ok(rec));
            }
            match self.rx.as_ref()?.recv() {
                Ok(Ok(batch)) => self.current = batch.into_iter(),
                Ok(Err(e)) => {
                    self.failed = true;
                    return Some(Err(e));
                }
                Err(_) => return None, // worker finished cleanly
            }
        }
    }
}

impl Drop for PrefetchStream {
    fn drop(&mut self) {
        // Disconnect first so a worker blocked on a full channel wakes up,
        // then join it.
        drop(self.rx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// An on-disk trace set opened for out-of-core reading: every rank file
/// mapped and frame-indexed, nothing decoded. Decode cost is paid lazily,
/// per frame, by whichever stream (or prefetch worker) first touches it.
#[derive(Debug)]
pub struct OocTraceSet {
    dir: PathBuf,
    maps: Vec<Arc<MappedFile>>,
    indexes: Vec<Arc<FrameIndex>>,
}

impl OocTraceSet {
    /// Default frame lookahead per rank for [`OocTraceSet::streams_prefetch`].
    pub const DEFAULT_LOOKAHEAD: usize = 4;

    /// Opens `dir` (a [`crate::FileTraceSet`] directory), mapping and
    /// indexing every rank file. Strict like `FileTraceSet::open`: all
    /// ranks must be present, framed and sealed.
    pub fn open(dir: &Path) -> Result<Self, TraceError> {
        let ranks = crate::FileTraceSet::read_meta(dir)?;
        let missing: Vec<u32> = (0..ranks)
            .filter(|&r| !crate::FileTraceSet::rank_path(dir, r).exists())
            .map(|r| r as u32)
            .collect();
        if !missing.is_empty() {
            return Err(TraceError::MissingRanks(missing));
        }
        let mut maps = Vec::with_capacity(ranks);
        let mut indexes = Vec::with_capacity(ranks);
        for r in 0..ranks {
            let map = MappedFile::open(&crate::FileTraceSet::rank_path(dir, r))?;
            let index = FrameIndex::scan(map.bytes()).map_err(|e| match e {
                TraceError::Corrupt(m) => TraceError::Corrupt(format!("rank {r}: {m}")),
                TraceError::Unsealed(m) => TraceError::Unsealed(format!("rank {r}: {m}")),
                other => other,
            })?;
            maps.push(Arc::new(map));
            indexes.push(Arc::new(index));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            maps,
            indexes,
        })
    }

    /// The directory this set was opened from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.maps.len()
    }

    /// Total records across ranks, from the footers (no decode).
    pub fn total_records(&self) -> u64 {
        self.indexes.iter().map(|i| i.num_records()).sum()
    }

    /// Total file bytes across ranks.
    pub fn total_bytes(&self) -> u64 {
        self.maps.iter().map(|m| m.len() as u64).sum()
    }

    /// One rank's frame index.
    pub fn frame_index(&self, rank: usize) -> &FrameIndex {
        &self.indexes[rank]
    }

    /// Lazy (same-thread) cursor over one rank.
    pub fn cursor(&self, rank: usize) -> FrameCursor {
        FrameCursor::new(
            Arc::clone(&self.maps[rank]),
            Arc::clone(&self.indexes[rank]),
            rank as u32,
        )
    }

    /// Per-rank lazy streams in the shape the replay engine consumes.
    /// Decoding happens on the consuming thread, frame by frame.
    pub fn streams(&self) -> Vec<BoxedEventStream<'static>> {
        (0..self.num_ranks())
            .map(|r| Box::new(self.cursor(r)) as BoxedEventStream<'static>)
            .collect()
    }

    /// Per-rank streams decoded by worker threads with a bounded frame
    /// lookahead (per rank). The consumer sees the same records in the
    /// same order as [`OocTraceSet::streams`]; only the decode moves off
    /// its thread.
    pub fn streams_prefetch(&self, lookahead: usize) -> Vec<BoxedEventStream<'static>> {
        (0..self.num_ranks())
            .map(|r| {
                Box::new(PrefetchStream::spawn(self.cursor(r), lookahead))
                    as BoxedEventStream<'static>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::fileset::MemTrace;
    use crate::writer::TraceWriter;

    fn rec(rank: u32, seq: u64, t: u64) -> EventRecord {
        EventRecord {
            rank,
            seq,
            t_start: t,
            t_end: t + 5,
            kind: EventKind::Compute { work: 5 },
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mpg-ooc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_set(dir: &Path, ranks: u32, per_rank: u64) -> MemTrace {
        let mut t = MemTrace::new(ranks as usize);
        for r in 0..ranks {
            for s in 0..per_rank {
                t.push(rec(r, s, s * 10));
            }
        }
        // Small frames so the index has many entries.
        std::fs::create_dir_all(dir).unwrap();
        for r in 0..ranks as usize {
            let f = File::create(crate::FileTraceSet::rank_path(dir, r)).unwrap();
            let mut w = TraceWriter::new(std::io::BufWriter::new(f), 256);
            for e in t.rank(r) {
                w.record(e).unwrap();
            }
            w.finish().unwrap();
        }
        std::fs::write(dir.join("meta.txt"), format!("ranks={ranks}\n")).unwrap();
        t
    }

    #[test]
    fn mapped_file_reads_back() {
        let dir = tmp_dir("map");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("f.bin");
        std::fs::write(&p, b"hello map").unwrap();
        let m = MappedFile::open(&p).unwrap();
        assert_eq!(m.bytes(), b"hello map");
        assert_eq!(m.len(), 9);
        assert!(!m.is_empty());
        #[cfg(unix)]
        assert!(m.is_mapped());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_file_maps_as_empty() {
        let dir = tmp_dir("map0");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("f.bin");
        std::fs::write(&p, b"").unwrap();
        let m = MappedFile::open(&p).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.bytes(), b"");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_counts_frames_and_records() {
        let dir = tmp_dir("idx");
        sample_set(&dir, 1, 500);
        let set = OocTraceSet::open(&dir).unwrap();
        assert_eq!(set.num_ranks(), 1);
        assert_eq!(set.total_records(), 500);
        let idx = set.frame_index(0);
        assert!(idx.num_frames() > 3, "want many frames, got {idx:?}");
        // first_seq values are strictly increasing.
        let seqs: Vec<u64> = idx.frames().iter().map(|f| f.first_seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(seqs[0], 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursor_matches_strict_reader() {
        let dir = tmp_dir("cursor");
        let t = sample_set(&dir, 2, 300);
        let set = OocTraceSet::open(&dir).unwrap();
        for r in 0..2 {
            let out: Vec<_> = set.cursor(r).collect::<Result<_, _>>().unwrap();
            assert_eq!(out, t.rank(r));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prefetch_streams_match_lazy_streams() {
        let dir = tmp_dir("prefetch");
        let t = sample_set(&dir, 3, 400);
        let set = OocTraceSet::open(&dir).unwrap();
        for (r, s) in set.streams_prefetch(2).into_iter().enumerate() {
            let out: Vec<_> = s.collect::<Result<_, _>>().unwrap();
            assert_eq!(out, t.rank(r), "rank {r}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropping_prefetch_early_joins_worker() {
        let dir = tmp_dir("drop");
        sample_set(&dir, 1, 2000);
        let set = OocTraceSet::open(&dir).unwrap();
        let mut streams = set.streams_prefetch(1);
        let mut s = streams.pop().unwrap();
        // Consume a couple of records, then drop mid-stream: the worker
        // must unblock and exit (Drop joins it; a deadlock hangs the test).
        assert!(s.next().unwrap().is_ok());
        assert!(s.next().unwrap().is_ok());
        drop(s);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_frame_surfaces_lazily() {
        let dir = tmp_dir("lazycrc");
        sample_set(&dir, 1, 500);
        // Flip a byte inside a late frame's payload: the scan must still
        // succeed (it reads no payload), the cursor must fail on decode.
        let p = crate::FileTraceSet::rank_path(&dir, 0);
        let mut bytes = std::fs::read(&p).unwrap();
        let set_len = bytes.len();
        bytes[set_len / 2] ^= 0x20;
        std::fs::write(&p, &bytes).unwrap();
        let set = OocTraceSet::open(&dir).expect("scan ignores payload damage");
        let results: Vec<_> = set.cursor(0).collect();
        assert!(results.iter().any(|r| r.is_err()));
        assert!(results.first().unwrap().is_ok(), "early frames still read");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsealed_file_fails_scan() {
        let dir = tmp_dir("unsealed");
        sample_set(&dir, 1, 200);
        let p = crate::FileTraceSet::rank_path(&dir, 0);
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - FOOTER_LEN - 1]).unwrap();
        assert!(matches!(
            OocTraceSet::open(&dir),
            Err(TraceError::Unsealed(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_v1_refused() {
        let dir = tmp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = TraceWriter::legacy_v1(Vec::new(), 1 << 16);
        for s in 0..10 {
            w.record(&rec(0, s, s * 10)).unwrap();
        }
        std::fs::write(crate::FileTraceSet::rank_path(&dir, 0), w.finish().unwrap()).unwrap();
        std::fs::write(dir.join("meta.txt"), "ranks=1\n").unwrap();
        assert!(matches!(
            OocTraceSet::open(&dir),
            Err(TraceError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
