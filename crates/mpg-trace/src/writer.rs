//! Buffered trace writer mirroring the paper's PMPI wrapper (§4).
//!
//! "…records the event in a memory resident buffer. The buffer is dumped to
//! an event trace file when it becomes full, and is then reset to empty for
//! future events. The size of this buffer can be tuned to compensate for
//! event frequency and overhead for I/O."
//!
//! Since format v2 every buffer dump becomes one self-delimiting,
//! CRC32C-checksummed frame (see [`crate::frame`]), and [`finish`] seals the
//! stream with a footer. A writer killed mid-run therefore leaves behind a
//! file whose complete frames are all still recoverable by the salvage
//! reader; only the records still sitting in the memory-resident buffer are
//! lost — exactly the paper's crash exposure, now bounded and detectable.
//!
//! [`finish`]: TraceWriter::finish

use std::io::Write;

use crate::codec::{put_varint, Encoder, MAGIC};
use crate::event::EventRecord;
use crate::frame::{put_frame, Footer, MAGIC2};
use crate::TraceError;

/// Buffered, flush-on-full writer for one rank's event stream.
pub struct TraceWriter<W: Write> {
    sink: W,
    encoder: Encoder,
    buf: Vec<u8>,
    capacity: usize,
    flushes: u64,
    records: u64,
    wrote_header: bool,
    /// Sequence number of the first record in the current (unflushed)
    /// buffer; written at the head of the frame payload.
    frame_first_seq: u64,
    /// CRC32C chained over every flushed frame payload.
    payload_crc: u32,
    /// `t_end` of the last record written (the footer's clock summary).
    last_t_end: u64,
    /// When set, write the legacy v1 format: raw record stream, no frames,
    /// no footer. Exists so tests can produce v1 fixtures for the legacy
    /// decoder; new traces are always framed.
    legacy_v1: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer whose memory-resident buffer holds roughly
    /// `buffer_bytes` of encoded records before spilling to `sink` as one
    /// checksummed frame.
    pub fn new(sink: W, buffer_bytes: usize) -> Self {
        Self {
            sink,
            encoder: Encoder::new(),
            buf: Vec::with_capacity(buffer_bytes.max(64)),
            capacity: buffer_bytes.max(64),
            flushes: 0,
            records: 0,
            wrote_header: false,
            frame_first_seq: 0,
            payload_crc: 0,
            last_t_end: 0,
            legacy_v1: false,
        }
    }

    /// Creates a writer emitting the legacy v1 (`MPG1`) format — an
    /// unframed, unsealed record stream. Only for producing fixtures that
    /// exercise the legacy decoder.
    pub fn legacy_v1(sink: W, buffer_bytes: usize) -> Self {
        Self {
            legacy_v1: true,
            ..Self::new(sink, buffer_bytes)
        }
    }

    fn write_header(&mut self) -> Result<(), TraceError> {
        if !self.wrote_header {
            self.sink
                .write_all(if self.legacy_v1 { MAGIC } else { MAGIC2 })?;
            self.wrote_header = true;
        }
        Ok(())
    }

    /// Records one event; spills the buffer as a frame when full.
    pub fn record(&mut self, rec: &EventRecord) -> Result<(), TraceError> {
        self.write_header()?;
        self.encoder.encode(rec, &mut self.buf);
        self.records += 1;
        self.last_t_end = rec.t_end;
        if self.buf.len() >= self.capacity {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<(), TraceError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        if self.legacy_v1 {
            self.sink.write_all(&self.buf)?;
        } else {
            let mut payload = Vec::with_capacity(self.buf.len() + 10);
            put_varint(&mut payload, self.frame_first_seq);
            payload.extend_from_slice(&self.buf);
            let mut framed = Vec::with_capacity(payload.len() + 9);
            put_frame(&mut framed, &payload);
            self.sink.write_all(&framed)?;
            self.payload_crc = crate::frame::crc32c_append(self.payload_crc, &payload);
            // The next frame must decode standalone: restart the timestamp
            // delta base and note where its sequence numbering begins.
            self.encoder = Encoder::new();
            self.frame_first_seq = self.records;
        }
        self.buf.clear();
        self.flushes += 1;
        Ok(())
    }

    /// Flushes remaining buffered records, seals the stream with the
    /// footer (v2), and returns the sink.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.write_header()?;
        self.spill()?;
        if !self.legacy_v1 {
            let footer = Footer {
                records: self.records,
                frames: self.flushes,
                last_t_end: self.last_t_end,
                payload_crc: self.payload_crc,
            };
            let mut buf = Vec::new();
            footer.put(&mut buf);
            self.sink.write_all(&buf)?;
        }
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Number of buffer spills (= frames written) so far
    /// (tracer-overhead diagnostics).
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Number of records written so far.
    pub fn record_count(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::frame::{checked_frame_at, FOOTER_LEN};
    use crate::reader::TraceReader;

    fn rec(seq: u64, t: u64) -> EventRecord {
        EventRecord {
            rank: 0,
            seq,
            t_start: t,
            t_end: t + 5,
            kind: EventKind::Compute { work: 5 },
        }
    }

    #[test]
    fn writes_header_and_roundtrips() {
        let mut w = TraceWriter::new(Vec::new(), 1 << 16);
        for i in 0..10 {
            w.record(&rec(i, i * 10)).unwrap();
        }
        let bytes = w.finish().unwrap();
        assert_eq!(&bytes[..4], MAGIC2);
        let out: Vec<_> = TraceReader::new(bytes.as_slice(), 0)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[9], rec(9, 90));
    }

    #[test]
    fn small_buffer_flushes_repeatedly() {
        let mut w = TraceWriter::new(Vec::new(), 64);
        for i in 0..1000 {
            w.record(&rec(i, i * 10)).unwrap();
        }
        assert!(w.flush_count() > 5, "flushes={}", w.flush_count());
        assert_eq!(w.record_count(), 1000);
        let bytes = w.finish().unwrap();
        let n = TraceReader::new(bytes.as_slice(), 0).unwrap().count();
        assert_eq!(n, 1000);
    }

    #[test]
    fn empty_trace_still_has_header_and_seal() {
        let w = TraceWriter::new(Vec::new(), 1024);
        let bytes = w.finish().unwrap();
        assert_eq!(&bytes[..4], MAGIC2);
        assert_eq!(bytes.len(), 4 + FOOTER_LEN);
        assert_eq!(TraceReader::new(bytes.as_slice(), 0).unwrap().count(), 0);
    }

    #[test]
    fn frames_validate_and_footer_counts_match() {
        let mut w = TraceWriter::new(Vec::new(), 64);
        for i in 0..100 {
            w.record(&rec(i, i * 10)).unwrap();
        }
        let bytes = w.finish().unwrap();
        // Walk the frames by hand.
        let mut pos = 4;
        let mut frames = 0u64;
        while bytes[pos] == crate::frame::FRAME_MARKER {
            let (_, total) = checked_frame_at(&bytes[pos..]).expect("frame must validate");
            pos += total;
            frames += 1;
        }
        let footer = Footer::parse(&bytes[pos..]).expect("footer must validate");
        assert_eq!(pos + FOOTER_LEN, bytes.len());
        assert_eq!(footer.records, 100);
        assert_eq!(footer.frames, frames);
        assert_eq!(footer.last_t_end, 99 * 10 + 5);
    }

    #[test]
    fn legacy_v1_writer_roundtrips_unsealed() {
        let mut w = TraceWriter::legacy_v1(Vec::new(), 64);
        for i in 0..20 {
            w.record(&rec(i, i * 10)).unwrap();
        }
        let bytes = w.finish().unwrap();
        assert_eq!(&bytes[..4], MAGIC);
        let out: Vec<_> = TraceReader::new(bytes.as_slice(), 0)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(out.len(), 20);
    }
}
