//! Buffered trace writer mirroring the paper's PMPI wrapper (§4).
//!
//! "…records the event in a memory resident buffer. The buffer is dumped to
//! an event trace file when it becomes full, and is then reset to empty for
//! future events. The size of this buffer can be tuned to compensate for
//! event frequency and overhead for I/O."

use std::io::Write;

use crate::codec::{Encoder, MAGIC};
use crate::event::EventRecord;
use crate::TraceError;

/// Buffered, flush-on-full writer for one rank's event stream.
pub struct TraceWriter<W: Write> {
    sink: W,
    encoder: Encoder,
    buf: Vec<u8>,
    capacity: usize,
    flushes: u64,
    records: u64,
    wrote_header: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer whose memory-resident buffer holds roughly
    /// `buffer_bytes` of encoded records before spilling to `sink`.
    pub fn new(sink: W, buffer_bytes: usize) -> Self {
        Self {
            sink,
            encoder: Encoder::new(),
            buf: Vec::with_capacity(buffer_bytes.max(64)),
            capacity: buffer_bytes.max(64),
            flushes: 0,
            records: 0,
            wrote_header: false,
        }
    }

    /// Records one event; spills the buffer when full.
    pub fn record(&mut self, rec: &EventRecord) -> Result<(), TraceError> {
        if !self.wrote_header {
            self.sink.write_all(MAGIC)?;
            self.wrote_header = true;
        }
        self.encoder.encode(rec, &mut self.buf);
        self.records += 1;
        if self.buf.len() >= self.capacity {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<(), TraceError> {
        if !self.buf.is_empty() {
            self.sink.write_all(&self.buf)?;
            self.buf.clear();
            self.flushes += 1;
        }
        Ok(())
    }

    /// Flushes remaining buffered records and the sink; returns the sink.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if !self.wrote_header {
            self.sink.write_all(MAGIC)?;
        }
        self.spill()?;
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Number of buffer spills so far (tracer-overhead diagnostics).
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Number of records written so far.
    pub fn record_count(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::reader::TraceReader;

    fn rec(seq: u64, t: u64) -> EventRecord {
        EventRecord {
            rank: 0,
            seq,
            t_start: t,
            t_end: t + 5,
            kind: EventKind::Compute { work: 5 },
        }
    }

    #[test]
    fn writes_header_and_roundtrips() {
        let mut w = TraceWriter::new(Vec::new(), 1 << 16);
        for i in 0..10 {
            w.record(&rec(i, i * 10)).unwrap();
        }
        let bytes = w.finish().unwrap();
        assert_eq!(&bytes[..4], MAGIC);
        let out: Vec<_> = TraceReader::new(bytes.as_slice(), 0)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[9], rec(9, 90));
    }

    #[test]
    fn small_buffer_flushes_repeatedly() {
        let mut w = TraceWriter::new(Vec::new(), 64);
        for i in 0..1000 {
            w.record(&rec(i, i * 10)).unwrap();
        }
        assert!(w.flush_count() > 5, "flushes={}", w.flush_count());
        assert_eq!(w.record_count(), 1000);
        let bytes = w.finish().unwrap();
        let n = TraceReader::new(bytes.as_slice(), 0).unwrap().count();
        assert_eq!(n, 1000);
    }

    #[test]
    fn empty_trace_still_has_header() {
        let w = TraceWriter::new(Vec::new(), 1024);
        let bytes = w.finish().unwrap();
        assert_eq!(&bytes[..], MAGIC);
        assert_eq!(TraceReader::new(bytes.as_slice(), 0).unwrap().count(), 0);
    }
}
