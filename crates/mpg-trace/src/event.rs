//! The traced event model.
//!
//! §3 classifies MPI-1 primitives into pairwise vs collective and blocking
//! vs nonblocking, plus single-node operations (`MPI_Init` etc.). The
//! [`EventKind`] variants cover the same subset the paper's prototype
//! handles: blocking send/recv, nonblocking isend/irecv with wait/waitall/
//! waitsome, and the barrier/bcast/reduce/allreduce collectives.

use crate::Cycles;

/// Processor (MPI rank) identifier.
pub type Rank = u32;
/// Message tag.
pub type Tag = u32;
/// Nonblocking-request identifier — the paper's "*status* flags that
/// uniquely identify the send/receive transaction" (Fig. 3). Unique per rank.
pub type ReqId = u64;
/// Per-rank event sequence number (0-based, dense).
pub type Seq = u64;

/// Wildcard source for receives (`MPI_ANY_SOURCE`). Traces always record the
/// *matched* source; the wildcard appears only in the `posted_any` flag.
pub const ANY_SOURCE: Rank = Rank::MAX;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: Tag = Tag::MAX;

/// Which blocking-send variant produced a `Send` event (§3.1.1: "The MPI
/// specification provides three forms of blocking send: the synchronous
/// send, the buffered send, and the ready send").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SendProtocol {
    /// `MPI_Send`: implementation-chosen; completion semantics follow the
    /// platform's configured protocol.
    #[default]
    Standard,
    /// `MPI_Ssend`: completes only after the matching receive started
    /// (always acknowledged).
    Synchronous,
    /// `MPI_Bsend`: completes after the local buffer copy (never
    /// acknowledged).
    Buffered,
    /// `MPI_Rsend`: requires the receive to be already posted; completes
    /// locally.
    Ready,
}

/// What happened during a traced interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// `MPI_Init` — single-node, trivial to model (§3).
    Init,
    /// `MPI_Finalize` — the final node per rank; replay reports the modified
    /// timestamp of this event (§6).
    Finalize,
    /// A period of local computation between messaging events (Fig. 1's
    /// `c_i` phases). `work` is the application's intended busy time; the
    /// traced interval may be longer on a noisy platform.
    Compute {
        /// Cycles of pure application work in the interval.
        work: Cycles,
    },
    /// A blocking send (`MPI_Send`/`Ssend`/`Bsend`/`Rsend` per `protocol`;
    /// the synchronous form matches Eq. 1's acknowledgement arm).
    Send {
        /// Destination rank.
        peer: Rank,
        /// Message tag.
        tag: Tag,
        /// Payload size (the `d` of `δ_t(d)`).
        bytes: u64,
        /// Which §3.1.1 blocking-send variant this was.
        protocol: SendProtocol,
    },
    /// Blocking `MPI_Recv`. `peer` is the **matched** source (as a PMPI
    /// wrapper reads from the completed status), never the wildcard.
    Recv {
        /// Matched source rank.
        peer: Rank,
        /// Matched tag.
        tag: Tag,
        /// Payload size.
        bytes: u64,
        /// True when the receive was posted with `MPI_ANY_SOURCE`.
        posted_any: bool,
    },
    /// Nonblocking `MPI_Isend`; returns immediately (§3.1.3).
    Isend {
        /// Destination rank.
        peer: Rank,
        /// Message tag.
        tag: Tag,
        /// Payload size.
        bytes: u64,
        /// Request handle completing at a later `Wait*`.
        req: ReqId,
    },
    /// Nonblocking `MPI_Irecv`.
    Irecv {
        /// Matched source rank (filled at completion by the tracer).
        peer: Rank,
        /// Matched tag.
        tag: Tag,
        /// Payload size.
        bytes: u64,
        /// Request handle.
        req: ReqId,
        /// True when posted with `MPI_ANY_SOURCE`.
        posted_any: bool,
    },
    /// `MPI_Wait` on one request.
    Wait {
        /// The request being completed.
        req: ReqId,
    },
    /// `MPI_Waitall` on a set of requests.
    WaitAll {
        /// All requests completed by this call.
        reqs: Vec<ReqId>,
    },
    /// `MPI_Waitsome`: blocks until at least one of `reqs` completes;
    /// `completed` records which did.
    WaitSome {
        /// Requests passed in.
        reqs: Vec<ReqId>,
        /// Requests that completed during this call.
        completed: Vec<ReqId>,
    },
    /// `MPI_Barrier` over `comm_size` ranks.
    Barrier {
        /// Number of participating ranks.
        comm_size: u32,
    },
    /// `MPI_Bcast` of `bytes` from `root`.
    Bcast {
        /// Root rank.
        root: Rank,
        /// Payload size.
        bytes: u64,
        /// Number of participating ranks.
        comm_size: u32,
    },
    /// `MPI_Reduce` to `root` (§3.2's simplified variant).
    Reduce {
        /// Root rank receiving the result.
        root: Rank,
        /// Payload size.
        bytes: u64,
        /// Number of participating ranks.
        comm_size: u32,
    },
    /// `MPI_Allreduce` (Fig. 4's subgraph).
    Allreduce {
        /// Payload size.
        bytes: u64,
        /// Number of participating ranks.
        comm_size: u32,
    },
    /// `MPI_Test`: nonblocking completion probe. The traced outcome is
    /// preserved verbatim on replay (§4.3: replay never reorders events).
    Test {
        /// The probed request.
        req: ReqId,
        /// Whether the request had completed when probed.
        completed: bool,
    },
    /// `MPI_Scatter` of `bytes` per rank from `root`.
    Scatter {
        /// Root rank distributing the data.
        root: Rank,
        /// Per-rank payload size.
        bytes: u64,
        /// Number of participating ranks.
        comm_size: u32,
    },
    /// `MPI_Gather` of `bytes` per rank to `root`.
    Gather {
        /// Root rank collecting the data.
        root: Rank,
        /// Per-rank payload size.
        bytes: u64,
        /// Number of participating ranks.
        comm_size: u32,
    },
    /// `MPI_Allgather` of `bytes` per rank to everyone.
    Allgather {
        /// Per-rank payload size.
        bytes: u64,
        /// Number of participating ranks.
        comm_size: u32,
    },
    /// `MPI_Alltoall`: every rank sends `bytes` to every other rank.
    Alltoall {
        /// Per-pair payload size.
        bytes: u64,
        /// Number of participating ranks.
        comm_size: u32,
    },
}

impl EventKind {
    /// True for events that interact with other ranks (pairwise or
    /// collective); false for single-node events and local computation.
    pub fn is_communication(&self) -> bool {
        !matches!(
            self,
            EventKind::Init | EventKind::Finalize | EventKind::Compute { .. }
        )
    }

    /// True for collective operations.
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            EventKind::Barrier { .. }
                | EventKind::Bcast { .. }
                | EventKind::Reduce { .. }
                | EventKind::Allreduce { .. }
                | EventKind::Scatter { .. }
                | EventKind::Gather { .. }
                | EventKind::Allgather { .. }
                | EventKind::Alltoall { .. }
        )
    }

    /// True for the nonblocking initiation events (immediate return, §3.1.3).
    pub fn is_nonblocking_init(&self) -> bool {
        matches!(self, EventKind::Isend { .. } | EventKind::Irecv { .. })
    }

    /// True for completion events that block on earlier nonblocking requests.
    pub fn is_wait(&self) -> bool {
        matches!(
            self,
            EventKind::Wait { .. } | EventKind::WaitAll { .. } | EventKind::WaitSome { .. }
        )
    }

    /// Short lowercase name for DOT labels and table rows.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Init => "init",
            EventKind::Finalize => "finalize",
            EventKind::Compute { .. } => "compute",
            EventKind::Send { .. } => "send",
            EventKind::Recv { .. } => "recv",
            EventKind::Isend { .. } => "isend",
            EventKind::Irecv { .. } => "irecv",
            EventKind::Wait { .. } => "wait",
            EventKind::WaitAll { .. } => "waitall",
            EventKind::WaitSome { .. } => "waitsome",
            EventKind::Barrier { .. } => "barrier",
            EventKind::Bcast { .. } => "bcast",
            EventKind::Reduce { .. } => "reduce",
            EventKind::Allreduce { .. } => "allreduce",
            EventKind::Test { .. } => "test",
            EventKind::Scatter { .. } => "scatter",
            EventKind::Gather { .. } => "gather",
            EventKind::Allgather { .. } => "allgather",
            EventKind::Alltoall { .. } => "alltoall",
        }
    }
}

/// One traced event: the interval `[t_start, t_end]` in the *local* clock of
/// `rank`, split by the analyzer into start/end subevents (§4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Rank that produced the event.
    pub rank: Rank,
    /// Dense per-rank sequence number; §4.1's order-only matching keys off
    /// this, never off timestamps.
    pub seq: Seq,
    /// Entry timestamp (local clock, cycles).
    pub t_start: Cycles,
    /// Exit timestamp (local clock, cycles); `t_end >= t_start`.
    pub t_end: Cycles,
    /// What the interval was.
    pub kind: EventKind,
}

impl EventRecord {
    /// Duration of the interval in the local clock.
    pub fn duration(&self) -> Cycles {
        self.t_end - self.t_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(!EventKind::Init.is_communication());
        assert!(!EventKind::Compute { work: 5 }.is_communication());
        assert!(EventKind::Send {
            peer: 1,
            tag: 0,
            bytes: 8,
            protocol: SendProtocol::Standard
        }
        .is_communication());
        assert!(EventKind::Barrier { comm_size: 4 }.is_collective());
        assert!(!EventKind::Send {
            peer: 1,
            tag: 0,
            bytes: 8,
            protocol: SendProtocol::Buffered
        }
        .is_collective());
        assert!(EventKind::Isend {
            peer: 0,
            tag: 0,
            bytes: 0,
            req: 1
        }
        .is_nonblocking_init());
        assert!(EventKind::Wait { req: 1 }.is_wait());
        assert!(EventKind::WaitAll { reqs: vec![1, 2] }.is_wait());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            EventKind::Allreduce {
                bytes: 8,
                comm_size: 2
            }
            .name(),
            "allreduce"
        );
        assert_eq!(EventKind::Compute { work: 1 }.name(), "compute");
    }

    #[test]
    fn duration() {
        let e = EventRecord {
            rank: 0,
            seq: 0,
            t_start: 100,
            t_end: 150,
            kind: EventKind::Init,
        };
        assert_eq!(e.duration(), 50);
    }
}
