//! Frame layer of the v2 (`MPG2`) trace format.
//!
//! The v1 format wrote one undelimited record stream per rank: a single
//! flipped bit desynchronized the varint decoder and poisoned everything
//! after it, and a crashed writer left no way to tell "short run" from
//! "torn file". v2 wraps every flush buffer (the paper's §4 memory-resident
//! buffer dump) in a self-delimiting, checksummed frame and seals complete
//! files with a footer, so a salvage pass can recover every intact frame
//! and *prove* which bytes were lost:
//!
//! ```text
//! file   := "MPG2" frame* footer
//! frame  := 0xF5  len:u32le  crc:u32le  payload[len]
//! payload:= varint(first_seq) record*      ; encoder state resets per frame
//! footer := 0xF6  records:u64le frames:u64le last_t_end:u64le
//!           payload_crc:u32le footer_crc:u32le
//! ```
//!
//! `crc` is CRC32C over the payload. `payload_crc` chains CRC32C across
//! every frame payload in order (a whole-file content checksum). The
//! footer's `last_t_end` is the stream's clock summary — the final local
//! timestamp — and `footer_crc` covers the 28 footer bytes after the
//! marker. Because each payload opens with the absolute sequence number of
//! its first record and the timestamp delta-encoder resets per frame, any
//! surviving frame decodes standalone: salvage needs no state from frames
//! that were lost before it.

use crate::TraceError;

/// Magic bytes opening a framed (v2) per-rank trace stream.
pub const MAGIC2: &[u8; 4] = b"MPG2";

/// Marker byte opening every frame header.
pub const FRAME_MARKER: u8 = 0xF5;

/// Marker byte opening the sealed footer.
pub const FOOTER_MARKER: u8 = 0xF6;

/// Bytes in a frame header: marker + payload length + payload CRC32C.
pub const FRAME_HEADER_LEN: usize = 1 + 4 + 4;

/// Bytes in the sealed footer.
pub const FOOTER_LEN: usize = 1 + 8 + 8 + 8 + 4 + 4;

/// Upper bound on a frame payload; larger lengths are treated as corrupt
/// (a resync scan must not trust a garbage length field).
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// CRC32C (Castagnoli) lookup table, reflected polynomial 0x82F63B78.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32C of `bytes`.
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_append(0, bytes)
}

/// Continues a CRC32C computation: `crc` is a previous [`crc32c`] /
/// [`crc32c_append`] result, extended over `bytes`.
pub fn crc32c_append(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = (c >> 8) ^ CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize];
    }
    !c
}

/// Parsed frame header (the 9 bytes after and including [`FRAME_MARKER`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Payload length in bytes.
    pub len: usize,
    /// CRC32C the payload must hash to.
    pub crc: u32,
}

/// Appends a frame (header + payload) to `out`.
pub fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.push(FRAME_MARKER);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Parses a frame header from the front of `bytes` without validating the
/// payload. Returns `None` on a wrong marker, a length exceeding
/// [`MAX_FRAME_LEN`], or too few bytes for the header itself.
pub fn parse_frame_header(bytes: &[u8]) -> Option<FrameHeader> {
    if bytes.len() < FRAME_HEADER_LEN || bytes[0] != FRAME_MARKER {
        return None;
    }
    let len = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]) as usize;
    if len > MAX_FRAME_LEN {
        return None;
    }
    let crc = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
    Some(FrameHeader { len, crc })
}

/// Validates a complete frame at the front of `bytes`: header sane, payload
/// in bounds, CRC matches. Returns the payload slice and the total frame
/// size (header + payload).
pub fn checked_frame_at(bytes: &[u8]) -> Option<(&[u8], usize)> {
    let hdr = parse_frame_header(bytes)?;
    let payload = bytes.get(FRAME_HEADER_LEN..FRAME_HEADER_LEN + hdr.len)?;
    if crc32c(payload) != hdr.crc {
        return None;
    }
    Some((payload, FRAME_HEADER_LEN + hdr.len))
}

/// Sealed footer contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Footer {
    /// Total records across all frames.
    pub records: u64,
    /// Number of frames preceding the footer.
    pub frames: u64,
    /// Clock summary: the stream's final local timestamp (`t_end` of the
    /// last record, 0 for an empty stream).
    pub last_t_end: u64,
    /// CRC32C chained over every frame payload in order.
    pub payload_crc: u32,
}

impl Footer {
    /// Appends the encoded footer (marker through `footer_crc`) to `out`.
    pub fn put(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.push(FOOTER_MARKER);
        out.extend_from_slice(&self.records.to_le_bytes());
        out.extend_from_slice(&self.frames.to_le_bytes());
        out.extend_from_slice(&self.last_t_end.to_le_bytes());
        out.extend_from_slice(&self.payload_crc.to_le_bytes());
        let crc = crc32c(&out[start + 1..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Parses and validates a footer at the front of `bytes`. Returns
    /// `None` on a wrong marker, too few bytes, or a failed `footer_crc`.
    pub fn parse(bytes: &[u8]) -> Option<Footer> {
        if bytes.len() < FOOTER_LEN || bytes[0] != FOOTER_MARKER {
            return None;
        }
        let body = &bytes[1..FOOTER_LEN - 4];
        let stored = u32::from_le_bytes([
            bytes[FOOTER_LEN - 4],
            bytes[FOOTER_LEN - 3],
            bytes[FOOTER_LEN - 2],
            bytes[FOOTER_LEN - 1],
        ]);
        if crc32c(body) != stored {
            return None;
        }
        let u64_at = |off: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[off..off + 8]);
            u64::from_le_bytes(b)
        };
        Some(Footer {
            records: u64_at(1),
            frames: u64_at(9),
            last_t_end: u64_at(17),
            payload_crc: u32::from_le_bytes([bytes[25], bytes[26], bytes[27], bytes[28]]),
        })
    }

    /// Parses a footer like [`Footer::parse`], mapping failure to a typed
    /// error for the strict reader.
    pub fn parse_strict(bytes: &[u8]) -> Result<Footer, TraceError> {
        Footer::parse(bytes)
            .ok_or_else(|| TraceError::Checksum("footer checksum or marker invalid".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 test vectors for CRC32C.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn crc32c_chaining_matches_whole() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = crc32c(data);
        let chained = crc32c_append(crc32c(&data[..17]), &data[17..]);
        assert_eq!(whole, chained);
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"hello frames");
        let (payload, total) = checked_frame_at(&buf).unwrap();
        assert_eq!(payload, b"hello frames");
        assert_eq!(total, buf.len());
    }

    #[test]
    fn frame_rejects_bitflip() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"hello frames");
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            // Any single-bit flip must fail validation (marker, length,
            // CRC field, or payload).
            assert!(
                checked_frame_at(&bad).is_none(),
                "flip at {i} went undetected"
            );
        }
    }

    #[test]
    fn frame_header_bounds() {
        assert!(parse_frame_header(&[]).is_none());
        assert!(parse_frame_header(&[FRAME_MARKER; 8]).is_none());
        let mut buf = vec![FRAME_MARKER];
        buf.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        buf.extend_from_slice(&[0; 4]);
        assert!(parse_frame_header(&buf).is_none());
    }

    #[test]
    fn footer_roundtrip() {
        let f = Footer {
            records: 12345,
            frames: 17,
            last_t_end: 99_000_000,
            payload_crc: 0xDEAD_BEEF,
        };
        let mut buf = Vec::new();
        f.put(&mut buf);
        assert_eq!(buf.len(), FOOTER_LEN);
        assert_eq!(Footer::parse(&buf), Some(f));
    }

    #[test]
    fn footer_rejects_any_bitflip() {
        let f = Footer {
            records: 7,
            frames: 2,
            last_t_end: 500,
            payload_crc: 42,
        };
        let mut buf = Vec::new();
        f.put(&mut buf);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x10;
            assert!(Footer::parse(&bad).is_none(), "flip at {i} went undetected");
        }
    }
}
