//! Deterministic trace corruptor for fault-injection testing.
//!
//! Every failure mode the salvage reader claims to survive must be
//! reproducible on demand: this module applies seeded, deterministic
//! damage to trace bytes (and trace directories), so property tests can
//! sweep the whole operator × seed space and `mpgtool fsck --inject` can
//! replay any specific failure from its seed alone. No external RNG crate:
//! a SplitMix64 generator keeps the crate dependency-free.

use std::fs;
use std::path::Path;

use crate::frame::{checked_frame_at, Footer, FOOTER_MARKER, FRAME_MARKER, MAGIC2};
use crate::TraceError;

/// One class of injectable damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Cut the file at a random byte (crashed writer / torn copy).
    Truncate,
    /// Flip one bit past the header (storage corruption).
    BitFlip,
    /// Remove one whole frame (lost buffer dump).
    FrameDrop,
    /// Duplicate one frame in place (replayed buffer dump).
    FrameDup,
    /// Swap two adjacent frames (reordered writeback).
    FrameSwap,
    /// Insert random garbage bytes (misdirected write).
    GarbageSplice,
    /// Delete a whole rank file (lost node-local storage).
    DeleteRank,
    /// Overwrite one extent with garbage in place (unreadable sector /
    /// failed DMA): the classic transient-I/O error surfaced as data.
    IoError,
    /// Cut the file at a frame boundary, dropping the tail and the footer
    /// (a delayed or stalled writer whose final flush never landed — the
    /// in-progress-upload shape the service retries around).
    Delay,
}

impl FaultKind {
    /// Every operator, in reporting order.
    pub const ALL: &'static [FaultKind] = &[
        FaultKind::Truncate,
        FaultKind::BitFlip,
        FaultKind::FrameDrop,
        FaultKind::FrameDup,
        FaultKind::FrameSwap,
        FaultKind::GarbageSplice,
        FaultKind::DeleteRank,
        FaultKind::IoError,
        FaultKind::Delay,
    ];

    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Truncate => "truncate",
            FaultKind::BitFlip => "bitflip",
            FaultKind::FrameDrop => "frame-drop",
            FaultKind::FrameDup => "frame-dup",
            FaultKind::FrameSwap => "frame-swap",
            FaultKind::GarbageSplice => "splice",
            FaultKind::DeleteRank => "delete-rank",
            FaultKind::IoError => "io-error",
            FaultKind::Delay => "delay",
        }
    }

    /// Parse a CLI name (as printed by [`FaultKind::name`]).
    pub fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL
            .iter()
            .copied()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }
}

/// What [`inject_dir`] actually did, for logs and reproduction.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Rank whose file was damaged.
    pub rank: u32,
    /// Operator applied.
    pub kind: FaultKind,
    /// Human-readable description of the concrete mutation.
    pub description: String,
}

/// SplitMix64: tiny, seedable, and plenty for picking damage sites.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Byte ranges of every CRC-valid frame in a v2 file, walked strictly from
/// the header (resync-free: this is for *valid* input being damaged).
fn scan_frames(bytes: &[u8]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    if bytes.len() < 4 || &bytes[..4] != MAGIC2 {
        return out;
    }
    let mut pos = 4;
    while pos < bytes.len() {
        match bytes[pos] {
            FRAME_MARKER => match checked_frame_at(&bytes[pos..]) {
                Some((_, total)) => {
                    out.push(pos..pos + total);
                    pos += total;
                }
                None => break,
            },
            FOOTER_MARKER if Footer::parse(&bytes[pos..]).is_some() => break,
            _ => break,
        }
    }
    out
}

fn bitflip(bytes: &[u8], rng: &mut SplitMix64) -> (Vec<u8>, String) {
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return (
            vec![0xFF],
            "appended a garbage byte to an empty file".into(),
        );
    }
    // Flip past the magic when possible so the damage lands in the body.
    let lo = if out.len() > 4 { 4 } else { 0 };
    let pos = lo + rng.below(out.len() - lo);
    let bit = rng.below(8) as u8;
    out[pos] ^= 1 << bit;
    (out, format!("flipped bit {bit} of byte {pos}"))
}

/// Applies `kind` to a copy of `bytes`, deterministically from `seed`.
/// Returns `None` for [`FaultKind::DeleteRank`], which only makes sense at
/// directory level ([`inject_dir`]). Frame-granular operators need frames
/// to aim at; on input without enough valid frames (legacy v1 files,
/// already-damaged bytes) they degrade to a bit flip so every call still
/// damages the file.
pub fn mutate_bytes(bytes: &[u8], kind: FaultKind, seed: u64) -> Option<(Vec<u8>, String)> {
    let mut rng = SplitMix64::new(seed);
    let frames = scan_frames(bytes);
    let (out, desc) = match kind {
        FaultKind::DeleteRank => return None,
        FaultKind::BitFlip => bitflip(bytes, &mut rng),
        FaultKind::Truncate => {
            let new_len = if bytes.len() > 5 {
                4 + rng.below(bytes.len() - 4)
            } else {
                rng.below(bytes.len().max(1))
            };
            (
                bytes[..new_len].to_vec(),
                format!("truncated {} -> {new_len} bytes", bytes.len()),
            )
        }
        FaultKind::GarbageSplice => {
            let pos = if bytes.len() > 4 {
                4 + rng.below(bytes.len() - 3)
            } else {
                rng.below(bytes.len() + 1)
            };
            let count = 8 + rng.below(248);
            let garbage: Vec<u8> = (0..count).map(|_| rng.next_u64() as u8).collect();
            let mut out = bytes[..pos].to_vec();
            out.extend_from_slice(&garbage);
            out.extend_from_slice(&bytes[pos..]);
            (
                out,
                format!("spliced {count} garbage bytes at offset {pos}"),
            )
        }
        FaultKind::FrameDrop => {
            if frames.is_empty() {
                bitflip(bytes, &mut rng)
            } else {
                let i = rng.below(frames.len());
                let r = frames[i].clone();
                let mut out = bytes[..r.start].to_vec();
                out.extend_from_slice(&bytes[r.end..]);
                (out, format!("dropped frame {i} ({} bytes)", r.len()))
            }
        }
        FaultKind::FrameDup => {
            if frames.is_empty() {
                bitflip(bytes, &mut rng)
            } else {
                let i = rng.below(frames.len());
                let r = frames[i].clone();
                let mut out = bytes[..r.end].to_vec();
                out.extend_from_slice(&bytes[r.clone()]);
                out.extend_from_slice(&bytes[r.end..]);
                (out, format!("duplicated frame {i} ({} bytes)", r.len()))
            }
        }
        FaultKind::FrameSwap => {
            if frames.len() < 2 {
                bitflip(bytes, &mut rng)
            } else {
                let i = rng.below(frames.len() - 1);
                let (a, b) = (frames[i].clone(), frames[i + 1].clone());
                let mut out = bytes[..a.start].to_vec();
                out.extend_from_slice(&bytes[b.clone()]);
                out.extend_from_slice(&bytes[a.clone()]);
                out.extend_from_slice(&bytes[b.end..]);
                (out, format!("swapped frames {i} and {}", i + 1))
            }
        }
        FaultKind::IoError => {
            // A failed read/DMA surfaces as one unreadable extent: overwrite
            // a sector-sized span in place with garbage. Length is preserved,
            // so everything after the extent stays frame-aligned for resync.
            if bytes.len() <= 5 {
                bitflip(bytes, &mut rng)
            } else {
                let pos = 4 + rng.below(bytes.len() - 5);
                let count = (8 + rng.below(504)).min(bytes.len() - pos);
                let mut out = bytes.to_vec();
                for b in &mut out[pos..pos + count] {
                    *b = rng.next_u64() as u8;
                }
                if out == bytes {
                    bitflip(bytes, &mut rng)
                } else {
                    (
                        out,
                        format!("overwrote {count}-byte extent at offset {pos} with garbage"),
                    )
                }
            }
        }
        FaultKind::Delay => {
            // A delayed/stalled writer: the tail flush (and the footer) never
            // landed. Cut at a frame boundary so the surviving prefix is
            // clean — the transient shape retries are meant to ride out.
            if frames.is_empty() {
                bitflip(bytes, &mut rng)
            } else {
                let keep = rng.below(frames.len());
                let end = if keep == 0 { 4 } else { frames[keep - 1].end };
                (
                    bytes[..end].to_vec(),
                    format!(
                        "delayed writer: kept {keep}/{} frame(s), dropped tail and footer",
                        frames.len()
                    ),
                )
            }
        }
    };
    Some((out, desc))
}

/// Applies one seeded fault to a trace directory in place: picks a rank
/// from the seed, then mutates (or deletes) that rank's file. The same
/// `(kind, seed)` over the same directory always produces the same damage.
pub fn inject_dir(dir: &Path, kind: FaultKind, seed: u64) -> Result<FaultPlan, TraceError> {
    let meta = fs::read_to_string(dir.join("meta.txt"))?;
    let ranks = meta
        .lines()
        .find_map(|l| l.strip_prefix("ranks="))
        .and_then(|v| v.trim().parse::<usize>().ok())
        .ok_or_else(|| TraceError::Corrupt("meta.txt missing ranks=".into()))?;
    if ranks == 0 {
        return Err(TraceError::Corrupt("trace has no ranks to damage".into()));
    }
    // Separate draw for the rank so the mutation offsets differ per seed
    // even on single-rank traces.
    let rank = SplitMix64::new(seed ^ 0xA5A5_A5A5).below(ranks) as u32;
    let path = dir.join(format!("rank-{rank}.mpg"));
    if kind == FaultKind::DeleteRank {
        fs::remove_file(&path)?;
        return Ok(FaultPlan {
            rank,
            kind,
            description: "deleted rank file".into(),
        });
    }
    let bytes = fs::read(&path)?;
    // mutate_bytes returns None only for DeleteRank, handled above.
    let (mutated, description) = mutate_bytes(&bytes, kind, seed).expect("byte-level operator");
    fs::write(&path, mutated)?;
    Ok(FaultPlan {
        rank,
        kind,
        description,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, EventRecord};
    use crate::writer::TraceWriter;

    fn sample_bytes(n: u64) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), 64);
        for i in 0..n {
            w.record(&EventRecord {
                rank: 0,
                seq: i,
                t_start: i * 10,
                t_end: i * 10 + 5,
                kind: EventKind::Compute { work: 5 },
            })
            .unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn names_roundtrip() {
        for &k in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FaultKind::from_name("no-such-fault"), None);
    }

    #[test]
    fn mutations_are_deterministic() {
        let bytes = sample_bytes(200);
        for &k in FaultKind::ALL {
            if k == FaultKind::DeleteRank {
                assert!(mutate_bytes(&bytes, k, 1).is_none());
                continue;
            }
            let a = mutate_bytes(&bytes, k, 42).unwrap();
            let b = mutate_bytes(&bytes, k, 42).unwrap();
            assert_eq!(a.0, b.0, "{k:?} not deterministic");
            let c = mutate_bytes(&bytes, k, 43).unwrap();
            // Different seeds should (for these sizes) damage differently.
            assert!(a.0 != c.0 || a.1 != c.1, "{k:?} ignored the seed");
        }
    }

    #[test]
    fn every_operator_changes_the_bytes() {
        let bytes = sample_bytes(200);
        for &k in FaultKind::ALL {
            if k == FaultKind::DeleteRank {
                continue;
            }
            for seed in 0..20 {
                let (mutated, desc) = mutate_bytes(&bytes, k, seed).unwrap();
                assert_ne!(mutated, bytes, "{k:?} seed {seed} ({desc}) was a no-op");
            }
        }
    }

    #[test]
    fn frame_scan_sees_writer_frames() {
        let bytes = sample_bytes(200);
        let frames = scan_frames(&bytes);
        assert!(
            frames.len() > 2,
            "want several frames, got {}",
            frames.len()
        );
        assert_eq!(frames[0].start, 4);
    }

    #[test]
    fn io_error_and_delay_shapes() {
        let bytes = sample_bytes(200);
        let frames = scan_frames(&bytes);
        for seed in 0..20u64 {
            // io-error: in-place extent overwrite keeps the length.
            let (io, _) = mutate_bytes(&bytes, FaultKind::IoError, seed).unwrap();
            assert_eq!(io.len(), bytes.len(), "seed {seed}: io-error resized file");
            // delay: clean cut at a frame boundary — prefix bytes identical,
            // surviving frames all rescan as valid, footer gone.
            let (cut, _) = mutate_bytes(&bytes, FaultKind::Delay, seed).unwrap();
            assert!(cut.len() < bytes.len());
            assert_eq!(
                &bytes[..cut.len()],
                &cut[..],
                "seed {seed}: delay not a prefix"
            );
            let kept = scan_frames(&cut);
            assert!(kept.len() < frames.len());
            assert_eq!(
                kept,
                frames[..kept.len()],
                "seed {seed}: kept frames differ"
            );
        }
    }

    #[test]
    fn inject_dir_is_deterministic_and_damages() {
        use crate::fileset::{FileTraceSet, MemTrace};
        let mk = |tag: &str| {
            let dir = std::env::temp_dir().join(format!("mpg-inject-{tag}-{}", std::process::id()));
            let mut t = MemTrace::new(2);
            for r in 0..2u32 {
                for i in 0..100u64 {
                    t.push(EventRecord {
                        rank: r,
                        seq: i,
                        t_start: i * 10,
                        t_end: i * 10 + 5,
                        kind: EventKind::Compute { work: 5 },
                    });
                }
            }
            t.save(&dir).unwrap();
            dir
        };
        let (d1, d2) = (mk("a"), mk("b"));
        let p1 = inject_dir(&d1, FaultKind::Truncate, 7).unwrap();
        let p2 = inject_dir(&d2, FaultKind::Truncate, 7).unwrap();
        assert_eq!(p1.rank, p2.rank);
        assert_eq!(p1.description, p2.description);
        // The strict loader must now refuse the damaged set.
        assert!(FileTraceSet::open(&d1).unwrap().load().is_err());
        let (_, report) = FileTraceSet::load_salvage(&d1).unwrap();
        assert!(!report.is_clean());
        for d in [d1, d2] {
            std::fs::remove_dir_all(&d).unwrap();
        }
    }

    #[test]
    fn delete_rank_removes_the_file() {
        use crate::fileset::MemTrace;
        let dir = std::env::temp_dir().join(format!("mpg-delrank-{}", std::process::id()));
        let mut t = MemTrace::new(3);
        for r in 0..3u32 {
            t.push(EventRecord {
                rank: r,
                seq: 0,
                t_start: 0,
                t_end: 5,
                kind: EventKind::Init,
            });
        }
        t.save(&dir).unwrap();
        let plan = inject_dir(&dir, FaultKind::DeleteRank, 11).unwrap();
        assert!(!dir.join(format!("rank-{}.mpg", plan.rank)).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
