//! Trace sets: one event stream per rank, in memory or on disk.
//!
//! The analyzer is generic over per-rank record iterators, so both backends
//! feed it identically: [`MemTrace`] keeps everything in core (tests, small
//! runs); [`FileTraceSet`] lays one `rank-N.mpg` file per rank plus a small
//! `meta.txt` in a directory and streams on read, preserving the paper's
//! arbitrarily-large-trace property.

use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Write as _};
use std::path::{Path, PathBuf};

use crate::event::EventRecord;
use crate::reader::TraceReader;
use crate::writer::TraceWriter;
use crate::TraceError;

/// A boxed per-rank stream of decoded records — the shape the analyzer's
/// `run_streams` consumes.
pub type BoxedEventStream<'a> = Box<dyn Iterator<Item = Result<EventRecord, TraceError>> + 'a>;

/// An in-memory trace set: `events[rank]` is that rank's ordered stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemTrace {
    events: Vec<Vec<EventRecord>>,
}

impl MemTrace {
    /// Creates an empty trace set for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        Self {
            events: vec![Vec::new(); ranks],
        }
    }

    /// Builds from pre-assembled per-rank vectors.
    pub fn from_ranks(events: Vec<Vec<EventRecord>>) -> Self {
        Self { events }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.events.len()
    }

    /// Total event count across ranks.
    pub fn total_events(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// Appends an event to its rank's stream.
    pub fn push(&mut self, rec: EventRecord) {
        self.events[rec.rank as usize].push(rec);
    }

    /// One rank's stream.
    pub fn rank(&self, rank: usize) -> &[EventRecord] {
        &self.events[rank]
    }

    /// Infallible per-rank iterator (cloned records).
    pub fn iter_rank(&self, rank: usize) -> impl Iterator<Item = EventRecord> + '_ {
        self.events[rank].iter().cloned()
    }

    /// Per-rank fallible iterators in rank order, the shape the graph
    /// builder consumes.
    pub fn streams(&self) -> Vec<BoxedEventStream<'_>> {
        (0..self.num_ranks())
            .map(|r| Box::new(self.iter_rank(r).map(Ok)) as BoxedEventStream<'_>)
            .collect()
    }

    /// Writes this trace set to `dir` as a [`FileTraceSet`].
    pub fn save(&self, dir: &Path) -> Result<FileTraceSet, TraceError> {
        fs::create_dir_all(dir)?;
        for (r, events) in self.events.iter().enumerate() {
            let f = File::create(FileTraceSet::rank_path(dir, r))?;
            let mut w = TraceWriter::new(BufWriter::new(f), 1 << 16);
            for e in events {
                w.record(e)?;
            }
            w.finish()?;
        }
        let mut meta = File::create(dir.join("meta.txt"))?;
        writeln!(meta, "ranks={}", self.num_ranks())?;
        Ok(FileTraceSet {
            dir: dir.to_path_buf(),
            ranks: self.num_ranks(),
        })
    }
}

/// An on-disk trace set directory.
#[derive(Debug, Clone)]
pub struct FileTraceSet {
    dir: PathBuf,
    ranks: usize,
}

impl FileTraceSet {
    fn rank_path(dir: &Path, rank: usize) -> PathBuf {
        dir.join(format!("rank-{rank}.mpg"))
    }

    /// Opens an existing trace directory, reading `meta.txt` for the rank
    /// count.
    pub fn open(dir: &Path) -> Result<Self, TraceError> {
        let meta = fs::read_to_string(dir.join("meta.txt"))?;
        let ranks = meta
            .lines()
            .find_map(|l| l.strip_prefix("ranks="))
            .and_then(|v| v.trim().parse::<usize>().ok())
            .ok_or_else(|| TraceError::Corrupt("meta.txt missing ranks=".into()))?;
        for r in 0..ranks {
            if !Self::rank_path(dir, r).exists() {
                return Err(TraceError::Corrupt(format!("missing trace for rank {r}")));
            }
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            ranks,
        })
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks
    }

    /// Streaming reader for one rank.
    pub fn reader(&self, rank: usize) -> Result<TraceReader<BufReader<File>>, TraceError> {
        let f = File::open(Self::rank_path(&self.dir, rank))?;
        TraceReader::new(BufReader::new(f), rank as u32)
    }

    /// Per-rank fallible iterators, the shape the graph builder consumes.
    pub fn streams(&self) -> Result<Vec<BoxedEventStream<'static>>, TraceError> {
        (0..self.ranks)
            .map(|r| {
                self.reader(r)
                    .map(|rd| Box::new(rd) as BoxedEventStream<'static>)
            })
            .collect()
    }

    /// Loads the whole set into memory (small traces / tests).
    pub fn load(&self) -> Result<MemTrace, TraceError> {
        let mut events = Vec::with_capacity(self.ranks);
        for r in 0..self.ranks {
            events.push(self.reader(r)?.collect::<Result<Vec<_>, _>>()?);
        }
        Ok(MemTrace::from_ranks(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn sample_trace() -> MemTrace {
        let mut t = MemTrace::new(2);
        for r in 0..2u32 {
            t.push(EventRecord {
                rank: r,
                seq: 0,
                t_start: 0,
                t_end: 10,
                kind: EventKind::Init,
            });
            t.push(EventRecord {
                rank: r,
                seq: 1,
                t_start: 10,
                t_end: 100,
                kind: EventKind::Compute { work: 90 },
            });
            t.push(EventRecord {
                rank: r,
                seq: 2,
                t_start: 100,
                t_end: 110,
                kind: EventKind::Finalize,
            });
        }
        t
    }

    #[test]
    fn mem_roundtrip_through_disk() {
        let dir = std::env::temp_dir().join(format!("mpg-test-{}", std::process::id()));
        let t = sample_trace();
        let fset = t.save(&dir).unwrap();
        let reopened = FileTraceSet::open(&dir).unwrap();
        assert_eq!(reopened.num_ranks(), 2);
        let loaded = reopened.load().unwrap();
        assert_eq!(loaded, t);
        drop(fset);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_dir_fails() {
        assert!(FileTraceSet::open(Path::new("/nonexistent-mpg-dir")).is_err());
    }

    #[test]
    fn streams_yield_rank_order() {
        let t = sample_trace();
        let streams = t.streams();
        assert_eq!(streams.len(), 2);
        for (r, s) in streams.into_iter().enumerate() {
            let events: Vec<_> = s.collect::<Result<_, _>>().unwrap();
            assert!(events.iter().all(|e| e.rank as usize == r));
            assert_eq!(events.len(), 3);
        }
    }

    #[test]
    fn total_events() {
        assert_eq!(sample_trace().total_events(), 6);
    }
}
