//! Trace sets: one event stream per rank, in memory or on disk.
//!
//! The analyzer is generic over per-rank record iterators, so both backends
//! feed it identically: [`MemTrace`] keeps everything in core (tests, small
//! runs); [`FileTraceSet`] lays one `rank-N.mpg` file per rank plus a small
//! `meta.txt` in a directory and streams on read, preserving the paper's
//! arbitrarily-large-trace property.

use std::fmt;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Write as _};
use std::path::{Path, PathBuf};

use crate::diag::{json_escape_into, Diagnostic, Rule};
use crate::event::EventRecord;
use crate::ooc::MappedFile;
use crate::reader::TraceReader;
use crate::salvage::{salvage_bytes, salvage_into, RankSalvage};
use crate::writer::TraceWriter;
use crate::TraceError;

/// A boxed per-rank stream of decoded records — the shape the analyzer's
/// `run_streams` consumes.
pub type BoxedEventStream<'a> = Box<dyn Iterator<Item = Result<EventRecord, TraceError>> + 'a>;

/// An in-memory trace set: `events[rank]` is that rank's ordered stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemTrace {
    events: Vec<Vec<EventRecord>>,
}

impl MemTrace {
    /// Creates an empty trace set for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        Self {
            events: vec![Vec::new(); ranks],
        }
    }

    /// Builds from pre-assembled per-rank vectors.
    pub fn from_ranks(events: Vec<Vec<EventRecord>>) -> Self {
        Self { events }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.events.len()
    }

    /// Total event count across ranks.
    pub fn total_events(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// Appends an event to its rank's stream.
    pub fn push(&mut self, rec: EventRecord) {
        self.events[rec.rank as usize].push(rec);
    }

    /// One rank's stream.
    pub fn rank(&self, rank: usize) -> &[EventRecord] {
        &self.events[rank]
    }

    /// Infallible per-rank iterator (cloned records).
    pub fn iter_rank(&self, rank: usize) -> impl Iterator<Item = EventRecord> + '_ {
        self.events[rank].iter().cloned()
    }

    /// Per-rank fallible iterators in rank order, the shape the graph
    /// builder consumes.
    pub fn streams(&self) -> Vec<BoxedEventStream<'_>> {
        (0..self.num_ranks())
            .map(|r| Box::new(self.iter_rank(r).map(Ok)) as BoxedEventStream<'_>)
            .collect()
    }

    /// Writes this trace set to `dir` as a [`FileTraceSet`].
    pub fn save(&self, dir: &Path) -> Result<FileTraceSet, TraceError> {
        fs::create_dir_all(dir)?;
        for (r, events) in self.events.iter().enumerate() {
            let f = File::create(FileTraceSet::rank_path(dir, r))?;
            let mut w = TraceWriter::new(BufWriter::new(f), 1 << 16);
            for e in events {
                w.record(e)?;
            }
            w.finish()?;
        }
        let mut meta = File::create(dir.join("meta.txt"))?;
        writeln!(meta, "ranks={}", self.num_ranks())?;
        Ok(FileTraceSet {
            dir: dir.to_path_buf(),
            ranks: self.num_ranks(),
        })
    }
}

/// An on-disk trace set directory.
#[derive(Debug, Clone)]
pub struct FileTraceSet {
    dir: PathBuf,
    ranks: usize,
}

impl FileTraceSet {
    pub(crate) fn rank_path(dir: &Path, rank: usize) -> PathBuf {
        dir.join(format!("rank-{rank}.mpg"))
    }

    pub(crate) fn read_meta(dir: &Path) -> Result<usize, TraceError> {
        let meta = fs::read_to_string(dir.join("meta.txt"))?;
        meta.lines()
            .find_map(|l| l.strip_prefix("ranks="))
            .and_then(|v| v.trim().parse::<usize>().ok())
            .ok_or_else(|| TraceError::Corrupt("meta.txt missing ranks=".into()))
    }

    /// Opens an existing trace directory, reading `meta.txt` for the rank
    /// count. Strict: every rank file must be present; the error names
    /// *all* missing ranks, not just the first.
    pub fn open(dir: &Path) -> Result<Self, TraceError> {
        let ranks = Self::read_meta(dir)?;
        let missing: Vec<u32> = (0..ranks)
            .filter(|&r| !Self::rank_path(dir, r).exists())
            .map(|r| r as u32)
            .collect();
        if !missing.is_empty() {
            return Err(TraceError::MissingRanks(missing));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            ranks,
        })
    }

    /// Opens a trace directory in recovery mode and salvages every rank
    /// stream: missing files, torn frames, and corrupt bytes are reported
    /// in the [`SalvageReport`] instead of raised. Fails only when the
    /// directory itself is unusable (no readable `meta.txt`) — that is the
    /// unrecoverable case.
    pub fn load_salvage(dir: &Path) -> Result<(MemTrace, SalvageReport), TraceError> {
        let ranks = Self::read_meta(dir)?;
        let mut events = Vec::with_capacity(ranks);
        let mut reports = Vec::with_capacity(ranks);
        for r in 0..ranks {
            match MappedFile::open(&Self::rank_path(dir, r)) {
                Ok(map) => {
                    let (recs, rep) = salvage_bytes(r as u32, map.bytes());
                    events.push(recs);
                    reports.push(rep);
                }
                Err(TraceError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    events.push(Vec::new());
                    reports.push(RankSalvage::missing(r as u32));
                }
                Err(e) => {
                    // Present but unreadable (permissions, I/O failure):
                    // degrade like a missing rank rather than aborting the
                    // whole recovery.
                    let mut rep = RankSalvage::missing(r as u32);
                    rep.notes = vec![format!("rank file unreadable: {e}")];
                    events.push(Vec::new());
                    reports.push(rep);
                }
            }
        }
        Ok((
            MemTrace::from_ranks(events),
            SalvageReport { ranks: reports },
        ))
    }

    /// Audit-only salvage: the damage report of [`Self::load_salvage`]
    /// without materializing a single record. Rank files are mmapped and
    /// walked with a discarding sink, so `mpgtool fsck` can audit trace
    /// sets far larger than RAM — peak heap is per-frame metadata for one
    /// rank at a time.
    pub fn scan_salvage(dir: &Path) -> Result<SalvageReport, TraceError> {
        let ranks = Self::read_meta(dir)?;
        let mut reports = Vec::with_capacity(ranks);
        for r in 0..ranks {
            match MappedFile::open(&Self::rank_path(dir, r)) {
                Ok(map) => reports.push(salvage_into(r as u32, map.bytes(), &mut |_| {})),
                Err(TraceError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    reports.push(RankSalvage::missing(r as u32));
                }
                Err(e) => {
                    let mut rep = RankSalvage::missing(r as u32);
                    rep.notes = vec![format!("rank file unreadable: {e}")];
                    reports.push(rep);
                }
            }
        }
        Ok(SalvageReport { ranks: reports })
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks
    }

    /// Streaming reader for one rank.
    pub fn reader(&self, rank: usize) -> Result<TraceReader<BufReader<File>>, TraceError> {
        let f = File::open(Self::rank_path(&self.dir, rank))?;
        TraceReader::new(BufReader::new(f), rank as u32)
    }

    /// Per-rank fallible iterators, the shape the graph builder consumes.
    pub fn streams(&self) -> Result<Vec<BoxedEventStream<'static>>, TraceError> {
        (0..self.ranks)
            .map(|r| {
                self.reader(r)
                    .map(|rd| Box::new(rd) as BoxedEventStream<'static>)
            })
            .collect()
    }

    /// Loads the whole set into memory, decoding ranks in parallel on
    /// scoped worker threads (one per core, dynamically balanced).
    ///
    /// Error semantics match the old serial loop exactly: when several
    /// ranks fail, the error for the *lowest* rank is returned.
    pub fn load(&self) -> Result<MemTrace, TraceError> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(self.ranks)
            .max(1);
        let decode_rank =
            |r: usize| -> Result<Vec<EventRecord>, TraceError> { self.reader(r)?.collect() };
        let mut slots: Vec<Option<Result<Vec<EventRecord>, TraceError>>> =
            (0..self.ranks).map(|_| None).collect();
        if workers <= 1 {
            for (r, slot) in slots.iter_mut().enumerate() {
                *slot = Some(decode_rank(r));
            }
        } else {
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Mutex;
            let next = AtomicUsize::new(0);
            let ranks = self.ranks;
            let shared: Vec<Mutex<&mut Option<_>>> = slots.iter_mut().map(Mutex::new).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let r = next.fetch_add(1, Ordering::Relaxed);
                        if r >= ranks {
                            return;
                        }
                        let res = decode_rank(r);
                        // Slot indices are claimed uniquely via the counter,
                        // so the lock is uncontended — it exists to satisfy
                        // aliasing rules, not to serialize work.
                        **shared[r].lock().unwrap() = Some(res);
                    });
                }
            });
        }
        let mut events = Vec::with_capacity(self.ranks);
        for slot in slots {
            events.push(slot.expect("every rank slot filled")?);
        }
        Ok(MemTrace::from_ranks(events))
    }
}

/// `mpgtool fsck` verdict — doubles as the subcommand's exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsckStatus {
    /// Every rank stream read back without any recovery (exit 0).
    Clean,
    /// Damage was found but records were recovered; analysis may proceed
    /// at degraded fidelity (exit 1).
    Salvaged,
    /// Nothing usable could be recovered (exit 2).
    Unrecoverable,
}

impl FsckStatus {
    /// Stable lower-case name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            FsckStatus::Clean => "clean",
            FsckStatus::Salvaged => "salvaged",
            FsckStatus::Unrecoverable => "unrecoverable",
        }
    }

    /// The fsck exit-contract code: 0 clean, 1 salvaged, 2 unrecoverable.
    pub fn exit_code(self) -> i32 {
        match self {
            FsckStatus::Clean => 0,
            FsckStatus::Salvaged => 1,
            FsckStatus::Unrecoverable => 2,
        }
    }
}

/// Aggregate damage report for a salvaged trace directory.
#[derive(Debug, Clone)]
pub struct SalvageReport {
    /// One entry per rank named by `meta.txt`, in rank order.
    pub ranks: Vec<RankSalvage>,
}

impl SalvageReport {
    /// Overall verdict across all ranks.
    pub fn status(&self) -> FsckStatus {
        if self.ranks.iter().all(|r| r.is_clean()) {
            return FsckStatus::Clean;
        }
        let recovered: u64 = self.ranks.iter().map(|r| r.records_recovered).sum();
        let any_intact = self.ranks.iter().any(|r| r.is_clean());
        if recovered == 0 && !any_intact {
            FsckStatus::Unrecoverable
        } else {
            FsckStatus::Salvaged
        }
    }

    /// True when no recovery was needed anywhere.
    pub fn is_clean(&self) -> bool {
        self.status() == FsckStatus::Clean
    }

    /// Ranks whose files were missing or unreadable.
    pub fn missing_ranks(&self) -> Vec<u32> {
        self.ranks
            .iter()
            .filter(|r| !r.present)
            .map(|r| r.rank)
            .collect()
    }

    /// Total records recovered across ranks.
    pub fn records_recovered(&self) -> u64 {
        self.ranks.iter().map(|r| r.records_recovered).sum()
    }

    /// Total records known lost across ranks.
    pub fn records_lost(&self) -> u64 {
        self.ranks.iter().map(|r| r.records_lost).sum()
    }

    /// Capture-integrity diagnostics ([`Rule::TruncatedTrace`] /
    /// [`Rule::MissingRank`]) for the lint pipeline, so `lint --deny` can
    /// reject salvaged traces.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for r in &self.ranks {
            if !r.present {
                out.push(Diagnostic::new(Rule::MissingRank, r.summary()).involving([r.rank]));
            } else if !r.is_clean() {
                out.push(Diagnostic::new(Rule::TruncatedTrace, r.summary()).involving([r.rank]));
            }
        }
        out
    }

    /// Render as one JSON object (hand-rolled; this crate is
    /// dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"status\":\"");
        s.push_str(self.status().name());
        s.push_str("\",\"records_recovered\":");
        s.push_str(&self.records_recovered().to_string());
        s.push_str(",\"records_lost\":");
        s.push_str(&self.records_lost().to_string());
        s.push_str(",\"ranks\":[");
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rank\":{},\"present\":{},\"file_len\":{},\"seal\":\"{}\",\
                 \"frames_recovered\":{},\"frames_dropped\":{},\"bytes_skipped\":{},\
                 \"records_recovered\":{},\"records_lost\":{},\"truncated_tail\":{},\"notes\":[",
                r.rank,
                r.present,
                r.file_len,
                r.seal.name(),
                r.frames_recovered,
                r.frames_dropped,
                r.bytes_skipped,
                r.records_recovered,
                r.records_lost,
                r.truncated_tail,
            ));
            for (j, note) in r.notes.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push('"');
                json_escape_into(note, &mut s);
                s.push('"');
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for SalvageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} record(s) recovered, {} lost, {} rank(s) missing",
            self.status().name(),
            self.records_recovered(),
            self.records_lost(),
            self.missing_ranks().len()
        )?;
        for r in &self.ranks {
            if !r.is_clean() {
                writeln!(f, "  {}", r.summary())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn sample_trace() -> MemTrace {
        let mut t = MemTrace::new(2);
        for r in 0..2u32 {
            t.push(EventRecord {
                rank: r,
                seq: 0,
                t_start: 0,
                t_end: 10,
                kind: EventKind::Init,
            });
            t.push(EventRecord {
                rank: r,
                seq: 1,
                t_start: 10,
                t_end: 100,
                kind: EventKind::Compute { work: 90 },
            });
            t.push(EventRecord {
                rank: r,
                seq: 2,
                t_start: 100,
                t_end: 110,
                kind: EventKind::Finalize,
            });
        }
        t
    }

    #[test]
    fn mem_roundtrip_through_disk() {
        let dir = std::env::temp_dir().join(format!("mpg-test-{}", std::process::id()));
        let t = sample_trace();
        let fset = t.save(&dir).unwrap();
        let reopened = FileTraceSet::open(&dir).unwrap();
        assert_eq!(reopened.num_ranks(), 2);
        let loaded = reopened.load().unwrap();
        assert_eq!(loaded, t);
        drop(fset);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_dir_fails() {
        assert!(FileTraceSet::open(Path::new("/nonexistent-mpg-dir")).is_err());
    }

    #[test]
    fn streams_yield_rank_order() {
        let t = sample_trace();
        let streams = t.streams();
        assert_eq!(streams.len(), 2);
        for (r, s) in streams.into_iter().enumerate() {
            let events: Vec<_> = s.collect::<Result<_, _>>().unwrap();
            assert!(events.iter().all(|e| e.rank as usize == r));
            assert_eq!(events.len(), 3);
        }
    }

    #[test]
    fn total_events() {
        assert_eq!(sample_trace().total_events(), 6);
    }

    #[test]
    fn open_reports_all_missing_ranks() {
        let dir = std::env::temp_dir().join(format!("mpg-missing-{}", std::process::id()));
        sample_trace().save(&dir).unwrap();
        fs::remove_file(dir.join("rank-0.mpg")).unwrap();
        fs::remove_file(dir.join("rank-1.mpg")).unwrap();
        match FileTraceSet::open(&dir) {
            Err(TraceError::MissingRanks(ranks)) => assert_eq!(ranks, vec![0, 1]),
            other => panic!("expected MissingRanks, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_tolerates_missing_rank() {
        let dir = std::env::temp_dir().join(format!("mpg-salvage-{}", std::process::id()));
        let t = sample_trace();
        t.save(&dir).unwrap();
        fs::remove_file(dir.join("rank-1.mpg")).unwrap();
        let (loaded, report) = FileTraceSet::load_salvage(&dir).unwrap();
        assert_eq!(loaded.rank(0), t.rank(0));
        assert!(loaded.rank(1).is_empty());
        assert_eq!(report.status(), FsckStatus::Salvaged);
        assert_eq!(report.missing_ranks(), vec![1]);
        let diags = report.diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::MissingRank);
        assert!(report.to_json().contains("\"status\":\"salvaged\""));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_clean_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mpg-salvage-clean-{}", std::process::id()));
        let t = sample_trace();
        t.save(&dir).unwrap();
        let (loaded, report) = FileTraceSet::load_salvage(&dir).unwrap();
        assert_eq!(loaded, t);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.status().exit_code(), 0);
        assert!(report.diagnostics().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_all_ranks_gone_is_unrecoverable() {
        let dir = std::env::temp_dir().join(format!("mpg-salvage-gone-{}", std::process::id()));
        sample_trace().save(&dir).unwrap();
        fs::remove_file(dir.join("rank-0.mpg")).unwrap();
        fs::remove_file(dir.join("rank-1.mpg")).unwrap();
        let (_, report) = FileTraceSet::load_salvage(&dir).unwrap();
        assert_eq!(report.status(), FsckStatus::Unrecoverable);
        assert_eq!(report.status().exit_code(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_load_matches_many_ranks() {
        let dir = std::env::temp_dir().join(format!("mpg-parload-{}", std::process::id()));
        let mut t = MemTrace::new(13);
        for r in 0..13u32 {
            for s in 0..50u64 {
                t.push(EventRecord {
                    rank: r,
                    seq: s,
                    t_start: s * 10,
                    t_end: s * 10 + 5,
                    kind: EventKind::Compute { work: 5 },
                });
            }
        }
        t.save(&dir).unwrap();
        let loaded = FileTraceSet::open(&dir).unwrap().load().unwrap();
        assert_eq!(loaded, t);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_load_returns_lowest_rank_error() {
        let dir = std::env::temp_dir().join(format!("mpg-parload-err-{}", std::process::id()));
        let mut t = MemTrace::new(6);
        for r in 0..6u32 {
            for s in 0..50u64 {
                t.push(EventRecord {
                    rank: r,
                    seq: s,
                    t_start: s * 10,
                    t_end: s * 10 + 5,
                    kind: EventKind::Compute { work: 5 },
                });
            }
        }
        let fset = t.save(&dir).unwrap();
        // Rank 1: unsealed (truncated). Rank 4: checksum damage.
        for (r, cut) in [(1usize, true), (4, false)] {
            let p = FileTraceSet::rank_path(&dir, r);
            let mut bytes = fs::read(&p).unwrap();
            if cut {
                let n = bytes.len() - 8;
                bytes.truncate(n);
            } else {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x10;
            }
            fs::write(&p, &bytes).unwrap();
        }
        // The lowest failing rank (1, unsealed) wins, as in the serial loop.
        match fset.load() {
            Err(TraceError::Unsealed(_)) => {}
            other => panic!("expected rank 1's Unsealed error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_salvage_report_matches_load_salvage() {
        let dir = std::env::temp_dir().join(format!("mpg-scansalv-{}", std::process::id()));
        let t = sample_trace();
        t.save(&dir).unwrap();
        // Damage rank 0, remove rank 1: the audit-only scan must tell the
        // same story as the materializing load.
        let p = FileTraceSet::rank_path(&dir, 0);
        let mut bytes = fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&p, &bytes).unwrap();
        fs::remove_file(dir.join("rank-1.mpg")).unwrap();
        let (_, loaded_report) = FileTraceSet::load_salvage(&dir).unwrap();
        let scanned = FileTraceSet::scan_salvage(&dir).unwrap();
        assert_eq!(scanned.status(), loaded_report.status());
        assert_eq!(scanned.to_json(), loaded_report.to_json());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_missing_meta_fails() {
        let dir = std::env::temp_dir().join(format!("mpg-salvage-nometa-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        assert!(FileTraceSet::load_salvage(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
