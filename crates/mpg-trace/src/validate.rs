//! Structural validation of traces (§4.3's precondition).
//!
//! "The process of taking traces and merging them into a single
//! message-passing graph has the benefit of using the fact that the program
//! did run correctly in the first place." Validation checks that the input
//! actually has that shape before the analyzer trusts it: per-rank
//! monotonicity, init/finalize bracketing, dense sequence numbers, and
//! single-use request handles.

use std::collections::HashSet;

use crate::event::{EventKind, EventRecord};
use crate::MemTrace;

/// One structural problem found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Events overlap or run backwards in the local clock.
    NonMonotonic {
        /// Offending rank.
        rank: u32,
        /// Sequence number of the offending event.
        seq: u64,
    },
    /// Sequence numbers are not dense from zero.
    BadSeq {
        /// Offending rank.
        rank: u32,
        /// Expected sequence number.
        expected: u64,
        /// Found sequence number.
        found: u64,
    },
    /// The first event is not `Init`.
    MissingInit {
        /// Offending rank.
        rank: u32,
    },
    /// The last event is not `Finalize`.
    MissingFinalize {
        /// Offending rank.
        rank: u32,
    },
    /// A record's rank field disagrees with the stream it came from.
    WrongRank {
        /// Stream rank.
        stream: u32,
        /// Record rank.
        record: u32,
    },
    /// A request id was initiated twice before completion.
    DuplicateRequest {
        /// Offending rank.
        rank: u32,
        /// The reused request id.
        req: u64,
    },
    /// A wait references a request that was never initiated (or already
    /// completed).
    UnknownRequest {
        /// Offending rank.
        rank: u32,
        /// The unknown request id.
        req: u64,
    },
    /// A request was initiated but never completed by any wait.
    LeakedRequest {
        /// Offending rank.
        rank: u32,
        /// The dangling request id.
        req: u64,
    },
    /// An event references itself as peer.
    SelfMessage {
        /// Offending rank.
        rank: u32,
        /// Sequence number of the offending event.
        seq: u64,
    },
}

/// Validates one rank's stream; `rank` is the stream index.
pub fn validate_rank_trace(rank: u32, events: &[EventRecord]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut last_end = 0u64;
    let mut open_reqs: HashSet<u64> = HashSet::new();

    match events.first() {
        Some(e) if e.kind == EventKind::Init => {}
        _ => out.push(Violation::MissingInit { rank }),
    }
    match events.last() {
        Some(e) if e.kind == EventKind::Finalize => {}
        _ => out.push(Violation::MissingFinalize { rank }),
    }

    for (i, e) in events.iter().enumerate() {
        if e.rank != rank {
            out.push(Violation::WrongRank {
                stream: rank,
                record: e.rank,
            });
        }
        if e.seq != i as u64 {
            out.push(Violation::BadSeq {
                rank,
                expected: i as u64,
                found: e.seq,
            });
        }
        if e.t_end < e.t_start || e.t_start < last_end {
            out.push(Violation::NonMonotonic { rank, seq: e.seq });
        }
        last_end = last_end.max(e.t_end);

        match &e.kind {
            EventKind::Send { peer, .. } | EventKind::Recv { peer, .. } if *peer == rank => {
                out.push(Violation::SelfMessage { rank, seq: e.seq });
            }
            EventKind::Isend { peer, req, .. } | EventKind::Irecv { peer, req, .. } => {
                if *peer == rank {
                    out.push(Violation::SelfMessage { rank, seq: e.seq });
                }
                if !open_reqs.insert(*req) {
                    out.push(Violation::DuplicateRequest { rank, req: *req });
                }
            }
            EventKind::Wait { req } if !open_reqs.remove(req) => {
                out.push(Violation::UnknownRequest { rank, req: *req });
            }
            EventKind::WaitAll { reqs } => {
                for req in reqs {
                    if !open_reqs.remove(req) {
                        out.push(Violation::UnknownRequest { rank, req: *req });
                    }
                }
            }
            EventKind::WaitSome { completed, .. } => {
                for req in completed {
                    if !open_reqs.remove(req) {
                        out.push(Violation::UnknownRequest { rank, req: *req });
                    }
                }
            }
            EventKind::Test { req, completed } => {
                if *completed {
                    if !open_reqs.remove(req) {
                        out.push(Violation::UnknownRequest { rank, req: *req });
                    }
                } else if !open_reqs.contains(req) {
                    out.push(Violation::UnknownRequest { rank, req: *req });
                }
            }
            _ => {}
        }
    }
    let mut leaked: Vec<u64> = open_reqs.into_iter().collect();
    leaked.sort_unstable();
    for req in leaked {
        out.push(Violation::LeakedRequest { rank, req });
    }
    out
}

/// Validates every rank of an in-memory trace set.
pub fn validate_trace(trace: &MemTrace) -> Vec<Violation> {
    (0..trace.num_ranks())
        .flat_map(|r| validate_rank_trace(r as u32, trace.rank(r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: u32, seq: u64, t0: u64, t1: u64, kind: EventKind) -> EventRecord {
        EventRecord {
            rank,
            seq,
            t_start: t0,
            t_end: t1,
            kind,
        }
    }

    fn good_rank() -> Vec<EventRecord> {
        vec![
            ev(0, 0, 0, 5, EventKind::Init),
            ev(
                0,
                1,
                5,
                10,
                EventKind::Isend {
                    peer: 1,
                    tag: 0,
                    bytes: 4,
                    req: 1,
                },
            ),
            ev(0, 2, 10, 50, EventKind::Compute { work: 40 }),
            ev(0, 3, 50, 90, EventKind::Wait { req: 1 }),
            ev(0, 4, 90, 95, EventKind::Finalize),
        ]
    }

    #[test]
    fn clean_trace_validates() {
        assert!(validate_rank_trace(0, &good_rank()).is_empty());
    }

    #[test]
    fn detects_non_monotonic() {
        let mut t = good_rank();
        t[2].t_start = 8; // overlaps previous end 10? 8 < 10 → violation
        let v = validate_rank_trace(0, &t);
        assert!(v.contains(&Violation::NonMonotonic { rank: 0, seq: 2 }));
    }

    #[test]
    fn detects_backwards_interval() {
        let mut t = good_rank();
        t[2].t_end = 9;
        t[2].t_start = 10;
        let v = validate_rank_trace(0, &t);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::NonMonotonic { seq: 2, .. })));
    }

    #[test]
    fn detects_missing_brackets() {
        let t = &good_rank()[1..4];
        let v = validate_rank_trace(0, t);
        assert!(v.contains(&Violation::MissingInit { rank: 0 }));
        assert!(v.contains(&Violation::MissingFinalize { rank: 0 }));
        // seq now starts at 1
        assert!(v.iter().any(|x| matches!(x, Violation::BadSeq { .. })));
    }

    #[test]
    fn detects_request_misuse() {
        let mut t = good_rank();
        // Duplicate initiation.
        t.insert(
            2,
            ev(
                0,
                2,
                10,
                12,
                EventKind::Isend {
                    peer: 1,
                    tag: 0,
                    bytes: 4,
                    req: 1,
                },
            ),
        );
        // Renumber.
        for (i, e) in t.iter_mut().enumerate() {
            e.seq = i as u64;
        }
        // Fix times.
        t[3].t_start = 12;
        let v = validate_rank_trace(0, &t);
        assert!(v.contains(&Violation::DuplicateRequest { rank: 0, req: 1 }));
    }

    #[test]
    fn detects_unknown_and_leaked() {
        let t = vec![
            ev(0, 0, 0, 5, EventKind::Init),
            ev(
                0,
                1,
                5,
                10,
                EventKind::Isend {
                    peer: 1,
                    tag: 0,
                    bytes: 4,
                    req: 7,
                },
            ),
            ev(0, 2, 10, 20, EventKind::Wait { req: 99 }),
            ev(0, 3, 20, 25, EventKind::Finalize),
        ];
        let v = validate_rank_trace(0, &t);
        assert!(v.contains(&Violation::UnknownRequest { rank: 0, req: 99 }));
        assert!(v.contains(&Violation::LeakedRequest { rank: 0, req: 7 }));
    }

    #[test]
    fn detects_self_message() {
        let t = vec![
            ev(0, 0, 0, 5, EventKind::Init),
            ev(
                0,
                1,
                5,
                10,
                EventKind::Send {
                    peer: 0,
                    tag: 0,
                    bytes: 4,
                    protocol: Default::default(),
                },
            ),
            ev(0, 2, 10, 15, EventKind::Finalize),
        ];
        let v = validate_rank_trace(0, &t);
        assert!(v.contains(&Violation::SelfMessage { rank: 0, seq: 1 }));
    }

    #[test]
    fn detects_wrong_rank() {
        let mut t = good_rank();
        t[1].rank = 4;
        let v = validate_rank_trace(0, &t);
        assert!(v.contains(&Violation::WrongRank {
            stream: 0,
            record: 4
        }));
    }

    #[test]
    fn whole_trace_validation_aggregates() {
        let mut mt = MemTrace::new(2);
        for e in good_rank() {
            mt.push(e);
        }
        // rank 1 left empty → missing init+finalize.
        let v = validate_trace(&mt);
        assert_eq!(
            v,
            vec![
                Violation::MissingInit { rank: 1 },
                Violation::MissingFinalize { rank: 1 }
            ]
        );
    }
}
