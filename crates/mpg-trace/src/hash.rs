//! Cheap content fingerprints for sealed trace directories.
//!
//! A cache key for a trace must change whenever the trace's bytes change,
//! and must be computable without re-reading the (possibly multi-GiB)
//! payload. The v2 frame layer already pays for that: every sealed rank
//! file ends in a footer whose `payload_crc` chains CRC32C over every
//! frame payload in order — a whole-file content checksum the writer
//! computed while streaming. [`trace_fingerprint`] therefore reads only
//! `meta.txt`, each file's leading magic, and its trailing
//! [`FOOTER_LEN`] bytes, and folds the per-rank
//! summaries `(rank, file_len, records, frames, last_t_end, payload_crc)`
//! into two independent mixers:
//!
//! - a chained **CRC32C** over the summary words. CRC32C detects every
//!   burst error of ≤ 32 bits, so two summaries that differ in exactly one
//!   aligned `u32`/smaller field — in particular, in one `payload_crc`,
//!   which itself differs whenever one payload byte differs — can never
//!   produce the same CRC component. Single-payload-byte divergence
//!   provably never collides on the key.
//! - an **FNV-1a 64** over the same words for general collision
//!   resistance across unrelated traces.
//!
//! Unsealed, salvaged, or legacy files have no trustworthy footer and get
//! no fingerprint; callers fall back to the cold path and cache nothing.
//!
//! The fingerprint trusts the seal: it detects truncation (file length is
//! mixed in) and any divergence introduced *through the writer*, but an
//! in-place post-seal bitflip that forges a matching footer is out of
//! scope — that is the cold validator's job, and re-detecting it here
//! would require the second full read this scheme exists to avoid.

use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use crate::fileset::FileTraceSet;
use crate::frame::{crc32c_append, Footer, FOOTER_LEN, MAGIC2};
use crate::TraceError;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Extends an FNV-1a 64 hash over `bytes`. Seed with the FNV offset
/// basis via [`fnv1a64`] for a fresh hash.
pub fn fnv1a64_append(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a 64 of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_append(FNV_OFFSET, bytes)
}

/// Content fingerprint of a sealed trace directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFingerprint {
    /// Rank count from `meta.txt`.
    pub ranks: usize,
    /// Total records summed over every rank footer.
    pub records: u64,
    /// Chained CRC32C over the per-rank summary words.
    pub crc: u32,
    /// FNV-1a 64 over the same words.
    pub fnv: u64,
}

impl TraceFingerprint {
    /// Canonical key string, used as the cache-key trace component and as
    /// an artifact filename stem: `"{ranks:04x}-{crc:08x}-{fnv:016x}"`.
    pub fn key(&self) -> String {
        format!("{:04x}-{:08x}-{:016x}", self.ranks, self.crc, self.fnv)
    }
}

/// Fingerprints a sealed trace directory by reading only `meta.txt` plus
/// each rank file's magic and trailing footer (≤ 33 bytes per rank).
///
/// Fails with [`TraceError::Unsealed`] when any rank file lacks a valid
/// sealed footer (crashed writer, legacy v1 file, or a corrupted seal) —
/// such traces must not be cached because their content checksum cannot
/// be trusted without a full read.
pub fn trace_fingerprint(dir: &Path) -> Result<TraceFingerprint, TraceError> {
    let ranks = FileTraceSet::read_meta(dir)?;
    let missing: Vec<u32> = (0..ranks)
        .filter(|&r| !FileTraceSet::rank_path(dir, r).exists())
        .map(|r| r as u32)
        .collect();
    if !missing.is_empty() {
        return Err(TraceError::MissingRanks(missing));
    }
    let mut crc = 0u32;
    let mut fnv = FNV_OFFSET;
    let mut records = 0u64;
    for r in 0..ranks {
        let path = FileTraceSet::rank_path(dir, r);
        let mut file = std::fs::File::open(&path)?;
        let len = file.metadata()?.len();
        if len < (MAGIC2.len() + FOOTER_LEN) as u64 {
            return Err(TraceError::Unsealed(format!(
                "rank {r}: file too short to be sealed ({len} bytes)"
            )));
        }
        let mut magic = [0u8; 4];
        file.read_exact(&mut magic)?;
        if &magic != MAGIC2 {
            return Err(TraceError::Unsealed(format!(
                "rank {r}: not a v2 (MPG2) stream"
            )));
        }
        file.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
        let mut tail = [0u8; FOOTER_LEN];
        file.read_exact(&mut tail)?;
        let footer = Footer::parse(&tail)
            .ok_or_else(|| TraceError::Unsealed(format!("rank {r}: no valid sealed footer")))?;
        // Fixed-width summary words: each field lands at a stable aligned
        // offset, so a single-field difference is a ≤ 32-bit burst for the
        // CRC component (see module docs).
        let mut words = [0u8; 44];
        words[0..4].copy_from_slice(&(r as u32).to_le_bytes());
        words[4..12].copy_from_slice(&len.to_le_bytes());
        words[12..20].copy_from_slice(&footer.records.to_le_bytes());
        words[20..28].copy_from_slice(&footer.frames.to_le_bytes());
        words[28..36].copy_from_slice(&footer.last_t_end.to_le_bytes());
        words[36..40].copy_from_slice(&footer.payload_crc.to_le_bytes());
        // Trailing 4 zero bytes keep the summary 8-byte aligned.
        crc = crc32c_append(crc, &words);
        fnv = fnv1a64_append(fnv, &words);
        records += footer.records;
    }
    Ok(TraceFingerprint {
        ranks,
        records,
        crc,
        fnv,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, EventRecord};
    use crate::fileset::MemTrace;

    fn tiny_trace(t0: u64) -> MemTrace {
        let mut t = MemTrace::new(2);
        t.push(EventRecord {
            rank: 0,
            seq: 0,
            t_start: t0,
            t_end: t0 + 5,
            kind: EventKind::Compute { work: 5 },
        });
        t.push(EventRecord {
            rank: 1,
            seq: 0,
            t_start: 1,
            t_end: 2,
            kind: EventKind::Finalize,
        });
        t.push(EventRecord {
            rank: 0,
            seq: 1,
            t_start: t0 + 5,
            t_end: t0 + 6,
            kind: EventKind::Finalize,
        });
        t
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mpg-hash-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn identical_content_same_key_different_content_different_key() {
        let d1 = temp_dir("a");
        let d2 = temp_dir("b");
        let d3 = temp_dir("c");
        tiny_trace(100).save(&d1).unwrap();
        tiny_trace(100).save(&d2).unwrap();
        tiny_trace(101).save(&d3).unwrap();
        let f1 = trace_fingerprint(&d1).unwrap();
        let f2 = trace_fingerprint(&d2).unwrap();
        let f3 = trace_fingerprint(&d3).unwrap();
        assert_eq!(f1.key(), f2.key());
        assert_ne!(f1.key(), f3.key());
        for d in [d1, d2, d3] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn unsealed_file_refuses_fingerprint() {
        let d = temp_dir("unsealed");
        tiny_trace(7).save(&d).unwrap();
        // Truncate rank 0 mid-stream: footer gone.
        let p = FileTraceSet::rank_path(&d, 0);
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 10]).unwrap();
        assert!(matches!(
            trace_fingerprint(&d),
            Err(TraceError::Unsealed(_))
        ));
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn missing_rank_refuses_fingerprint() {
        let d = temp_dir("missing");
        tiny_trace(7).save(&d).unwrap();
        std::fs::remove_file(FileTraceSet::rank_path(&d, 1)).unwrap();
        assert!(matches!(
            trace_fingerprint(&d),
            Err(TraceError::MissingRanks(_))
        ));
        let _ = std::fs::remove_dir_all(d);
    }
}
