//! Streaming trace reader.
//!
//! §1.1 point 3: "we handle arbitrarily large trace files by streaming the
//! trace through the simulator instead of loading it all in core." The
//! reader pulls fixed-size chunks from the underlying `Read` and decodes
//! records incrementally; peak memory is one chunk plus one frame.
//!
//! Two formats are sniffed from the magic header:
//!
//! * `MPG2` — the framed, checksummed format ([`crate::frame`]). This is
//!   the *strict* reader: every frame CRC must validate, frames must be
//!   sequence-contiguous, and the stream must end in a sealed footer whose
//!   counts and whole-file checksum match. Any deviation is a typed error —
//!   recovery from damage is the salvage reader's job
//!   ([`crate::salvage`]), not this one's.
//! * `MPG1` — the legacy unframed record stream, kept so old fixtures
//!   still read. It has no checksums and no seal.

use std::io::Read;

use crate::codec::{get_varint, Decoder, MAGIC};
use crate::event::EventRecord;
use crate::frame::{
    crc32c, crc32c_append, parse_frame_header, Footer, FOOTER_LEN, FOOTER_MARKER, FRAME_HEADER_LEN,
    FRAME_MARKER, MAGIC2,
};
use crate::TraceError;

const CHUNK: usize = 64 * 1024;

enum Mode {
    /// Legacy v1: one undelimited record stream.
    Legacy,
    /// v2: checksummed frames plus sealed footer.
    Framed,
}

/// Iterator of [`EventRecord`]s decoded from a byte stream.
pub struct TraceReader<R: Read> {
    source: R,
    decoder: Decoder,
    /// Undecoded bytes carried between chunks.
    pending: Vec<u8>,
    eof: bool,
    failed: bool,
    mode: Mode,
    /// Current v2 frame payload (first_seq varint stripped) being decoded.
    frame: Vec<u8>,
    frame_pos: usize,
    records_seen: u64,
    frames_seen: u64,
    payload_crc: u32,
    last_t_end: u64,
    sealed: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a stream, sniffing the magic header for the format version.
    /// Records are attributed to `rank` (per-rank files do not repeat the
    /// rank in every record).
    pub fn new(mut source: R, rank: u32) -> Result<Self, TraceError> {
        let mut magic = [0u8; 4];
        source.read_exact(&mut magic).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceError::Corrupt("file shorter than magic header".into())
            } else {
                TraceError::Io(e)
            }
        })?;
        let mode = if &magic == MAGIC2 {
            Mode::Framed
        } else if &magic == MAGIC {
            Mode::Legacy
        } else {
            return Err(TraceError::Corrupt(format!(
                "bad magic {magic:?}, expected {MAGIC2:?} or legacy {MAGIC:?}"
            )));
        };
        Ok(Self {
            source,
            decoder: Decoder::new(rank),
            pending: Vec::new(),
            eof: false,
            failed: false,
            mode,
            frame: Vec::new(),
            frame_pos: 0,
            records_seen: 0,
            frames_seen: 0,
            payload_crc: 0,
            last_t_end: 0,
            sealed: false,
        })
    }

    fn refill(&mut self) -> Result<usize, TraceError> {
        let old = self.pending.len();
        self.pending.resize(old + CHUNK, 0);
        let n = self.source.read(&mut self.pending[old..])?;
        self.pending.truncate(old + n);
        if n == 0 {
            self.eof = true;
        }
        Ok(n)
    }

    /// Reads until `pending` holds at least `n` bytes or the source is
    /// exhausted. Returns whether `n` bytes are available.
    fn fill_at_least(&mut self, n: usize) -> Result<bool, TraceError> {
        while self.pending.len() < n && !self.eof {
            self.refill()?;
        }
        Ok(self.pending.len() >= n)
    }

    fn try_decode_legacy(&mut self) -> Result<Option<EventRecord>, TraceError> {
        loop {
            // Attempt to decode from what we have; a truncated-varint error
            // before EOF just means "need more bytes".
            let mut slice = self.pending.as_slice();
            match self.decoder.decode(&mut slice) {
                Ok(Some(rec)) => {
                    let consumed = self.pending.len() - slice.len();
                    self.pending.drain(..consumed);
                    return Ok(Some(rec));
                }
                Ok(None) => {
                    if self.eof {
                        return Ok(None);
                    }
                    self.refill()?;
                    if self.eof && self.pending.is_empty() {
                        return Ok(None);
                    }
                }
                Err(e) => {
                    if self.eof {
                        return Err(e);
                    }
                    // Might be a record split across the chunk boundary.
                    let before = self.pending.len();
                    self.refill()?;
                    if self.eof && self.pending.len() == before {
                        return Err(TraceError::Corrupt(
                            "truncated record at end of stream".into(),
                        ));
                    }
                    // Decoder commits its per-stream state only after a full
                    // record decodes, so retrying from the same buffer start
                    // with more bytes appended is safe.
                    continue;
                }
            }
        }
    }

    fn try_decode_framed(&mut self) -> Result<Option<EventRecord>, TraceError> {
        loop {
            // Drain the current frame first.
            if self.frame_pos < self.frame.len() {
                let mut slice = &self.frame[self.frame_pos..];
                match self.decoder.decode(&mut slice)? {
                    Some(rec) => {
                        self.frame_pos = self.frame.len() - slice.len();
                        self.records_seen += 1;
                        self.last_t_end = rec.t_end;
                        return Ok(Some(rec));
                    }
                    // CRC validated the payload, so running out of bytes
                    // mid-record means the writer emitted a torn frame.
                    None => unreachable!("decode consumed an empty slice it was not given"),
                }
            }

            if self.sealed {
                // Footer already consumed: only EOF may follow.
                if !self.fill_at_least(1)? {
                    return Ok(None);
                }
                return Err(TraceError::Corrupt(
                    "trailing bytes after sealed footer".into(),
                ));
            }

            if !self.fill_at_least(1)? {
                return Err(TraceError::Unsealed(
                    "stream ended without a sealed footer (writer crashed?)".into(),
                ));
            }
            match self.pending[0] {
                FRAME_MARKER => {
                    if !self.fill_at_least(FRAME_HEADER_LEN)? {
                        return Err(TraceError::Unsealed("truncated frame header".into()));
                    }
                    let hdr = parse_frame_header(&self.pending).ok_or_else(|| {
                        TraceError::Corrupt("frame length exceeds maximum".into())
                    })?;
                    let total = FRAME_HEADER_LEN + hdr.len;
                    if !self.fill_at_least(total)? {
                        return Err(TraceError::Unsealed("truncated frame payload".into()));
                    }
                    let payload = &self.pending[FRAME_HEADER_LEN..total];
                    if crc32c(payload) != hdr.crc {
                        return Err(TraceError::Checksum(format!(
                            "frame {} payload checksum mismatch",
                            self.frames_seen
                        )));
                    }
                    self.payload_crc = crc32c_append(self.payload_crc, payload);
                    let mut body = payload;
                    let first_seq = get_varint(&mut body)?;
                    if first_seq != self.decoder.next_seq() {
                        return Err(TraceError::Corrupt(format!(
                            "frame sequence gap: expected {}, found {}",
                            self.decoder.next_seq(),
                            first_seq
                        )));
                    }
                    self.decoder.reset_frame(first_seq);
                    self.frame = body.to_vec();
                    self.frame_pos = 0;
                    self.frames_seen += 1;
                    self.pending.drain(..total);
                }
                FOOTER_MARKER => {
                    if !self.fill_at_least(FOOTER_LEN)? {
                        return Err(TraceError::Unsealed("truncated footer".into()));
                    }
                    let footer = Footer::parse_strict(&self.pending)?;
                    if footer.records != self.records_seen
                        || footer.frames != self.frames_seen
                        || footer.last_t_end != self.last_t_end
                    {
                        return Err(TraceError::Corrupt(format!(
                            "footer counts disagree with stream: footer says \
                             {} records / {} frames / last t_end {}, stream had {} / {} / {}",
                            footer.records,
                            footer.frames,
                            footer.last_t_end,
                            self.records_seen,
                            self.frames_seen,
                            self.last_t_end
                        )));
                    }
                    if footer.payload_crc != self.payload_crc {
                        return Err(TraceError::Checksum(
                            "whole-file payload checksum mismatch".into(),
                        ));
                    }
                    self.sealed = true;
                    self.pending.drain(..FOOTER_LEN);
                }
                other => {
                    return Err(TraceError::Corrupt(format!(
                        "expected frame or footer marker, found byte {other:#04x}"
                    )));
                }
            }
        }
    }

    fn try_decode(&mut self) -> Result<Option<EventRecord>, TraceError> {
        match self.mode {
            Mode::Legacy => self.try_decode_legacy(),
            Mode::Framed => self.try_decode_framed(),
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<EventRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.try_decode() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Encoder;
    use crate::event::EventKind;
    use crate::writer::TraceWriter;

    /// Legacy v1 encoding: magic + raw record stream.
    fn encode(records: &[EventRecord]) -> Vec<u8> {
        let mut buf = MAGIC.to_vec();
        let mut enc = Encoder::new();
        for r in records {
            enc.encode(r, &mut buf);
        }
        buf
    }

    fn encode_v2(records: &[EventRecord], buffer_bytes: usize) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), buffer_bytes);
        for r in records {
            w.record(r).unwrap();
        }
        w.finish().unwrap()
    }

    fn rec(seq: u64, t: u64, kind: EventKind) -> EventRecord {
        EventRecord {
            rank: 2,
            seq,
            t_start: t,
            t_end: t + 3,
            kind,
        }
    }

    #[test]
    fn reads_back_legacy_records() {
        let records: Vec<_> = (0..5)
            .map(|i| rec(i, i * 100, EventKind::Compute { work: 3 }))
            .collect();
        let bytes = encode(&records);
        let out: Vec<_> = TraceReader::new(bytes.as_slice(), 2)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(out, records);
    }

    #[test]
    fn reads_back_framed_records() {
        let records: Vec<_> = (0..500)
            .map(|i| rec(i, i * 100, EventKind::Compute { work: 3 }))
            .collect();
        // Small buffer forces many frames; seq and timestamps must survive
        // the per-frame encoder resets.
        let bytes = encode_v2(&records, 64);
        let out: Vec<_> = TraceReader::new(bytes.as_slice(), 2)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(out, records);
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = b"NOPE....".to_vec();
        assert!(matches!(
            TraceReader::new(bytes.as_slice(), 0),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn short_file_rejected_without_panic() {
        for n in 0..4 {
            let bytes = vec![b'M'; n];
            assert!(matches!(
                TraceReader::new(bytes.as_slice(), 0),
                Err(TraceError::Corrupt(_))
            ));
        }
    }

    #[test]
    fn truncated_legacy_stream_errors() {
        let records: Vec<_> = (0..3)
            .map(|i| {
                rec(
                    i,
                    i * 100,
                    EventKind::Send {
                        peer: 1,
                        tag: 0,
                        bytes: 1 << 40,
                        protocol: Default::default(),
                    },
                )
            })
            .collect();
        let mut bytes = encode(&records);
        bytes.truncate(bytes.len() - 2);
        let results: Vec<_> = TraceReader::new(bytes.as_slice(), 2).unwrap().collect();
        assert!(results.iter().take(results.len() - 1).all(|r| r.is_ok()));
        assert!(results.last().unwrap().is_err());
    }

    #[test]
    fn unsealed_framed_stream_errors() {
        let records: Vec<_> = (0..100)
            .map(|i| rec(i, i * 100, EventKind::Compute { work: 3 }))
            .collect();
        let mut bytes = encode_v2(&records, 64);
        // Drop the footer plus a bit of the last frame: strict reading must
        // fail with the typed Unsealed error.
        bytes.truncate(bytes.len() - FOOTER_LEN - 3);
        let results: Vec<_> = TraceReader::new(bytes.as_slice(), 2).unwrap().collect();
        assert!(matches!(
            results.last().unwrap(),
            Err(TraceError::Unsealed(_))
        ));
    }

    #[test]
    fn corrupt_frame_payload_errors_with_checksum() {
        let records: Vec<_> = (0..100)
            .map(|i| rec(i, i * 100, EventKind::Compute { work: 3 }))
            .collect();
        let mut bytes = encode_v2(&records, 64);
        // Flip a bit inside the first frame's payload.
        bytes[4 + FRAME_HEADER_LEN + 2] ^= 0x40;
        let results: Vec<_> = TraceReader::new(bytes.as_slice(), 2).unwrap().collect();
        assert!(matches!(
            results.first().unwrap(),
            Err(TraceError::Checksum(_))
        ));
    }

    #[test]
    fn trailing_garbage_after_footer_errors() {
        let records: Vec<_> = (0..10)
            .map(|i| rec(i, i * 100, EventKind::Compute { work: 3 }))
            .collect();
        let mut bytes = encode_v2(&records, 1 << 16);
        bytes.extend_from_slice(b"junk");
        let results: Vec<_> = TraceReader::new(bytes.as_slice(), 2).unwrap().collect();
        assert!(results.last().unwrap().is_err());
    }

    /// A reader that returns one byte at a time, forcing every possible
    /// chunk-boundary split.
    struct Dribble<'a>(&'a [u8]);
    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn survives_arbitrary_read_fragmentation() {
        let records: Vec<_> = (0..50)
            .map(|i| {
                rec(
                    i,
                    i * 1000,
                    EventKind::WaitAll {
                        reqs: vec![i, i + 1, i + 2],
                    },
                )
            })
            .collect();
        for bytes in [encode(&records), encode_v2(&records, 128)] {
            let out: Vec<_> = TraceReader::new(Dribble(&bytes), 2)
                .unwrap()
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(out, records);
        }
    }

    #[test]
    fn large_trace_streams_without_loading() {
        // 100k records decode correctly through the chunked path.
        let records: Vec<_> = (0..100_000u64)
            .map(|i| rec(i, i * 10, EventKind::Compute { work: 3 }))
            .collect();
        let bytes = encode_v2(&records, 1 << 16);
        assert!(bytes.len() > CHUNK);
        let n = TraceReader::new(bytes.as_slice(), 2).unwrap().count();
        assert_eq!(n, 100_000);
    }
}
