//! Streaming trace reader.
//!
//! §1.1 point 3: "we handle arbitrarily large trace files by streaming the
//! trace through the simulator instead of loading it all in core." The
//! reader pulls fixed-size chunks from the underlying `Read` and decodes
//! records incrementally; peak memory is one chunk plus one partial record.

use std::io::Read;

use crate::codec::{Decoder, MAGIC};
use crate::event::EventRecord;
use crate::TraceError;

const CHUNK: usize = 64 * 1024;

/// Iterator of [`EventRecord`]s decoded from a byte stream.
pub struct TraceReader<R: Read> {
    source: R,
    decoder: Decoder,
    /// Undecoded bytes carried between chunks.
    pending: Vec<u8>,
    eof: bool,
    failed: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a stream, checking the magic header. Records are attributed to
    /// `rank` (per-rank files do not repeat the rank in every record).
    pub fn new(mut source: R, rank: u32) -> Result<Self, TraceError> {
        let mut magic = [0u8; 4];
        source.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceError::Corrupt(format!(
                "bad magic {magic:?}, expected {MAGIC:?}"
            )));
        }
        Ok(Self {
            source,
            decoder: Decoder::new(rank),
            pending: Vec::new(),
            eof: false,
            failed: false,
        })
    }

    fn refill(&mut self) -> Result<usize, TraceError> {
        let old = self.pending.len();
        self.pending.resize(old + CHUNK, 0);
        let n = self.source.read(&mut self.pending[old..])?;
        self.pending.truncate(old + n);
        if n == 0 {
            self.eof = true;
        }
        Ok(n)
    }

    fn try_decode(&mut self) -> Result<Option<EventRecord>, TraceError> {
        loop {
            // Attempt to decode from what we have; a truncated-varint error
            // before EOF just means "need more bytes".
            let mut slice = self.pending.as_slice();
            match self.decoder.decode(&mut slice) {
                Ok(Some(rec)) => {
                    let consumed = self.pending.len() - slice.len();
                    self.pending.drain(..consumed);
                    return Ok(Some(rec));
                }
                Ok(None) => {
                    if self.eof {
                        return Ok(None);
                    }
                    self.refill()?;
                    if self.eof && self.pending.is_empty() {
                        return Ok(None);
                    }
                }
                Err(e) => {
                    if self.eof {
                        return Err(e);
                    }
                    // Might be a record split across the chunk boundary.
                    let before = self.pending.len();
                    self.refill()?;
                    if self.eof && self.pending.len() == before {
                        return Err(TraceError::Corrupt(
                            "truncated record at end of stream".into(),
                        ));
                    }
                    // Decoder commits its per-stream state only after a full
                    // record decodes, so retrying from the same buffer start
                    // with more bytes appended is safe.
                    continue;
                }
            }
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<EventRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.try_decode() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Encoder;
    use crate::event::EventKind;

    fn encode(records: &[EventRecord]) -> Vec<u8> {
        let mut buf = MAGIC.to_vec();
        let mut enc = Encoder::new();
        for r in records {
            enc.encode(r, &mut buf);
        }
        buf
    }

    fn rec(seq: u64, t: u64, kind: EventKind) -> EventRecord {
        EventRecord {
            rank: 2,
            seq,
            t_start: t,
            t_end: t + 3,
            kind,
        }
    }

    #[test]
    fn reads_back_records() {
        let records: Vec<_> = (0..5)
            .map(|i| rec(i, i * 100, EventKind::Compute { work: 3 }))
            .collect();
        let bytes = encode(&records);
        let out: Vec<_> = TraceReader::new(bytes.as_slice(), 2)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(out, records);
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = b"NOPE....".to_vec();
        assert!(matches!(
            TraceReader::new(bytes.as_slice(), 0),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_stream_errors() {
        let records: Vec<_> = (0..3)
            .map(|i| {
                rec(
                    i,
                    i * 100,
                    EventKind::Send {
                        peer: 1,
                        tag: 0,
                        bytes: 1 << 40,
                        protocol: Default::default(),
                    },
                )
            })
            .collect();
        let mut bytes = encode(&records);
        bytes.truncate(bytes.len() - 2);
        let results: Vec<_> = TraceReader::new(bytes.as_slice(), 2).unwrap().collect();
        assert!(results.iter().take(results.len() - 1).all(|r| r.is_ok()));
        assert!(results.last().unwrap().is_err());
    }

    /// A reader that returns one byte at a time, forcing every possible
    /// chunk-boundary split.
    struct Dribble<'a>(&'a [u8]);
    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn survives_arbitrary_read_fragmentation() {
        let records: Vec<_> = (0..50)
            .map(|i| {
                rec(
                    i,
                    i * 1000,
                    EventKind::WaitAll {
                        reqs: vec![i, i + 1, i + 2],
                    },
                )
            })
            .collect();
        let bytes = encode(&records);
        let out: Vec<_> = TraceReader::new(Dribble(&bytes), 2)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(out, records);
    }

    #[test]
    fn large_trace_streams_without_loading() {
        // 100k records decode correctly through the chunked path.
        let records: Vec<_> = (0..100_000u64)
            .map(|i| rec(i, i * 10, EventKind::Compute { work: 3 }))
            .collect();
        let bytes = encode(&records);
        assert!(bytes.len() > CHUNK);
        let n = TraceReader::new(bytes.as_slice(), 2).unwrap().count();
        assert_eq!(n, 100_000);
    }
}
