#![warn(missing_docs)]

//! Event traces for message-passing programs (§4 of the paper).
//!
//! "Each processor creates an event trace that records the local timestamp,
//! the event type, and event metadata for each event that occurs. … Each MPI
//! primitive to be recorded is wrapped with a lightweight PMPI wrapper that
//! records the event in a memory resident buffer. The buffer is dumped to an
//! event trace file when it becomes full."
//!
//! This crate defines the event model ([`EventRecord`]/[`EventKind`]), a
//! compact varint binary codec, the buffered [`TraceWriter`] mirroring the
//! PMPI wrapper's flush-on-full behaviour, streaming readers for arbitrarily
//! large traces, per-rank [`ClockModel`]s (traces deliberately carry
//! *unsynchronized* clocks, §4.1), and structural validation.
//!
//! The crate is dependency-free so every other crate can speak traces.

pub mod clock;
pub mod codec;
pub mod diag;
pub mod event;
pub mod faultgen;
pub mod fileset;
pub mod frame;
pub mod hash;
pub mod ooc;
pub mod reader;
pub mod salvage;
pub mod stats;
pub mod text;
pub mod validate;
pub mod writer;

pub use clock::ClockModel;
pub use diag::{
    json_escape_into, sort_diagnostics, validate_trace_diagnostics, Diagnostic, Rule, Severity,
};
pub use event::{EventKind, EventRecord, Rank, ReqId, SendProtocol, Seq, Tag, ANY_SOURCE, ANY_TAG};
pub use faultgen::{inject_dir, mutate_bytes, FaultKind, FaultPlan};
pub use fileset::{FileTraceSet, FsckStatus, MemTrace, SalvageReport};
pub use hash::{fnv1a64, fnv1a64_append, trace_fingerprint, TraceFingerprint};
pub use ooc::{FrameCursor, FrameIndex, MappedFile, OocTraceSet};
pub use reader::TraceReader;
pub use salvage::{salvage_bytes, salvage_into, RankSalvage, SealStatus};
pub use stats::{trace_stats, TraceStats};
pub use text::{text_to_trace, trace_to_text};
pub use validate::{validate_rank_trace, validate_trace, Violation};
pub use writer::TraceWriter;

/// Cycle-denominated local timestamp, matching `mpg_noise::Cycles` without
/// creating a dependency.
pub type Cycles = u64;

/// Errors arising while reading or decoding trace data.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed or truncated record stream.
    Corrupt(String),
    /// A CRC32C check failed: a frame payload, the whole-file checksum, or
    /// the footer's own checksum.
    Checksum(String),
    /// A v2 stream ended without a valid sealed footer — the writer most
    /// likely crashed mid-run. The salvage reader can recover the intact
    /// frames.
    Unsealed(String),
    /// A trace directory's `meta.txt` promises ranks whose files are
    /// absent; carries every missing rank, not just the first.
    MissingRanks(Vec<u32>),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Corrupt(m) => write!(f, "corrupt trace: {m}"),
            TraceError::Checksum(m) => write!(f, "trace checksum mismatch: {m}"),
            TraceError::Unsealed(m) => write!(f, "unsealed trace: {m}"),
            TraceError::MissingRanks(ranks) => {
                let list: Vec<String> = ranks.iter().map(|r| r.to_string()).collect();
                write!(
                    f,
                    "missing trace file(s) for rank(s) {} — run `mpgtool fsck` to salvage",
                    list.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}
