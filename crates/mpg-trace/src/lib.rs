#![warn(missing_docs)]

//! Event traces for message-passing programs (§4 of the paper).
//!
//! "Each processor creates an event trace that records the local timestamp,
//! the event type, and event metadata for each event that occurs. … Each MPI
//! primitive to be recorded is wrapped with a lightweight PMPI wrapper that
//! records the event in a memory resident buffer. The buffer is dumped to an
//! event trace file when it becomes full."
//!
//! This crate defines the event model ([`EventRecord`]/[`EventKind`]), a
//! compact varint binary codec, the buffered [`TraceWriter`] mirroring the
//! PMPI wrapper's flush-on-full behaviour, streaming readers for arbitrarily
//! large traces, per-rank [`ClockModel`]s (traces deliberately carry
//! *unsynchronized* clocks, §4.1), and structural validation.
//!
//! The crate is dependency-free so every other crate can speak traces.

pub mod clock;
pub mod codec;
pub mod diag;
pub mod event;
pub mod fileset;
pub mod reader;
pub mod stats;
pub mod text;
pub mod validate;
pub mod writer;

pub use clock::ClockModel;
pub use diag::{sort_diagnostics, validate_trace_diagnostics, Diagnostic, Rule, Severity};
pub use event::{EventKind, EventRecord, Rank, ReqId, SendProtocol, Seq, Tag, ANY_SOURCE, ANY_TAG};
pub use fileset::{FileTraceSet, MemTrace};
pub use reader::TraceReader;
pub use stats::{trace_stats, TraceStats};
pub use text::{text_to_trace, trace_to_text};
pub use validate::{validate_rank_trace, validate_trace, Violation};
pub use writer::TraceWriter;

/// Cycle-denominated local timestamp, matching `mpg_noise::Cycles` without
/// creating a dependency.
pub type Cycles = u64;

/// Errors arising while reading or decoding trace data.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed or truncated record stream.
    Corrupt(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Corrupt(m) => write!(f, "corrupt trace: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}
