//! Trace statistics: what the trace spends its time on and who talks to
//! whom — the first thing an analyst renders from a new trace, and the
//! input to deciding which perturbation classes matter.

use std::collections::BTreeMap;

use crate::event::{EventKind, EventRecord};
use crate::{Cycles, MemTrace};

/// Per-kind accounting for one rank (or aggregated).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Events of this kind.
    pub count: u64,
    /// Total traced time in them (cycles).
    pub total_cycles: Cycles,
}

/// Statistics over a whole trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Aggregated per event-kind name.
    pub by_kind: BTreeMap<&'static str, KindStats>,
    /// Bytes sent per (src, dst) pair (from send-side events).
    pub comm_matrix: BTreeMap<(u32, u32), u64>,
    /// Total events.
    pub events: u64,
    /// Sum of per-rank traced spans.
    pub total_span: Cycles,
    /// Time in compute events (cycles).
    pub compute_cycles: Cycles,
    /// Time in communication events (cycles).
    pub comm_cycles: Cycles,
}

impl TraceStats {
    /// Fraction of traced time spent communicating (or blocked in
    /// communication calls).
    pub fn comm_fraction(&self) -> f64 {
        let denom = (self.compute_cycles + self.comm_cycles) as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.comm_cycles as f64 / denom
        }
    }

    /// Accounts one record.
    pub fn push(&mut self, e: &EventRecord) {
        self.events += 1;
        let entry = self.by_kind.entry(e.kind.name()).or_default();
        entry.count += 1;
        entry.total_cycles += e.duration();
        match &e.kind {
            EventKind::Compute { .. } => self.compute_cycles += e.duration(),
            k if k.is_communication() => self.comm_cycles += e.duration(),
            _ => {}
        }
        match &e.kind {
            EventKind::Send { peer, bytes, .. } | EventKind::Isend { peer, bytes, .. } => {
                *self.comm_matrix.entry((e.rank, *peer)).or_default() += bytes;
            }
            _ => {}
        }
    }

    /// Renders a compact text summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} events, comm fraction {:.1}%\n",
            self.events,
            self.comm_fraction() * 100.0
        ));
        for (name, ks) in &self.by_kind {
            out.push_str(&format!(
                "  {name:>10}: {:>8} events, {:>14} cycles\n",
                ks.count, ks.total_cycles
            ));
        }
        if !self.comm_matrix.is_empty() {
            let pairs = self.comm_matrix.len();
            let bytes: u64 = self.comm_matrix.values().sum();
            out.push_str(&format!(
                "  {pairs} communicating pairs, {bytes} bytes total\n"
            ));
        }
        out
    }
}

/// Computes statistics over an in-memory trace.
pub fn trace_stats(trace: &MemTrace) -> TraceStats {
    let mut stats = TraceStats::default();
    for r in 0..trace.num_ranks() {
        let events = trace.rank(r);
        if let (Some(first), Some(last)) = (events.first(), events.last()) {
            stats.total_span += last.t_end - first.t_start;
        }
        for e in events {
            stats.push(e);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: u32, seq: u64, t0: u64, t1: u64, kind: EventKind) -> EventRecord {
        EventRecord {
            rank,
            seq,
            t_start: t0,
            t_end: t1,
            kind,
        }
    }

    fn sample() -> MemTrace {
        let mut t = MemTrace::new(2);
        t.push(ev(0, 0, 0, 10, EventKind::Init));
        t.push(ev(0, 1, 10, 110, EventKind::Compute { work: 100 }));
        t.push(ev(
            0,
            2,
            110,
            150,
            EventKind::Send {
                peer: 1,
                tag: 0,
                bytes: 500,
                protocol: Default::default(),
            },
        ));
        t.push(ev(0, 3, 150, 160, EventKind::Finalize));
        t.push(ev(1, 0, 0, 10, EventKind::Init));
        t.push(ev(
            1,
            1,
            10,
            150,
            EventKind::Recv {
                peer: 0,
                tag: 0,
                bytes: 500,
                posted_any: false,
            },
        ));
        t.push(ev(1, 2, 150, 160, EventKind::Finalize));
        t
    }

    #[test]
    fn counts_and_fractions() {
        let s = trace_stats(&sample());
        assert_eq!(s.events, 7);
        assert_eq!(s.by_kind["compute"].count, 1);
        assert_eq!(s.by_kind["compute"].total_cycles, 100);
        assert_eq!(s.by_kind["send"].count, 1);
        assert_eq!(s.compute_cycles, 100);
        assert_eq!(s.comm_cycles, 40 + 140);
        assert!((s.comm_fraction() - 180.0 / 280.0).abs() < 1e-12);
        assert_eq!(s.total_span, 160 + 160);
    }

    #[test]
    fn comm_matrix_tracks_bytes() {
        let s = trace_stats(&sample());
        assert_eq!(s.comm_matrix.get(&(0, 1)), Some(&500));
        assert_eq!(s.comm_matrix.get(&(1, 0)), None);
    }

    #[test]
    fn render_mentions_kinds() {
        let s = trace_stats(&sample());
        let r = s.render();
        assert!(r.contains("compute"));
        assert!(r.contains("communicating pairs"));
    }

    #[test]
    fn empty_trace() {
        let s = trace_stats(&MemTrace::new(3));
        assert_eq!(s.events, 0);
        assert_eq!(s.comm_fraction(), 0.0);
    }
}
