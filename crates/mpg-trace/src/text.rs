//! Line-oriented text trace format (interop bridge).
//!
//! §7 plans to adopt external tracing formats (KOJAK's EPILOG). This module
//! provides the interchange half of that story today: a stable,
//! human-readable, line-per-event format that external tools (or awk) can
//! produce and consume, convertible losslessly to and from the binary
//! format.
//!
//! Grammar (whitespace-separated, one event per line, `#` comments):
//!
//! ```text
//! <t_start> <t_end> <kind> [field...]
//! ```
//!
//! with per-kind fields matching the [`EventKind`] variants, e.g.
//! `120 180 send peer=1 tag=0 bytes=4096`.

use std::fmt::Write as _;

use crate::event::{EventKind, EventRecord, SendProtocol};
use crate::{MemTrace, TraceError};

fn kv(out: &mut String, key: &str, value: impl std::fmt::Display) {
    let _ = write!(out, " {key}={value}");
}

fn reqs_field(out: &mut String, key: &str, reqs: &[u64]) {
    let joined: Vec<String> = reqs.iter().map(u64::to_string).collect();
    let _ = write!(out, " {key}={}", joined.join(","));
}

/// Renders one event as a text line (without trailing newline).
pub fn event_to_line(e: &EventRecord) -> String {
    let mut out = format!("{} {} {}", e.t_start, e.t_end, e.kind.name());
    match &e.kind {
        EventKind::Init | EventKind::Finalize => {}
        EventKind::Compute { work } => kv(&mut out, "work", work),
        EventKind::Send {
            peer,
            tag,
            bytes,
            protocol,
        } => {
            kv(&mut out, "peer", peer);
            kv(&mut out, "tag", tag);
            kv(&mut out, "bytes", bytes);
            if *protocol != SendProtocol::Standard {
                let name = match protocol {
                    SendProtocol::Standard => unreachable!(),
                    SendProtocol::Synchronous => "sync",
                    SendProtocol::Buffered => "buffered",
                    SendProtocol::Ready => "ready",
                };
                kv(&mut out, "proto", name);
            }
        }
        EventKind::Recv {
            peer,
            tag,
            bytes,
            posted_any,
        } => {
            kv(&mut out, "peer", peer);
            kv(&mut out, "tag", tag);
            kv(&mut out, "bytes", bytes);
            kv(&mut out, "any", u8::from(*posted_any));
        }
        EventKind::Isend {
            peer,
            tag,
            bytes,
            req,
        } => {
            kv(&mut out, "peer", peer);
            kv(&mut out, "tag", tag);
            kv(&mut out, "bytes", bytes);
            kv(&mut out, "req", req);
        }
        EventKind::Irecv {
            peer,
            tag,
            bytes,
            req,
            posted_any,
        } => {
            kv(&mut out, "peer", peer);
            kv(&mut out, "tag", tag);
            kv(&mut out, "bytes", bytes);
            kv(&mut out, "req", req);
            kv(&mut out, "any", u8::from(*posted_any));
        }
        EventKind::Wait { req } => kv(&mut out, "req", req),
        EventKind::WaitAll { reqs } => reqs_field(&mut out, "reqs", reqs),
        EventKind::WaitSome { reqs, completed } => {
            reqs_field(&mut out, "reqs", reqs);
            reqs_field(&mut out, "completed", completed);
        }
        EventKind::Test { req, completed } => {
            kv(&mut out, "req", req);
            kv(&mut out, "completed", u8::from(*completed));
        }
        EventKind::Barrier { comm_size } => kv(&mut out, "comm", comm_size),
        EventKind::Bcast {
            root,
            bytes,
            comm_size,
        }
        | EventKind::Scatter {
            root,
            bytes,
            comm_size,
        }
        | EventKind::Gather {
            root,
            bytes,
            comm_size,
        }
        | EventKind::Reduce {
            root,
            bytes,
            comm_size,
        } => {
            kv(&mut out, "root", root);
            kv(&mut out, "bytes", bytes);
            kv(&mut out, "comm", comm_size);
        }
        EventKind::Allreduce { bytes, comm_size }
        | EventKind::Allgather { bytes, comm_size }
        | EventKind::Alltoall { bytes, comm_size } => {
            kv(&mut out, "bytes", bytes);
            kv(&mut out, "comm", comm_size);
        }
    }
    out
}

/// Renders a whole trace: a `ranks=N` header, then one `rank N` section per
/// rank with its events.
pub fn trace_to_text(trace: &MemTrace) -> String {
    let mut out = format!("# mpg text trace v1\nranks={}\n", trace.num_ranks());
    for r in 0..trace.num_ranks() {
        let _ = writeln!(out, "rank {r}");
        for e in trace.rank(r) {
            let _ = writeln!(out, "{}", event_to_line(e));
        }
    }
    out
}

struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn parse(tokens: &[&'a str]) -> Result<Self, TraceError> {
        let pairs = tokens
            .iter()
            .map(|t| {
                t.split_once('=')
                    .ok_or_else(|| TraceError::Corrupt(format!("bad field '{t}'")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { pairs })
    }

    fn get<T: std::str::FromStr>(&self, key: &str) -> Result<T, TraceError> {
        let raw = self
            .pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| TraceError::Corrupt(format!("missing field '{key}'")))?;
        raw.parse()
            .map_err(|_| TraceError::Corrupt(format!("unparseable field '{key}={raw}'")))
    }

    fn get_list(&self, key: &str) -> Result<Vec<u64>, TraceError> {
        let raw = self
            .pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| TraceError::Corrupt(format!("missing field '{key}'")))?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|s| {
                s.parse()
                    .map_err(|_| TraceError::Corrupt(format!("bad list item '{s}'")))
            })
            .collect()
    }
}

/// Parses one event line (`rank`/`seq` provided by the section parser).
pub fn line_to_event(line: &str, rank: u32, seq: u64) -> Result<EventRecord, TraceError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 3 {
        return Err(TraceError::Corrupt(format!("short event line '{line}'")));
    }
    let t_start: u64 = tokens[0]
        .parse()
        .map_err(|_| TraceError::Corrupt(format!("bad t_start '{}'", tokens[0])))?;
    let t_end: u64 = tokens[1]
        .parse()
        .map_err(|_| TraceError::Corrupt(format!("bad t_end '{}'", tokens[1])))?;
    let f = Fields::parse(&tokens[3..])?;
    let kind = match tokens[2] {
        "init" => EventKind::Init,
        "finalize" => EventKind::Finalize,
        "compute" => EventKind::Compute {
            work: f.get("work")?,
        },
        "send" => EventKind::Send {
            peer: f.get("peer")?,
            tag: f.get("tag")?,
            bytes: f.get("bytes")?,
            protocol: match f.get::<String>("proto").ok().as_deref() {
                None => SendProtocol::Standard,
                Some("sync") => SendProtocol::Synchronous,
                Some("buffered") => SendProtocol::Buffered,
                Some("ready") => SendProtocol::Ready,
                Some(other) => return Err(TraceError::Corrupt(format!("unknown proto '{other}'"))),
            },
        },
        "recv" => EventKind::Recv {
            peer: f.get("peer")?,
            tag: f.get("tag")?,
            bytes: f.get("bytes")?,
            posted_any: f.get::<u8>("any")? != 0,
        },
        "isend" => EventKind::Isend {
            peer: f.get("peer")?,
            tag: f.get("tag")?,
            bytes: f.get("bytes")?,
            req: f.get("req")?,
        },
        "irecv" => EventKind::Irecv {
            peer: f.get("peer")?,
            tag: f.get("tag")?,
            bytes: f.get("bytes")?,
            req: f.get("req")?,
            posted_any: f.get::<u8>("any")? != 0,
        },
        "wait" => EventKind::Wait { req: f.get("req")? },
        "waitall" => EventKind::WaitAll {
            reqs: f.get_list("reqs")?,
        },
        "waitsome" => EventKind::WaitSome {
            reqs: f.get_list("reqs")?,
            completed: f.get_list("completed")?,
        },
        "test" => EventKind::Test {
            req: f.get("req")?,
            completed: f.get::<u8>("completed")? != 0,
        },
        "barrier" => EventKind::Barrier {
            comm_size: f.get("comm")?,
        },
        "bcast" => EventKind::Bcast {
            root: f.get("root")?,
            bytes: f.get("bytes")?,
            comm_size: f.get("comm")?,
        },
        "scatter" => EventKind::Scatter {
            root: f.get("root")?,
            bytes: f.get("bytes")?,
            comm_size: f.get("comm")?,
        },
        "gather" => EventKind::Gather {
            root: f.get("root")?,
            bytes: f.get("bytes")?,
            comm_size: f.get("comm")?,
        },
        "reduce" => EventKind::Reduce {
            root: f.get("root")?,
            bytes: f.get("bytes")?,
            comm_size: f.get("comm")?,
        },
        "allreduce" => EventKind::Allreduce {
            bytes: f.get("bytes")?,
            comm_size: f.get("comm")?,
        },
        "allgather" => EventKind::Allgather {
            bytes: f.get("bytes")?,
            comm_size: f.get("comm")?,
        },
        "alltoall" => EventKind::Alltoall {
            bytes: f.get("bytes")?,
            comm_size: f.get("comm")?,
        },
        other => return Err(TraceError::Corrupt(format!("unknown event kind '{other}'"))),
    };
    Ok(EventRecord {
        rank,
        seq,
        t_start,
        t_end,
        kind,
    })
}

/// Parses a whole text trace.
pub fn text_to_trace(text: &str) -> Result<MemTrace, TraceError> {
    let mut lines = text.lines().filter(|l| {
        let t = l.trim();
        !t.is_empty() && !t.starts_with('#')
    });
    let header = lines
        .next()
        .ok_or_else(|| TraceError::Corrupt("empty text trace".into()))?;
    let ranks: usize = header
        .trim()
        .strip_prefix("ranks=")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| TraceError::Corrupt(format!("expected 'ranks=N', got '{header}'")))?;
    let mut trace = MemTrace::new(ranks);
    let mut current: Option<u32> = None;
    let mut seq = 0u64;
    for line in lines {
        let t = line.trim();
        if let Some(r) = t.strip_prefix("rank ") {
            let r: u32 = r
                .trim()
                .parse()
                .map_err(|_| TraceError::Corrupt(format!("bad rank header '{t}'")))?;
            if r as usize >= ranks {
                return Err(TraceError::Corrupt(format!(
                    "rank {r} out of range (ranks={ranks})"
                )));
            }
            current = Some(r);
            seq = 0;
            continue;
        }
        let rank = current
            .ok_or_else(|| TraceError::Corrupt("event line before any 'rank N' header".into()))?;
        trace.push(line_to_event(t, rank, seq)?);
        seq += 1;
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_trace;

    fn full_kind_trace() -> MemTrace {
        let kinds: Vec<EventKind> = vec![
            EventKind::Init,
            EventKind::Compute { work: 500 },
            EventKind::Send {
                peer: 1,
                tag: 2,
                bytes: 64,
                protocol: SendProtocol::Standard,
            },
            EventKind::Send {
                peer: 1,
                tag: 2,
                bytes: 64,
                protocol: SendProtocol::Synchronous,
            },
            EventKind::Send {
                peer: 1,
                tag: 2,
                bytes: 64,
                protocol: SendProtocol::Buffered,
            },
            EventKind::Send {
                peer: 1,
                tag: 2,
                bytes: 64,
                protocol: SendProtocol::Ready,
            },
            EventKind::Recv {
                peer: 1,
                tag: 2,
                bytes: 64,
                posted_any: true,
            },
            EventKind::Isend {
                peer: 1,
                tag: 0,
                bytes: 8,
                req: 1,
            },
            EventKind::Irecv {
                peer: 1,
                tag: 0,
                bytes: 8,
                req: 2,
                posted_any: false,
            },
            EventKind::Test {
                req: 1,
                completed: false,
            },
            EventKind::Wait { req: 1 },
            EventKind::WaitAll { reqs: vec![2] },
            EventKind::WaitSome {
                reqs: vec![],
                completed: vec![],
            },
            EventKind::Barrier { comm_size: 2 },
            EventKind::Bcast {
                root: 0,
                bytes: 4,
                comm_size: 2,
            },
            EventKind::Reduce {
                root: 1,
                bytes: 4,
                comm_size: 2,
            },
            EventKind::Allreduce {
                bytes: 4,
                comm_size: 2,
            },
            EventKind::Scatter {
                root: 0,
                bytes: 4,
                comm_size: 2,
            },
            EventKind::Gather {
                root: 0,
                bytes: 4,
                comm_size: 2,
            },
            EventKind::Allgather {
                bytes: 4,
                comm_size: 2,
            },
            EventKind::Alltoall {
                bytes: 4,
                comm_size: 2,
            },
            EventKind::Finalize,
        ];
        let mut t = MemTrace::new(2);
        for (i, kind) in kinds.into_iter().enumerate() {
            t.push(EventRecord {
                rank: 0,
                seq: i as u64,
                t_start: i as u64 * 10,
                t_end: i as u64 * 10 + 5,
                kind,
            });
        }
        t.push(EventRecord {
            rank: 1,
            seq: 0,
            t_start: 0,
            t_end: 1,
            kind: EventKind::Init,
        });
        t
    }

    #[test]
    fn roundtrip_every_kind() {
        let t = full_kind_trace();
        let text = trace_to_text(&t);
        let back = text_to_trace(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\nranks=1\n# section\nrank 0\n0 5 init\n\n5 10 finalize\n";
        let t = text_to_trace(text).unwrap();
        assert_eq!(t.rank(0).len(), 2);
        assert_eq!(t.rank(0)[1].kind, EventKind::Finalize);
    }

    #[test]
    fn errors_are_described() {
        for (text, needle) in [
            ("", "empty"),
            ("nope", "ranks="),
            ("ranks=1\n0 5 init", "before any"),
            ("ranks=1\nrank 5\n0 5 init", "out of range"),
            ("ranks=1\nrank 0\n0 5 zorp", "unknown event kind"),
            ("ranks=1\nrank 0\n0 5 send peer=1", "missing field"),
            ("ranks=1\nrank 0\nx 5 init", "bad t_start"),
        ] {
            let err = text_to_trace(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn simulated_trace_roundtrips_and_stays_valid() {
        use mpg_noise_for_tests::*;
        let t = traced();
        assert!(validate_trace(&t).is_empty());
        let back = text_to_trace(&trace_to_text(&t)).unwrap();
        assert_eq!(back, t);
    }

    /// Tiny shim so this dependency-free crate can still test against a
    /// realistic trace: hand-built, mirroring simulator output shape.
    mod mpg_noise_for_tests {
        use super::*;

        pub fn traced() -> MemTrace {
            let mut t = MemTrace::new(2);
            for r in 0..2u32 {
                let peer = 1 - r;
                let mut push = |seq, t0, t1, kind| {
                    t.push(EventRecord {
                        rank: r,
                        seq,
                        t_start: t0,
                        t_end: t1,
                        kind,
                    });
                };
                push(0, 0, 10, EventKind::Init);
                push(1, 10, 100, EventKind::Compute { work: 90 });
                if r == 0 {
                    push(
                        2,
                        100,
                        200,
                        EventKind::Send {
                            peer,
                            tag: 0,
                            bytes: 32,
                            protocol: SendProtocol::Standard,
                        },
                    );
                } else {
                    push(
                        2,
                        100,
                        200,
                        EventKind::Recv {
                            peer,
                            tag: 0,
                            bytes: 32,
                            posted_any: false,
                        },
                    );
                }
                push(3, 200, 210, EventKind::Finalize);
            }
            t
        }
    }
}
