//! Per-rank clock models (§4.1, "Avoiding clock synchronization").
//!
//! "It is tempting, although misleading, to infer information about two
//! processors using their local timestamps and clocks."
//!
//! The simulated platform stamps each rank's trace through its own
//! [`ClockModel`] — an offset plus drift against true simulation time — so
//! the traces delivered to the analyzer are *unsynchronized by construction*.
//! Any analyzer code that accidentally compares timestamps across ranks
//! produces visibly wrong answers under a skewed clock, which integration
//! tests exploit.

use crate::Cycles;

/// Affine local-clock model: `local = offset + global * (1 + drift_ppm/1e6)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockModel {
    /// Constant offset (cycles) of this rank's clock at global time 0.
    pub offset: Cycles,
    /// Rate error in parts per million. Real oscillators sit within
    /// ±100 ppm; tests use larger values to amplify misuse.
    pub drift_ppm: f64,
}

impl ClockModel {
    /// A perfectly synchronized clock.
    pub fn ideal() -> Self {
        Self {
            offset: 0,
            drift_ppm: 0.0,
        }
    }

    /// A deterministic pseudo-random skew for `rank`: offsets spread over
    /// ~1e9 cycles and drifts within ±50 ppm, both derived from the rank id
    /// so traces are reproducible.
    pub fn skewed(rank: u32) -> Self {
        // Small inline mix; this crate stays dependency-free.
        let mut z = (u64::from(rank) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 31;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 29;
        let offset = z % 1_000_000_000;
        let drift_ppm = ((z >> 32) % 101) as f64 - 50.0;
        Self { offset, drift_ppm }
    }

    /// Maps true simulation time to this rank's local timestamp.
    ///
    /// Only the drift *delta* goes through floating point so that large
    /// timestamps survive exactly when `drift_ppm == 0`.
    pub fn to_local(&self, global: Cycles) -> Cycles {
        let skew = (global as f64 * (self.drift_ppm / 1e6)).round() as i64;
        (self.offset + global).saturating_add_signed(skew)
    }

    /// Inverse of [`to_local`](Self::to_local) (saturating below the offset).
    pub fn to_global(&self, local: Cycles) -> Cycles {
        let elapsed = local.saturating_sub(self.offset);
        let skew =
            (elapsed as f64 * (self.drift_ppm / 1e6) / (1.0 + self.drift_ppm / 1e6)).round() as i64;
        elapsed.saturating_add_signed(-skew)
    }
}

impl Default for ClockModel {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_identity() {
        let c = ClockModel::ideal();
        for t in [0u64, 1, 1_000_000, u64::MAX / 4] {
            assert_eq!(c.to_local(t), t);
            assert_eq!(c.to_global(t), t);
        }
    }

    #[test]
    fn local_preserves_order() {
        let c = ClockModel::skewed(17);
        let mut prev = c.to_local(0);
        for t in (0..10_000u64).step_by(97) {
            let l = c.to_local(t);
            assert!(l >= prev);
            prev = l;
        }
    }

    #[test]
    fn roundtrip_within_rounding() {
        let c = ClockModel {
            offset: 123_456,
            drift_ppm: 37.5,
        };
        for t in [0u64, 1, 999, 1_000_000, 123_456_789] {
            let back = c.to_global(c.to_local(t));
            assert!(back.abs_diff(t) <= 1, "t={t} back={back}");
        }
    }

    #[test]
    fn skewed_is_deterministic_and_varied() {
        assert_eq!(ClockModel::skewed(5), ClockModel::skewed(5));
        assert_ne!(ClockModel::skewed(5), ClockModel::skewed(6));
        // Offsets genuinely separate ranks' clock readings.
        let a = ClockModel::skewed(0).to_local(1000);
        let b = ClockModel::skewed(1).to_local(1000);
        assert_ne!(a, b);
    }

    #[test]
    fn drift_bounds() {
        for r in 0..500 {
            let c = ClockModel::skewed(r);
            assert!(c.drift_ppm.abs() <= 50.0);
        }
    }
}
