//! Shared diagnostic model for trace validation and static lint analysis.
//!
//! Both the shallow per-rank preconditions of [`crate::validate`] (§4.3's
//! "the program did run correctly" assumption) and the cross-rank defect
//! passes of the `mpg-lint` crate report through one type: a
//! [`Diagnostic`] carrying a stable [`Rule`] code, a [`Severity`], the
//! ranks involved, and an optional primary `(rank, seq)` location. One
//! reporting path means `mpgtool validate` and `mpgtool lint` render and
//! serialize identically.

use std::fmt;

use crate::event::{Rank, Seq};
use crate::validate::Violation;
use crate::MemTrace;

/// How bad a diagnostic is.
///
/// Ordering is by increasing badness: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: legal structure that can destabilize replay predictions
    /// (e.g. wildcard nondeterminism). Hidden by default in the CLI.
    Info,
    /// Suspicious but not fatal to replay.
    Warning,
    /// The trace is malformed or the program it records is defective;
    /// replay results cannot be trusted.
    Error,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Stable rule codes for every defect class the toolchain can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    // ---- structural preconditions (validate pass, §4.3) ----
    /// Local clock runs backwards or events overlap.
    ClockNonMono,
    /// Sequence numbers not dense from zero.
    BadSeq,
    /// First event is not `Init`.
    MissingInit,
    /// Last event is not `Finalize`.
    MissingFinalize,
    /// Record's rank disagrees with its stream.
    WrongRank,
    /// Request id initiated twice before completion.
    DupRequest,
    /// Wait references an unknown/completed request.
    UnknownRequest,
    /// Request initiated but never completed.
    LeakedRequest,
    /// Event names its own rank as peer.
    SelfMessage,
    // ---- cross-rank defects (lint passes) ----
    /// Send with no matching receive anywhere in the trace.
    UnmatchedSend,
    /// Receive with no matching send anywhere in the trace.
    UnmatchedRecv,
    /// Send/receive pair agree on channel but disagree on tag.
    TagMismatch,
    /// Matched send/receive disagree on byte count.
    CountMismatch,
    /// Peer rank outside the communicator.
    BadPeer,
    /// Cycle in the wait-for graph over blocking operations.
    Deadlock,
    /// Stitched event graph is not a DAG.
    Cycle,
    /// Message edge points backwards in per-rank program order.
    Causality,
    /// Wildcard receive with ≥2 statically feasible senders.
    WildRace,
    /// Ranks disagree on collective op/root/participants.
    CollectiveSkew,
    /// Barrier whose cross-rank ordering is already implied by the rest of
    /// the graph: removable synchronization.
    RedundantSync,
    /// A receiver's in-flight eager-send occupancy high-water mark crossed
    /// the advisory threshold.
    BufferWatermark,
    // ---- capture-integrity defects (salvage reader) ----
    /// A rank's stream was salvaged: frames dropped, bytes skipped,
    /// records lost, or an unsealed tail.
    TruncatedTrace,
    /// A rank file named by `meta.txt` is absent from the trace directory.
    MissingRank,
    // ---- performance findings (wait-state/slack analysis) ----
    /// A receive spent most of its window blocked on a sender that posted
    /// late; the wait is on the static critical path.
    LateSender,
    /// A collective's cost is dominated by entry imbalance: one rank's
    /// late arrival made every other participant wait.
    CollectiveImbalance,
    /// The static critical path serializes through many ranks with heavy
    /// wait states — the run is chain-dominated, not compute-dominated.
    SerialChain,
    // ---- predictive findings (schedule-space exploration) ----
    /// An alternate wildcard matching — forced and re-replayed by the
    /// explorer — reaches a wait-for cycle: the recorded run completed,
    /// but a different arrival order deadlocks.
    MayDeadlock,
    /// An alternate wildcard matching completes but shifts the estimated
    /// makespan beyond the divergence threshold: predictions from the
    /// recorded schedule are schedule-sensitive.
    ScheduleDivergence,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: &'static [Rule] = &[
        Rule::ClockNonMono,
        Rule::BadSeq,
        Rule::MissingInit,
        Rule::MissingFinalize,
        Rule::WrongRank,
        Rule::DupRequest,
        Rule::UnknownRequest,
        Rule::LeakedRequest,
        Rule::SelfMessage,
        Rule::UnmatchedSend,
        Rule::UnmatchedRecv,
        Rule::TagMismatch,
        Rule::CountMismatch,
        Rule::BadPeer,
        Rule::Deadlock,
        Rule::Cycle,
        Rule::Causality,
        Rule::WildRace,
        Rule::CollectiveSkew,
        Rule::RedundantSync,
        Rule::BufferWatermark,
        Rule::TruncatedTrace,
        Rule::MissingRank,
        Rule::LateSender,
        Rule::CollectiveImbalance,
        Rule::SerialChain,
        Rule::MayDeadlock,
        Rule::ScheduleDivergence,
    ];

    /// The stable `MPG-*` code.
    pub fn code(self) -> &'static str {
        match self {
            Rule::ClockNonMono => "MPG-CLOCK-NONMONO",
            Rule::BadSeq => "MPG-BAD-SEQ",
            Rule::MissingInit => "MPG-MISSING-INIT",
            Rule::MissingFinalize => "MPG-MISSING-FINALIZE",
            Rule::WrongRank => "MPG-WRONG-RANK",
            Rule::DupRequest => "MPG-DUP-REQUEST",
            Rule::UnknownRequest => "MPG-UNKNOWN-REQUEST",
            Rule::LeakedRequest => "MPG-LEAKED-REQUEST",
            Rule::SelfMessage => "MPG-SELF-MESSAGE",
            Rule::UnmatchedSend => "MPG-UNMATCHED-SEND",
            Rule::UnmatchedRecv => "MPG-UNMATCHED-RECV",
            Rule::TagMismatch => "MPG-TAG-MISMATCH",
            Rule::CountMismatch => "MPG-COUNT-MISMATCH",
            Rule::BadPeer => "MPG-BAD-PEER",
            Rule::Deadlock => "MPG-DEADLOCK",
            Rule::Cycle => "MPG-CYCLE",
            Rule::Causality => "MPG-CAUSALITY",
            Rule::WildRace => "MPG-WILD-RACE",
            Rule::CollectiveSkew => "MPG-COLLECTIVE-SKEW",
            Rule::RedundantSync => "MPG-REDUNDANT-SYNC",
            Rule::BufferWatermark => "MPG-BUFFER-WATERMARK",
            Rule::TruncatedTrace => "MPG-TRUNCATED-TRACE",
            Rule::MissingRank => "MPG-MISSING-RANK",
            Rule::LateSender => "MPG-LATE-SENDER",
            Rule::CollectiveImbalance => "MPG-COLLECTIVE-IMBALANCE",
            Rule::SerialChain => "MPG-SERIAL-CHAIN",
            Rule::MayDeadlock => "MPG-MAY-DEADLOCK",
            Rule::ScheduleDivergence => "MPG-SCHEDULE-DIVERGENCE",
        }
    }

    /// One-line description of the defect class, shared by
    /// `mpgtool lint --help` and the DESIGN.md rule table (a consistency
    /// test keeps the two in sync so a new rule cannot silently miss its
    /// documentation).
    pub fn doc(self) -> &'static str {
        match self {
            Rule::ClockNonMono => "local clock runs backwards or events overlap",
            Rule::BadSeq => "sequence numbers not dense from zero",
            Rule::MissingInit => "first event is not Init",
            Rule::MissingFinalize => "last event is not Finalize",
            Rule::WrongRank => "record's rank disagrees with its stream",
            Rule::DupRequest => "request id initiated twice before completion",
            Rule::UnknownRequest => "wait references an unknown or completed request",
            Rule::LeakedRequest => "request initiated but never completed",
            Rule::SelfMessage => "event names its own rank as peer",
            Rule::UnmatchedSend => "send with no matching receive anywhere in the trace",
            Rule::UnmatchedRecv => "receive with no matching send anywhere in the trace",
            Rule::TagMismatch => "send/receive pair agree on channel but disagree on tag",
            Rule::CountMismatch => "matched send/receive disagree on byte count",
            Rule::BadPeer => "peer rank outside the communicator",
            Rule::Deadlock => "cycle in the wait-for graph over blocking operations",
            Rule::Cycle => "stitched event graph is not a DAG",
            Rule::Causality => "message edge points backwards in per-rank program order",
            Rule::WildRace => "wildcard receive with a concurrent alternate match",
            Rule::CollectiveSkew => "ranks disagree on collective op/root/participants",
            Rule::RedundantSync => "barrier whose ordering is already implied; removable sync",
            Rule::BufferWatermark => "receiver's in-flight eager-send occupancy crossed threshold",
            Rule::TruncatedTrace => "rank stream was salvaged; frames or records lost",
            Rule::MissingRank => "rank file named by meta.txt is absent",
            Rule::LateSender => "receive blocked most of its window on a late sender",
            Rule::CollectiveImbalance => "collective cost dominated by one rank's late entry",
            Rule::SerialChain => "critical path serializes through many ranks via waits",
            Rule::MayDeadlock => "an alternate wildcard matching replays to a wait-for cycle",
            Rule::ScheduleDivergence => {
                "alternate matching shifts estimated makespan past threshold"
            }
        }
    }

    /// Severity the rule fires at unless escalated (e.g. by `--deny`).
    pub fn default_severity(self) -> Severity {
        match self {
            // Wildcard nondeterminism is legal MPI and common in
            // master/worker load balancing; it only threatens replay
            // *stability*, so it is advisory by default. The HB-powered
            // synchronization findings are likewise legal-but-noteworthy.
            Rule::WildRace | Rule::RedundantSync | Rule::BufferWatermark => Severity::Info,
            // A leaked request or a byte-count mismatch degrades fidelity
            // but the graph still stitches.
            Rule::LeakedRequest | Rule::CountMismatch => Severity::Warning,
            // Salvaged capture defects: replay to the crash frontier is
            // still meaningful, but strict pipelines escalate these with
            // `--deny` to reject salvaged traces outright.
            Rule::TruncatedTrace | Rule::MissingRank => Severity::Warning,
            // Performance findings describe a slow-but-correct run; they
            // never block replay unless escalated with `--deny`.
            Rule::LateSender | Rule::CollectiveImbalance | Rule::SerialChain => Severity::Info,
            // Predictive findings: the recorded run completed — these
            // describe what a *different* schedule would have done. A
            // may-deadlock is a real program defect (warning; escalate
            // with `--deny` to gate CI); divergence is advisory.
            Rule::MayDeadlock => Severity::Warning,
            Rule::ScheduleDivergence => Severity::Info,
            _ => Severity::Error,
        }
    }

    /// Which analysis pass owns the rule — the label shown in the rule
    /// registry (`mpgtool lint --rules`) and the DESIGN.md §7 table.
    pub fn pass(self) -> &'static str {
        match self {
            Rule::ClockNonMono
            | Rule::BadSeq
            | Rule::MissingInit
            | Rule::MissingFinalize
            | Rule::WrongRank
            | Rule::DupRequest
            | Rule::UnknownRequest
            | Rule::LeakedRequest
            | Rule::SelfMessage => "validate",
            Rule::UnmatchedSend
            | Rule::UnmatchedRecv
            | Rule::TagMismatch
            | Rule::CountMismatch
            | Rule::BadPeer => "match",
            Rule::Deadlock => "deadlock",
            Rule::Cycle | Rule::Causality => "causality",
            Rule::WildRace => "race",
            Rule::CollectiveSkew => "collective",
            Rule::RedundantSync | Rule::BufferWatermark => "sync",
            Rule::TruncatedTrace | Rule::MissingRank => "ingest",
            Rule::LateSender | Rule::CollectiveImbalance | Rule::SerialChain => "perf",
            Rule::MayDeadlock | Rule::ScheduleDivergence => "explore",
        }
    }

    /// Parse a code (as printed by [`Rule::code`], case-insensitive).
    pub fn from_code(code: &str) -> Option<Rule> {
        Rule::ALL
            .iter()
            .copied()
            .find(|r| r.code().eq_ignore_ascii_case(code))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One defect found by validation or lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Effective severity (defaults to [`Rule::default_severity`]).
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Every rank involved (sorted, deduplicated).
    pub ranks: Vec<Rank>,
    /// Primary `(rank, seq)` location, when one event is to blame.
    pub span: Option<(Rank, Seq)>,
}

impl Diagnostic {
    /// New diagnostic at the rule's default severity.
    pub fn new(rule: Rule, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: rule.default_severity(),
            message: message.into(),
            ranks: Vec::new(),
            span: None,
        }
    }

    /// Attach a primary location (also records the rank as involved).
    pub fn at(mut self, rank: Rank, seq: Seq) -> Self {
        self.span = Some((rank, seq));
        self.involving([rank])
    }

    /// Record involved ranks (sorted/deduplicated on insert).
    pub fn involving(mut self, ranks: impl IntoIterator<Item = Rank>) -> Self {
        self.ranks.extend(ranks);
        self.ranks.sort_unstable();
        self.ranks.dedup();
        self
    }

    /// Override the severity (e.g. `--deny` escalation).
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Render as one JSON object (hand-rolled; this crate is
    /// dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"rule\":\"");
        s.push_str(self.rule.code());
        s.push_str("\",\"severity\":\"");
        s.push_str(self.severity.label());
        s.push_str("\",\"message\":\"");
        json_escape_into(&self.message, &mut s);
        s.push_str("\",\"ranks\":[");
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&r.to_string());
        }
        s.push(']');
        if let Some((rank, seq)) = self.span {
            s.push_str(&format!(",\"rank\":{rank},\"seq\":{seq}"));
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule.code())?;
        match self.span {
            Some((rank, seq)) => write!(f, " rank {rank} seq {seq}: ")?,
            None if !self.ranks.is_empty() => {
                write!(f, " ranks {:?}: ", self.ranks)?;
            }
            None => write!(f, ": ")?,
        }
        f.write_str(&self.message)
    }
}

/// Escape `s` as JSON string contents into `out`.
pub fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl From<Violation> for Diagnostic {
    fn from(v: Violation) -> Self {
        match v {
            Violation::NonMonotonic { rank, seq } => Diagnostic::new(
                Rule::ClockNonMono,
                "event overlaps its predecessor or runs backwards in the local clock",
            )
            .at(rank, seq),
            Violation::BadSeq {
                rank,
                expected,
                found,
            } => Diagnostic::new(
                Rule::BadSeq,
                format!("sequence numbers not dense: expected {expected}, found {found}"),
            )
            .at(rank, found),
            Violation::MissingInit { rank } => {
                Diagnostic::new(Rule::MissingInit, "first event is not Init").involving([rank])
            }
            Violation::MissingFinalize { rank } => {
                Diagnostic::new(Rule::MissingFinalize, "last event is not Finalize")
                    .involving([rank])
            }
            Violation::WrongRank { stream, record } => Diagnostic::new(
                Rule::WrongRank,
                format!("record claims rank {record} but came from stream {stream}"),
            )
            .involving([stream, record]),
            Violation::DuplicateRequest { rank, req } => Diagnostic::new(
                Rule::DupRequest,
                format!("request {req} initiated twice before completion"),
            )
            .involving([rank]),
            Violation::UnknownRequest { rank, req } => Diagnostic::new(
                Rule::UnknownRequest,
                format!("wait references unknown or already-completed request {req}"),
            )
            .involving([rank]),
            Violation::LeakedRequest { rank, req } => Diagnostic::new(
                Rule::LeakedRequest,
                format!("request {req} initiated but never completed"),
            )
            .involving([rank]),
            Violation::SelfMessage { rank, seq } => {
                Diagnostic::new(Rule::SelfMessage, "event names its own rank as peer").at(rank, seq)
            }
        }
    }
}

/// [`crate::validate::validate_trace`] reported through the shared
/// diagnostic path.
pub fn validate_trace_diagnostics(trace: &MemTrace) -> Vec<Diagnostic> {
    crate::validate::validate_trace(trace)
        .into_iter()
        .map(Diagnostic::from)
        .collect()
}

/// Sort diagnostics for stable presentation: severity (worst first), then
/// rule code, then location.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.rule.code().cmp(b.rule.code()))
            .then_with(|| a.span.cmp(&b.span))
            .then_with(|| a.ranks.cmp(&b.ranks))
            .then_with(|| a.message.cmp(&b.message))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, EventRecord};

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn rule_codes_roundtrip() {
        for &rule in Rule::ALL {
            assert_eq!(Rule::from_code(rule.code()), Some(rule));
            assert_eq!(Rule::from_code(&rule.code().to_lowercase()), Some(rule));
        }
        assert_eq!(Rule::from_code("MPG-NOT-A-RULE"), None);
    }

    #[test]
    fn every_rule_has_a_doc_line() {
        for &rule in Rule::ALL {
            assert!(!rule.doc().is_empty(), "{} has no doc", rule.code());
            // Doc lines are table cells: single line, no pipes.
            assert!(!rule.doc().contains('\n'), "{} doc multiline", rule.code());
            assert!(!rule.doc().contains('|'), "{} doc has pipe", rule.code());
            assert!(!rule.pass().is_empty(), "{} has no pass", rule.code());
        }
    }

    #[test]
    fn design_doc_rule_table_matches_registry() {
        // DESIGN.md §7 renders the registry as a table with one
        // `| MPG-… | severity | pass | doc |` row per rule. Regenerating
        // the rows here and requiring each verbatim in the document means a
        // new rule cannot ship without its documentation line.
        let design = include_str!("../../../DESIGN.md");
        for &rule in Rule::ALL {
            let row = format!(
                "| `{}` | {} | {} | {} |",
                rule.code(),
                rule.default_severity().label(),
                rule.pass(),
                rule.doc()
            );
            assert!(
                design.contains(&row),
                "DESIGN.md is missing the registry row for {}:\n{row}",
                rule.code()
            );
        }
    }

    #[test]
    fn explore_rules_registered_and_documented() {
        // The pass-8 predictive rules must be in the registry with the
        // `explore` pass label, and DESIGN.md must document both the pass
        // (§7 pass table) and the algorithm (§16). The generic
        // registry⇄docs test above already requires their verbatim table
        // rows; this pins the pass wiring itself.
        for rule in [Rule::MayDeadlock, Rule::ScheduleDivergence] {
            assert!(Rule::ALL.contains(&rule));
            assert_eq!(rule.pass(), "explore");
            assert_eq!(Rule::from_code(rule.code()), Some(rule));
        }
        assert_eq!(Rule::MayDeadlock.default_severity(), Severity::Warning);
        assert_eq!(Rule::ScheduleDivergence.default_severity(), Severity::Info);
        let design = include_str!("../../../DESIGN.md");
        assert!(
            design.contains("schedule exploration"),
            "DESIGN.md §7 pass table is missing the explore pass row"
        );
        assert!(
            design.contains("## 16."),
            "DESIGN.md is missing §16 (schedule-space exploration)"
        );
    }

    #[test]
    fn display_and_json_shape() {
        let d = Diagnostic::new(Rule::Deadlock, "cycle: 0 -> 1 -> 0").involving([1, 0, 1]);
        assert_eq!(d.ranks, vec![0, 1]);
        let text = d.to_string();
        assert!(text.starts_with("error[MPG-DEADLOCK]"), "{text}");
        let json = d.to_json();
        assert!(json.contains("\"rule\":\"MPG-DEADLOCK\""), "{json}");
        assert!(json.contains("\"ranks\":[0,1]"), "{json}");
    }

    #[test]
    fn json_escapes_specials() {
        let d = Diagnostic::new(Rule::BadSeq, "quote \" slash \\ newline \n");
        let json = d.to_json();
        assert!(json.contains("quote \\\" slash \\\\ newline \\n"), "{json}");
    }

    #[test]
    fn violations_map_to_rules() {
        let mut mt = MemTrace::new(1);
        mt.push(EventRecord {
            rank: 0,
            seq: 0,
            t_start: 0,
            t_end: 5,
            kind: EventKind::Compute { work: 5 },
        });
        let diags = validate_trace_diagnostics(&mt);
        let rules: Vec<Rule> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&Rule::MissingInit));
        assert!(rules.contains(&Rule::MissingFinalize));
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn sort_puts_errors_first() {
        let mut diags = vec![
            Diagnostic::new(Rule::WildRace, "advisory"),
            Diagnostic::new(Rule::LeakedRequest, "leak".to_string()).involving([0]),
            Diagnostic::new(Rule::Deadlock, "fatal"),
        ];
        sort_diagnostics(&mut diags);
        assert_eq!(diags[0].rule, Rule::Deadlock);
        assert_eq!(diags[2].rule, Rule::WildRace);
    }
}
