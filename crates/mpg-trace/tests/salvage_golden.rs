//! Golden corrupt-trace fixtures: one deterministic damage scenario per
//! `faultgen` operator, with the exact recovery outcome pinned. The
//! property tests (`faultgen_proptest.rs`) sweep the operator × seed
//! space; these fixtures keep each operator's *characteristic* outcome
//! readable and bisectable — if salvage behavior shifts, the failing
//! fixture names the operator.

use mpg_trace::frame::{checked_frame_at, FOOTER_LEN, FOOTER_MARKER, MAGIC2};
use mpg_trace::{
    inject_dir, mutate_bytes, salvage_bytes, EventKind, EventRecord, FaultKind, FileTraceSet,
    FsckStatus, MemTrace, SealStatus, TraceWriter,
};

/// Pinned seed for every fixture: goldens must never roll.
const SEED: u64 = 7;

fn rec(rank: u32, seq: u64) -> EventRecord {
    EventRecord {
        rank,
        seq,
        t_start: seq * 10,
        t_end: seq * 10 + 5,
        kind: EventKind::Compute { work: 5 },
    }
}

/// A sealed v2 stream with many small frames (64-byte buffer), plus the
/// records it carries.
fn fixture(n: u64) -> (Vec<EventRecord>, Vec<u8>) {
    let records: Vec<_> = (0..n).map(|i| rec(1, i)).collect();
    let mut w = TraceWriter::new(Vec::new(), 64);
    for r in &records {
        w.record(r).unwrap();
    }
    (records, w.finish().unwrap())
}

/// LEB128 varint at the head of a frame payload: the frame's first seq.
fn first_seq(payload: &[u8]) -> u64 {
    let (mut v, mut shift) = (0u64, 0u32);
    for &b in payload {
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
    panic!("payload ended inside varint");
}

/// Byte ranges and first-seqs of every frame in a valid v2 stream.
fn frames_of(bytes: &[u8]) -> Vec<(std::ops::Range<usize>, u64)> {
    assert_eq!(&bytes[..4], MAGIC2);
    let mut out = Vec::new();
    let mut pos = 4;
    while pos < bytes.len() && bytes[pos] != FOOTER_MARKER {
        let (payload, total) = checked_frame_at(&bytes[pos..]).expect("fixture frame");
        out.push((pos..pos + total, first_seq(payload)));
        pos += total;
    }
    assert_eq!(bytes.len() - pos, FOOTER_LEN, "fixture ends in a footer");
    out
}

/// Every recovered record must be byte-identical to the original at its
/// seq, with seqs strictly increasing (no duplicates, no reordering).
fn assert_sound(recovered: &[EventRecord], original: &[EventRecord]) {
    for r in recovered {
        assert_eq!(*r, original[r.seq as usize], "seq {} diverged", r.seq);
    }
    assert!(
        recovered.windows(2).all(|w| w[0].seq < w[1].seq),
        "recovered seqs not strictly increasing"
    );
}

#[test]
fn golden_truncate_keeps_the_frame_prefix() {
    let (records, bytes) = fixture(300);
    let (cut, _) = mutate_bytes(&bytes, FaultKind::Truncate, SEED).unwrap();
    assert!(cut.len() < bytes.len());
    let (out, report) = salvage_bytes(1, &cut);
    // Truncation loses the seal and the torn tail, nothing before it:
    // recovery is exactly the whole frames that survived the cut.
    // First frame the cut tore apart: recovery stops at its first seq.
    // (A cut inside the footer leaves every frame whole.)
    let whole: u64 = frames_of(&bytes)
        .iter()
        .find(|(r, _)| r.end > cut.len())
        .map_or(records.len() as u64, |(_, fs)| *fs);
    assert_eq!(out.len() as u64, whole);
    assert_eq!(out, records[..out.len()]);
    assert_eq!(report.seal, SealStatus::Unsealed);
    assert!(!report.is_clean());
}

#[test]
fn golden_bitflip_costs_at_most_one_frame() {
    let (records, bytes) = fixture(300);
    let (bad, desc) = mutate_bytes(&bytes, FaultKind::BitFlip, SEED).unwrap();
    let (out, report) = salvage_bytes(1, &bad);
    assert_sound(&out, &records);
    assert!(!report.is_clean(), "{desc}: flip went unnoticed");
    if report.seal == SealStatus::Sealed {
        // Flip landed in a frame: that frame alone is lost, and the loss
        // is fully accounted against the footer's record count.
        assert_eq!(
            report.records_recovered + report.records_lost,
            records.len() as u64,
            "{desc}"
        );
        assert_eq!(report.frames_recovered, frames_of(&bytes).len() as u64 - 1);
    } else {
        // Flip landed in the footer region: every record survives.
        assert_eq!(out.len(), records.len(), "{desc}");
    }
}

#[test]
fn golden_frame_drop_is_one_contiguous_gap() {
    let (records, bytes) = fixture(300);
    let (bad, desc) = mutate_bytes(&bytes, FaultKind::FrameDrop, SEED).unwrap();
    let (out, report) = salvage_bytes(1, &bad);
    assert_sound(&out, &records);
    assert_eq!(report.seal, SealStatus::Sealed, "{desc}");
    assert!(report.records_lost > 0, "{desc}");
    assert_eq!(
        report.records_recovered + report.records_lost,
        records.len() as u64,
        "{desc}"
    );
    // The lost seqs form one contiguous run — exactly the dropped frame.
    let have: Vec<u64> = out.iter().map(|r| r.seq).collect();
    let missing: Vec<u64> = (0..records.len() as u64)
        .filter(|s| !have.contains(s))
        .collect();
    assert!(
        missing.windows(2).all(|w| w[1] == w[0] + 1),
        "{desc}: lost seqs not contiguous: {missing:?}"
    );
}

#[test]
fn golden_frame_dup_recovers_every_record_once() {
    let (records, bytes) = fixture(300);
    let (bad, desc) = mutate_bytes(&bytes, FaultKind::FrameDup, SEED).unwrap();
    let (out, report) = salvage_bytes(1, &bad);
    assert_eq!(out, records, "{desc}");
    assert_eq!(report.records_lost, 0);
    assert!(report.frames_dropped >= 1, "{desc}: duplicate not dropped");
    assert!(!report.is_clean());
}

#[test]
fn golden_frame_swap_recovers_in_order_but_is_not_clean() {
    let (records, bytes) = fixture(300);
    let (bad, desc) = mutate_bytes(&bytes, FaultKind::FrameSwap, SEED).unwrap();
    let (out, report) = salvage_bytes(1, &bad);
    // Pass 2's sort undoes the reorder completely…
    assert_eq!(out, records, "{desc}");
    assert_eq!(report.records_lost, 0);
    // …but the file must not count as clean: the strict reader refuses it.
    assert!(!report.is_clean(), "{desc}: swap reported clean");
    assert!(
        report.notes.iter().any(|n| n.contains("order violation")),
        "{desc}: {:?}",
        report.notes
    );
}

#[test]
fn golden_garbage_splice_skips_the_garbage() {
    let (records, bytes) = fixture(300);
    let (bad, desc) = mutate_bytes(&bytes, FaultKind::GarbageSplice, SEED).unwrap();
    assert!(bad.len() > bytes.len());
    let (out, report) = salvage_bytes(1, &bad);
    assert_sound(&out, &records);
    assert!(report.bytes_skipped > 0, "{desc}: no bytes skipped");
    assert!(!report.is_clean());
    // At worst the splice lands mid-frame and costs that one frame.
    assert!(
        report.records_recovered + report.records_lost >= records.len() as u64,
        "{desc}: unaccounted loss"
    );
}

// ---------------------------------------------------------------------------
// Directory-level goldens: the fsck status/exit contract on clean, salvaged
// and unrecoverable trace sets.
// ---------------------------------------------------------------------------

fn trace_dir(tag: &str, ranks: u32) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mpg-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut t = MemTrace::new(ranks as usize);
    for r in 0..ranks {
        for i in 0..120u64 {
            t.push(rec(r, i));
        }
    }
    t.save(&dir).unwrap();
    dir
}

#[test]
fn golden_fsck_exit_contract() {
    assert_eq!(FsckStatus::Clean.exit_code(), 0);
    assert_eq!(FsckStatus::Salvaged.exit_code(), 1);
    assert_eq!(FsckStatus::Unrecoverable.exit_code(), 2);

    // Clean directory -> Clean.
    let dir = trace_dir("clean", 3);
    let (_, report) = FileTraceSet::load_salvage(&dir).unwrap();
    assert_eq!(report.status(), FsckStatus::Clean);
    assert!(report.is_clean());

    // Damaged rank file -> Salvaged, and the strict loader refuses it.
    inject_dir(&dir, FaultKind::Truncate, SEED).unwrap();
    let (_, report) = FileTraceSet::load_salvage(&dir).unwrap();
    assert_eq!(report.status(), FsckStatus::Salvaged);
    assert!(FileTraceSet::open(&dir).unwrap().load().is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn golden_fsck_missing_rank_is_salvaged_with_diagnostic() {
    let dir = trace_dir("delrank", 3);
    let plan = inject_dir(&dir, FaultKind::DeleteRank, SEED).unwrap();
    let (trace, report) = FileTraceSet::load_salvage(&dir).unwrap();
    assert_eq!(report.status(), FsckStatus::Salvaged);
    assert_eq!(report.missing_ranks(), vec![plan.rank]);
    assert!(trace.rank(plan.rank as usize).is_empty());
    // The missing rank surfaces as an MPG-MISSING-RANK diagnostic.
    let diags = report.diagnostics();
    assert!(
        diags
            .iter()
            .any(|d| d.rule == mpg_trace::Rule::MissingRank && d.ranks.contains(&plan.rank)),
        "{diags:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn golden_fsck_unrecoverable_without_meta() {
    let dir = trace_dir("nometa", 2);
    std::fs::remove_file(dir.join("meta.txt")).unwrap();
    assert!(FileTraceSet::load_salvage(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}
