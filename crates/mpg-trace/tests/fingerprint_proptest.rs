//! Content-fingerprint collision and determinism properties.
//!
//! The artifact cache keys every derived artifact by
//! [`trace_fingerprint`], which never re-reads payloads — it chains the
//! per-rank footer summaries (record/frame counts, last timestamp, the
//! CRC32C payload chain) through CRC32C and FNV-1a. Two contracts:
//!
//! 1. **Content addressing**: the fingerprint is a pure function of trace
//!    *content* — fingerprinting the same directory twice, or the same
//!    trace saved to two different directories, yields the same key.
//! 2. **No near-collisions**: two traces differing in a single event
//!    field — down to one payload byte — never collide. This is the
//!    burst-error guarantee: a lone changed field perturbs that rank's
//!    `payload_crc`, and CRC32C detects any burst shorter than 32 bits.

use mpg_trace::{trace_fingerprint, EventRecord, MemTrace};
use proptest::prelude::*;

/// A synthetic but well-formed per-rank stream: init, computes, finalize.
/// (The fingerprint never decodes records, so communication structure is
/// irrelevant here — field entropy is what matters.)
fn synth_trace(ranks: u32, events_per_rank: u32, salt: u64) -> MemTrace {
    let mut ranks_vec = Vec::new();
    for r in 0..ranks {
        let mut t = 1 + salt % 1_000;
        let mut events = Vec::new();
        for s in 0..events_per_rank {
            let work = 1 + (salt ^ (u64::from(r) << 17) ^ u64::from(s)) % 50_000;
            events.push(EventRecord {
                rank: r,
                seq: u64::from(s),
                t_start: t,
                t_end: t + work,
                kind: mpg_trace::EventKind::Compute { work },
            });
            t += work + 3;
        }
        ranks_vec.push(events);
    }
    MemTrace::from_ranks(ranks_vec)
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mpg-fpprop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn key_of(trace: &MemTrace, tag: &str) -> String {
    let dir = fresh_dir(tag);
    trace.save(&dir).expect("trace saves");
    let key = trace_fingerprint(&dir)
        .expect("sealed trace fingerprints")
        .key();
    let _ = std::fs::remove_dir_all(&dir);
    key
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Same content → same key, wherever it lives on disk; a single
    /// mutated field in a single event → a different key.
    #[test]
    fn single_field_mutation_never_collides(
        ranks in 1u32..6,
        events_per_rank in 1u32..40,
        salt in any::<u64>(),
        rank_pick in any::<u64>(),
        event_pick in any::<u64>(),
        bit in 0u32..20,
        field in 0u8..3,
    ) {
        let base = synth_trace(ranks, events_per_rank, salt);
        prop_assert_eq!(key_of(&base, "base"), key_of(&base, "copy"),
            "content addressing: same trace, different dir");

        // Mutate exactly one field of one event, keeping the record
        // well-formed (`t_start <= t_end` — the frame codec encodes the
        // duration as an unsigned delta): `t_start` only shrinks, `t_end`
        // only grows, `work` is a free field. Low bit positions make the
        // on-disk delta as small as one payload byte.
        let r = (rank_pick % u64::from(ranks)) as usize;
        let i = (event_pick % u64::from(events_per_rank)) as usize;
        let mut events: Vec<Vec<EventRecord>> =
            (0..ranks as usize).map(|r| base.rank(r).to_vec()).collect();
        let e = &mut events[r][i];
        match field {
            0 => e.t_start = e.t_start.saturating_sub(1u64 << bit),
            1 => e.t_end += 1u64 << bit,
            _ => {
                if let mpg_trace::EventKind::Compute { work } = &mut e.kind {
                    *work ^= 1u64 << bit;
                }
            }
        }
        let mutated = MemTrace::from_ranks(events);
        prop_assert_ne!(key_of(&base, "a"), key_of(&mutated, "b"),
            "one-field mutation must change the cache key");
    }
}

/// The minimal-delta case stated in the design: traces differing in one
/// payload *byte* get distinct keys, exhaustively over which byte-sized
/// increment is applied.
#[test]
fn one_byte_deltas_all_distinct() {
    let base = synth_trace(2, 8, 42);
    let base_key = key_of(&base, "onebyte-base");
    let mut seen = std::collections::HashSet::new();
    seen.insert(base_key);
    for delta in 1u64..64 {
        let mut events: Vec<Vec<EventRecord>> = (0..2).map(|r| base.rank(r).to_vec()).collect();
        if let mpg_trace::EventKind::Compute { work } = &mut events[1][3].kind {
            *work += delta; // small deltas change a single encoded byte
        }
        let key = key_of(&MemTrace::from_ranks(events), &format!("onebyte-{delta}"));
        assert!(seen.insert(key), "delta {delta} collided with a prior key");
    }
}
