//! Fault-injection property tests: the reading paths must never panic on
//! untrusted bytes, and salvage must recover everything the damage did not
//! actually touch — specifically, 100% of the frames preceding the first
//! corrupted byte (ISSUE acceptance criterion).

use proptest::prelude::*;
use std::io::Cursor;

use mpg_trace::frame::{checked_frame_at, FOOTER_MARKER, MAGIC2};
use mpg_trace::{
    mutate_bytes, salvage_bytes, EventKind, EventRecord, FaultKind, TraceReader, TraceWriter,
};

fn rec(seq: u64, gap: u64, dur: u64, work: u64) -> EventRecord {
    EventRecord {
        rank: 0,
        seq,
        t_start: seq * (gap + dur),
        t_end: seq * (gap + dur) + dur,
        kind: EventKind::Compute { work },
    }
}

/// A sealed v2 stream whose frame count varies with `buffer_bytes`.
fn build(n: u64, gap: u64, dur: u64, buffer_bytes: usize) -> (Vec<EventRecord>, Vec<u8>) {
    let records: Vec<_> = (0..n).map(|i| rec(i, gap, dur, dur)).collect();
    let mut w = TraceWriter::new(Vec::new(), buffer_bytes);
    for r in &records {
        w.record(r).unwrap();
    }
    (records, w.finish().unwrap())
}

/// Drains the strict reader; Ok records or an Err are both acceptable —
/// the property is only "no panic, no hang".
fn drain_strict(bytes: &[u8]) {
    if let Ok(reader) = TraceReader::new(Cursor::new(bytes.to_vec()), 0) {
        for item in reader.take(1 << 17) {
            if item.is_err() {
                break;
            }
        }
    }
}

/// Byte-level operators (everything but the directory-level DeleteRank).
fn kind_strategy() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::Truncate),
        Just(FaultKind::BitFlip),
        Just(FaultKind::FrameDrop),
        Just(FaultKind::FrameDup),
        Just(FaultKind::FrameSwap),
        Just(FaultKind::GarbageSplice),
        Just(FaultKind::IoError),
        Just(FaultKind::Delay),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// (a) Arbitrary byte soup: neither the strict reader nor the salvage
    /// reader may panic, whatever the bytes say.
    #[test]
    fn readers_never_panic_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        drain_strict(&bytes);
        let (records, report) = salvage_bytes(0, &bytes);
        prop_assert_eq!(records.len() as u64, report.records_recovered);
    }

    /// Arbitrary bytes behind a valid magic header: exercises the framed
    /// and legacy decode paths specifically, not just the magic sniff.
    #[test]
    fn readers_never_panic_behind_valid_magic(
        v2 in any::<bool>(),
        body in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut bytes = if v2 { MAGIC2.to_vec() } else { b"MPG1".to_vec() };
        bytes.extend_from_slice(&body);
        drain_strict(&bytes);
        let _ = salvage_bytes(0, &bytes);
    }

    /// (b) Valid traces damaged by every faultgen operator: no panic, and
    /// every record salvage returns is genuine — byte-identical to the
    /// original at its seq, with seqs strictly increasing.
    #[test]
    fn mutated_traces_salvage_soundly(
        kind in kind_strategy(),
        seed in any::<u64>(),
        n in 20u64..400,
        buffer in 32usize..512,
    ) {
        let (records, bytes) = build(n, 3, 7, buffer);
        let (bad, desc) = mutate_bytes(&bytes, kind, seed).unwrap();
        drain_strict(&bad);
        let (out, report) = salvage_bytes(0, &bad);
        prop_assert_eq!(out.len() as u64, report.records_recovered, "{}", desc);
        for r in &out {
            prop_assert_eq!(r, &records[r.seq as usize], "{}: seq {} diverged", desc, r.seq);
        }
        prop_assert!(
            out.windows(2).all(|w| w[0].seq < w[1].seq),
            "{}: seqs not strictly increasing", desc
        );
    }

    /// Salvage recovers 100% of the frames that precede the first
    /// corrupted byte: damage never propagates backwards.
    #[test]
    fn frames_before_first_corruption_fully_recovered(
        kind in kind_strategy(),
        seed in any::<u64>(),
        n in 50u64..400,
        buffer in 32usize..256,
    ) {
        let (_, bytes) = build(n, 3, 7, buffer);
        let (bad, desc) = mutate_bytes(&bytes, kind, seed).unwrap();
        // First byte offset where the damaged stream differs (truncation
        // counts as differing at its cut point).
        let first_diff = bytes
            .iter()
            .zip(bad.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| bytes.len().min(bad.len()));
        // Frames are dense and consecutive: frame i carries seqs
        // [first_seq_i, first_seq_{i+1}). The intact prefix is every frame
        // ending at or before first_diff, so its coverage is the first_seq
        // of the first frame extending past the damage point (or all n
        // records when only the footer region was touched).
        let mut pos = 4usize;
        let mut covered = n;
        while pos < bytes.len() && bytes[pos] != FOOTER_MARKER {
            let (payload, total) = checked_frame_at(&bytes[pos..]).expect("valid fixture");
            if pos + total > first_diff {
                let (mut fs, mut shift) = (0u64, 0u32);
                for &b in payload {
                    fs |= u64::from(b & 0x7F) << shift;
                    if b & 0x80 == 0 { break; }
                    shift += 7;
                }
                covered = fs;
                break;
            }
            pos += total;
        }
        let (out, _) = salvage_bytes(0, &bad);
        let have: std::collections::HashSet<u64> = out.iter().map(|r| r.seq).collect();
        for s in 0..covered {
            prop_assert!(
                have.contains(&s),
                "{}: seq {} was in an intact frame (first diff at byte {}) but was lost",
                desc, s, first_diff
            );
        }
    }
}
