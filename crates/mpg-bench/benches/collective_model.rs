//! E4 (Fig. 4): analysis cost of the abstract log(p) collective model vs
//! the explicit butterfly expansion — the paper's space/time-efficiency
//! claim, measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpg_apps::AllreduceSolver;
use mpg_bench::{standard_model, trace_workload, trace_workload_expanded};
use mpg_core::{ReplayConfig, Replayer};

fn bench_collective(c: &mut Criterion) {
    let mut group = c.benchmark_group("collective_model");
    group.sample_size(15);
    let solver = AllreduceSolver {
        iters: 10,
        local_work: 10_000,
        vector_bytes: 64,
    };
    for p in [8u32, 32, 128] {
        let abstract_trace = trace_workload(&solver, p, 4);
        let expanded_trace = trace_workload_expanded(&solver, p, 4);
        group.bench_with_input(
            BenchmarkId::new("abstract_logp", p),
            &abstract_trace,
            |b, trace| {
                let replayer =
                    Replayer::new(ReplayConfig::new(standard_model()).seed(3).ack_arm(false));
                b.iter(|| replayer.run(trace).expect("replays"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("explicit_butterfly", p),
            &expanded_trace,
            |b, trace| {
                let replayer =
                    Replayer::new(ReplayConfig::new(standard_model()).seed(3).ack_arm(false));
                b.iter(|| replayer.run(trace).expect("replays"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_collective);
criterion_main!(benches);
