//! E9 (§5): sampling throughput of the perturbation distribution families
//! and the empirical (inverse-transform ECDF) path that replays live on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpg_noise::{Dist, Empirical, SampleDist, StreamRng};

fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions");
    group.throughput(Throughput::Elements(1));
    let mut rng = StreamRng::new(9, 0);
    let empirical = {
        let xs: Vec<f64> = (0..10_000)
            .map(|_| Dist::Exponential { mean: 500.0 }.sample_f64(&mut rng))
            .collect();
        Empirical::from_samples(&xs)
    };
    let families: Vec<(&str, Dist)> = vec![
        ("constant", Dist::Constant(700.0)),
        (
            "uniform",
            Dist::Uniform {
                lo: 0.0,
                hi: 1_000.0,
            },
        ),
        ("exponential", Dist::Exponential { mean: 500.0 }),
        (
            "normal",
            Dist::Normal {
                mean: 500.0,
                std_dev: 100.0,
            },
        ),
        (
            "lognormal",
            Dist::LogNormal {
                mu: 6.0,
                sigma: 0.5,
            },
        ),
        (
            "pareto",
            Dist::Pareto {
                x_m: 100.0,
                alpha: 2.5,
            },
        ),
        ("empirical_10k", Dist::Empirical(empirical)),
        (
            "mixture",
            Dist::mixture(
                0.9,
                Dist::Exponential { mean: 200.0 },
                Dist::Constant(5_000.0),
            ),
        ),
    ];
    for (name, dist) in families {
        group.bench_with_input(BenchmarkId::new("sample", name), &dist, |b, d| {
            let mut rng = StreamRng::new(10, 1);
            b.iter(|| d.sample(&mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributions);
criterion_main!(benches);
