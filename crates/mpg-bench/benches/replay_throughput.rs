//! Replay-scheduler throughput: events/sec through the event-driven
//! ready-queue engine on the pinned perf workloads (the same fixtures
//! `mpgtool bench` snapshots into `BENCH_replay.json`).
//!
//! Two stress shapes dominate the pinned set: a blocked-heavy many-rank
//! token ring (sendrecv chains — the worst case for a polling scheduler,
//! which re-visits every blocked rank each pass) and a waitall-heavy
//! stencil (bulk request resolution per scheduling turn).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpg_analysis::perf::{perf_model, pinned_traces};
use mpg_core::{ReplayConfig, Replayer};

fn bench_replay_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_throughput");
    group.sample_size(20);
    for (name, _ranks, trace) in pinned_traces() {
        group.throughput(Throughput::Elements(trace.total_events() as u64));
        group.bench_with_input(BenchmarkId::new("events", name), &trace, |b, trace| {
            let replayer = Replayer::new(ReplayConfig::new(perf_model()).seed(42));
            b.iter(|| replayer.run(trace).expect("replays"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replay_throughput);
criterion_main!(benches);
