//! E3 (Fig. 3 / Eq. 2): replay throughput over nonblocking traffic — the
//! request-table path (isend/irecv/waitall) rather than blocking matching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpg_apps::Stencil;
use mpg_bench::{standard_model, trace_workload};
use mpg_core::{ReplayConfig, Replayer};

fn bench_nonblocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_nonblocking");
    group.sample_size(20);
    for iters in [10u32, 50] {
        let stencil = Stencil {
            iters,
            cells_per_rank: 200,
            work_per_cell: 20,
            halo_bytes: 1_024,
        };
        let trace = trace_workload(&stencil, 8, 3);
        group.throughput(Throughput::Elements(trace.total_events() as u64));
        group.bench_with_input(
            BenchmarkId::new("stencil_halo", iters),
            &trace,
            |b, trace| {
                let replayer = Replayer::new(ReplayConfig::new(standard_model()).seed(2));
                b.iter(|| replayer.run(trace).expect("replays"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_nonblocking);
criterion_main!(benches);
