//! E8 (§1/§1.1): analysis throughput of direct graph traversal vs the
//! general discrete-event (Dimemas-like) replay on identical traces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpg_bench::{ring_trace, standard_model};
use mpg_core::{ReplayConfig, Replayer};
use mpg_des::{DimemasReplay, MachineModel};
use mpg_noise::PlatformSignature;

fn bench_des_vs_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_vs_graph");
    group.sample_size(15);
    for traversals in [8u32, 32] {
        let trace = ring_trace(8, traversals);
        let events = trace.total_events() as u64;
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(
            BenchmarkId::new("graph_traversal", events),
            &trace,
            |b, trace| {
                let replayer = Replayer::new(ReplayConfig::new(standard_model()).seed(8));
                b.iter(|| replayer.run(trace).expect("replays"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dimemas_des", events),
            &trace,
            |b, trace| {
                let model = MachineModel::from_signature(&PlatformSignature::noisy("target", 1.0));
                let replayer = DimemasReplay::new(model);
                b.iter(|| replayer.run(trace).expect("replays"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_des_vs_graph);
criterion_main!(benches);
