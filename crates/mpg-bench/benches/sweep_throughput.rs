//! Sweep throughput: configs/sec replaying the pinned K-config sweep over
//! one trace, lane-batched vs threads-only (the same measurement `mpgtool
//! bench` snapshots into `BENCH_replay.json`'s sweep workload).
//!
//! The lane path's claim is structural: scheduling and matching are
//! drift-independent, so one graph traversal carries up to `MAX_LANES`
//! configs and only the max-plus drift arithmetic scales with K. The
//! threads-only baseline pays the full traversal once per config.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpg_analysis::perf::{pinned_traces, sweep_configs, SWEEP_CONFIGS};
use mpg_analysis::{sweep_replays, SweepMode};

fn bench_sweep_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_throughput");
    group.sample_size(10);
    let (name, _ranks, trace) = pinned_traces().remove(0);
    for k in [8u32, SWEEP_CONFIGS] {
        let configs = sweep_configs(k);
        group.throughput(Throughput::Elements(u64::from(k)));
        for (mode_name, mode) in [
            ("lanes", SweepMode::Lanes),
            ("threads-only", SweepMode::ThreadsOnly),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}-x{k}"), mode_name),
                &configs,
                |b, configs| b.iter(|| sweep_replays(&trace, configs, mode)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_throughput);
criterion_main!(benches);
