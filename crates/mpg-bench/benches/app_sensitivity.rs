//! E13 (§4.2): full sensitivity-analysis cost per application — one replay
//! with sensitivity accounting across each communication pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpg_bench::{sensitivity_workloads, standard_model, trace_workload};
use mpg_core::{ReplayConfig, Replayer};

fn bench_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("app_sensitivity");
    group.sample_size(15);
    for (name, w) in sensitivity_workloads() {
        let trace = trace_workload(w.as_ref(), 8, 13);
        group.throughput(Throughput::Elements(trace.total_events() as u64));
        group.bench_with_input(BenchmarkId::new("replay", name), &trace, |b, trace| {
            let replayer = Replayer::new(
                ReplayConfig::new(standard_model())
                    .seed(13)
                    .timeline_stride(16),
            );
            b.iter(|| replayer.run(trace).expect("replays"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sensitivity);
criterion_main!(benches);
