//! Graph construction / matching throughput: identity replay over traces of
//! increasing length (the §4.2 streaming path, no perturbation sampling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpg_bench::ring_trace;
use mpg_core::{PerturbationModel, ReplayConfig, Replayer};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(20);
    for traversals in [2u32, 8, 32] {
        let trace = ring_trace(8, traversals);
        let events = trace.total_events() as u64;
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(
            BenchmarkId::new("identity_replay_events", events),
            &trace,
            |b, trace| {
                let replayer = Replayer::new(ReplayConfig::new(PerturbationModel::quiet("id")));
                b.iter(|| replayer.run(trace).expect("replays"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
