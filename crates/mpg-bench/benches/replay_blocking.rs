//! E2 (Fig. 2 / Eq. 1): replay throughput over blocking send/recv traffic
//! with active perturbation sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpg_bench::standard_model;
use mpg_core::{ReplayConfig, Replayer};
use mpg_noise::PlatformSignature;
use mpg_sim::Simulation;

fn blocking_trace(iters: u32) -> mpg_trace::MemTrace {
    Simulation::new(2, PlatformSignature::quiet("bench"))
        .ideal_clocks()
        .run(|ctx| {
            for i in 0..iters {
                if ctx.rank() == 0 {
                    ctx.send(1, i % 4, 1024);
                    ctx.recv(1, i % 4);
                } else {
                    ctx.recv(0, i % 4);
                    ctx.send(0, i % 4, 1024);
                }
            }
        })
        .expect("runs")
        .trace
}

fn bench_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_blocking");
    group.sample_size(20);
    for iters in [100u32, 1_000] {
        let trace = blocking_trace(iters);
        group.throughput(Throughput::Elements(trace.total_events() as u64));
        group.bench_with_input(
            BenchmarkId::new("perturbed_pingpong", iters),
            &trace,
            |b, trace| {
                let replayer = Replayer::new(ReplayConfig::new(standard_model()).seed(1));
                b.iter(|| replayer.run(trace).expect("replays"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_blocking);
criterion_main!(benches);
