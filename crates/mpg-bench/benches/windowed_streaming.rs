//! E7 (§4.2): streaming replay vs full-graph recording — the time cost of
//! materializing the explicit graph instead of streaming a bounded window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpg_bench::{ring_trace, standard_model};
use mpg_core::{ReplayConfig, Replayer};

fn bench_windowed(c: &mut Criterion) {
    let mut group = c.benchmark_group("windowed_streaming");
    group.sample_size(15);
    for traversals in [8u32, 32] {
        let trace = ring_trace(8, traversals);
        let events = trace.total_events() as u64;
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(BenchmarkId::new("streaming", events), &trace, |b, trace| {
            let replayer = Replayer::new(ReplayConfig::new(standard_model()).seed(7));
            b.iter(|| replayer.run(trace).expect("replays"));
        });
        group.bench_with_input(
            BenchmarkId::new("record_full_graph", events),
            &trace,
            |b, trace| {
                let replayer = Replayer::new(
                    ReplayConfig::new(standard_model())
                        .seed(7)
                        .record_graph(true),
                );
                b.iter(|| replayer.run(trace).expect("replays"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_windowed);
criterion_main!(benches);
