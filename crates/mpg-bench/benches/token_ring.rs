//! E6 (§6.1): replay cost of the headline 128-rank token-ring sweep — one
//! perturbation level of the experiment, measured end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpg_apps::TokenRing;
use mpg_bench::trace_workload;
use mpg_core::{PerturbationModel, ReplayConfig, Replayer};

fn bench_token_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("token_ring");
    group.sample_size(10);
    for p in [16u32, 64, 128] {
        let ring = TokenRing {
            traversals: 10,
            particles_per_rank: 8,
            work_per_pair: 20,
        };
        let trace = trace_workload(&ring, p, 6);
        group.throughput(Throughput::Elements(trace.total_events() as u64));
        group.bench_with_input(BenchmarkId::new("replay_700cyc", p), &trace, |b, trace| {
            let model = PerturbationModel::per_message_constant("ring", 700.0);
            let replayer = Replayer::new(ReplayConfig::new(model).ack_arm(false));
            b.iter(|| replayer.run(trace).expect("replays"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_token_ring);
criterion_main!(benches);
