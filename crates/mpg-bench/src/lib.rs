//! Shared fixtures for the benchmark suite: canonical traces and models so
//! every bench measures the same artifacts the experiments report.

use mpg_apps::{AllreduceSolver, MasterWorker, Pipeline, Stencil, TokenRing, Workload};
use mpg_core::PerturbationModel;
use mpg_noise::{Dist, PlatformSignature};
use mpg_sim::{CollectiveMode, Simulation};
use mpg_trace::MemTrace;

/// Traces a workload on the quiet platform with ideal clocks.
pub fn trace_workload(w: &dyn Workload, p: u32, seed: u64) -> MemTrace {
    Simulation::new(p, PlatformSignature::quiet("bench"))
        .ideal_clocks()
        .seed(seed)
        .run(|ctx| w.run(ctx))
        .expect("bench workload runs")
        .trace
}

/// Traces a workload with expanded (point-to-point) collectives.
pub fn trace_workload_expanded(w: &dyn Workload, p: u32, seed: u64) -> MemTrace {
    Simulation::new(p, PlatformSignature::quiet("bench"))
        .ideal_clocks()
        .collective_mode(CollectiveMode::Expanded)
        .seed(seed)
        .run(|ctx| w.run(ctx))
        .expect("bench workload runs")
        .trace
}

/// A token ring sized so its trace has roughly `events_target` events.
pub fn ring_trace(p: u32, traversals: u32) -> MemTrace {
    let ring = TokenRing {
        traversals,
        particles_per_rank: 8,
        work_per_pair: 20,
    };
    trace_workload(&ring, p, 1)
}

/// The standard mixed perturbation model used across benches.
pub fn standard_model() -> PerturbationModel {
    let mut m = PerturbationModel::quiet("bench");
    m.os_local = Dist::Exponential { mean: 500.0 }.into();
    m.latency = Dist::Exponential { mean: 700.0 }.into();
    m.per_byte = 0.05;
    m
}

/// The four sensitivity-study workloads at bench scale.
pub fn sensitivity_workloads() -> Vec<(&'static str, Box<dyn Workload>)> {
    vec![
        (
            "token-ring",
            Box::new(TokenRing {
                traversals: 4,
                particles_per_rank: 8,
                work_per_pair: 25,
            }) as Box<dyn Workload>,
        ),
        (
            "stencil",
            Box::new(Stencil {
                iters: 10,
                cells_per_rank: 500,
                work_per_cell: 20,
                halo_bytes: 512,
            }),
        ),
        (
            "master-worker",
            Box::new(MasterWorker {
                tasks: 40,
                task_work: 50_000,
                task_bytes: 64,
                result_bytes: 64,
            }),
        ),
        (
            "allreduce-solver",
            Box::new(AllreduceSolver {
                iters: 10,
                local_work: 100_000,
                vector_bytes: 128,
            }),
        ),
        (
            "pipeline",
            Box::new(Pipeline {
                waves: 10,
                work_per_stage: 50_000,
                payload: 256,
            }),
        ),
    ]
}
