//! Golden sweep fixture: every mpg-apps demo workload replayed under a
//! six-config lane batch.
//!
//! Two layers of checking: (1) the lane path must reproduce each config's
//! scalar replay bit-for-bit (drifts, stats, timelines, warnings) — the
//! traversal-sharing invariant; (2) the per-config max drifts must match
//! the pinned values below, captured from the scalar engine when the lane
//! path landed — so a regression in *either* path trips the fixture even
//! if both paths drift together.

use mpg_analysis::{sweep_replays, SweepMode};
use mpg_apps::{
    AllreduceSolver, GridSumma, MasterWorker, Pipeline, Stencil, TokenRing, Transpose, Workload,
};
use mpg_core::{PerturbationModel, ReplayConfig, ReplayReport, Replayer};
use mpg_noise::{Dist, PlatformSignature};
use mpg_sim::Simulation;

/// The pinned batch: six structurally compatible configs whose models,
/// seeds and timeline strides all differ.
fn golden_configs() -> Vec<ReplayConfig> {
    (0..6u32)
        .map(|i| {
            let mut m = PerturbationModel::quiet(&format!("golden-{i}"));
            m.os_local = Dist::Exponential {
                mean: 300.0 + 100.0 * f64::from(i),
            }
            .into();
            m.latency = Dist::Exponential {
                mean: 400.0 + 60.0 * f64::from(i),
            }
            .into();
            m.per_byte = 0.02 * f64::from(i);
            ReplayConfig::new(m)
                .seed(50 + u64::from(i))
                .timeline_stride(if i % 2 == 0 { 5 } else { 0 })
        })
        .collect()
}

/// Strips the batch-shape stats that legitimately differ between the lane
/// and scalar paths.
fn normalized(mut r: ReplayReport) -> ReplayReport {
    r.stats.lanes = 0;
    r.stats.traversals_saved = 0;
    r
}

fn check(name: &str, w: &dyn Workload, p: u32, golden_max: [i64; 6]) {
    let trace = Simulation::new(p, PlatformSignature::quiet("golden"))
        .ideal_clocks()
        .seed(1)
        .run(|ctx| w.run(ctx))
        .expect("workload simulates")
        .trace;
    let configs = golden_configs();
    let lane = sweep_replays(&trace, &configs, SweepMode::Lanes);
    assert_eq!(lane.len(), configs.len());
    let mut maxes = Vec::new();
    for (i, (cfg, got)) in configs.iter().zip(lane).enumerate() {
        let got = got.expect("lane replay succeeds");
        assert_eq!(got.stats.lanes, 6, "{name} cfg {i}: not lane-batched");
        assert_eq!(got.stats.traversals_saved, 5, "{name} cfg {i}");
        maxes.push(got.max_final_drift());
        let scalar = Replayer::new(cfg.clone())
            .run(&trace)
            .expect("scalar replay succeeds");
        let (got, scalar) = (normalized(got), normalized(scalar));
        assert_eq!(got.final_drift, scalar.final_drift, "{name} cfg {i}");
        assert_eq!(
            got.projected_finish_local, scalar.projected_finish_local,
            "{name} cfg {i}"
        );
        assert_eq!(got.stats, scalar.stats, "{name} cfg {i}");
        assert_eq!(got.timeline, scalar.timeline, "{name} cfg {i}");
        assert_eq!(got.warnings, scalar.warnings, "{name} cfg {i}");
        assert_eq!(got.model_name, scalar.model_name, "{name} cfg {i}");
    }
    assert_eq!(maxes, golden_max, "{name}: pinned max drifts diverged");
}

#[test]
fn token_ring_sweep_golden() {
    check(
        "token-ring",
        &TokenRing {
            traversals: 3,
            particles_per_rank: 8,
            work_per_pair: 25,
        },
        8,
        [37151, 45677, 56760, 70444, 69031, 88008],
    );
}

#[test]
fn stencil_sweep_golden() {
    check(
        "stencil",
        &Stencil {
            iters: 8,
            cells_per_rank: 200,
            work_per_cell: 20,
            halo_bytes: 512,
        },
        8,
        [14792, 18303, 22260, 27266, 27384, 35611],
    );
}

#[test]
fn master_worker_sweep_golden() {
    check(
        "master-worker",
        &MasterWorker {
            tasks: 24,
            task_work: 50_000,
            task_bytes: 64,
            result_bytes: 64,
        },
        8,
        [27179, 33435, 38885, 47813, 46207, 53793],
    );
}

#[test]
fn allreduce_solver_sweep_golden() {
    check(
        "allreduce-solver",
        &AllreduceSolver {
            iters: 10,
            local_work: 100_000,
            vector_bytes: 128,
        },
        8,
        [75878, 102654, 112725, 132367, 152548, 164792],
    );
}

#[test]
fn pipeline_sweep_golden() {
    check(
        "pipeline",
        &Pipeline {
            waves: 10,
            work_per_stage: 50_000,
            payload: 256,
        },
        8,
        [21635, 26462, 37218, 36688, 44828, 51970],
    );
}

#[test]
fn transpose_sweep_golden() {
    check(
        "transpose",
        &Transpose {
            steps: 5,
            rows_per_rank: 16,
            work_per_element: 10,
            block_bytes: 256,
        },
        8,
        [36122, 50459, 58222, 69463, 79119, 78658],
    );
}

#[test]
fn grid_summa_sweep_golden() {
    check(
        "grid-summa",
        &GridSumma {
            rows: 2,
            cols: 4,
            panel_bytes: 1_024,
            local_work: 50_000,
        },
        8,
        [29367, 35923, 41726, 58675, 48522, 56240],
    );
}
