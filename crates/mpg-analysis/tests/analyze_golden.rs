//! Golden wait-state/slack analysis suite over the demo workloads.
//!
//! Every mpg-apps demo workload is simulated (seed 1, quiet platform,
//! ideal clocks, 8 ranks) and quiet-replayed into a recorded graph; the
//! static analyzer's decomposition is pinned below and its accounting
//! identity must hold *exactly*: compute + transfer + waits ==
//! makespan × ranks, in u64 arithmetic.
//!
//! The same workloads then exercise the static ⇄ dynamic critical-path
//! oracle end-to-end: under a constant perturbation model the critical
//! path of [`mpg_core::predicted_graph`] (no replay) must equal the
//! critical path of a real recording replay, with the pinned final drift.

use mpg_apps::{
    AllreduceSolver, GridSumma, MasterWorker, Pipeline, Stencil, TokenRing, Transpose, Workload,
};
use mpg_core::{
    critical_path, predicted_graph, EventGraph, PerturbationModel, ReplayConfig, Replayer,
};
use mpg_lint::analyze_graph;
use mpg_noise::{Dist, PlatformSignature};
use mpg_sim::Simulation;
use mpg_trace::MemTrace;

fn record(w: &dyn Workload) -> (MemTrace, EventGraph) {
    let trace = Simulation::new(8, PlatformSignature::quiet("golden"))
        .ideal_clocks()
        .seed(1)
        .run(|ctx| w.run(ctx))
        .expect("workload simulates")
        .trace;
    let graph = Replayer::new(
        ReplayConfig::new(PerturbationModel::quiet("golden"))
            .seed(0)
            .record_graph(true),
    )
    .run(&trace)
    .expect("quiet replay succeeds")
    .graph
    .expect("graph recorded");
    (trace, graph)
}

/// Pinned analyzer observables:
/// (name, makespan, compute, transfer, wait[5], zero_slack_edges).
type Golden = (&'static str, u64, u64, u64, [u64; 5], usize);

/// Pinned constant-model critical path: (final_drift, steps, ranks_touched).
type GoldenPath = (i64, usize, usize);

fn constant_model() -> PerturbationModel {
    let mut m = PerturbationModel::quiet("const");
    m.os_local = Dist::Constant(300.0).into();
    m.latency = Dist::Constant(500.0).into();
    m
}

fn check(w: &dyn Workload, golden: Golden, path: GoldenPath) {
    let (name, makespan, compute, transfer, wait, zero_slack) = golden;
    let (trace, graph) = record(w);
    let report = analyze_graph(&trace, &graph);

    // The analyzer may not lose or invent a single cycle.
    assert!(
        report.identity_holds(),
        "{name}: busy {} + waits {} != makespan {} x ranks {}",
        report.busy(),
        report.wait_total(),
        report.makespan,
        report.ranks
    );
    // Ideal clocks: perfect re-timing, no causality clamps.
    assert_eq!(report.retime_mismatches, 0, "{name}: retime_mismatches");
    assert_eq!(report.causality_clamps, 0, "{name}: causality_clamps");

    assert_eq!(report.makespan, makespan, "{name}: makespan diverged");
    assert_eq!(report.compute, compute, "{name}: compute diverged");
    assert_eq!(report.transfer, transfer, "{name}: transfer diverged");
    assert_eq!(report.wait, wait, "{name}: wait decomposition diverged");
    assert_eq!(
        report.zero_slack_edges, zero_slack,
        "{name}: zero-slack edge count diverged"
    );
    // The static critical path anchors the chain table and finishes at the
    // makespan.
    let main = report.chains.first().expect("chains nonempty");
    assert_eq!(main.finish, report.makespan, "{name}: chain finish");

    // Static ⇄ dynamic oracle: prediction equals a real constant replay.
    let (want_drift, want_steps, want_ranks) = path;
    let model = constant_model();
    let predicted = predicted_graph(&graph, &model).expect("constant model predicts");
    let real = Replayer::new(ReplayConfig::new(model).seed(42).record_graph(true))
        .run(&trace)
        .expect("constant replay succeeds")
        .graph
        .expect("graph recorded");
    let cp_pred = critical_path(&predicted).expect("drift accumulated");
    let cp_real = critical_path(&real).expect("drift accumulated");
    assert_eq!(cp_pred, cp_real, "{name}: predicted path != replayed path");
    assert_eq!(cp_real.final_drift, want_drift, "{name}: final drift");
    assert_eq!(cp_real.steps.len(), want_steps, "{name}: path steps");
    assert_eq!(cp_real.ranks_touched, want_ranks, "{name}: path ranks");
}

#[test]
fn token_ring_analysis() {
    check(
        &TokenRing {
            traversals: 3,
            particles_per_rank: 8,
            work_per_pair: 25,
        },
        ("token-ring", 156176, 323200, 926208, [0, 0, 0, 0, 0], 1944),
        (31200, 145, 1),
    );
}

#[test]
fn stencil_analysis() {
    check(
        &Stencil {
            iters: 8,
            cells_per_rank: 200,
            work_per_cell: 20,
            halo_bytes: 512,
        },
        ("stencil", 46320, 274560, 91312, [0, 0, 0, 0, 4688], 690),
        (10400, 47, 1),
    );
}

#[test]
fn master_worker_analysis() {
    check(
        &MasterWorker {
            tasks: 24,
            task_work: 50_000,
            task_bytes: 64,
            result_bytes: 64,
        },
        (
            "master-worker",
            234220,
            1216000,
            149556,
            [173636, 134336, 0, 0, 200232],
            49,
        ),
        (31000, 166, 8),
    );
}

#[test]
fn allreduce_solver_analysis() {
    check(
        &AllreduceSolver {
            iters: 10,
            local_work: 100_000,
            vector_bytes: 128,
        },
        (
            "allreduce-solver",
            1395520,
            10016000,
            1148160,
            [0, 0, 0, 0, 0],
            824,
        ),
        (54000, 101, 2),
    );
}

#[test]
fn pipeline_analysis() {
    check(
        &Pipeline {
            waves: 10,
            work_per_stage: 50_000,
            payload: 256,
        },
        (
            "pipeline",
            911548,
            4016000,
            216048,
            [1471688, 151660, 0, 0, 1436988],
            96,
        ),
        (17800, 93, 8),
    );
}

#[test]
fn transpose_analysis() {
    check(
        &Transpose {
            steps: 5,
            rows_per_rank: 16,
            work_per_element: 10,
            block_bytes: 256,
        },
        ("transpose", 109640, 169600, 707520, [0, 0, 0, 0, 0], 304),
        (31000, 36, 2),
    );
}

#[test]
fn grid_summa_analysis() {
    check(
        &GridSumma {
            rows: 2,
            cols: 4,
            panel_bytes: 1_024,
            local_work: 50_000,
        },
        (
            "grid-summa",
            318836,
            1616000,
            737216,
            [60992, 112480, 24000, 0, 0],
            530,
        ),
        (26600, 97, 8),
    );
}
