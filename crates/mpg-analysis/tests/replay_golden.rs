//! Golden equivalence suite for the event-driven replay scheduler.
//!
//! Every mpg-apps demo workload is simulated (seed 1, quiet platform,
//! ideal clocks) and replayed under a noisy perturbation model (seed 42).
//! The expected values below were captured from the round-robin polling
//! engine immediately before the ready-queue scheduler replaced it; the
//! scheduler must reproduce them bit-for-bit — drifts, arm wins, match
//! counts, and even the order-sensitive streaming-window high-water mark.

use mpg_apps::{
    AllreduceSolver, GridSumma, MasterWorker, Pipeline, Stencil, TokenRing, Transpose, Workload,
};
use mpg_core::{PerturbationModel, ReplayConfig, Replayer};
use mpg_noise::{Dist, PlatformSignature};
use mpg_sim::Simulation;

fn noisy_model() -> PerturbationModel {
    let mut m = PerturbationModel::quiet("bench");
    m.os_local = Dist::Exponential { mean: 500.0 }.into();
    m.latency = Dist::Exponential { mean: 700.0 }.into();
    m.per_byte = 0.05;
    m
}

/// Expected per-workload observables recorded from the polling engine:
/// (name, ranks, final_drift, arm_wins, messages_matched, window_high_water).
type Golden = (&'static str, u32, &'static [i64], [u64; 4], u64, usize);

fn check(w: &dyn Workload, golden: Golden) {
    let (name, p, drift, arm_wins, matched, high_water) = golden;
    let trace = Simulation::new(p, PlatformSignature::quiet("bench"))
        .ideal_clocks()
        .seed(1)
        .run(|ctx| w.run(ctx))
        .expect("workload simulates")
        .trace;
    let rep = Replayer::new(ReplayConfig::new(noisy_model()).seed(42))
        .run(&trace)
        .expect("workload replays");
    assert_eq!(rep.final_drift, drift, "{name}: final_drift diverged");
    assert_eq!(rep.stats.arm_wins, arm_wins, "{name}: arm_wins diverged");
    assert_eq!(
        rep.stats.messages_matched, matched,
        "{name}: messages_matched diverged"
    );
    assert_eq!(
        rep.stats.window_high_water, high_water,
        "{name}: window_high_water diverged"
    );
    // The scheduler's O(events) bound: every ready-queue pop either retires
    // an event or was triggered by exactly one resolution (match, request
    // completion, or collective fill).
    let bound =
        rep.stats.events + rep.stats.messages_matched + rep.stats.collectives * u64::from(p);
    assert!(
        rep.stats.scheduler_wakeups <= bound,
        "{name}: wakeups {} exceed the O(events) bound {bound} ({} events, {} matches, {} collectives)",
        rep.stats.scheduler_wakeups,
        rep.stats.events,
        rep.stats.messages_matched,
        rep.stats.collectives
    );
}

#[test]
fn token_ring_matches_polling_engine() {
    check(
        &TokenRing {
            traversals: 3,
            particles_per_rank: 8,
            work_per_pair: 25,
        },
        (
            "token-ring",
            8,
            &[61260, 58375, 59793, 63926, 63175, 63200, 62462, 62015][..],
            [122, 262, 0, 0],
            192,
            12,
        ),
    );
}

#[test]
fn stencil_matches_polling_engine() {
    check(
        &Stencil {
            iters: 8,
            cells_per_rank: 200,
            work_per_cell: 20,
            halo_bytes: 512,
        },
        (
            "stencil",
            8,
            &[19619, 20100, 22333, 24675, 22822, 23187, 22765, 22932][..],
            [2, 62, 0, 0],
            112,
            38,
        ),
    );
}

#[test]
fn master_worker_matches_polling_engine() {
    check(
        &MasterWorker {
            tasks: 24,
            task_work: 50_000,
            task_bytes: 64,
            result_bytes: 64,
        },
        (
            "master-worker",
            8,
            &[51578, 46505, 49259, 51559, 41186, 42416, 44026, 46121][..],
            [38, 72, 0, 0],
            55,
            7,
        ),
    );
}

#[test]
fn allreduce_solver_matches_polling_engine() {
    check(
        &AllreduceSolver {
            iters: 10,
            local_work: 100_000,
            vector_bytes: 128,
        },
        (
            "allreduce-solver",
            8,
            &[
                129838, 129838, 129838, 129838, 129838, 129838, 129838, 129838,
            ][..],
            [0, 0, 160, 0],
            0,
            8,
        ),
    );
}

#[test]
fn pipeline_matches_polling_engine() {
    check(
        &Pipeline {
            waves: 10,
            work_per_stage: 50_000,
            payload: 256,
        },
        (
            "pipeline",
            8,
            &[26352, 28801, 30457, 32917, 36654, 37054, 38704, 37983][..],
            [14, 126, 0, 0],
            70,
            8,
        ),
    );
}

#[test]
fn transpose_matches_polling_engine() {
    check(
        &Transpose {
            steps: 5,
            rows_per_rank: 16,
            work_per_element: 10,
            block_bytes: 256,
        },
        (
            "transpose",
            8,
            &[69154, 69734, 69894, 68856, 68989, 68851, 69952, 68847][..],
            [0, 0, 40, 0],
            0,
            8,
        ),
    );
}

#[test]
fn grid_summa_matches_polling_engine() {
    check(
        &GridSumma {
            rows: 2,
            cols: 4,
            panel_bytes: 1_024,
            local_work: 50_000,
        },
        (
            "grid-summa",
            8,
            &[49976, 49976, 49976, 49976, 49976, 49976, 49976, 49976][..],
            [88, 216, 8, 0],
            152,
            12,
        ),
    );
}
