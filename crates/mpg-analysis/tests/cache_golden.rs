//! Warm-path golden test: across all seven demo workloads, `mpgtool
//! replay`/`lint`/`analyze` must produce **byte-identical stdout and the
//! same exit code** in four regimes — no cache, cold cache (populating),
//! warm cache (hitting), and a cache where every artifact has been
//! corrupted (falling back cold and republishing). The cache may only ever
//! change *where* the answer comes from, never the answer; all cache
//! chatter goes to stderr.

use std::path::{Path, PathBuf};
use std::process::Command;

const WORKLOADS: [&str; 7] = [
    "ring",
    "stencil",
    "master-worker",
    "solver",
    "pipeline",
    "transpose",
    "summa",
];

fn mpgtool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpgtool"))
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mpgtool-cacheg-{tag}-{}", std::process::id()))
}

/// (stdout, stderr, exit code) of one mpgtool invocation.
fn run(args: &[&str]) -> (String, String, i32) {
    let out = mpgtool().args(args).output().expect("spawn mpgtool");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().expect("mpgtool not killed by signal"),
    )
}

/// Flips one byte in the middle of every artifact in the cache directory.
fn corrupt_every_artifact(cache_dir: &Path) -> usize {
    let mut n = 0;
    for entry in std::fs::read_dir(cache_dir).expect("cache dir readable") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "mpgc") {
            continue;
        }
        let mut bytes = std::fs::read(&path).expect("artifact readable");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("artifact writable");
        n += 1;
    }
    n
}

#[test]
fn warm_runs_are_byte_identical_across_demo_workloads() {
    for wl in WORKLOADS {
        let trace = tmp(&format!("trace-{wl}"));
        let cache = tmp(&format!("cache-{wl}"));
        let _ = std::fs::remove_dir_all(&trace);
        let _ = std::fs::remove_dir_all(&cache);
        let (_, err, code) = run(&[
            "demo",
            wl,
            "--ranks",
            "8",
            "--seed",
            "3",
            trace.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "demo {wl}: {err}");
        let trace = trace.to_str().unwrap().to_string();
        let cache_str = cache.to_str().unwrap().to_string();

        let commands: [Vec<&str>; 3] = [
            vec!["replay", &trace, "--os", "200", "--seed", "5"],
            vec!["lint", &trace],
            vec!["analyze", &trace],
        ];
        for base_args in &commands {
            let what = format!("{wl}/{}", base_args[0]);
            let mut cached_args = base_args.clone();
            cached_args.extend_from_slice(&["--cache", "--cache-dir", &cache_str]);

            let (base_out, _, base_code) = run(base_args);
            assert!(!base_out.is_empty(), "{what}: baseline produced no output");

            // Cold: populates, byte-identical, no warm-hit chatter.
            let (cold_out, cold_err, cold_code) = run(&cached_args);
            assert_eq!(cold_out, base_out, "{what}: cold stdout diverged");
            assert_eq!(cold_code, base_code, "{what}: cold exit diverged");
            assert!(
                !cold_err.contains("warm hit"),
                "{what}: cold run claimed a warm hit: {cold_err}"
            );

            // Warm: hits the memoized report, still byte-identical.
            let (warm_out, warm_err, warm_code) = run(&cached_args);
            assert_eq!(warm_out, base_out, "{what}: warm stdout diverged");
            assert_eq!(warm_code, base_code, "{what}: warm exit diverged");
            assert!(
                warm_err.contains("warm hit"),
                "{what}: warm run missed the cache: {warm_err}"
            );

            // Corrupt every artifact: the run must fall back cold — same
            // bytes, same exit — and repair the cache for the next round.
            assert!(corrupt_every_artifact(&cache) > 0, "{what}: nothing cached");
            let (fb_out, fb_err, fb_code) = run(&cached_args);
            assert_eq!(fb_out, base_out, "{what}: corrupt-fallback stdout diverged");
            assert_eq!(fb_code, base_code, "{what}: corrupt-fallback exit diverged");
            assert!(
                !fb_err.contains("warm hit"),
                "{what}: corrupt artifact served as a warm hit: {fb_err}"
            );
            let (re_out, re_err, re_code) = run(&cached_args);
            assert_eq!(re_out, base_out, "{what}: repaired-warm stdout diverged");
            assert_eq!(re_code, base_code, "{what}: repaired-warm exit diverged");
            assert!(
                re_err.contains("warm hit"),
                "{what}: fallback did not republish: {re_err}"
            );
        }

        let _ = std::fs::remove_dir_all(&cache);
        let _ = std::fs::remove_dir_all(Path::new(&trace));
    }
}

#[test]
fn cache_subcommand_ls_gc_clear() {
    let trace = tmp("trace-cachecmd");
    let cache = tmp("cache-cachecmd");
    let _ = std::fs::remove_dir_all(&trace);
    let _ = std::fs::remove_dir_all(&cache);
    let (_, _, code) = run(&[
        "demo",
        "ring",
        "--ranks",
        "4",
        "--seed",
        "1",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    let trace = trace.to_str().unwrap().to_string();
    let cache_str = cache.to_str().unwrap().to_string();

    let (_, _, code) = run(&["analyze", &trace, "--cache", "--cache-dir", &cache_str]);
    assert_eq!(code, 0);

    let (ls_out, _, code) = run(&["cache", "ls", "--cache-dir", &cache_str]);
    assert_eq!(code, 0);
    assert!(ls_out.contains("report-"), "{ls_out}");
    assert!(ls_out.contains("arena-"), "{ls_out}");

    // gc to zero prunes everything; clear on an empty cache is a no-op.
    let (gc_out, _, code) = run(&["cache", "gc", "--cache-dir", &cache_str, "--max-mib", "0"]);
    assert_eq!(code, 0);
    assert!(gc_out.contains("gc removed"), "{gc_out}");
    let (ls_out, _, _) = run(&["cache", "ls", "--cache-dir", &cache_str]);
    assert!(ls_out.contains("(0 entries)"), "{ls_out}");
    let (clear_out, _, code) = run(&["cache", "clear", "--cache-dir", &cache_str]);
    assert_eq!(code, 0);
    assert!(clear_out.contains("cleared 0"), "{clear_out}");

    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_dir_all(Path::new(&trace));
}
