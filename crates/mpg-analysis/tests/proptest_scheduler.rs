//! Property test: the event-driven ready-queue scheduler never deadlocks
//! on a valid trace.
//!
//! Random SPMD programs are assembled from communication rounds that are
//! deadlock-free by construction (ring exchanges, symmetric sendrecv
//! shifts, paired blocking exchanges, collectives), simulated, and
//! replayed under a noisy perturbation model. The scheduler must retire
//! every event — a lost wakeup would surface as the engine's
//! "matching made no progress" deadlock-on-drain error — and stay within
//! its O(events) wakeup bound.

use mpg_core::{PerturbationModel, ReplayConfig, Replayer};
use mpg_noise::{Dist, PlatformSignature};
use mpg_sim::RankCtx;
use proptest::prelude::*;

/// One deadlock-free communication round; every rank executes the same
/// sequence, so blocking calls always have a matching partner.
#[derive(Debug, Clone)]
enum Round {
    /// Local work only.
    Compute(u64),
    /// Nonblocking ring: irecv from the left, isend to the right, waitall.
    Ring { tag: u32, bytes: u64 },
    /// Blocking sendrecv shifted by `shift` ranks.
    Shift { shift: u32, tag: u32, bytes: u64 },
    /// Even/odd paired blocking exchange (odd rank out sits idle).
    Pair { tag: u32, bytes: u64 },
    /// Ring via individually waited requests, reversed completion order.
    RingWaitRev { tag: u32, bytes: u64 },
    /// Barrier.
    Barrier,
    /// Allreduce.
    Allreduce { bytes: u64 },
    /// Broadcast from a root (reduced modulo the rank count).
    Bcast { root: u32, bytes: u64 },
}

fn run_round(ctx: &mut RankCtx, round: &Round) {
    let p = ctx.size();
    let me = ctx.rank();
    match *round {
        Round::Compute(work) => ctx.compute(work),
        Round::Ring { tag, bytes } => {
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            let r = ctx.irecv(left, tag);
            let s = ctx.isend(right, tag, bytes);
            ctx.waitall(&[r, s]);
        }
        Round::Shift { shift, tag, bytes } => {
            let shift = 1 + shift % (p - 1).max(1);
            let dst = (me + shift) % p;
            let src = (me + p - shift) % p;
            ctx.sendrecv(dst, tag, bytes, src, tag);
        }
        Round::Pair { tag, bytes } => {
            if me.is_multiple_of(2) {
                if me + 1 < p {
                    ctx.send(me + 1, tag, bytes);
                    ctx.recv(me + 1, tag);
                }
            } else {
                ctx.recv(me - 1, tag);
                ctx.send(me - 1, tag, bytes);
            }
        }
        Round::RingWaitRev { tag, bytes } => {
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            let r = ctx.irecv(left, tag);
            let s = ctx.isend(right, tag, bytes);
            ctx.wait(s);
            ctx.wait(r);
        }
        Round::Barrier => ctx.barrier(),
        Round::Allreduce { bytes } => ctx.allreduce(bytes),
        Round::Bcast { root, bytes } => ctx.bcast(root % p, bytes),
    }
}

fn round_strategy() -> impl Strategy<Value = Round> {
    prop_oneof![
        (1u64..20_000).prop_map(Round::Compute),
        (0u32..4, 1u64..4_096).prop_map(|(tag, bytes)| Round::Ring { tag, bytes }),
        (0u32..8, 0u32..4, 1u64..4_096).prop_map(|(shift, tag, bytes)| Round::Shift {
            shift,
            tag,
            bytes
        }),
        (0u32..4, 1u64..4_096).prop_map(|(tag, bytes)| Round::Pair { tag, bytes }),
        (0u32..4, 1u64..4_096).prop_map(|(tag, bytes)| Round::RingWaitRev { tag, bytes }),
        Just(Round::Barrier),
        (1u64..2_048).prop_map(|bytes| Round::Allreduce { bytes }),
        (0u32..8, 1u64..2_048).prop_map(|(root, bytes)| Round::Bcast { root, bytes }),
    ]
}

fn noisy_model() -> PerturbationModel {
    let mut m = PerturbationModel::quiet("prop");
    m.os_local = Dist::Exponential { mean: 500.0 }.into();
    m.latency = Dist::Exponential { mean: 700.0 }.into();
    m.per_byte = 0.05;
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn random_valid_programs_never_deadlock_the_ready_queue(
        p in 2u32..10,
        sim_seed in 0u64..1_000,
        rounds in prop::collection::vec(round_strategy(), 1..14),
    ) {
        let trace = mpg_sim::Simulation::new(p, PlatformSignature::quiet("prop"))
            .ideal_clocks()
            .seed(sim_seed)
            .run(|ctx| {
                for round in &rounds {
                    run_round(ctx, round);
                }
            })
            .expect("generated program simulates")
            .trace;
        let rep = Replayer::new(ReplayConfig::new(noisy_model()).seed(11))
            .run(&trace)
            .expect("ready-queue scheduler drains the trace without deadlock");
        // Every traced event retired: nothing was left asleep on the queue.
        prop_assert_eq!(rep.stats.events, trace.total_events() as u64);
        let bound = rep.stats.events
            + rep.stats.messages_matched
            + rep.stats.collectives * u64::from(p);
        prop_assert!(
            rep.stats.scheduler_wakeups <= bound,
            "wakeups {} exceed bound {} (p={}, rounds={:?})",
            rep.stats.scheduler_wakeups,
            bound,
            p,
            rounds
        );
    }
}
