//! Golden schedule-exploration suite over the demo workloads.
//!
//! Every mpg-apps demo workload is simulated exactly as in
//! `lint_golden.rs` (seed 1, quiet platform, ideal clocks, 8 ranks) and
//! driven through `lint_explore` at the CLI-default budget. Pinned per
//! workload: the coverage accounting (schedules replayed / infeasible /
//! pruned / frontier left unexplored / max depth reached) and every
//! pass-8 finding (`MPG-MAY-DEADLOCK` / `MPG-SCHEDULE-DIVERGENCE`)
//! rendered in full. The explorer is deterministic — FIFO frontier,
//! seeded rotation, sleep-set dedup — so any change to the walk order,
//! the pruning, or the makespan estimator shows up as a diff here, not
//! as silent drift. The lint-pass diagnostics themselves are already
//! pinned by `lint_golden.rs` and are excluded here.

use mpg_apps::{
    AllreduceSolver, GridSumma, MasterWorker, Pipeline, Stencil, TokenRing, Transpose, Workload,
};
use mpg_lint::{lint_explore, ExploreOptions};
use mpg_noise::PlatformSignature;
use mpg_sim::Simulation;
use mpg_trace::Rule;

fn explore_workload(w: &dyn Workload) -> Vec<String> {
    let trace = Simulation::new(8, PlatformSignature::quiet("golden"))
        .ideal_clocks()
        .seed(1)
        .run(|ctx| w.run(ctx))
        .expect("workload simulates")
        .trace;
    let out = lint_explore(&trace, &ExploreOptions::cli_default());
    let s = out.stats;
    let mut lines = vec![format!(
        "explored={} infeasible={} pruned={} unexplored={} max_depth={} exhausted={}",
        s.explored, s.infeasible, s.pruned, s.frontier_unexplored, s.max_depth, s.budget_exhausted
    )];
    lines.extend(
        out.diags
            .iter()
            .filter(|d| matches!(d.rule, Rule::MayDeadlock | Rule::ScheduleDivergence))
            .map(|d| d.to_string()),
    );
    lines
}

#[track_caller]
fn check(w: &dyn Workload, want: &[&str]) {
    let got = explore_workload(w);
    assert_eq!(
        got,
        want.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        "{} explore output diverged",
        w.name()
    );
}

#[test]
fn token_ring_explore() {
    // No wildcard receives: the frontier is empty from the start and the
    // walk reports complete coverage without a single forced replay.
    check(
        &TokenRing {
            traversals: 3,
            particles_per_rank: 8,
            work_per_pair: 25,
        },
        &["explored=0 infeasible=0 pruned=0 unexplored=0 max_depth=0 exhausted=false"],
    );
}

#[test]
fn stencil_explore() {
    check(
        &Stencil {
            iters: 8,
            cells_per_rank: 200,
            work_per_cell: 20,
            halo_bytes: 512,
        },
        &["explored=0 infeasible=0 pruned=0 unexplored=0 max_depth=0 exhausted=false"],
    );
}

#[test]
fn master_worker_explore() {
    check(
        &MasterWorker {
            tasks: 8,
            task_work: 50_000,
            task_bytes: 64,
            result_bytes: 64,
        },
        &[
            "explored=64 infeasible=0 pruned=68 unexplored=281 max_depth=2 exhausted=true",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 2; rank 0 seq 10 <- rank 1; rank 0 seq 22 <- rank 3; rank 0 seq 12 <- rank 1] completes but shifts the estimated makespan by 18.4% (173664 -> 205628 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 22 <- rank 2; rank 0 seq 10 <- rank 1] completes but shifts the estimated makespan by 23.5% (173664 -> 214560 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 14 <- rank 2; rank 0 seq 10 <- rank 4] completes but shifts the estimated makespan by 10.3% (173664 -> 191560 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 16 <- rank 2; rank 0 seq 10 <- rank 5] completes but shifts the estimated makespan by 10.3% (173664 -> 191560 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 18 <- rank 2; rank 0 seq 10 <- rank 6] completes but shifts the estimated makespan by 10.3% (173664 -> 191560 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 20 <- rank 2; rank 0 seq 10 <- rank 7] completes but shifts the estimated makespan by 10.3% (173664 -> 191560 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 2; rank 0 seq 10 <- rank 1; rank 0 seq 22 <- rank 4; rank 0 seq 14 <- rank 1] completes but shifts the estimated makespan by 15.8% (173664 -> 201028 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 4; rank 0 seq 14 <- rank 1; rank 0 seq 16 <- rank 2; rank 0 seq 10 <- rank 5] completes but shifts the estimated makespan by 15.4% (173664 -> 200492 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 4; rank 0 seq 14 <- rank 1; rank 0 seq 18 <- rank 2; rank 0 seq 10 <- rank 6] completes but shifts the estimated makespan by 15.4% (173664 -> 200492 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 2; rank 0 seq 10 <- rank 1; rank 0 seq 22 <- rank 5; rank 0 seq 16 <- rank 1] completes but shifts the estimated makespan by 13.1% (173664 -> 196428 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 2; rank 0 seq 10 <- rank 1; rank 0 seq 22 <- rank 6; rank 0 seq 18 <- rank 1] completes but shifts the estimated makespan by 10.5% (173664 -> 191828 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1] completes but shifts the estimated makespan by 10.3% (173664 -> 191560 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 22 <- rank 4; rank 0 seq 14 <- rank 1] completes but shifts the estimated makespan by 20.9% (173664 -> 209960 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 14 <- rank 5; rank 0 seq 16 <- rank 4] completes but shifts the estimated makespan by 10.3% (173664 -> 191560 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 4; rank 0 seq 14 <- rank 1; rank 0 seq 16 <- rank 3; rank 0 seq 12 <- rank 5] completes but shifts the estimated makespan by 15.4% (173664 -> 200492 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 14 <- rank 6; rank 0 seq 18 <- rank 4] completes but shifts the estimated makespan by 10.3% (173664 -> 191560 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 4; rank 0 seq 14 <- rank 1; rank 0 seq 18 <- rank 3; rank 0 seq 12 <- rank 6] completes but shifts the estimated makespan by 15.4% (173664 -> 200492 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 14 <- rank 7; rank 0 seq 20 <- rank 4] completes but shifts the estimated makespan by 10.3% (173664 -> 191560 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 22 <- rank 5; rank 0 seq 16 <- rank 1] completes but shifts the estimated makespan by 18.3% (173664 -> 205360 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 16 <- rank 6; rank 0 seq 18 <- rank 5] completes but shifts the estimated makespan by 10.3% (173664 -> 191560 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 16 <- rank 7; rank 0 seq 20 <- rank 5] completes but shifts the estimated makespan by 10.3% (173664 -> 191560 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 22 <- rank 6; rank 0 seq 18 <- rank 1] completes but shifts the estimated makespan by 15.6% (173664 -> 200760 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 18 <- rank 7; rank 0 seq 20 <- rank 6] completes but shifts the estimated makespan by 10.3% (173664 -> 191560 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 3; rank 0 seq 12 <- rank 1; rank 0 seq 22 <- rank 7; rank 0 seq 20 <- rank 1] completes but shifts the estimated makespan by 13.0% (173664 -> 196160 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 4; rank 0 seq 14 <- rank 1] completes but shifts the estimated makespan by 15.4% (173664 -> 200492 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 4; rank 0 seq 14 <- rank 1; rank 0 seq 16 <- rank 6; rank 0 seq 18 <- rank 5] completes but shifts the estimated makespan by 15.4% (173664 -> 200492 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 4; rank 0 seq 14 <- rank 1; rank 0 seq 16 <- rank 7; rank 0 seq 20 <- rank 5] completes but shifts the estimated makespan by 15.4% (173664 -> 200492 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 4; rank 0 seq 14 <- rank 1; rank 0 seq 18 <- rank 7; rank 0 seq 20 <- rank 6] completes but shifts the estimated makespan by 15.4% (173664 -> 200492 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 5; rank 0 seq 16 <- rank 1] completes but shifts the estimated makespan by 20.6% (173664 -> 209424 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 6; rank 0 seq 18 <- rank 1] completes but shifts the estimated makespan by 25.7% (173664 -> 218356 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 8: alternate wildcard matching [rank 0 seq 8 <- rank 7; rank 0 seq 20 <- rank 1] completes but shifts the estimated makespan by 30.9% (173664 -> 227288 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 22: alternate wildcard matching [rank 0 seq 22 <- rank 2; rank 0 seq 10 <- rank 1] completes but shifts the estimated makespan by 15.9% (173664 -> 201264 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 22: alternate wildcard matching [rank 0 seq 22 <- rank 3; rank 0 seq 12 <- rank 1] completes but shifts the estimated makespan by 13.2% (173664 -> 196664 cycles)",
            "info[MPG-SCHEDULE-DIVERGENCE] rank 0 seq 22: alternate wildcard matching [rank 0 seq 22 <- rank 4; rank 0 seq 14 <- rank 1] completes but shifts the estimated makespan by 10.6% (173664 -> 192064 cycles)",
        ],
    );
}

#[test]
fn allreduce_solver_explore() {
    check(
        &AllreduceSolver {
            iters: 10,
            local_work: 100_000,
            vector_bytes: 128,
        },
        &["explored=0 infeasible=0 pruned=0 unexplored=0 max_depth=0 exhausted=false"],
    );
}

#[test]
fn pipeline_explore() {
    check(
        &Pipeline {
            waves: 10,
            work_per_stage: 50_000,
            payload: 256,
        },
        &["explored=0 infeasible=0 pruned=0 unexplored=0 max_depth=0 exhausted=false"],
    );
}

#[test]
fn transpose_explore() {
    check(
        &Transpose {
            steps: 5,
            rows_per_rank: 16,
            work_per_element: 10,
            block_bytes: 256,
        },
        &["explored=0 infeasible=0 pruned=0 unexplored=0 max_depth=0 exhausted=false"],
    );
}

#[test]
fn grid_summa_explore() {
    check(
        &GridSumma {
            rows: 2,
            cols: 4,
            panel_bytes: 1_024,
            local_work: 50_000,
        },
        &["explored=0 infeasible=0 pruned=0 unexplored=0 max_depth=0 exhausted=false"],
    );
}
