//! End-to-end tests of the `mpgtool` CLI: demo → validate → stats →
//! replay (+history) → dot, all against real files.

use std::path::PathBuf;
use std::process::Command;

fn mpgtool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpgtool"))
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mpgtool-{tag}-{}", std::process::id()))
}

#[test]
fn full_cli_pipeline() {
    let dir = tmp("pipeline");
    let _ = std::fs::remove_dir_all(&dir);

    // demo
    let out = mpgtool()
        .args(["demo", "ring", "--ranks", "4", "--seed", "3"])
        .arg(&dir)
        .output()
        .expect("spawn mpgtool");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("traced 'ring' on 4 ranks"), "{stdout}");

    // validate
    let out = mpgtool().arg("validate").arg(&dir).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("ok:"));

    // stats
    let out = mpgtool().arg("stats").arg(&dir).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("compute"), "{stdout}");
    assert!(stdout.contains("communicating pairs"), "{stdout}");

    // replay with model + history
    let hist = tmp("history.log");
    let _ = std::fs::remove_file(&hist);
    let out = mpgtool()
        .arg("replay")
        .arg(&dir)
        .args(["--latency", "500", "--seed", "7", "--history"])
        .arg(&hist)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("max drift"), "{stdout}");
    assert!(stdout.contains("history: appended"), "{stdout}");
    // Drift must be positive: 500 cycles per hop on a ring.
    assert!(!stdout.contains("max drift 0,"), "{stdout}");
    assert!(hist.exists());

    // Second replay appends a second record.
    mpgtool()
        .arg("replay")
        .arg(&dir)
        .args(["--latency", "100", "--history"])
        .arg(&hist)
        .output()
        .unwrap();
    let hist_content = std::fs::read_to_string(&hist).unwrap();
    assert_eq!(hist_content.lines().count(), 2);

    // dot
    let out = mpgtool().arg("dot").arg(&dir).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("cluster_rank0"));

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_file(&hist).unwrap();
}

#[test]
fn identity_replay_via_cli_is_zero_drift() {
    let dir = tmp("identity");
    let _ = std::fs::remove_dir_all(&dir);
    mpgtool()
        .args(["demo", "solver", "--ranks", "3"])
        .arg(&dir)
        .output()
        .unwrap();
    let out = mpgtool().arg("replay").arg(&dir).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("max drift 0, mean 0"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = mpgtool().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = mpgtool().args(["demo", "no-such-workload", "/tmp/x"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let out = mpgtool().args(["stats", "/nonexistent-mpg-dir"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn all_demo_workloads_produce_valid_traces() {
    for name in ["ring", "stencil", "master-worker", "solver", "pipeline", "transpose"] {
        let dir = tmp(&format!("wl-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        let out = mpgtool()
            .args(["demo", name, "--ranks", "4"])
            .arg(&dir)
            .output()
            .unwrap();
        assert!(out.status.success(), "{name}: {}", String::from_utf8_lossy(&out.stderr));
        let out = mpgtool().arg("validate").arg(&dir).output().unwrap();
        assert!(out.status.success(), "{name} trace invalid");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn export_import_roundtrip_via_cli() {
    let dir = tmp("exp");
    let dir2 = tmp("exp2");
    let txt = tmp("exp.txt");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
    mpgtool().args(["demo", "pipeline", "--ranks", "3"]).arg(&dir).output().unwrap();
    let out = mpgtool().arg("export").arg(&dir).output().unwrap();
    assert!(out.status.success());
    std::fs::write(&txt, &out.stdout).unwrap();
    let out = mpgtool().arg("import").arg(&txt).arg(&dir2).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // Re-export of the import must be byte-identical.
    let reexport = mpgtool().arg("export").arg(&dir2).output().unwrap();
    assert_eq!(std::fs::read(&txt).unwrap(), reexport.stdout);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&dir2).unwrap();
    std::fs::remove_file(&txt).unwrap();
}

#[test]
fn timeline_and_diff_render() {
    let dir = tmp("tl");
    let _ = std::fs::remove_dir_all(&dir);
    mpgtool().args(["demo", "solver", "--ranks", "3"]).arg(&dir).output().unwrap();
    let out = mpgtool().args(["timeline"]).arg(&dir).args(["--width", "60"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rank    0"), "{stdout}");
    assert!(stdout.contains("legend:"), "{stdout}");

    let out = mpgtool().arg("diff").arg(&dir).arg(&dir).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Same trace on both sides: every ratio is exactly 1.000.
    assert!(stdout.contains("1.000"), "{stdout}");
    assert!(stdout.contains("allreduce"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}
