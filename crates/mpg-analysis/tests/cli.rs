//! End-to-end tests of the `mpgtool` CLI: demo → validate → stats →
//! replay (+history) → dot, all against real files.

use std::path::PathBuf;
use std::process::Command;

fn mpgtool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpgtool"))
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mpgtool-{tag}-{}", std::process::id()))
}

#[test]
fn full_cli_pipeline() {
    let dir = tmp("pipeline");
    let _ = std::fs::remove_dir_all(&dir);

    // demo
    let out = mpgtool()
        .args(["demo", "ring", "--ranks", "4", "--seed", "3"])
        .arg(&dir)
        .output()
        .expect("spawn mpgtool");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("traced 'ring' on 4 ranks"), "{stdout}");

    // validate
    let out = mpgtool().arg("validate").arg(&dir).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("ok:"));

    // stats
    let out = mpgtool().arg("stats").arg(&dir).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("compute"), "{stdout}");
    assert!(stdout.contains("communicating pairs"), "{stdout}");

    // replay with model + history
    let hist = tmp("history.log");
    let _ = std::fs::remove_file(&hist);
    let out = mpgtool()
        .arg("replay")
        .arg(&dir)
        .args(["--latency", "500", "--seed", "7", "--history"])
        .arg(&hist)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("max drift"), "{stdout}");
    assert!(stdout.contains("history: appended"), "{stdout}");
    // Drift must be positive: 500 cycles per hop on a ring.
    assert!(!stdout.contains("max drift 0,"), "{stdout}");
    assert!(hist.exists());

    // Second replay appends a second record.
    mpgtool()
        .arg("replay")
        .arg(&dir)
        .args(["--latency", "100", "--history"])
        .arg(&hist)
        .output()
        .unwrap();
    let hist_content = std::fs::read_to_string(&hist).unwrap();
    assert_eq!(hist_content.lines().count(), 2);

    // dot
    let out = mpgtool().arg("dot").arg(&dir).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("cluster_rank0"));

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_file(&hist).unwrap();
}

#[test]
fn identity_replay_via_cli_is_zero_drift() {
    let dir = tmp("identity");
    let _ = std::fs::remove_dir_all(&dir);
    mpgtool()
        .args(["demo", "solver", "--ranks", "3"])
        .arg(&dir)
        .output()
        .unwrap();
    let out = mpgtool().arg("replay").arg(&dir).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("max drift 0, mean 0"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = mpgtool().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = mpgtool()
        .args(["demo", "no-such-workload", "/tmp/x"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    let out = mpgtool()
        .args(["stats", "/nonexistent-mpg-dir"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn all_demo_workloads_produce_valid_traces() {
    for name in [
        "ring",
        "stencil",
        "master-worker",
        "solver",
        "pipeline",
        "transpose",
    ] {
        let dir = tmp(&format!("wl-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        let out = mpgtool()
            .args(["demo", name, "--ranks", "4"])
            .arg(&dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{name}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let out = mpgtool().arg("validate").arg(&dir).output().unwrap();
        assert!(out.status.success(), "{name} trace invalid");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn export_import_roundtrip_via_cli() {
    let dir = tmp("exp");
    let dir2 = tmp("exp2");
    let txt = tmp("exp.txt");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
    mpgtool()
        .args(["demo", "pipeline", "--ranks", "3"])
        .arg(&dir)
        .output()
        .unwrap();
    let out = mpgtool().arg("export").arg(&dir).output().unwrap();
    assert!(out.status.success());
    std::fs::write(&txt, &out.stdout).unwrap();
    let out = mpgtool()
        .arg("import")
        .arg(&txt)
        .arg(&dir2)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Re-export of the import must be byte-identical.
    let reexport = mpgtool().arg("export").arg(&dir2).output().unwrap();
    assert_eq!(std::fs::read(&txt).unwrap(), reexport.stdout);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&dir2).unwrap();
    std::fs::remove_file(&txt).unwrap();
}

#[test]
fn timeline_and_diff_render() {
    let dir = tmp("tl");
    let _ = std::fs::remove_dir_all(&dir);
    mpgtool()
        .args(["demo", "solver", "--ranks", "3"])
        .arg(&dir)
        .output()
        .unwrap();
    let out = mpgtool()
        .args(["timeline"])
        .arg(&dir)
        .args(["--width", "60"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rank    0"), "{stdout}");
    assert!(stdout.contains("legend:"), "{stdout}");

    let out = mpgtool().arg("diff").arg(&dir).arg(&dir).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Same trace on both sides: every ratio is exactly 1.000.
    assert!(stdout.contains("1.000"), "{stdout}");
    assert!(stdout.contains("allreduce"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Text-format trace with a classic head-to-head receive deadlock: each
/// rank blocks receiving from the other before either send is reached.
const DEADLOCK_TRACE: &str = "\
ranks=2
rank 0
0 10 init
10 20 recv peer=1 tag=0 bytes=8 any=0
20 30 send peer=1 tag=0 bytes=8
30 40 finalize
rank 1
0 10 init
10 20 recv peer=0 tag=0 bytes=8 any=0
20 30 send peer=0 tag=0 bytes=8
30 40 finalize
";

fn import_text_trace(tag: &str, text: &str) -> PathBuf {
    let dir = tmp(tag);
    let txt = tmp(&format!("{tag}.txt"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::write(&txt, text).unwrap();
    let out = mpgtool()
        .arg("import")
        .arg(&txt)
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&txt).unwrap();
    dir
}

#[test]
fn lint_catches_seeded_deadlock_with_nonzero_exit() {
    let dir = import_text_trace("lint-dl", DEADLOCK_TRACE);

    // The trace is structurally valid — only the cross-rank passes see it.
    let out = mpgtool().arg("validate").arg(&dir).output().unwrap();
    assert!(out.status.success(), "structurally valid");

    let out = mpgtool().arg("lint").arg(&dir).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "exit 1 on error diagnostics");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[MPG-DEADLOCK]"), "{stdout}");
    assert!(stdout.contains("wait-for cycle"), "{stdout}");

    // JSON mode carries the same finding, machine-readable.
    let out = mpgtool()
        .args(["lint", "--json"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with('['), "{stdout}");
    assert!(stdout.contains("\"rule\":\"MPG-DEADLOCK\""), "{stdout}");
    assert!(stdout.contains("\"ranks\":[0,1]"), "{stdout}");

    // Replay refuses the trace when gated.
    let out = mpgtool()
        .args(["replay", "--lint"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("rejected by lint gate"), "{stderr}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn all_demo_workloads_lint_clean() {
    let cases: &[(&str, &str)] = &[
        ("ring", "4"),
        ("stencil", "4"),
        ("master-worker", "4"),
        ("solver", "4"),
        ("pipeline", "4"),
        ("transpose", "4"),
        ("summa", "8"),
    ];
    for (name, ranks) in cases {
        let dir = tmp(&format!("lint-wl-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        let out = mpgtool()
            .args(["demo", name, "--ranks", ranks])
            .arg(&dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{name}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let out = mpgtool().arg("lint").arg(&dir).output().unwrap();
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "{name} lints dirty: {stdout}");
        assert!(
            stdout.contains("lint: 0 error(s), 0 warning(s)"),
            "{name}: {stdout}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn lint_deny_escalates_wildcard_race() {
    let dir = tmp("lint-deny");
    let _ = std::fs::remove_dir_all(&dir);
    mpgtool()
        .args(["demo", "master-worker", "--ranks", "4"])
        .arg(&dir)
        .output()
        .unwrap();

    // Advisory by default: hidden, exit 0.
    let out = mpgtool().arg("lint").arg(&dir).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("MPG-WILD-RACE"), "{stdout}");
    assert!(stdout.contains("hidden; use --all"), "{stdout}");

    // --all surfaces the advisory without failing.
    let out = mpgtool()
        .args(["lint", "--all"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("info[MPG-WILD-RACE]"));

    // --deny escalates it to an error and flips the exit code.
    let out = mpgtool()
        .args(["lint", "--deny", "MPG-WILD-RACE"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[MPG-WILD-RACE]"));

    // Denying an unrelated rule changes nothing.
    let out = mpgtool()
        .args(["lint", "--deny", "MPG-DEADLOCK"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success());

    // An unknown rule is a usage error.
    let out = mpgtool()
        .args(["lint", "--deny", "MPG-NOT-A-RULE"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lint_json_is_empty_array_for_clean_trace() {
    let dir = tmp("lint-json-clean");
    let _ = std::fs::remove_dir_all(&dir);
    mpgtool()
        .args(["demo", "ring", "--ranks", "4"])
        .arg(&dir)
        .output()
        .unwrap();
    let out = mpgtool()
        .args(["lint", "--json"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "[]");

    // validate shares the JSON path.
    let out = mpgtool()
        .args(["validate", "--json"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "[]");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lint_usage_and_io_errors_exit_2() {
    let out = mpgtool().arg("lint").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = mpgtool()
        .args(["lint", "/nonexistent-mpg-dir"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
