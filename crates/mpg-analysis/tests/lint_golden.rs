//! Golden lint suite over the demo workloads.
//!
//! Every mpg-apps demo workload is simulated (seed 1, quiet platform,
//! ideal clocks, 8 ranks) and pushed through the full pass manager
//! (`lint_full`); the rendered diagnostics are pinned below. This pins the
//! upgraded `MPG-WILD-RACE` output — each race names its concrete
//! alternate-match witness (rank/seq of the send that could have matched
//! instead) — so a change to the happens-before engine, the witness
//! replay, or the diagnostic text shows up as a diff here, not as silent
//! drift. Workloads with no findings are pinned as exactly empty.

use mpg_apps::{
    AllreduceSolver, GridSumma, MasterWorker, Pipeline, Stencil, TokenRing, Transpose, Workload,
};
use mpg_lint::lint_full;
use mpg_noise::PlatformSignature;
use mpg_sim::Simulation;

fn lint_workload(w: &dyn Workload) -> Vec<String> {
    let trace = Simulation::new(8, PlatformSignature::quiet("golden"))
        .ideal_clocks()
        .seed(1)
        .run(|ctx| w.run(ctx))
        .expect("workload simulates")
        .trace;
    lint_full(&trace).iter().map(|d| d.to_string()).collect()
}

#[track_caller]
fn check(w: &dyn Workload, want: &[&str]) {
    let got = lint_workload(w);
    assert_eq!(
        got,
        want.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        "{} lint output diverged",
        w.name()
    );
}

#[test]
fn token_ring_lint() {
    check(
        &TokenRing {
            traversals: 3,
            particles_per_rank: 8,
            work_per_pair: 25,
        },
        &[],
    );
}

#[test]
fn stencil_lint() {
    check(
        &Stencil {
            iters: 8,
            cells_per_rank: 200,
            work_per_cell: 20,
            halo_bytes: 512,
        },
        &[],
    );
}

#[test]
fn master_worker_lint() {
    // Every task pull on rank 0 is an ANY_SOURCE receive; with all workers
    // racing to return results, each resolution has the other six workers'
    // result sends as validated concurrent alternates. The witness text
    // pins the exact (rank, seq) of every alternate match.
    check(
        &MasterWorker {
            tasks: 8,
            task_work: 50_000,
            task_bytes: 64,
            result_bytes: 64,
        },
        &[
            "info[MPG-LATE-SENDER] rank 0 seq 22: recv blocked 20400 of 22732 cycles on late sender rank 1 (zero-slack arm: shortening this wait shortens the run)",
            "info[MPG-WILD-RACE] rank 0 seq 8: wildcard receive (tag 2) matched the send from rank 1 seq 3, but rank 2 seq 3, rank 3 seq 3, rank 4 seq 3, rank 5 seq 3, rank 6 seq 3, rank 7 seq 3 are concurrent and envelope-compatible; forcing the alternate match replays to completion, so the resolution depends on arrival timing",
            "info[MPG-WILD-RACE] rank 0 seq 10: wildcard receive (tag 2) matched the send from rank 2 seq 3, but rank 1 seq 3, rank 3 seq 3, rank 4 seq 3, rank 5 seq 3, rank 6 seq 3, rank 7 seq 3 are concurrent and envelope-compatible; forcing the alternate match replays to completion, so the resolution depends on arrival timing",
            "info[MPG-WILD-RACE] rank 0 seq 12: wildcard receive (tag 2) matched the send from rank 3 seq 3, but rank 1 seq 3, rank 2 seq 3, rank 4 seq 3, rank 5 seq 3, rank 6 seq 3, rank 7 seq 3 are concurrent and envelope-compatible; forcing the alternate match replays to completion, so the resolution depends on arrival timing",
            "info[MPG-WILD-RACE] rank 0 seq 14: wildcard receive (tag 2) matched the send from rank 4 seq 3, but rank 1 seq 3, rank 2 seq 3, rank 3 seq 3, rank 5 seq 3, rank 6 seq 3, rank 7 seq 3 are concurrent and envelope-compatible; forcing the alternate match replays to completion, so the resolution depends on arrival timing",
            "info[MPG-WILD-RACE] rank 0 seq 16: wildcard receive (tag 2) matched the send from rank 5 seq 3, but rank 1 seq 3, rank 2 seq 3, rank 3 seq 3, rank 4 seq 3, rank 6 seq 3, rank 7 seq 3 are concurrent and envelope-compatible; forcing the alternate match replays to completion, so the resolution depends on arrival timing",
            "info[MPG-WILD-RACE] rank 0 seq 18: wildcard receive (tag 2) matched the send from rank 6 seq 3, but rank 1 seq 3, rank 2 seq 3, rank 3 seq 3, rank 4 seq 3, rank 5 seq 3, rank 7 seq 3 are concurrent and envelope-compatible; forcing the alternate match replays to completion, so the resolution depends on arrival timing",
            "info[MPG-WILD-RACE] rank 0 seq 20: wildcard receive (tag 2) matched the send from rank 7 seq 3, but rank 1 seq 3, rank 2 seq 3, rank 3 seq 3, rank 4 seq 3, rank 5 seq 3, rank 6 seq 3 are concurrent and envelope-compatible; forcing the alternate match replays to completion, so the resolution depends on arrival timing",
            "info[MPG-WILD-RACE] rank 0 seq 22: wildcard receive (tag 2) matched the send from rank 1 seq 6, but rank 2 seq 3, rank 3 seq 3, rank 4 seq 3, rank 5 seq 3, rank 6 seq 3, rank 7 seq 3 are concurrent and envelope-compatible; forcing the alternate match replays to completion, so the resolution depends on arrival timing",
        ],
    );
}

#[test]
fn allreduce_solver_lint() {
    check(
        &AllreduceSolver {
            iters: 10,
            local_work: 100_000,
            vector_bytes: 128,
        },
        &[],
    );
}

#[test]
fn pipeline_lint() {
    // Ten waves of eager stage-to-stage sends outrun each downstream
    // stage's consumption (watermark 10 > 8 at every interior rank), and
    // the wavefront's serial critical path trips the perf pass.
    check(
        &Pipeline {
            waves: 10,
            work_per_stage: 50_000,
            payload: 256,
        },
        &[
            "info[MPG-BUFFER-WATERMARK] rank 1 seq 1: rank 1 may hold up to 10 in-flight eager sends at once (high-water at receive completing seq 1, advisory threshold 8); senders outrun the receiver's consumption",
            "info[MPG-BUFFER-WATERMARK] rank 2 seq 1: rank 2 may hold up to 10 in-flight eager sends at once (high-water at receive completing seq 1, advisory threshold 8); senders outrun the receiver's consumption",
            "info[MPG-BUFFER-WATERMARK] rank 3 seq 1: rank 3 may hold up to 10 in-flight eager sends at once (high-water at receive completing seq 1, advisory threshold 8); senders outrun the receiver's consumption",
            "info[MPG-BUFFER-WATERMARK] rank 4 seq 1: rank 4 may hold up to 10 in-flight eager sends at once (high-water at receive completing seq 1, advisory threshold 8); senders outrun the receiver's consumption",
            "info[MPG-BUFFER-WATERMARK] rank 5 seq 1: rank 5 may hold up to 10 in-flight eager sends at once (high-water at receive completing seq 1, advisory threshold 8); senders outrun the receiver's consumption",
            "info[MPG-BUFFER-WATERMARK] rank 6 seq 1: rank 6 may hold up to 10 in-flight eager sends at once (high-water at receive completing seq 1, advisory threshold 8); senders outrun the receiver's consumption",
            "info[MPG-BUFFER-WATERMARK] rank 7 seq 1: rank 7 may hold up to 10 in-flight eager sends at once (high-water at receive completing seq 1, advisory threshold 8); senders outrun the receiver's consumption",
            "info[MPG-LATE-SENDER] rank 1 seq 1: recv blocked 50000 of 52428 cycles on late sender rank 0 (zero-slack arm: shortening this wait shortens the run)",
            "info[MPG-LATE-SENDER] rank 2 seq 1: recv blocked 102428 of 104856 cycles on late sender rank 1 (zero-slack arm: shortening this wait shortens the run)",
            "info[MPG-LATE-SENDER] rank 3 seq 1: recv blocked 154856 of 157284 cycles on late sender rank 2 (zero-slack arm: shortening this wait shortens the run)",
            "info[MPG-LATE-SENDER] rank 4 seq 1: recv blocked 207284 of 209712 cycles on late sender rank 3 (zero-slack arm: shortening this wait shortens the run)",
            "info[MPG-LATE-SENDER] rank 5 seq 1: recv blocked 259712 of 262140 cycles on late sender rank 4 (zero-slack arm: shortening this wait shortens the run)",
            "info[MPG-LATE-SENDER] rank 6 seq 1: recv blocked 312140 of 314568 cycles on late sender rank 5 (zero-slack arm: shortening this wait shortens the run)",
            "info[MPG-SERIAL-CHAIN] ranks [7]: critical path serializes through 8 ranks over 7 message hops; its wait states total 1088720 cycles against a 911548-cycle makespan (blocked intervals on different ranks overlap in time)",
        ],
    );
}

#[test]
fn transpose_lint() {
    check(
        &Transpose {
            steps: 5,
            rows_per_rank: 16,
            work_per_element: 10,
            block_bytes: 256,
        },
        &[],
    );
}

#[test]
fn grid_summa_lint() {
    check(
        &GridSumma {
            rows: 2,
            cols: 4,
            panel_bytes: 1_024,
            local_work: 50_000,
        },
        &[
            "info[MPG-COLLECTIVE-IMBALANCE] rank 7 seq 71: allreduce over 8 ranks wasted 24000 cycles waiting; rank 7's late entry explains 14000 of them",
        ],
    );
}
