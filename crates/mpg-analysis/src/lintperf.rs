//! Lint-throughput measurement and the tracked `BENCH_lint.json` perf
//! snapshot.
//!
//! The §12 pass manager's pitch is that the *whole* static-analysis
//! pipeline — progress matching, quiet recorded replay, happens-before
//! index, and the parallel graph passes (causality, HB races with witness
//! replays, perf, sync) — stays a near-linear pass over the trace. This
//! module pins three lint-heavy workloads (including the wildcard-heavy
//! master-worker, whose every task receive is an `ANY_SOURCE` race
//! candidate), measures `lint_full` events/sec, and round-trips the
//! results through the same snapshot format as `BENCH_replay.json` so
//! `lint.sh` can fail a change that regresses lint throughput by more than
//! a threshold. A fourth row times the pass-8 schedule explorer
//! (`lint_explore`, budget 256) in forced replays per second, gating the explorer's per-schedule cost under the same
//! host-calibrated threshold. The gate reuses [`perf::calibrate`](crate::perf::calibrate)
//! host-speed scaling, so a loaded box loosens the floor instead of
//! producing false failures.

use std::time::Instant;

use crate::perf::{calibrate, WorkloadPerf};
use mpg_apps::{MasterWorker, Stencil, TokenRing, Workload};
use mpg_noise::PlatformSignature;
use mpg_sim::Simulation;
use mpg_trace::MemTrace;

fn trace_of(w: &dyn Workload, p: u32) -> MemTrace {
    Simulation::new(p, PlatformSignature::quiet("lintperf"))
        .ideal_clocks()
        .seed(1)
        .run(|ctx| w.run(ctx))
        .expect("pinned lint workload runs")
        .trace
}

/// The pinned lint workloads: the wildcard-heavy master-worker (every task
/// pull is an `ANY_SOURCE` receive, so pass 4 enumerates and witness-
/// replays real candidates), a waitall-heavy stencil (nonblocking request
/// bookkeeping), and a long blocking token ring (matcher + wait-for graph).
pub fn pinned_traces() -> Vec<(&'static str, u32, MemTrace)> {
    let mw = MasterWorker {
        tasks: 60,
        task_work: 20,
        task_bytes: 64,
        result_bytes: 32,
    };
    let stencil = Stencil {
        iters: 150,
        cells_per_rank: 10,
        work_per_cell: 5,
        halo_bytes: 256,
    };
    let ring = TokenRing {
        traversals: 40,
        particles_per_rank: 2,
        work_per_pair: 1,
    };
    vec![
        ("master-worker-8", 8, trace_of(&mw, 8)),
        ("stencil-8", 8, trace_of(&stencil, 8)),
        ("token-ring-16", 16, trace_of(&ring, 16)),
    ]
}

/// A lint-throughput snapshot (what `BENCH_lint.json` holds). Same
/// workload/calibration keys as [`PerfSnapshot`](crate::perf::PerfSnapshot),
/// so the tolerant
/// line-scanning parsers are shared.
#[derive(Debug, Clone, PartialEq)]
pub struct LintPerfSnapshot {
    /// Timed repetitions per workload (best is kept).
    pub reps: u32,
    /// Host-speed calibration taken with the measurement.
    pub calibration: f64,
    /// Per-workload results (`events_per_sec` = trace events / `lint_full`
    /// wall time; `scheduler_wakeups`/`polls_avoided` are unused here and
    /// recorded as 0).
    pub workloads: Vec<WorkloadPerf>,
}

/// Measures `lint_full` over every pinned workload: one warmup, then
/// `reps` timed runs, keeping the best.
pub fn measure(reps: u32) -> LintPerfSnapshot {
    let reps = reps.max(1);
    let mut workloads = Vec::new();
    for (name, ranks, trace) in pinned_traces() {
        let warm = mpg_lint::lint_full(&trace);
        // The pinned workloads are clean traces: only advisory findings
        // (races on master-worker) may appear. An error here means the
        // bench is measuring a broken pipeline, not a slow one.
        assert!(
            warm.iter().all(|d| d.severity < mpg_trace::Severity::Error),
            "pinned lint workload {name} has error diagnostics: {warm:?}"
        );
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            std::hint::black_box(mpg_lint::lint_full(&trace));
            best = best.min(t.elapsed().as_secs_f64());
        }
        let events = trace.total_events() as u64;
        workloads.push(WorkloadPerf {
            name: name.to_string(),
            ranks,
            events,
            events_per_sec: events as f64 / best,
            scheduler_wakeups: 0,
            polls_avoided: 0,
        });
    }
    // Explore throughput: the bounded pass-8 schedule walk over the
    // wildcard-heavy master-worker (its frontier
    // always exhausts the budget, so every rep forces the same number of
    // alternate-matching replays). `events` here counts schedules
    // replayed, not trace events — the unit the explorer's cost scales
    // with — so `events_per_sec` is forced replays per second.
    {
        let (_, ranks, trace) = pinned_traces().swap_remove(0);
        // Budget 256 (vs the CLI default 64) keeps each timed rep long
        // enough (~100ms) that thread-pool spawn jitter doesn't dominate
        // the measurement on a loaded box.
        let opts = mpg_lint::ExploreOptions::cli_default().budget(256);
        let warm = mpg_lint::lint_explore(&trace, &opts);
        assert!(
            warm.stats.budget_exhausted && warm.stats.explored == opts.budget,
            "explore bench workload no longer saturates its budget: {:?}",
            warm.stats
        );
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            std::hint::black_box(mpg_lint::lint_explore(&trace, &opts));
            best = best.min(t.elapsed().as_secs_f64());
        }
        workloads.push(WorkloadPerf {
            name: "explore-master-worker-8".to_string(),
            ranks,
            events: warm.stats.explored,
            events_per_sec: warm.stats.explored as f64 / best,
            scheduler_wakeups: 0,
            polls_avoided: 0,
        });
    }
    LintPerfSnapshot {
        reps,
        calibration: calibrate(),
        workloads,
    }
}

impl LintPerfSnapshot {
    /// Renders the snapshot as the `BENCH_lint.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        crate::benchjson::write_header(&mut out, "lint_throughput", self.reps, self.calibration);
        crate::benchjson::write_workloads(&mut out, &self.workloads, false, &[]);
        out
    }
}

/// Compares a fresh lint measurement against a recorded `BENCH_lint.json`.
/// Same contract and host-speed scaling as
/// [`perf::regressions`](crate::perf::regressions): one message per
/// workload more than `threshold_pct` percent below the (scaled) recorded
/// throughput; empty means the gate passes.
pub fn regressions(
    recorded_json: &str,
    current: &LintPerfSnapshot,
    threshold_pct: f64,
) -> Vec<String> {
    crate::benchjson::throughput_regressions(
        recorded_json,
        &current.workloads,
        crate::benchjson::host_scale(recorded_json, current.calibration),
        threshold_pct,
        "lint events/sec",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::PerfSnapshot;

    fn snapshot(eps: &[(&str, f64)], calibration: f64) -> LintPerfSnapshot {
        LintPerfSnapshot {
            reps: 1,
            calibration,
            workloads: eps
                .iter()
                .map(|(n, e)| WorkloadPerf {
                    name: (*n).into(),
                    ranks: 8,
                    events: 1000,
                    events_per_sec: *e,
                    scheduler_wakeups: 0,
                    polls_avoided: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn json_roundtrip_through_shared_parsers() {
        let snap = snapshot(&[("master-worker-8", 2.0e6), ("stencil-8", 1.0e6)], 1.0e9);
        let json = snap.to_json();
        assert_eq!(
            PerfSnapshot::parse_events_per_sec(&json),
            vec![
                ("master-worker-8".to_string(), 2.0e6),
                ("stencil-8".to_string(), 1.0e6)
            ]
        );
        assert_eq!(PerfSnapshot::parse_calibration(&json), Some(1.0e9));
    }

    #[test]
    fn gate_fires_only_past_threshold_with_host_scaling() {
        let recorded = snapshot(&[("a", 1.0e6)], 1.0e9).to_json();
        // 10% down: within a 20% allowance.
        assert!(regressions(&recorded, &snapshot(&[("a", 9.0e5)], 1.0e9), 20.0).is_empty());
        // 30% down at full host speed: the gate names it.
        let msgs = regressions(&recorded, &snapshot(&[("a", 7.0e5)], 1.0e9), 20.0);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].starts_with("a:"), "{msgs:?}");
        // Same drop on a half-speed host: forgiven.
        assert!(regressions(&recorded, &snapshot(&[("a", 7.0e5)], 0.5e9), 20.0).is_empty());
        // Unknown workloads are ignored (the pinned set may grow).
        assert!(regressions(&recorded, &snapshot(&[("new", 1.0)], 1.0e9), 20.0).is_empty());
    }

    #[test]
    fn measure_smoke() {
        let snap = measure(1);
        assert_eq!(snap.workloads.len(), 4);
        for w in &snap.workloads {
            assert!(w.events > 0 && w.events_per_sec > 0.0, "{w:?}");
        }
    }
}
