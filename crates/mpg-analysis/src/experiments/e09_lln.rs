//! E9 — §5: empirical distributions converge by the law of large numbers.
//!
//! "It is a simple exercise to show that the resulting empirical
//! distribution approaches the actual distribution as the sample size
//! increases, as stated by the law of large numbers."
//!
//! Measured: Kolmogorov–Smirnov distance between an n-sample ECDF and a
//! large-sample reference, for the distribution families the perturbation
//! models use — and the same convergence in *drift space*: a seed sweep of
//! replays (one lane-batched traversal per [`mpg_core::MAX_LANES`] seeds)
//! whose max-drift ECDF tightens as seeds accumulate.

use mpg_apps::{TokenRing, Workload};
use mpg_core::{PerturbationModel, ReplayConfig};
use mpg_noise::{Dist, Empirical, PlatformSignature, SampleDist, StreamRng};
use mpg_sim::Simulation;

use super::{Experiment, ExperimentResult};
use crate::sweep::parallel_replays;
use crate::table::Table;

/// ECDF convergence sweep.
pub struct LlnConvergence;

fn draw(d: &Dist, n: usize, rng: &mut StreamRng) -> Empirical {
    let xs: Vec<f64> = (0..n).map(|_| d.sample(rng) as f64).collect();
    Empirical::from_samples(&xs)
}

impl Experiment for LlnConvergence {
    fn id(&self) -> &'static str {
        "e9"
    }

    fn title(&self) -> &'static str {
        "§5 — ECDF convergence (KS distance vs sample count)"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let families: Vec<(&str, Dist)> = vec![
            ("exponential(500)", Dist::Exponential { mean: 500.0 }),
            (
                "lognormal(6,0.5)",
                Dist::LogNormal {
                    mu: 6.0,
                    sigma: 0.5,
                },
            ),
            (
                "pareto(100,2.5)",
                Dist::Pareto {
                    x_m: 100.0,
                    alpha: 2.5,
                },
            ),
            (
                "daemon-mixture",
                Dist::mixture(
                    0.9,
                    Dist::Exponential { mean: 200.0 },
                    Dist::Constant(5_000.0),
                ),
            ),
        ];
        let ns: Vec<usize> = if quick {
            vec![10, 100, 1_000]
        } else {
            vec![10, 100, 1_000, 10_000, 100_000]
        };
        let reference_n = if quick { 50_000 } else { 400_000 };

        let mut table = Table::new(
            "KS distance to a large-sample reference",
            std::iter::once("family")
                .chain(ns.iter().map(|_| "_"))
                .collect::<Vec<_>>()
                .as_slice(),
        );
        // Fix headers properly: family + one column per n.
        table.headers = std::iter::once("family".to_string())
            .chain(ns.iter().map(|n| format!("n={n}")))
            .collect();

        let mut monotone_ok = true;
        for (name, d) in &families {
            let mut rng = StreamRng::new(99, 9);
            let reference = draw(d, reference_n, &mut rng);
            let mut cells = vec![name.to_string()];
            let mut prev = f64::INFINITY;
            for &n in &ns {
                let e = draw(d, n, &mut rng);
                let ks = e.ks_distance(&reference);
                // Allow small non-monotonicity from sampling noise, but the
                // big trend must hold.
                if ks > prev * 3.0 {
                    monotone_ok = false;
                }
                prev = ks;
                cells.push(crate::table::f(ks));
            }
            table.row(cells);
        }
        // The same law in drift space: replay one trace under many seeds of
        // one perturbation model and watch the max-drift ECDF settle. The
        // seed sweep is structurally uniform, so the lane path evaluates it
        // in ⌈seeds / MAX_LANES⌉ graph traversals.
        let seeds: usize = if quick { 8 } else { 32 };
        let ring = TokenRing {
            traversals: 4,
            particles_per_rank: 4,
            work_per_pair: 30,
        };
        let trace = Simulation::new(8, PlatformSignature::quiet("lln"))
            .ideal_clocks()
            .seed(90)
            .run(|ctx| ring.run(ctx))
            .expect("ring runs")
            .trace;
        let configs: Vec<ReplayConfig> = (0..seeds)
            .map(|s| {
                let mut model = PerturbationModel::quiet("lln-noise");
                model.os_local = Dist::Exponential { mean: 800.0 }.into();
                ReplayConfig::new(model).seed(91 + s as u64)
            })
            .collect();
        let reports = parallel_replays(&trace, configs);
        let lanes = reports
            .first()
            .and_then(|r| r.as_ref().ok())
            .map_or(1, |r| r.stats.lanes);
        let drifts: Vec<f64> = reports
            .into_iter()
            .map(|r| r.expect("seed replay succeeds").max_final_drift() as f64)
            .collect();
        let prefix_ns: Vec<usize> = if quick {
            vec![2, 4, 8]
        } else {
            vec![4, 8, 16, 32]
        };
        let reference = Empirical::from_samples(&drifts);
        let mut drift_table = Table::new(
            format!("drift-space convergence: {seeds}-seed replay sweep, 8-rank ring"),
            std::iter::once("observable".to_string())
                .chain(prefix_ns.iter().map(|n| format!("KS @ n={n}")))
                .collect::<Vec<_>>()
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .as_slice(),
        );
        let mut cells = vec!["max final drift".to_string()];
        for &n in &prefix_ns {
            let e = Empirical::from_samples(&drifts[..n]);
            cells.push(crate::table::f(e.ks_distance(&reference)));
        }
        drift_table.row(cells);

        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![table, drift_table],
            notes: vec![
                format!(
                    "KS distance shrinks roughly as 1/√n for every family \
                     (coarse monotonicity check passed: {monotone_ok})."
                ),
                format!(
                    "the seed sweep rode the lane path: {lanes} seeds per graph \
                     traversal, {} traversals instead of {seeds}.",
                    seeds.div_ceil(lanes.max(1) as usize)
                ),
            ],
        }
    }
}
