//! E2 — Fig. 2 / Eq. 1: the blocking send/receive pair subgraph.
//!
//! Injects controlled (δ_λ, δ_t(d), δ_os2) constants into a two-rank
//! blocking exchange and checks the measured drifts against Eq. 1's closed
//! form:
//!
//! * receiver: `D(r_e) = δ_λ1 + δ_t(d) + δ_os2`
//! * sender (synchronous ack): `D(s_e) = D(r_e) + δ_λ2`

use mpg_core::{PerturbationModel, ReplayConfig, Replayer};
use mpg_noise::{Dist, PlatformSignature};
use mpg_sim::Simulation;

use super::{Experiment, ExperimentResult};
use crate::table::Table;

/// Eq. 1 verification over a δ sweep.
pub struct BlockingPair;

impl Experiment for BlockingPair {
    fn id(&self) -> &'static str {
        "e2"
    }

    fn title(&self) -> &'static str {
        "Fig. 2 / Eq. 1 — blocking send/recv pair under injected deltas"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let bytes: u64 = 4096;
        let trace = Simulation::new(2, PlatformSignature::quiet("lab"))
            .ideal_clocks()
            .run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 0, bytes);
                } else {
                    ctx.recv(0, 0);
                }
            })
            .expect("pair runs")
            .trace;

        let sweeps: Vec<(f64, f64, f64)> = if quick {
            vec![(0.0, 0.0, 0.0), (500.0, 0.1, 100.0)]
        } else {
            vec![
                (0.0, 0.0, 0.0),
                (100.0, 0.0, 0.0),
                (0.0, 0.1, 0.0),
                (0.0, 0.0, 250.0),
                (500.0, 0.1, 100.0),
                (5_000.0, 1.0, 1_000.0),
            ]
        };

        let mut table = Table::new(
            "Eq. 1 closed form vs replay (d = 4096 B)",
            &[
                "δλ",
                "δt/byte",
                "δos2",
                "predicted D(recv)",
                "measured D(recv)",
                "predicted D(send)",
                "measured D(send)",
                "exact",
            ],
        );
        for (lambda, per_byte, os2) in sweeps {
            let mut model = PerturbationModel::quiet("eq1");
            model.latency = Dist::Constant(lambda).into();
            model.per_byte = per_byte;
            model.os_remote = Dist::Constant(os2).into();
            let report = Replayer::new(ReplayConfig::new(model))
                .run(&trace)
                .expect("replays");
            let pred_recv = (lambda + per_byte * bytes as f64 + os2).round() as i64;
            let pred_send = pred_recv + lambda.round() as i64;
            let exact = report.final_drift[1] == pred_recv && report.final_drift[0] == pred_send;
            table.row(vec![
                format!("{lambda:.0}"),
                format!("{per_byte}"),
                format!("{os2:.0}"),
                pred_recv.to_string(),
                report.final_drift[1].to_string(),
                pred_send.to_string(),
                report.final_drift[0].to_string(),
                exact.to_string(),
            ]);
        }
        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![table],
            notes: vec![
                "Every row must report exact=true: the replay engine implements Eq. 1 \
                 literally in drift space."
                    .into(),
            ],
        }
    }
}
