//! E8 — §1/§1.1: graph traversal vs the Dimemas-like DES baseline.
//!
//! Both predictors consume the same quiet-platform trace and predict the
//! runtime on a noisier target platform; ground truth is a direct
//! simulation of the same program on that target. The graph analyzer is
//! parameterized from microbenchmark-measured *distributions* (the paper's
//! difference #1 vs Dimemas's scalar model) and streams the trace
//! (difference #3).

use std::time::Instant;

use mpg_apps::{AllreduceSolver, Stencil, TokenRing, Workload};
use mpg_core::{ReplayConfig, Replayer};
use mpg_des::{DimemasReplay, MachineModel};
use mpg_micro::{delta_model, measure_signature};
use mpg_noise::PlatformSignature;
use mpg_sim::Simulation;

use super::{Experiment, ExperimentResult};
use crate::table::{pct, Table};

/// Predictor shoot-out.
pub struct DesComparison;

impl Experiment for DesComparison {
    fn id(&self) -> &'static str {
        "e8"
    }

    fn title(&self) -> &'static str {
        "§1.1 — graph-traversal replay vs Dimemas-like DES baseline"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let p: u32 = if quick { 4 } else { 16 };
        let samples = if quick { 200 } else { 2_000 };
        let quiet = PlatformSignature::quiet("quiet");
        let target = PlatformSignature::noisy("target", 1.0);

        // Microbenchmark both platforms once.
        let sig_quiet = measure_signature(&quiet, 1_000_000, samples, 81);
        let sig_target = measure_signature(&target, 1_000_000, samples, 82);
        let injected = delta_model("quiet->target", &sig_quiet, &sig_target);

        let workloads: Vec<(&'static str, Box<dyn Workload>)> = vec![
            (
                "token-ring",
                Box::new(TokenRing {
                    traversals: 4,
                    particles_per_rank: 8,
                    work_per_pair: 50,
                }),
            ),
            (
                "stencil",
                Box::new(Stencil {
                    iters: if quick { 5 } else { 20 },
                    cells_per_rank: 2_000,
                    work_per_cell: 40,
                    halo_bytes: 1_024,
                }),
            ),
            (
                "allreduce-solver",
                Box::new(AllreduceSolver {
                    iters: if quick { 5 } else { 20 },
                    local_work: 200_000,
                    vector_bytes: 256,
                }),
            ),
        ];

        let mut table = Table::new(
            format!(
                "predicted makespan on '{}' from a '{}' trace (p = {p})",
                target.name, quiet.name
            ),
            &[
                "workload",
                "truth",
                "graph pred",
                "graph err",
                "DES pred",
                "DES err",
                "graph kev/s",
                "DES kev/s",
            ],
        );
        for (name, w) in &workloads {
            let trace = Simulation::new(p, quiet.clone())
                .ideal_clocks()
                .seed(88)
                .run(|ctx| w.run(ctx))
                .expect("quiet trace")
                .trace;
            let truth = Simulation::new(p, target.clone())
                .ideal_clocks()
                .seed(88)
                .run(|ctx| w.run(ctx))
                .expect("target run")
                .makespan() as f64;

            let t0 = Instant::now();
            let graph_report = Replayer::new(ReplayConfig::new(injected.clone()).seed(3))
                .run(&trace)
                .expect("graph replay");
            let graph_time = t0.elapsed().as_secs_f64();
            let graph_pred = *graph_report
                .projected_finish_local
                .iter()
                .max()
                .expect("ranks") as f64;

            let t0 = Instant::now();
            let des_report = DimemasReplay::new(MachineModel::from_signature(&target))
                .run(&trace)
                .expect("DES replay");
            let des_time = t0.elapsed().as_secs_f64();
            let des_pred = des_report.makespan() as f64;

            let events = trace.total_events() as f64;
            table.row(vec![
                name.to_string(),
                format!("{truth:.0}"),
                format!("{graph_pred:.0}"),
                pct((graph_pred - truth) / truth),
                format!("{des_pred:.0}"),
                pct((des_pred - truth) / truth),
                format!("{:.0}", events / graph_time / 1e3),
                format!("{:.0}", events / des_time / 1e3),
            ]);
        }
        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![table],
            notes: vec![
                "Expected shape: both predictors land within tens of percent of truth; \
                 the graph replay carries measured distributions (so it tracks noise-\
                 sensitive workloads better), while the DES carries only scalar means."
                    .into(),
            ],
        }
    }
}
