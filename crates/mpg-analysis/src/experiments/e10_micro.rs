//! E10 — §5.1–5.2: microbenchmark signatures of quiet vs noisy platforms.
//!
//! Runs FTQ, Mraz, ping-pong and bandwidth on a family of simulated
//! platforms and tabulates the measured signature, exactly the artifact §5
//! says each platform should carry.

use mpg_micro::{bandwidth, ftq, mraz, pingpong};
use mpg_noise::{Binning, Histogram, PlatformSignature};

use super::{Experiment, ExperimentResult};
use crate::table::{f, pct, Table};

/// Signature table across platforms.
pub struct MicroSignatures;

impl Experiment for MicroSignatures {
    fn id(&self) -> &'static str {
        "e10"
    }

    fn title(&self) -> &'static str {
        "§5 — microbenchmark signatures (FTQ, Mraz, ping-pong, bandwidth)"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let samples = if quick { 200 } else { 2_000 };
        let platforms = vec![
            PlatformSignature::quiet("quiet"),
            PlatformSignature::noisy("noisy-0.5", 0.5),
            PlatformSignature::noisy("noisy-1", 1.0),
            PlatformSignature::noisy("noisy-4", 4.0),
        ];
        let mut ftq_histogram_note = String::new();
        let mut table = Table::new(
            "measured platform signatures",
            &[
                "platform",
                "FTQ overhead",
                "FTQ p99 (cyc)",
                "latency mean",
                "latency p99",
                "cycles/byte",
                "Mraz excess mean",
            ],
        );
        for sig in &platforms {
            let ftq_r = ftq(sig, 1_000_000, samples, 101);
            if sig.name == "noisy-1" {
                // The FTQ fingerprint the paper's §5.1 describes: a dominant
                // quiet mode plus daemon-induced outlier modes.
                let mut h = Histogram::new(Binning::Log2 { count: 22 });
                h.record_all(&ftq_r.stolen);
                ftq_histogram_note = format!(
                    "FTQ stolen-time histogram for '{}' (log2 bins, cycles):\n{}",
                    sig.name,
                    h.render(48)
                );
            }
            let pp = pingpong(sig, 0, samples, 102);
            let bw = bandwidth(sig, 1 << 20, (samples / 10).max(8), pp.summary.mean, 103);
            let mz = mraz(sig, 100_000, samples, 104);
            let ftq_emp = ftq_r.empirical();
            let pp_emp = pp.empirical();
            table.row(vec![
                sig.name.clone(),
                pct(ftq_r.overhead_fraction()),
                format!("{:.0}", ftq_emp.quantile(0.99)),
                format!("{:.0}", pp.summary.mean),
                format!("{:.0}", pp_emp.quantile(0.99)),
                f(bw.summary.mean),
                format!("{:.0}", mz.summary.mean),
            ]);
        }
        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![table],
            notes: vec![
                "Expected shape: FTQ overhead and Mraz excess scale with the platform's \
                 noise factor; quiet shows exactly zero noise and deterministic latency."
                    .into(),
                ftq_histogram_note,
            ],
        }
    }
}
