//! E12 — §6/§7 future work: modeling *reduced* noise with negative deltas.
//!
//! "We would also like to investigate modeling reduced noise from that
//! observed in the traced runs to explore how performance could be expected
//! to change if the run was performed on a system with *less* noise."
//!
//! Implemented: trace on a noisy platform, replay with negated noise
//! distributions (floored so no compute interval shrinks below its pure
//! work), compare against a direct quiet-platform simulation.

use mpg_apps::{AllreduceSolver, TokenRing, Workload};
use mpg_core::{PerturbationModel, ReplayConfig, Replayer, SignedDist};
use mpg_micro::measure_signature;
use mpg_noise::{Dist, Empirical, PlatformSignature};
use mpg_sim::Simulation;

use super::{Experiment, ExperimentResult};
use crate::sweep::parallel_replays;
use crate::table::{pct, Table};

/// Negative-delta (noise-removal) replay.
pub struct NoiseReduction;

impl Experiment for NoiseReduction {
    fn id(&self) -> &'static str {
        "e12"
    }

    fn title(&self) -> &'static str {
        "§7 future work — negative deltas: replaying toward a quieter platform"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let p: u32 = if quick { 4 } else { 8 };
        let samples = if quick { 200 } else { 1_000 };
        let noisy = PlatformSignature::noisy("noisy", 2.0);
        let quiet = PlatformSignature::quiet("quiet");

        let workloads: Vec<(&'static str, Box<dyn Workload>)> = vec![
            (
                "token-ring",
                Box::new(TokenRing {
                    traversals: 4,
                    particles_per_rank: 8,
                    work_per_pair: 50,
                }),
            ),
            (
                "allreduce-solver",
                Box::new(AllreduceSolver {
                    iters: if quick { 5 } else { 20 },
                    local_work: 500_000,
                    vector_bytes: 256,
                }),
            ),
        ];

        // Measure the noisy platform's per-interval noise; negate it.
        let sig_noisy = measure_signature(&noisy, 1_000_000, samples, 121);
        let mut model = PerturbationModel::quiet("denoise");
        model.os_local = SignedDist::negative(Dist::Empirical(sig_noisy.ftq_noise.clone()));
        model.os_quantum = Some(sig_noisy.ftq_quantum);
        model.latency = SignedDist::negative(Dist::Constant(
            (sig_noisy.latency.mean() - 2_000.0).max(0.0),
        ));

        let mut table = Table::new(
            format!("noisy trace → quiet prediction via negative deltas (p = {p})"),
            &[
                "workload",
                "noisy traced",
                "predicted quiet",
                "true quiet",
                "rel err",
                "speedup",
            ],
        );
        // Fractional reduction: scale the measured (negated) noise by f and
        // sweep f — "how much quieter must the platform get before the
        // runtime stops improving?". One lane batch per trace: every
        // fraction shares the arrival-bound traversal.
        let fractions = [0.25, 0.5, 0.75, 1.0];
        let frac_model = |frac: f64| {
            let scaled: Vec<f64> = sig_noisy
                .ftq_noise
                .samples()
                .iter()
                .map(|x| x * frac)
                .collect();
            let mut m = PerturbationModel::quiet(&format!("denoise-{frac}"));
            m.os_local = SignedDist::negative(Dist::Empirical(Empirical::from_samples(&scaled)));
            m.os_quantum = Some(sig_noisy.ftq_quantum);
            m.latency = SignedDist::negative(Dist::Constant(
                (sig_noisy.latency.mean() - 2_000.0).max(0.0) * frac,
            ));
            m
        };
        let mut frac_table = Table::new(
            "fractional denoise: predicted makespan as noise shrinks by f".to_string(),
            std::iter::once("workload".to_string())
                .chain(fractions.iter().map(|f| format!("f={f}")))
                .collect::<Vec<_>>()
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .as_slice(),
        );
        let mut frac_lanes = 1;
        for (name, w) in &workloads {
            let noisy_run = Simulation::new(p, noisy.clone())
                .ideal_clocks()
                .seed(120)
                .run(|ctx| w.run(ctx))
                .expect("noisy run");
            let quiet_truth = Simulation::new(p, quiet.clone())
                .ideal_clocks()
                .seed(120)
                .run(|ctx| w.run(ctx))
                .expect("quiet run")
                .makespan() as f64;
            // Arrival-bound semantics: negative message deltas may pull
            // receive completions earlier (see ReplayConfig::arrival_bound).
            let report =
                Replayer::new(ReplayConfig::new(model.clone()).seed(6).arrival_bound(true))
                    .run(&noisy_run.trace)
                    .expect("replay");
            let predicted = *report.projected_finish_local.iter().max().expect("ranks") as f64;
            let traced = noisy_run.makespan() as f64;
            table.row(vec![
                name.to_string(),
                format!("{traced:.0}"),
                format!("{predicted:.0}"),
                format!("{quiet_truth:.0}"),
                pct((predicted - quiet_truth) / quiet_truth),
                crate::table::f(traced / predicted),
            ]);

            let frac_configs: Vec<ReplayConfig> = fractions
                .iter()
                .map(|&frac| {
                    ReplayConfig::new(frac_model(frac))
                        .seed(6)
                        .arrival_bound(true)
                })
                .collect();
            let frac_reports = parallel_replays(&noisy_run.trace, frac_configs);
            let mut cells = vec![name.to_string()];
            for rep in frac_reports {
                let rep = rep.expect("fractional replay succeeds");
                frac_lanes = frac_lanes.max(rep.stats.lanes);
                cells.push(format!(
                    "{:.0}",
                    *rep.projected_finish_local.iter().max().expect("ranks") as f64
                ));
            }
            frac_table.row(cells);
        }
        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![table, frac_table],
            notes: vec![
                "Expected shape: predicted-quiet sits between the noisy traced time and \
                 the true quiet time — the replay only removes noise the trace can *prove* \
                 was there (compute stretch beyond pure work, measured latency excess). \
                 Compute-dominated workloads (the solver) denoise accurately; \
                 messaging-dominated ones (the ring) keep noise that hid inside wait \
                 intervals, which order-only analysis cannot attribute (§4.1) — the \
                 fundamental asymmetry that makes noise *reduction* harder than noise \
                 injection, and why the paper left it as future work."
                    .into(),
                format!(
                    "the fractional sweep rode the lane path: {frac_lanes} fractions \
                     shared each trace's graph traversal; predicted makespan should \
                     fall monotonically as f grows."
                ),
            ],
        }
    }
}
