//! E6 — §6.1: the paper's token-ring perturbation sweep. **The headline
//! result.**
//!
//! "We performed a traced run on 128 processors of a ring-based program,
//! and varied the degree of perturbations from none to a mean of 700 cycles
//! worth of perturbation at 100 cycle increments. The resulting change in
//! running times increases for each processor that matches the 100 cycle
//! increments multiplied by the number of traversals of the ring. For
//! example, if the ring was traversed 10 times with each processor
//! injecting 100 cycles of noise for each message, the runtime of each
//! processor increased by approximately 10·100·128 cycles."
//!
//! One quiet-platform trace, eight replays (0..700 cycles per message in
//! 100-cycle steps). Expected: measured Δruntime ≈ `noise · T · p` on every
//! rank.

use mpg_apps::{TokenRing, Workload};
use mpg_core::{PerturbationModel, ReplayConfig};
use mpg_noise::PlatformSignature;
use mpg_sim::Simulation;

use super::{Experiment, ExperimentResult};
use crate::sweep::parallel_replays;
use crate::table::Table;

/// The §6.1 reproduction.
pub struct TokenRingSweep;

impl Experiment for TokenRingSweep {
    fn id(&self) -> &'static str {
        "e6"
    }

    fn title(&self) -> &'static str {
        "§6.1 — 128-rank token ring: Δruntime ≈ noise × traversals × p"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let p: u32 = if quick { 16 } else { 128 };
        let traversals = 10u32;
        let ring = TokenRing {
            traversals,
            particles_per_rank: 8,
            work_per_pair: 20,
        };
        let out = Simulation::new(p, PlatformSignature::quiet("bproc-like"))
            .ideal_clocks()
            .seed(61)
            .run(|ctx| ring.run(ctx))
            .expect("ring runs");

        let mut table = Table::new(
            format!("token ring, p = {p}, T = {traversals} traversals"),
            &[
                "noise/msg (cycles)",
                "predicted Δ = noise·T·p",
                "measured mean Δ",
                "measured min Δ",
                "measured max Δ",
                "mean/pred",
            ],
        );
        // The eight-point sweep is one lane batch: all configs share the
        // structural knobs (ack_arm off: the §6.1 accounting charges each
        // message hop one perturbation; the synchronous ack would
        // double-charge it), so a single graph traversal evaluates them all.
        let noises: Vec<f64> = (0..8u32).map(|step| f64::from(step * 100)).collect();
        let configs: Vec<ReplayConfig> = noises
            .iter()
            .map(|&noise| {
                let model = PerturbationModel::per_message_constant("ring-noise", noise);
                ReplayConfig::new(model).ack_arm(false)
            })
            .collect();
        let reports = parallel_replays(&out.trace, configs);
        let (lanes, saved) = reports
            .first()
            .and_then(|r| r.as_ref().ok())
            .map_or((1, 0), |r| (r.stats.lanes, r.stats.traversals_saved));
        let mut worst_ratio_err: f64 = 0.0;
        for (&noise, report) in noises.iter().zip(reports) {
            let report = report.expect("replays");
            let predicted = noise * f64::from(traversals) * f64::from(p);
            let mean = report.mean_final_drift();
            let min = *report.final_drift.iter().min().expect("ranks") as f64;
            let max = *report.final_drift.iter().max().expect("ranks") as f64;
            let ratio = if predicted == 0.0 {
                1.0
            } else {
                mean / predicted
            };
            if predicted > 0.0 {
                worst_ratio_err = worst_ratio_err.max((ratio - 1.0).abs());
            }
            table.row(vec![
                format!("{noise:.0}"),
                format!("{predicted:.0}"),
                format!("{mean:.0}"),
                format!("{min:.0}"),
                format!("{max:.0}"),
                crate::table::f(ratio),
            ]);
        }
        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![table],
            notes: vec![
                format!(
                    "worst |mean/predicted − 1| across the sweep: {:.4} — the paper reports \
                     the match as 'approximately' exact; the ring's sendrecv structure makes \
                     the per-hop charge deterministic.",
                    worst_ratio_err
                ),
                format!(
                    "the sweep rode the lane path: {lanes} configs per traversal, \
                     {saved} graph traversals saved."
                ),
            ],
        }
    }
}
