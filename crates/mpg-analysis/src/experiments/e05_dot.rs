//! E5 — Fig. 5 / Appendix A: DOT export of a blocking-primitive trace.
//!
//! "We show a message-passing graph generated from a real trace generated
//! by a simple sequence of blocking communications between a small set of
//! processors… visualized using Graphviz."

use mpg_core::dot::to_dot;
use mpg_core::{PerturbationModel, ReplayConfig, Replayer};
use mpg_noise::PlatformSignature;
use mpg_sim::Simulation;

use super::{Experiment, ExperimentResult};
use crate::table::Table;

/// Graphviz export of a small blocking trace.
pub struct DotExport;

impl Experiment for DotExport {
    fn id(&self) -> &'static str {
        "e5"
    }

    fn title(&self) -> &'static str {
        "Fig. 5 — message-passing graph of a blocking trace, as Graphviz DOT"
    }

    fn run(&self, _quick: bool) -> ExperimentResult {
        // Mirror the appendix: a small set of processors, blocking
        // primitives only.
        let trace = Simulation::new(3, PlatformSignature::quiet("lab"))
            .ideal_clocks()
            .run(|ctx| match ctx.rank() {
                0 => {
                    ctx.compute(5_000);
                    ctx.send(1, 0, 1024);
                    ctx.recv(2, 2);
                }
                1 => {
                    ctx.recv(0, 0);
                    ctx.compute(3_000);
                    ctx.send(2, 1, 512);
                }
                _ => {
                    ctx.recv(1, 1);
                    ctx.send(0, 2, 256);
                }
            })
            .expect("blocking chain runs")
            .trace;

        let report =
            Replayer::new(ReplayConfig::new(PerturbationModel::quiet("fig5")).record_graph(true))
                .run(&trace)
                .expect("replays");
        let graph = report.graph.expect("graph recorded");
        let dot = to_dot(&graph, "fig5-blocking-trace");

        let out_path = std::env::temp_dir().join("mpg-fig5.dot");
        let wrote = std::fs::write(&out_path, &dot).is_ok();

        let mut table = Table::new(
            "graph size",
            &["ranks", "nodes", "edges", "message edges", "local edges"],
        );
        let msg_edges = graph.edges().filter(|e| e.is_message).count();
        table.row(vec![
            graph.num_ranks().to_string(),
            graph.node_count().to_string(),
            graph.edge_count().to_string(),
            msg_edges.to_string(),
            (graph.edge_count() - msg_edges).to_string(),
        ]);

        let mut notes = Vec::new();
        if wrote {
            notes.push(format!("DOT written to {}", out_path.display()));
        }
        notes.push("first lines of the DOT output:".into());
        notes.extend(dot.lines().take(12).map(|l| format!("  {l}")));

        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![table],
            notes,
        }
    }
}
