//! E1 — Fig. 1: alternating phases of computation and messaging.

use mpg_apps::{TokenRing, Workload};
use mpg_core::timeline::{phases, render_phases, PhaseKind};
use mpg_noise::PlatformSignature;
use mpg_sim::Simulation;

use super::{Experiment, ExperimentResult};
use crate::table::Table;

/// Extracts and renders the per-rank phase timeline of a traced run.
pub struct Phases;

impl Experiment for Phases {
    fn id(&self) -> &'static str {
        "e1"
    }

    fn title(&self) -> &'static str {
        "Fig. 1 — alternating compute (c_i) / messaging (m_i) phases"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let p = if quick { 4 } else { 8 };
        let ring = TokenRing {
            traversals: 2,
            particles_per_rank: 16,
            work_per_pair: 20,
        };
        let out = Simulation::new(p, PlatformSignature::quiet("lab"))
            .ideal_clocks()
            .seed(1)
            .run(|ctx| ring.run(ctx))
            .expect("token ring runs");

        let mut table = Table::new(
            "per-rank phase structure",
            &[
                "rank",
                "compute phases",
                "messaging phases",
                "compute %",
                "messaging %",
            ],
        );
        let mut notes = vec![String::from(
            "phase render (C=compute, m=messaging, .=single):",
        )];
        for r in 0..p as usize {
            let ph = phases(out.trace.rank(r));
            let total: u64 = ph.iter().map(|x| x.duration()).sum();
            let sum_kind = |k: PhaseKind| -> (usize, u64) {
                ph.iter()
                    .filter(|x| x.kind == k)
                    .fold((0, 0), |(n, d), x| (n + 1, d + x.duration()))
            };
            let (cn, cd) = sum_kind(PhaseKind::Compute);
            let (mn, md) = sum_kind(PhaseKind::Messaging);
            table.row(vec![
                r.to_string(),
                cn.to_string(),
                mn.to_string(),
                crate::table::pct(cd as f64 / total as f64),
                crate::table::pct(md as f64 / total as f64),
            ]);
            notes.push(format!("rank {r}: {}", render_phases(&ph, 72)));
        }
        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![table],
            notes,
        }
    }
}
