//! E14 (ablation) — §4.1: what trusting clocks buys and costs.
//!
//! Compares the paper's order-only conservative replay against the
//! measured-slack mode (which estimates per-message slack from cross-rank
//! timestamps) on a slack-rich workload, under synchronized and skewed
//! trace clocks. The point being demonstrated: measured slack improves
//! accuracy *only* with a global clock, and silently corrupts without one
//! — the reason §4.1 avoids cross-rank timestamps.

use mpg_core::{AbsorptionMode, PerturbationModel, ReplayConfig, Replayer, SlackEstimate};
use mpg_noise::{Dist, PlatformSignature};
use mpg_sim::{RankCtx, Simulation};
use mpg_trace::ClockModel;

use super::{Experiment, ExperimentResult};
use crate::table::{pct, Table};

/// Absorption-mode ablation.
pub struct AbsorptionAblation;

/// A slack-rich pattern: producers send early, the consumer receives late.
fn program(ctx: &mut RankCtx) {
    let p = ctx.size();
    if ctx.rank() == 0 {
        for _ in 0..10 {
            ctx.compute(2_000_000); // consumer busy: messages wait
            for src in 1..p {
                ctx.recv(src, 0);
            }
        }
    } else {
        for _ in 0..10 {
            ctx.compute(100_000);
            ctx.send(0, 0, 256);
        }
    }
}

impl Experiment for AbsorptionAblation {
    fn id(&self) -> &'static str {
        "e14"
    }

    fn title(&self) -> &'static str {
        "ablation §4.1 — conservative vs measured-slack absorption, with/without clock sync"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let p: u32 = if quick { 3 } else { 8 };
        let make = |skewed: bool| {
            let clocks = if skewed {
                // Producers' clocks run 10M cycles ahead of the consumer's:
                // cross-clock (recv_end − send_start) goes negative and the
                // "measured" slack collapses to zero.
                (0..p)
                    .map(|r| ClockModel {
                        offset: if r == 0 { 0 } else { 10_000_000 },
                        drift_ppm: 0.0,
                    })
                    .collect()
            } else {
                vec![ClockModel::ideal(); p as usize]
            };
            Simulation::new(p, PlatformSignature::quiet("lab"))
                .seed(140)
                .clocks(clocks)
                .run(program)
                .expect("runs")
        };
        let synced = make(false);
        let skewed = make(true);

        // Ground truth: messages idle ~1.9M cycles each, so an injected
        // latency below that should be *fully absorbed* (zero slowdown).
        let mut model = PerturbationModel::quiet("lat+50k");
        model.latency = Dist::Constant(50_000.0).into();
        let est = SlackEstimate {
            latency: 2_000.0,
            cycles_per_byte: 0.5,
            overhead: 300.0,
        };

        let run = |trace: &mpg_trace::MemTrace, mode: AbsorptionMode| {
            Replayer::new(
                ReplayConfig::new(model.clone())
                    .seed(9)
                    .ack_arm(false)
                    .absorption(mode),
            )
            .run(trace)
            .expect("replays")
            .max_final_drift()
        };

        let mut table = Table::new(
            format!("predicted slowdown for +50k-cycle latency that real slack absorbs (p = {p})"),
            &["clocks", "conservative Δ", "measured-slack Δ", "truth Δ"],
        );
        let truth = 0i64; // the slack genuinely absorbs the injection
        for (name, trace) in [("synchronized", &synced.trace), ("skewed", &skewed.trace)] {
            table.row(vec![
                name.to_string(),
                run(trace, AbsorptionMode::Conservative).to_string(),
                run(trace, AbsorptionMode::MeasuredSlack(est)).to_string(),
                truth.to_string(),
            ]);
        }

        let cons_sync = run(&synced.trace, AbsorptionMode::Conservative);
        let slack_sync = run(&synced.trace, AbsorptionMode::MeasuredSlack(est));
        let slack_skew = run(&skewed.trace, AbsorptionMode::MeasuredSlack(est));
        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![table],
            notes: vec![format!(
                "Expected shape: conservative over-predicts identically on both traces \
                 (clock-invariant, {}); measured-slack is near-exact with synchronized \
                 clocks ({}, err {}) but unreliable under skew ({}). This is §4.1's \
                 trade quantified.",
                cons_sync,
                slack_sync,
                pct(slack_sync as f64 - truth as f64),
                slack_skew
            )],
        }
    }
}
