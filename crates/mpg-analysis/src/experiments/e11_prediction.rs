//! E11 — §6: cross-platform runtime prediction.
//!
//! "…if we generate a trace on a system with relatively low noise (such as
//! a bproc cluster…), we can parameterize the simulation with performance
//! parameters measured on a system with higher noise to explore how the
//! program can be expected to perform."
//!
//! Pipeline: trace on quiet → microbenchmark quiet and target → build the
//! injected-delta model → replay → compare against a direct simulation on
//! the target.

use mpg_apps::{AllreduceSolver, Pipeline, Stencil, TokenRing, Workload};
use mpg_core::{ReplayConfig, Replayer};
use mpg_micro::{delta_model, measure_signature};
use mpg_noise::PlatformSignature;
use mpg_sim::Simulation;

use super::{Experiment, ExperimentResult};
use crate::table::{pct, Table};

/// Quiet-trace → noisy-platform prediction.
pub struct CrossPlatform;

impl Experiment for CrossPlatform {
    fn id(&self) -> &'static str {
        "e11"
    }

    fn title(&self) -> &'static str {
        "§6 — predicting a noisier platform from a quiet trace"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let p: u32 = if quick { 4 } else { 16 };
        let samples = if quick { 200 } else { 2_000 };
        let quiet = PlatformSignature::quiet("quiet");

        let workloads: Vec<(&'static str, Box<dyn Workload>)> = vec![
            (
                "token-ring",
                Box::new(TokenRing {
                    traversals: 4,
                    particles_per_rank: 8,
                    work_per_pair: 50,
                }),
            ),
            (
                "stencil",
                Box::new(Stencil {
                    iters: if quick { 5 } else { 20 },
                    cells_per_rank: 2_000,
                    work_per_cell: 40,
                    halo_bytes: 1_024,
                }),
            ),
            (
                "allreduce-solver",
                Box::new(AllreduceSolver {
                    iters: if quick { 5 } else { 20 },
                    local_work: 200_000,
                    vector_bytes: 256,
                }),
            ),
            (
                "pipeline",
                Box::new(Pipeline {
                    waves: if quick { 5 } else { 20 },
                    work_per_stage: 100_000,
                    payload: 512,
                }),
            ),
        ];

        let sig_quiet = measure_signature(&quiet, 1_000_000, samples, 111);
        let mut table = Table::new(
            format!("quiet trace → noisy target prediction (p = {p})"),
            &[
                "workload",
                "target scale",
                "traced",
                "predicted",
                "truth",
                "rel err",
            ],
        );
        for scale in [1.0f64, 4.0] {
            let target = PlatformSignature::noisy(&format!("noisy-{scale}"), scale);
            let sig_target = measure_signature(&target, 1_000_000, samples, 112);
            let injected = delta_model("quiet->target", &sig_quiet, &sig_target);
            for (name, w) in &workloads {
                let traced = Simulation::new(p, quiet.clone())
                    .ideal_clocks()
                    .seed(110)
                    .run(|ctx| w.run(ctx))
                    .expect("quiet run");
                let truth = Simulation::new(p, target.clone())
                    .ideal_clocks()
                    .seed(110)
                    .run(|ctx| w.run(ctx))
                    .expect("target run")
                    .makespan() as f64;
                let report = Replayer::new(ReplayConfig::new(injected.clone()).seed(5))
                    .run(&traced.trace)
                    .expect("replay");
                let predicted = *report.projected_finish_local.iter().max().expect("ranks") as f64;
                table.row(vec![
                    name.to_string(),
                    format!("{scale}"),
                    traced.makespan().to_string(),
                    format!("{predicted:.0}"),
                    format!("{truth:.0}"),
                    pct((predicted - truth) / truth),
                ]);
            }
        }
        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![table],
            notes: vec![
                "Expected shape: predictions track the truth's ordering across workloads \
                 and scales; absolute errors grow with noise scale (the injected model is \
                 conservative about slack absorption, §4.1)."
                    .into(),
            ],
        }
    }
}
