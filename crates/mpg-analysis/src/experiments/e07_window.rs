//! E7 — §4.2/§6: the windowed streaming memory bound.
//!
//! "To avoid the obvious limitations imposed by memory constraints, the
//! analysis tool uses a windowed approach to building the graph… Our
//! windowed graph generation technique allows us to analyze traces of
//! arbitrarily large size on systems with limited memory."
//!
//! Measured: as trace length grows, the streaming replayer's retained-state
//! high-water mark stays flat while the full in-core graph grows linearly.

use mpg_apps::{TokenRing, Workload};
use mpg_core::{PerturbationModel, ReplayConfig, Replayer};
use mpg_noise::PlatformSignature;
use mpg_sim::Simulation;

use super::{Experiment, ExperimentResult};
use crate::table::Table;

/// Streaming window vs full graph.
pub struct WindowedStreaming;

impl Experiment for WindowedStreaming {
    fn id(&self) -> &'static str {
        "e7"
    }

    fn title(&self) -> &'static str {
        "§4.2 — streaming window stays O(1) while the full graph grows O(n)"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let traversal_counts: Vec<u32> = if quick {
            vec![1, 4]
        } else {
            vec![1, 4, 16, 64]
        };
        let p = 8;
        let mut table = Table::new(
            "retained state vs trace length (token ring, p = 8)",
            &[
                "traversals",
                "trace events",
                "stream window high-water",
                "full graph edges",
                "scheduler wakeups",
                "polls avoided",
            ],
        );
        for traversals in traversal_counts {
            let ring = TokenRing {
                traversals,
                particles_per_rank: 4,
                work_per_pair: 10,
            };
            let trace = Simulation::new(p, PlatformSignature::quiet("lab"))
                .ideal_clocks()
                .seed(7)
                .run(|ctx| ring.run(ctx))
                .expect("ring runs")
                .trace;
            let streaming = Replayer::new(ReplayConfig::new(PerturbationModel::quiet("w")))
                .run(&trace)
                .expect("replays");
            let recorded =
                Replayer::new(ReplayConfig::new(PerturbationModel::quiet("w")).record_graph(true))
                    .run(&trace)
                    .expect("replays");
            table.row(vec![
                traversals.to_string(),
                trace.total_events().to_string(),
                streaming.stats.window_high_water.to_string(),
                recorded.graph.expect("recorded").edge_count().to_string(),
                streaming.stats.scheduler_wakeups.to_string(),
                streaming.stats.polls_avoided.to_string(),
            ]);
        }
        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![table],
            notes: vec![
                "Expected shape: the window column is constant (bounded by in-flight \
                 messages + open requests), the edge column grows linearly with trace \
                 length — the arbitrarily-large-trace claim."
                    .into(),
                "Scheduler wakeups stay within events + matches (the O(events) bound); \
                 polls avoided counts the turns a round-robin poller would have wasted \
                 re-visiting blocked ranks."
                    .into(),
            ],
        }
    }
}
