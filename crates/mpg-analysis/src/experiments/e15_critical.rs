//! E15 (extension) — §4.2: critical-path and region analysis.
//!
//! Goes beyond per-rank drift totals to the two artifacts §4.2 gestures at:
//! *which chain of edges* carried the perturbation to the final node
//! (critical path), and *which stretches of the run* absorbed vs propagated
//! it (region classification of the drift timeline).

use mpg_apps::{AllreduceSolver, MasterWorker, Pipeline, TokenRing, Workload};
use mpg_core::{classify_regions, critical_path, region_shares};
use mpg_core::{PerturbationModel, ReplayConfig, Replayer};
use mpg_noise::{Dist, PlatformSignature};
use mpg_sim::Simulation;

use super::{Experiment, ExperimentResult};
use crate::table::{f, Table};

/// Critical-path / region analysis across workloads.
pub struct CriticalRegions;

impl Experiment for CriticalRegions {
    fn id(&self) -> &'static str {
        "e15"
    }

    fn title(&self) -> &'static str {
        "extension §4.2 — critical paths and tolerant/sensitive regions"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let p: u32 = if quick { 4 } else { 8 };
        let workloads: Vec<(&'static str, Box<dyn Workload>)> = vec![
            (
                "token-ring",
                Box::new(TokenRing {
                    traversals: 4,
                    particles_per_rank: 8,
                    work_per_pair: 50,
                }),
            ),
            (
                "allreduce-solver",
                Box::new(AllreduceSolver {
                    iters: 8,
                    local_work: 100_000,
                    vector_bytes: 128,
                }),
            ),
            (
                "master-worker",
                Box::new(MasterWorker {
                    tasks: if quick { 12 } else { 40 },
                    task_work: 100_000,
                    task_bytes: 64,
                    result_bytes: 64,
                }),
            ),
            (
                "pipeline",
                Box::new(Pipeline {
                    waves: 8,
                    work_per_stage: 100_000,
                    payload: 256,
                }),
            ),
        ];

        let mut path_table = Table::new(
            format!("critical path of the worst-drifted rank (p = {p})"),
            &[
                "workload",
                "final drift",
                "path steps",
                "ranks touched",
                "local Δ",
                "message Δ",
                "collective Δ",
            ],
        );
        let mut region_table = Table::new(
            "drift-timeline region shares (worst rank)",
            &["workload", "tolerant", "accumulating", "sensitive"],
        );

        for (name, w) in &workloads {
            let trace = Simulation::new(p, PlatformSignature::quiet("lab"))
                .ideal_clocks()
                .seed(150)
                .run(|ctx| w.run(ctx))
                .expect("trace")
                .trace;
            let mut model = PerturbationModel::quiet("mix");
            model.os_local = Dist::Exponential { mean: 2_000.0 }.into();
            model.latency = Dist::Exponential { mean: 1_000.0 }.into();
            let report = Replayer::new(
                ReplayConfig::new(model)
                    .seed(151)
                    .record_graph(true)
                    .timeline_stride(4),
            )
            .run(&trace)
            .expect("replay");

            let graph = report.graph.as_ref().expect("recorded");
            if let Some(cp) = critical_path(graph) {
                path_table.row(vec![
                    name.to_string(),
                    cp.final_drift.to_string(),
                    cp.steps.len().to_string(),
                    cp.ranks_touched.to_string(),
                    cp.local_contribution.to_string(),
                    cp.message_contribution.to_string(),
                    cp.collective_contribution.to_string(),
                ]);
            }
            let worst = report
                .final_drift
                .iter()
                .enumerate()
                .max_by_key(|&(_, d)| *d)
                .map(|(r, _)| r)
                .expect("ranks");
            let regions = classify_regions(&report.timeline[worst]);
            let (tol, acc, sens) = region_shares(&regions);
            region_table.row(vec![name.to_string(), f(tol), f(acc), f(sens)]);
        }
        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![path_table, region_table],
            notes: vec![
                "Expected shape: the solver's critical path is collective-dominated and \
                 touches every rank; the ring's alternates message hops across ranks; \
                 master-worker's stays close to the master with large tolerant shares."
                    .into(),
            ],
        }
    }
}
