//! Experiment registry.

use crate::table::Table;

mod e01_phases;
mod e02_blocking;
mod e03_nonblocking;
mod e04_collective;
mod e05_dot;
mod e06_token_ring;
mod e07_window;
mod e08_des;
mod e09_lln;
mod e10_micro;
mod e11_prediction;
mod e12_reduction;
mod e13_sensitivity;
mod e14_absorption;
mod e15_critical;
mod e16_parameterization;

/// Everything an experiment produced.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Short id (`e1` … `e13`).
    pub id: &'static str,
    /// Human title naming the paper artifact.
    pub title: &'static str,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Free-form notes (renders, warnings, file paths).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Renders tables and notes as text.
    pub fn render(&self) -> String {
        let mut out = format!("# {} — {}\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(n);
            out.push('\n');
        }
        out
    }
}

/// One reproducible experiment.
pub trait Experiment: Sync {
    /// Short id (`e1` … `e13`).
    fn id(&self) -> &'static str;

    /// Human title naming the paper artifact.
    fn title(&self) -> &'static str;

    /// Runs the experiment. `quick` shrinks problem sizes for CI.
    fn run(&self, quick: bool) -> ExperimentResult;
}

/// All experiments in paper order.
pub fn all_experiments() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(e01_phases::Phases),
        Box::new(e02_blocking::BlockingPair),
        Box::new(e03_nonblocking::NonblockingPair),
        Box::new(e04_collective::CollectiveModel),
        Box::new(e05_dot::DotExport),
        Box::new(e06_token_ring::TokenRingSweep),
        Box::new(e07_window::WindowedStreaming),
        Box::new(e08_des::DesComparison),
        Box::new(e09_lln::LlnConvergence),
        Box::new(e10_micro::MicroSignatures),
        Box::new(e11_prediction::CrossPlatform),
        Box::new(e12_reduction::NoiseReduction),
        Box::new(e13_sensitivity::Sensitivity),
        Box::new(e14_absorption::AbsorptionAblation),
        Box::new(e15_critical::CriticalRegions),
        Box::new(e16_parameterization::Parameterization),
    ]
}

/// Looks an experiment up by id.
pub fn by_id(id: &str) -> Option<Box<dyn Experiment>> {
    all_experiments().into_iter().find(|e| e.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_sixteen_unique_ids() {
        let exps = all_experiments();
        assert_eq!(exps.len(), 16);
        let mut ids: Vec<&str> = exps.iter().map(|e| e.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn lookup_by_id() {
        assert!(by_id("e6").is_some());
        assert!(by_id("e99").is_none());
    }

    /// Every experiment must run in quick mode and produce at least one
    /// non-empty table.
    #[test]
    fn all_experiments_run_quick() {
        for e in all_experiments() {
            let r = e.run(true);
            assert_eq!(r.id, e.id());
            assert!(
                r.tables.iter().any(|t| !t.is_empty()),
                "{} produced no data",
                e.id()
            );
            // Rendering never panics.
            let _ = r.render();
        }
    }
}
