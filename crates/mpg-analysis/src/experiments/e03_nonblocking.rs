//! E3 — Fig. 3 / Eq. 2: the nonblocking pair and its wait operations.
//!
//! Two scenarios:
//!
//! 1. **Semi-synchronous** (the paper's "easy" case): isend/irecv each
//!    followed by a wait. The initiation events' end times must not move
//!    (immediate-return semantics); the waits receive the drift.
//! 2. **Interleaved**: several outstanding requests per rank, completed by
//!    a single waitall — the request-matching ("status flag") machinery of
//!    Fig. 3 under load.

use mpg_core::{PerturbationModel, ReplayConfig, Replayer};
use mpg_noise::{Dist, PlatformSignature};
use mpg_sim::Simulation;
use mpg_trace::EventKind;

use super::{Experiment, ExperimentResult};
use crate::table::Table;

/// Eq. 2 verification.
pub struct NonblockingPair;

impl Experiment for NonblockingPair {
    fn id(&self) -> &'static str {
        "e3"
    }

    fn title(&self) -> &'static str {
        "Fig. 3 / Eq. 2 — nonblocking send/recv with wait matching"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let lambda = 700.0;
        let trace = Simulation::new(2, PlatformSignature::quiet("lab"))
            .ideal_clocks()
            .run(|ctx| {
                if ctx.rank() == 0 {
                    let s = ctx.isend(1, 0, 256);
                    ctx.compute(20_000);
                    ctx.wait(s);
                } else {
                    let r = ctx.irecv(0, 0);
                    ctx.compute(5_000);
                    ctx.wait(r);
                }
            })
            .expect("nonblocking pair runs")
            .trace;

        let mut model = PerturbationModel::quiet("eq2");
        model.latency = Dist::Constant(lambda).into();
        let report = Replayer::new(ReplayConfig::new(model.clone()).record_graph(true))
            .run(&trace)
            .expect("replays");

        let mut table = Table::new(
            "Eq. 2: drift lands on the waits, not the initiations",
            &["rank", "event", "measured drift at end", "expected"],
        );
        let graph = report.graph.as_ref().expect("recorded");
        let drifts = graph.propagate();
        for r in 0..2u32 {
            for ev in trace.rank(r as usize) {
                let d = drifts
                    .get(&mpg_core::NodeId::end(r, ev.seq))
                    .copied()
                    .unwrap_or(0);
                let expected = match (&ev.kind, r) {
                    (EventKind::Isend { .. }, _) | (EventKind::Irecv { .. }, _) => "0",
                    (EventKind::Wait { .. }, 1) => "700", // δλ1
                    (EventKind::Wait { .. }, 0) => "1400", // ack: δλ1 + δλ2
                    _ => "-",
                };
                if expected != "-" {
                    table.row(vec![
                        r.to_string(),
                        ev.kind.name().to_string(),
                        d.to_string(),
                        expected.to_string(),
                    ]);
                }
            }
        }

        // Scenario 2: interleaved outstanding requests.
        let depth = if quick { 4 } else { 16 };
        let trace2 = Simulation::new(2, PlatformSignature::quiet("lab"))
            .ideal_clocks()
            .run(|ctx| {
                if ctx.rank() == 0 {
                    let reqs: Vec<_> = (0..depth).map(|i| ctx.isend(1, i, 64)).collect();
                    ctx.compute(10_000);
                    ctx.waitall(&reqs);
                } else {
                    let reqs: Vec<_> = (0..depth).map(|i| ctx.irecv(0, i)).collect();
                    ctx.compute(2_000);
                    ctx.waitall(&reqs);
                }
            })
            .expect("interleaved pair runs")
            .trace;
        let report2 = Replayer::new(ReplayConfig::new(model))
            .run(&trace2)
            .expect("replays");
        let mut table2 = Table::new(
            "interleaved requests: waitall takes the worst arm",
            &[
                "outstanding reqs",
                "D(recv waitall)",
                "D(send waitall)",
                "warnings",
            ],
        );
        table2.row(vec![
            depth.to_string(),
            report2.final_drift[1].to_string(),
            report2.final_drift[0].to_string(),
            report2.warnings.len().to_string(),
        ]);

        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![table, table2],
            notes: vec![format!(
                "messages matched: pair={}, interleaved={}",
                report.stats.messages_matched, report2.stats.messages_matched
            )],
        }
    }
}
