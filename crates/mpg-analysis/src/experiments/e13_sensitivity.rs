//! E13 — §4.2: absorbed vs propagated perturbations across applications.
//!
//! "We also can explore how varying parameters affects not only overall
//! runtime, but regions within the graph where perturbations are absorbed
//! or fully propagated, corresponding to tolerant or highly sensitive code,
//! respectively."
//!
//! Four communication patterns × a noise-amplitude sweep; the table reports
//! each application's drift, message-arm domination, and the
//! absorbed/propagated split.

use mpg_apps::{AllreduceSolver, MasterWorker, Pipeline, TokenRing, Workload};
use mpg_core::{PerturbationModel, ReplayConfig};
use mpg_noise::{Dist, PlatformSignature};
use mpg_sim::Simulation;

use super::{Experiment, ExperimentResult};
use crate::sweep::parallel_replays;
use crate::table::{f, Table};

/// Application sensitivity sweep.
pub struct Sensitivity;

impl Experiment for Sensitivity {
    fn id(&self) -> &'static str {
        "e13"
    }

    fn title(&self) -> &'static str {
        "§4.2 — absorbed vs propagated perturbations per application"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let p: u32 = if quick { 4 } else { 16 };
        let reps = if quick { 1 } else { 3 };
        let workloads: Vec<(&'static str, Box<dyn Workload>)> = vec![
            (
                "token-ring",
                Box::new(TokenRing {
                    traversals: 4,
                    particles_per_rank: 8,
                    work_per_pair: 50,
                }),
            ),
            (
                "allreduce-solver",
                Box::new(AllreduceSolver {
                    iters: if quick { 4 } else { 10 },
                    local_work: 100_000,
                    vector_bytes: 128,
                }),
            ),
            (
                "master-worker",
                Box::new(MasterWorker {
                    tasks: if quick { 12 } else { 60 },
                    task_work: 100_000,
                    task_bytes: 64,
                    result_bytes: 64,
                }),
            ),
            (
                "pipeline",
                Box::new(Pipeline {
                    waves: if quick { 4 } else { 16 },
                    work_per_stage: 100_000,
                    payload: 512,
                }),
            ),
        ];

        let amplitudes: Vec<f64> = if quick {
            vec![1_000.0, 20_000.0]
        } else {
            vec![1_000.0, 10_000.0, 100_000.0]
        };

        let mut table = Table::new(
            format!("noise sensitivity by communication pattern (p = {p})"),
            &[
                "workload",
                "noise mean",
                "mean drift",
                "drift spread",
                "msg domination",
                "absorbed",
                "propagated",
                "prop. share",
            ],
        );
        let mut lane_width = 1;
        for (name, w) in &workloads {
            let trace = Simulation::new(p, PlatformSignature::quiet("lab"))
                .ideal_clocks()
                .seed(130)
                .run(|ctx| w.run(ctx))
                .expect("trace")
                .trace;
            // The whole amplitude × repetition grid for this trace is one
            // structurally uniform config batch — the lane path replays it
            // in ⌈configs / MAX_LANES⌉ traversals.
            let configs: Vec<ReplayConfig> = amplitudes
                .iter()
                .flat_map(|&amp| {
                    (0..reps).map(move |rep| {
                        let mut model = PerturbationModel::quiet("sens");
                        model.os_local = Dist::Exponential { mean: amp }.into();
                        ReplayConfig::new(model).seed(131 + rep as u64)
                    })
                })
                .collect();
            let mut reports = parallel_replays(&trace, configs).into_iter();
            for &amp in &amplitudes {
                let mut drift_sum = 0.0;
                let mut spread_sum = 0.0;
                let mut dom_sum = 0.0;
                let mut absorbed = 0i64;
                let mut propagated = 0i64;
                for _ in 0..reps {
                    let report = reports
                        .next()
                        .expect("one report per config")
                        .expect("replay");
                    lane_width = lane_width.max(report.stats.lanes);
                    drift_sum += report.mean_final_drift();
                    let min = *report.final_drift.iter().min().expect("ranks") as f64;
                    let max = *report.final_drift.iter().max().expect("ranks") as f64;
                    spread_sum += max - min;
                    dom_sum += report.message_domination_ratio();
                    absorbed += report.stats.absorbed_message_drift;
                    propagated += report.stats.propagated_message_drift;
                }
                let n = reps as f64;
                let prop_share = propagated as f64 / (absorbed + propagated).max(1) as f64;
                table.row(vec![
                    name.to_string(),
                    format!("{amp:.0}"),
                    format!("{:.0}", drift_sum / n),
                    format!("{:.0}", spread_sum / n),
                    f(dom_sum / n),
                    (absorbed / reps as i64).to_string(),
                    (propagated / reps as i64).to_string(),
                    f(prop_share),
                ]);
            }
        }
        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![table],
            notes: vec![
                "Expected shape: the allreduce solver shows zero drift spread (every \
                 collective equalizes all ranks to the slowest — total coupling) and the \
                 highest propagated share; master-worker and the pipeline show large \
                 spreads (perturbations stay where they land or flow one way); mean \
                 drift scales linearly with the injected amplitude for all patterns."
                    .into(),
                format!(
                    "each application's amplitude × repetition grid replayed as lane \
                     batches of up to {lane_width} configs per graph traversal."
                ),
            ],
        }
    }
}
