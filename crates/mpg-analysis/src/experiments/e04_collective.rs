//! E4 — Fig. 4: the abstract AllReduce model vs the explicit butterfly.
//!
//! "This can be explicitly constructed in the graph… Unfortunately, this is
//! not space or time efficient given the fact that we know a-priori that a
//! single collective operation can be considered equivalent to log(p)
//! periods of local computation and pairwise messaging."
//!
//! Both claims are measured: prediction agreement between the two models,
//! and the analysis-cost gap (trace events and replay time).

use std::time::Instant;

use mpg_core::{PerturbationModel, ReplayConfig, Replayer};
use mpg_noise::{Dist, PlatformSignature};
use mpg_sim::{CollectiveMode, Simulation};

use super::{Experiment, ExperimentResult};
use crate::table::Table;

/// Abstract-vs-explicit collective ablation.
pub struct CollectiveModel;

impl Experiment for CollectiveModel {
    fn id(&self) -> &'static str {
        "e4"
    }

    fn title(&self) -> &'static str {
        "Fig. 4 — abstract log(p) AllReduce model vs explicit butterfly"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let sizes: Vec<u32> = if quick {
            vec![4, 8]
        } else {
            vec![4, 16, 64, 256]
        };
        let mut table = Table::new(
            "per-collective drift and analysis cost (δλ = 1000/hop)",
            &[
                "p",
                "rounds",
                "abstract drift",
                "butterfly drift",
                "ratio",
                "abstract events",
                "butterfly events",
                "abstract µs",
                "butterfly µs",
            ],
        );
        for p in sizes {
            let program = |ctx: &mut mpg_sim::RankCtx| {
                ctx.compute(10_000);
                ctx.allreduce(64);
            };
            let run = |mode: CollectiveMode| {
                Simulation::new(p, PlatformSignature::quiet("lab"))
                    .ideal_clocks()
                    .collective_mode(mode)
                    .seed(u64::from(p))
                    .run(program)
                    .expect("collective run")
                    .trace
            };
            let abs_trace = run(CollectiveMode::Abstract);
            let exp_trace = run(CollectiveMode::Expanded);

            let mut model = PerturbationModel::quiet("coll");
            model.latency = Dist::Constant(1000.0).into();
            let replay = |trace: &mpg_trace::MemTrace| {
                let t0 = Instant::now();
                let r = Replayer::new(ReplayConfig::new(model.clone()).ack_arm(false))
                    .run(trace)
                    .expect("replays");
                (r, t0.elapsed().as_micros())
            };
            let (abs_rep, abs_us) = replay(&abs_trace);
            let (exp_rep, exp_us) = replay(&exp_trace);
            let rounds = (f64::from(p)).log2().ceil() as u32;
            let a = abs_rep.max_final_drift() as f64;
            let b = exp_rep.max_final_drift() as f64;
            table.row(vec![
                p.to_string(),
                rounds.to_string(),
                format!("{a:.0}"),
                format!("{b:.0}"),
                crate::table::f(a / b.max(1.0)),
                abs_trace.total_events().to_string(),
                exp_trace.total_events().to_string(),
                abs_us.to_string(),
                exp_us.to_string(),
            ]);
        }
        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![table],
            notes: vec![
                "Expected shape: drift ratio near 1 (the log(p) model approximates the \
                 butterfly), while butterfly event counts and analysis times grow ~p·log(p) \
                 vs the abstract model's p — the paper's space/time-efficiency claim."
                    .into(),
            ],
        }
    }
}
