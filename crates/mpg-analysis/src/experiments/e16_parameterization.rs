//! E16 (ablation) — §5: assumed-distribution (method 1) vs empirical
//! (method 2) parameterization.
//!
//! "Two methods can be used to generate parameters for analysis given the
//! output of microbenchmarks. First, one can estimate parameters for
//! assumed distributions … The second method … is to use the data itself to
//! build an empirical distribution."
//!
//! Both methods parameterize the same cross-platform prediction; the table
//! reports which assumed family best fits the target platform's FTQ noise
//! and how each method's runtime prediction compares to ground truth.

use mpg_apps::{AllreduceSolver, TokenRing, Workload};
use mpg_core::{PerturbationModel, ReplayConfig, Replayer};
use mpg_micro::{delta_model, measure_signature};
use mpg_noise::{best_fit, PlatformSignature};
use mpg_sim::Simulation;

use super::{Experiment, ExperimentResult};
use crate::table::{f, pct, Table};

/// Method-1 vs method-2 parameterization.
pub struct Parameterization;

impl Experiment for Parameterization {
    fn id(&self) -> &'static str {
        "e16"
    }

    fn title(&self) -> &'static str {
        "ablation §5 — assumed-distribution vs empirical parameterization"
    }

    fn run(&self, quick: bool) -> ExperimentResult {
        let p: u32 = if quick { 4 } else { 16 };
        let samples = if quick { 300 } else { 2_000 };
        let quiet = PlatformSignature::quiet("quiet");
        let target = PlatformSignature::noisy("target", 1.0);

        let sig_quiet = measure_signature(&quiet, 1_000_000, samples, 161);
        let sig_target = measure_signature(&target, 1_000_000, samples, 162);

        // Method 2: the empirical delta model (the pipeline default).
        let empirical_model = delta_model("empirical", &sig_quiet, &sig_target);

        // Method 1: fit assumed families to the measured samples and build
        // the same-shape model from the fitted distributions.
        let noise_samples: Vec<f64> = sig_target.ftq_noise.samples().to_vec();
        let noise_fits = best_fit(&noise_samples);
        let latency_deltas: Vec<f64> = sig_target
            .latency
            .samples()
            .iter()
            .map(|&x| (x - sig_quiet.latency.mean()).max(0.0))
            .collect();
        let latency_fits = best_fit(&latency_deltas);
        let mut fitted_model = PerturbationModel::quiet("fitted");
        if let Some((_, d, _)) = noise_fits.first() {
            fitted_model.os_local = d.clone().into();
            fitted_model.os_quantum = Some(sig_target.ftq_quantum);
        }
        if let Some((_, d, _)) = latency_fits.first() {
            fitted_model.latency = d.clone().into();
        }
        fitted_model.per_byte = empirical_model.per_byte;

        let mut fit_table = Table::new(
            "best-fit families for the target's measured perturbations (method 1)",
            &["measurement", "best family", "KS", "runner-up", "KS "],
        );
        for (what, fits) in [("FTQ noise", &noise_fits), ("latency delta", &latency_fits)] {
            if fits.len() >= 2 {
                fit_table.row(vec![
                    what.to_string(),
                    fits[0].0.to_string(),
                    f(fits[0].2),
                    fits[1].0.to_string(),
                    f(fits[1].2),
                ]);
            }
        }

        let workloads: Vec<(&'static str, Box<dyn Workload>)> = vec![
            (
                "token-ring",
                Box::new(TokenRing {
                    traversals: 4,
                    particles_per_rank: 8,
                    work_per_pair: 50,
                }),
            ),
            (
                "allreduce-solver",
                Box::new(AllreduceSolver {
                    iters: if quick { 5 } else { 20 },
                    local_work: 200_000,
                    vector_bytes: 256,
                }),
            ),
        ];
        let mut pred_table = Table::new(
            format!("prediction error by parameterization method (p = {p})"),
            &[
                "workload",
                "truth",
                "method 1 (fitted) err",
                "method 2 (empirical) err",
            ],
        );
        for (name, w) in &workloads {
            let trace = Simulation::new(p, quiet.clone())
                .ideal_clocks()
                .seed(163)
                .run(|ctx| w.run(ctx))
                .expect("quiet trace")
                .trace;
            let truth = Simulation::new(p, target.clone())
                .ideal_clocks()
                .seed(163)
                .run(|ctx| w.run(ctx))
                .expect("target run")
                .makespan() as f64;
            let predict = |model: &PerturbationModel| {
                let report = Replayer::new(ReplayConfig::new(model.clone()).seed(9))
                    .run(&trace)
                    .expect("replay");
                *report.projected_finish_local.iter().max().expect("ranks") as f64
            };
            pred_table.row(vec![
                name.to_string(),
                format!("{truth:.0}"),
                pct((predict(&fitted_model) - truth) / truth),
                pct((predict(&empirical_model) - truth) / truth),
            ]);
        }
        ExperimentResult {
            id: self.id(),
            title: self.title(),
            tables: vec![fit_table, pred_table],
            notes: vec![
                "Expected shape: both methods land in the same error band when the \
                 assumed family fits well (low KS); the empirical method needs no family \
                 choice and cannot be mis-specified — §5's argument for carrying the \
                 measured distribution itself."
                    .into(),
            ],
        }
    }
}
