//! Replay-throughput measurement and the tracked `BENCH_replay.json`
//! perf snapshot.
//!
//! The paper's §4.2 pitch is that graph replay is *cheap* — a streaming
//! pass over the trace. This module pins three replay-heavy workloads,
//! measures events/sec through the full `Replayer` pipeline, and
//! round-trips the results through a small JSON snapshot so `lint.sh` (and
//! any CI) can fail a change that regresses replay throughput by more than
//! a threshold. The snapshot also records the pre-scheduler polling
//! engine's numbers, preserving the speedup evidence for the event-driven
//! rewrite.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::sweep::{sweep_replays, SweepMode};
use mpg_apps::{Pipeline, Stencil, TokenRing, Workload};
use mpg_core::{
    cached_recorded_graph, plan_lanes, ArtifactKind, CacheStore, CachedReport, PerturbationModel,
    ReplayConfig, Replayer,
};
use mpg_noise::{Dist, PlatformSignature};
use mpg_sim::Simulation;
use mpg_trace::{FileTraceSet, MemTrace, OocTraceSet};

/// Events/sec of the pre-scheduler round-robin polling engine on the same
/// pinned workloads (best of 5, recorded immediately before the
/// event-driven scheduler landed). Kept so every snapshot documents the
/// speedup baseline.
pub const POLLING_BASELINE: [(&str, f64); 3] = [
    ("token-ring-16", 5_345_832.0),
    ("stencil-8", 4_048_870.0),
    ("pipeline-32", 6_869_414.0),
];

/// Findings about the pinned numbers that a reader of `BENCH_replay.json`
/// would otherwise re-investigate; carried verbatim into every snapshot.
pub const BENCH_NOTES: [&str; 1] = [
    "pipeline-32's ~1.3x speedup vs polling is structural, not a regression: \
     the wavefront retires events in rank order, exactly the order the old \
     round-robin poller scanned, so the polling baseline wasted little there \
     (6.9M events/sec, the fastest of the three baselines) while the ready \
     queue pays one wakeup per ~3.9 events on the long dependency chain \
     versus ~12.8 on stencil-8",
];

/// The perturbation model applied in every throughput measurement (the
/// bench suite's standard mixed model).
pub fn perf_model() -> PerturbationModel {
    let mut m = PerturbationModel::quiet("perf");
    m.os_local = Dist::Exponential { mean: 500.0 }.into();
    m.latency = Dist::Exponential { mean: 700.0 }.into();
    m.per_byte = 0.05;
    m
}

/// Iterations/sec of a fixed integer spin loop, measured alongside every
/// snapshot and every check. The ratio between the recorded and current
/// calibration estimates how much slower the host is right now (background
/// load, different machine), so the regression gate can scale its floor and
/// track the engine rather than the host. Deliberately does not touch the
/// replay engine — that would cancel the very regressions the gate exists
/// to catch.
pub fn calibrate() -> f64 {
    const ITERS: u64 = 20_000_000;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut x = 0x9e37_79b9_7f4a_7c15_u64;
        let t = Instant::now();
        for _ in 0..ITERS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        std::hint::black_box(x);
        best = best.min(t.elapsed().as_secs_f64());
    }
    ITERS as f64 / best
}

fn trace_of(w: &dyn Workload, p: u32) -> MemTrace {
    Simulation::new(p, PlatformSignature::quiet("perf"))
        .ideal_clocks()
        .seed(1)
        .run(|ctx| w.run(ctx))
        .expect("pinned perf workload runs")
        .trace
}

/// The pinned seed workloads: a blocked-heavy many-rank token ring
/// (sendrecv chains — the polling engine's worst case for wasted polls), a
/// waitall-heavy stencil, and a long-dependency-chain pipeline.
pub fn pinned_traces() -> Vec<(&'static str, u32, MemTrace)> {
    let ring = TokenRing {
        traversals: 60,
        particles_per_rank: 2,
        work_per_pair: 1,
    };
    let stencil = Stencil {
        iters: 300,
        cells_per_rank: 10,
        work_per_cell: 5,
        halo_bytes: 256,
    };
    let pipeline = Pipeline {
        waves: 100,
        work_per_stage: 100,
        payload: 64,
    };
    vec![
        ("token-ring-16", 16, trace_of(&ring, 16)),
        ("stencil-8", 8, trace_of(&stencil, 8)),
        ("pipeline-32", 32, trace_of(&pipeline, 32)),
    ]
}

/// One pinned workload's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPerf {
    /// Pinned workload name.
    pub name: String,
    /// Rank count.
    pub ranks: u32,
    /// Events replayed per run.
    pub events: u64,
    /// Best-of-reps throughput.
    pub events_per_sec: f64,
    /// Ready-queue pops taken by the scheduler.
    pub scheduler_wakeups: u64,
    /// Round-robin polls the wakeup queue avoided.
    pub polls_avoided: u64,
}

/// The lane-path sweep measurement: K configs over one pinned trace,
/// replayed through the two-level scheduler and through the threads-only
/// scalar baseline it is gated against.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPerf {
    /// Pinned workload the sweep replays.
    pub workload: String,
    /// Config count (K).
    pub configs: u32,
    /// Lane batches the plan produced.
    pub lane_batches: u32,
    /// Graph traversals the lane plan avoided (`configs − batches`).
    pub traversals_saved: u64,
    /// Best-of-reps lane-path throughput.
    pub configs_per_sec: f64,
    /// Best-of-reps scalar threads-only throughput.
    pub threads_only_configs_per_sec: f64,
}

impl SweepPerf {
    /// Lane-path throughput over the threads-only baseline.
    pub fn speedup_vs_threads(&self) -> f64 {
        if self.threads_only_configs_per_sec > 0.0 {
            self.configs_per_sec / self.threads_only_configs_per_sec
        } else {
            0.0
        }
    }
}

/// Parameters of an out-of-core measurement: a synthesized stencil trace
/// replayed through the mmap-backed frame cursors, once single-threaded
/// and once partition-parallel.
#[derive(Debug, Clone, Copy)]
pub struct OocSpec {
    /// Snapshot name prefix.
    pub name: &'static str,
    /// Workload kind synthesized into the cached trace. Part of the
    /// trace-cache directory name: two specs differing only in workload
    /// must not silently reuse each other's files.
    pub workload: &'static str,
    /// Rank count.
    pub ranks: u32,
    /// Stencil iteration multiplier (`iters = 20 × scale`); event volume is
    /// roughly `ranks × 140 × scale`.
    pub scale: u64,
    /// Simulation RNG seed. Also part of the trace-cache directory name —
    /// a reused dir generated under a different seed would silently bench
    /// the wrong trace.
    pub seed: u64,
    /// Shard count of the partition-parallel run.
    pub shards: usize,
}

/// The pinned out-of-core workload: a 1024-rank stencil of ~10⁷ events
/// (~93 MiB of MPG2 frames on disk), replayed at 1 and
/// [`shards`](OocSpec::shards) shards.
pub fn pinned_ooc() -> OocSpec {
    OocSpec {
        name: "ooc-stencil-1024",
        workload: "stencil",
        ranks: 1024,
        scale: 70,
        seed: 1,
        shards: 4,
    }
}

/// One out-of-core measurement (the `"ooc"` section of
/// `BENCH_replay.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct OocPerf {
    /// Workload name ([`OocSpec::name`]).
    pub name: String,
    /// Rank count.
    pub ranks: u32,
    /// Events replayed per run.
    pub events: u64,
    /// On-disk trace size (MiB) — what a non-out-of-core replay would have
    /// to buffer, before decode expansion.
    pub trace_mib: f64,
    /// Shard count of the parallel run.
    pub shards: usize,
    /// CPUs available to this process when measured; wall-clock shard
    /// speedup is only meaningful (and only gated) when this is > 1.
    pub host_cpus: u32,
    /// Best-of-reps single-shard (windowed, single-threaded) throughput.
    pub events_per_sec_1shard: f64,
    /// Best-of-reps sharded throughput.
    pub events_per_sec_sharded: f64,
    /// Resident set when the out-of-core section began (MiB).
    pub baseline_rss_mib: f64,
    /// Peak resident growth across all out-of-core replays (MiB). The flat
    /// peak-RSS claim: this must stay far below both `trace_mib` and the
    /// decoded trace size, however large the trace is.
    pub peak_rss_growth_mib: f64,
}

impl OocPerf {
    /// Sharded over single-shard wall-clock speedup.
    pub fn shard_speedup(&self) -> f64 {
        if self.events_per_sec_1shard > 0.0 {
            self.events_per_sec_sharded / self.events_per_sec_1shard
        } else {
            0.0
        }
    }
}

/// Current resident set of this process in MiB (`/proc/self/statm`);
/// `None` where procfs is unavailable (the RSS gate then passes trivially).
fn resident_mib() -> Option<f64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: f64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096.0 / (1024.0 * 1024.0))
}

/// Runs `f` while a sampler thread tracks the process's resident set,
/// returning `(result, baseline_mib, peak_mib)`. Sampling (every ~2 ms)
/// rather than `VmHWM` is deliberate: the high-water mark remembers the
/// trace *generation* phase, which would mask any growth the replay adds.
fn with_peak_rss<R>(f: impl FnOnce() -> R) -> (R, f64, f64) {
    let baseline = resident_mib().unwrap_or(0.0);
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut peak: f64 = 0.0;
            while !stop.load(Ordering::Relaxed) {
                if let Some(r) = resident_mib() {
                    peak = peak.max(r);
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            peak
        })
    };
    let result = f();
    stop.store(true, Ordering::Relaxed);
    let peak = sampler.join().unwrap_or(0.0).max(baseline);
    (result, baseline, peak)
}

/// The cached on-disk home of a synthesized bench trace. Generation costs
/// minutes at 1024 ranks (the simulator runs one OS thread per rank), so
/// repeated bench/gate runs reuse the files; the version tag guards
/// against stale caches across format or workload changes.
fn ooc_trace_dir(spec: &OocSpec) -> PathBuf {
    // Every generation input is part of the name: two specs differing in
    // workload, size, or seed must land in different directories, or the
    // reuse check below would hand one spec the other's trace whenever the
    // rank counts happen to match.
    std::env::temp_dir().join(format!(
        "mpg-bench-ooc-v2-{}-{}x{}-s{}",
        spec.workload, spec.ranks, spec.scale, spec.seed
    ))
}

/// Generates (or reuses) the pinned out-of-core trace, returning its
/// directory. Reuse requires a scannable trace with the right rank count;
/// anything else is regenerated from scratch.
fn ensure_ooc_trace(spec: &OocSpec) -> Result<PathBuf, String> {
    let dir = ooc_trace_dir(spec);
    if let Ok(set) = OocTraceSet::open(&dir) {
        if set.num_ranks() == spec.ranks as usize && set.total_records() > 0 {
            return Ok(dir);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    if spec.workload != "stencil" {
        return Err(format!(
            "unknown ooc bench workload '{}' (only 'stencil' is synthesizable)",
            spec.workload
        ));
    }
    let stencil = Stencil {
        iters: (20 * spec.scale).min(u64::from(u32::MAX)) as u32,
        cells_per_rank: 2_000,
        work_per_cell: 40,
        halo_bytes: 1_024,
    };
    let trace = Simulation::new(spec.ranks, PlatformSignature::quiet("perf-ooc"))
        .seed(spec.seed)
        .run(|ctx| stencil.run(ctx))
        .map_err(|e| format!("ooc bench simulation failed: {e}"))?
        .trace;
    trace
        .save(&dir)
        .map_err(|e| format!("writing ooc bench trace: {e}"))?;
    Ok(dir)
}

/// Measures the out-of-core replay path: `reps` timed replays at 1 shard
/// and at [`OocSpec::shards`] shards over the mmap-backed cursors, with the
/// resident-set sampler running across the whole section. The trace is
/// generated once and cached in the system temp dir.
pub fn measure_ooc(spec: &OocSpec, reps: u32) -> Result<OocPerf, String> {
    let reps = reps.max(1);
    let dir = ensure_ooc_trace(spec)?;
    let set = OocTraceSet::open(&dir).map_err(|e| format!("opening ooc bench trace: {e}"))?;
    let trace_mib = set.total_bytes() as f64 / (1024.0 * 1024.0);
    let replayer = Replayer::new(ReplayConfig::new(perf_model()).seed(42));
    let timed = |shards: usize| -> Result<(u64, f64), String> {
        let mut best = f64::INFINITY;
        let mut events = 0;
        for _ in 0..reps {
            let streams: Vec<_> = (0..set.num_ranks()).map(|r| set.cursor(r)).collect();
            let t = Instant::now();
            let rep = replayer
                .run_streams_parallel(streams, shards)
                .map_err(|e| format!("ooc bench replay failed: {e}"))?;
            best = best.min(t.elapsed().as_secs_f64());
            events = rep.stats.events;
        }
        Ok((events, events as f64 / best))
    };
    let (runs, baseline, peak) =
        with_peak_rss(|| Ok::<_, String>((timed(1)?, timed(spec.shards)?)));
    let ((events, eps_1shard), (_, eps_sharded)) = runs?;
    Ok(OocPerf {
        name: spec.name.to_string(),
        ranks: spec.ranks,
        events,
        trace_mib,
        shards: spec.shards,
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get() as u32),
        events_per_sec_1shard: eps_1shard,
        events_per_sec_sharded: eps_sharded,
        baseline_rss_mib: baseline,
        peak_rss_growth_mib: (peak - baseline).max(0.0),
    })
}

/// Cold-vs-warm artifact-cache measurement (the `"cache"` section of
/// `BENCH_replay.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct CachePerf {
    /// Workload name ([`OocSpec::name`]).
    pub name: String,
    /// Rank count.
    pub ranks: u32,
    /// Events in the analyzed trace.
    pub events: u64,
    /// Wall time of the cold analyze (fingerprint → load → recording
    /// replay → wait-state analysis → render + publish).
    pub cold_secs: f64,
    /// Wall time of the warm analyze (fingerprint → memoized-report hit).
    pub warm_secs: f64,
}

impl CachePerf {
    /// Cold over warm wall-clock speedup.
    pub fn warm_speedup(&self) -> f64 {
        if self.warm_secs > 0.0 {
            self.cold_secs / self.warm_secs
        } else {
            0.0
        }
    }
}

/// Measures the artifact cache's warm path on the pinned out-of-core
/// trace: one cold analyze through the caching pipeline (content
/// fingerprint → full load → recording replay → wait-state analysis →
/// published MPGA arena + rendered report), then one warm analyze that
/// must hit the memoized report. One rep each — the cold leg alone is a
/// full 10⁷-event analyze, and warm-vs-cold is a ratio of wildly different
/// magnitudes, not a best-of-N contest.
///
/// Runs against a dedicated cache root (emptied first, removed after), so
/// "cold" is honest and nothing leaks into a user's cache. The warm output
/// is asserted byte-identical to the cold output before any number is
/// reported: a speedup that changes the answer is a bug, not a result.
pub fn measure_cache(spec: &OocSpec) -> Result<CachePerf, String> {
    let dir = ensure_ooc_trace(spec)?;
    let events = OocTraceSet::open(&dir)
        .map_err(|e| format!("opening cache bench trace: {e}"))?
        .total_records();
    let root = std::env::temp_dir().join(format!("mpg-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = CacheStore::open(&root).map_err(|e| format!("opening bench cache: {e}"))?;
    let analyze = |store: &CacheStore| -> Result<(String, bool), String> {
        let key = mpg_trace::trace_fingerprint(&dir)
            .map_err(|e| format!("fingerprinting cache bench trace: {e}"))?
            .key();
        let cfg = ReplayConfig::new(PerturbationModel::quiet("bench-cache"))
            .seed(0)
            .record_graph(true);
        let report_key = CacheStore::artifact_key(
            &key,
            ArtifactKind::Report,
            &format!("bench=cache-analyze;{}", cfg.fingerprint()),
        );
        if let Some(rep) = store.get_report(&report_key) {
            return Ok((rep.stdout, true));
        }
        let trace = FileTraceSet::open(&dir)
            .and_then(|s| s.load())
            .map_err(|e| format!("loading cache bench trace: {e}"))?;
        let (graph, _) = cached_recorded_graph(store, &key, &trace, cfg)
            .map_err(|e| format!("cache bench replay failed: {e}"))?;
        let report = mpg_lint::analyze_graph(&trace, &graph);
        let out = report.to_json();
        let _ = store.put_report(
            &report_key,
            &CachedReport {
                exit_code: 0,
                stdout: out.clone(),
            },
        );
        Ok((out, false))
    };
    let t = Instant::now();
    let cold = analyze(&store);
    let cold_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let warm = analyze(&store);
    let warm_secs = t.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&root);
    let (cold_out, cold_hit) = cold?;
    let (warm_out, warm_hit) = warm?;
    if cold_hit || !warm_hit {
        return Err("cache bench: cold run hit or warm run missed the dedicated cache".into());
    }
    if cold_out != warm_out {
        return Err("cache bench: warm output diverged from cold output".into());
    }
    Ok(CachePerf {
        name: spec.name.to_string(),
        ranks: spec.ranks,
        events,
        cold_secs,
        warm_secs,
    })
}

/// A full measurement snapshot (what `BENCH_replay.json` holds).
#[derive(Debug, Clone, PartialEq)]
pub struct PerfSnapshot {
    /// Engine description recorded in the snapshot.
    pub engine: String,
    /// Timed repetitions per workload (best is kept).
    pub reps: u32,
    /// Host-speed calibration ([`calibrate`]) taken with the measurement.
    pub calibration: f64,
    /// Recorded findings about the pinned numbers ([`BENCH_NOTES`]).
    pub notes: Vec<String>,
    /// The multi-config sweep measurement (lane path vs threads-only).
    pub sweep: Option<SweepPerf>,
    /// The out-of-core replay measurement (mmap-backed windowed +
    /// partition-parallel path over the pinned 10⁷-event trace).
    pub ooc: Option<OocPerf>,
    /// The artifact-cache measurement (cold vs warm analyze over the same
    /// pinned trace).
    pub cache: Option<CachePerf>,
    /// Per-workload results.
    pub workloads: Vec<WorkloadPerf>,
}

/// Config count of the pinned sweep measurement: two full lane batches'
/// worth, so the plan exercises the batch split and the acceptance target
/// (≥ 2× vs threads-only at K ≥ 8) is measured past the single-batch case.
pub const SWEEP_CONFIGS: u32 = 16;

/// The pinned sweep's config set: the §6.1 headline shape — K constant
/// per-message noise levels in 100-cycle increments (E6 runs eight of
/// these) — each config its own lane. Per-lane work here is pure max-plus
/// drift arithmetic, the regime the lane bank exists to amortize;
/// sampling-heavy sweeps are covered by the `sweep_throughput` criterion
/// bench.
pub fn sweep_configs(k: u32) -> Vec<ReplayConfig> {
    (0..k)
        .map(|i| {
            let m = PerturbationModel::per_message_constant(
                &format!("sweep-{i}"),
                f64::from(i) * 100.0,
            );
            ReplayConfig::new(m).seed(100 + u64::from(i)).ack_arm(false)
        })
        .collect()
}

/// Measures every pinned workload: one warmup replay, then `reps` timed
/// replays, keeping the best (noise on shared machines only ever slows a
/// run down). Also measures the pinned K-config sweep through both sweep
/// modes on the first pinned trace.
pub fn measure(reps: u32) -> PerfSnapshot {
    let reps = reps.max(1);
    let traces = pinned_traces();
    let mut workloads = Vec::new();
    for (name, ranks, trace) in &traces {
        let replayer = Replayer::new(ReplayConfig::new(perf_model()).seed(42));
        let warm = replayer.run(trace).expect("pinned workload replays");
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            let rep = replayer.run(trace).expect("pinned workload replays");
            best = best.min(t.elapsed().as_secs_f64());
            debug_assert_eq!(rep.stats.events, warm.stats.events);
        }
        workloads.push(WorkloadPerf {
            name: (*name).to_string(),
            ranks: *ranks,
            events: warm.stats.events,
            events_per_sec: warm.stats.events as f64 / best,
            scheduler_wakeups: warm.stats.scheduler_wakeups,
            polls_avoided: warm.stats.polls_avoided,
        });
    }

    let (sweep_name, _, sweep_trace) = &traces[0];
    let configs = sweep_configs(SWEEP_CONFIGS);
    let plan = plan_lanes(&configs);
    let mut best_by_mode = [f64::INFINITY; 2];
    for (slot, mode) in [SweepMode::Lanes, SweepMode::ThreadsOnly]
        .into_iter()
        .enumerate()
    {
        std::hint::black_box(sweep_replays(sweep_trace, &configs, mode));
        for _ in 0..reps {
            let t = Instant::now();
            std::hint::black_box(sweep_replays(sweep_trace, &configs, mode));
            best_by_mode[slot] = best_by_mode[slot].min(t.elapsed().as_secs_f64());
        }
    }
    let sweep = SweepPerf {
        workload: (*sweep_name).to_string(),
        configs: SWEEP_CONFIGS,
        lane_batches: plan.len() as u32,
        traversals_saved: (configs.len() - plan.len()) as u64,
        configs_per_sec: f64::from(SWEEP_CONFIGS) / best_by_mode[0],
        threads_only_configs_per_sec: f64::from(SWEEP_CONFIGS) / best_by_mode[1],
    };

    PerfSnapshot {
        engine: "event-driven ready-queue".to_string(),
        reps,
        calibration: calibrate(),
        notes: BENCH_NOTES.iter().map(|n| (*n).to_string()).collect(),
        sweep: Some(sweep),
        // The out-of-core and cache sections cost minutes (10⁷-event
        // trace); callers that want them attach them separately via
        // [`measure_ooc`] and [`measure_cache`].
        ooc: None,
        cache: None,
        workloads,
    }
}

impl PerfSnapshot {
    /// Renders the snapshot as the `BENCH_replay.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        crate::benchjson::write_header(&mut out, "replay_throughput", self.reps, self.calibration);
        out.push_str(&format!("  \"engine\": \"{}\",\n", self.engine));
        crate::benchjson::write_notes(&mut out, &self.notes);
        if let Some(s) = &self.sweep {
            out.push_str("  \"sweep\": {\n");
            out.push_str(&format!("    \"workload\": \"{}\",\n", s.workload));
            out.push_str(&format!("    \"configs\": {},\n", s.configs));
            out.push_str(&format!("    \"lane_batches\": {},\n", s.lane_batches));
            out.push_str(&format!(
                "    \"traversals_saved\": {},\n",
                s.traversals_saved
            ));
            out.push_str(&format!(
                "    \"configs_per_sec\": {:.1},\n",
                s.configs_per_sec
            ));
            out.push_str(&format!(
                "    \"threads_only_configs_per_sec\": {:.1},\n",
                s.threads_only_configs_per_sec
            ));
            out.push_str(&format!(
                "    \"speedup_vs_threads\": {:.2}\n",
                s.speedup_vs_threads()
            ));
            out.push_str("  },\n");
        }
        if let Some(o) = &self.ooc {
            out.push_str("  \"ooc\": {\n");
            out.push_str(&format!("    \"name\": \"{}\",\n", o.name));
            out.push_str(&format!("    \"ranks\": {},\n", o.ranks));
            out.push_str(&format!("    \"events\": {},\n", o.events));
            out.push_str(&format!("    \"trace_mib\": {:.1},\n", o.trace_mib));
            out.push_str(&format!("    \"shards\": {},\n", o.shards));
            out.push_str(&format!("    \"host_cpus\": {},\n", o.host_cpus));
            out.push_str(&format!(
                "    \"events_per_sec_1shard\": {:.0},\n",
                o.events_per_sec_1shard
            ));
            out.push_str(&format!(
                "    \"events_per_sec_sharded\": {:.0},\n",
                o.events_per_sec_sharded
            ));
            out.push_str(&format!(
                "    \"shard_speedup\": {:.2},\n",
                o.shard_speedup()
            ));
            out.push_str(&format!(
                "    \"baseline_rss_mib\": {:.1},\n",
                o.baseline_rss_mib
            ));
            out.push_str(&format!(
                "    \"peak_rss_growth_mib\": {:.1}\n",
                o.peak_rss_growth_mib
            ));
            out.push_str("  },\n");
        }
        if let Some(c) = &self.cache {
            out.push_str("  \"cache\": {\n");
            out.push_str(&format!("    \"name\": \"{}\",\n", c.name));
            out.push_str(&format!("    \"ranks\": {},\n", c.ranks));
            out.push_str(&format!("    \"events\": {},\n", c.events));
            out.push_str(&format!("    \"cold_secs\": {:.3},\n", c.cold_secs));
            out.push_str(&format!("    \"warm_secs\": {:.4},\n", c.warm_secs));
            out.push_str(&format!("    \"warm_speedup\": {:.1}\n", c.warm_speedup()));
            out.push_str("  },\n");
        }
        crate::benchjson::write_workloads(&mut out, &self.workloads, true, &POLLING_BASELINE);
        out
    }

    /// Extracts the recorded host calibration from a snapshot document, if
    /// present (older documents lack the key). Thin shim over
    /// [`benchjson::calibration`](crate::benchjson::calibration).
    pub fn parse_calibration(json: &str) -> Option<f64> {
        crate::benchjson::calibration(json)
    }

    /// Extracts the recorded lane-path sweep throughput (configs/sec), if
    /// the snapshot carries a sweep measurement.
    pub fn parse_sweep_configs_per_sec(json: &str) -> Option<f64> {
        crate::benchjson::number(json, "configs_per_sec")
    }

    /// Extracts the first numeric value stored under `key` in a snapshot
    /// document. Thin shim over
    /// [`benchjson::number`](crate::benchjson::number).
    pub fn parse_number(json: &str, key: &str) -> Option<f64> {
        crate::benchjson::number(json, key)
    }

    /// Extracts the recorded out-of-core throughputs `(1-shard, sharded)`,
    /// if the snapshot carries an `"ooc"` section. The key names are
    /// unique to that section, so no scoping is needed.
    pub fn parse_ooc_events_per_sec(json: &str) -> Option<(f64, f64)> {
        Some((
            Self::parse_number(json, "events_per_sec_1shard")?,
            Self::parse_number(json, "events_per_sec_sharded")?,
        ))
    }

    /// Extracts `(name, events_per_sec)` pairs from a snapshot document.
    /// Thin shim over
    /// [`benchjson::events_per_sec`](crate::benchjson::events_per_sec).
    pub fn parse_events_per_sec(json: &str) -> Vec<(String, f64)> {
        crate::benchjson::events_per_sec(json)
    }
}

/// Compares a fresh measurement against a recorded snapshot document.
/// Returns one message per workload whose throughput fell more than
/// `threshold_pct` percent below the recorded value; an empty vector means
/// the gate passes. Workloads present on only one side are ignored (the
/// pinned set may grow).
///
/// When both sides carry a host calibration, the recorded floor is scaled
/// down by the host-speed ratio — a box that spins integers 30% slower
/// right now (background load, weaker machine) is forgiven 30% of its
/// replay throughput. The scale only ever *loosens* the gate (capped at
/// 1.0): a faster host never tightens it, since calibration and replay
/// don't speed up in lockstep.
pub fn regressions(recorded_json: &str, current: &PerfSnapshot, threshold_pct: f64) -> Vec<String> {
    let host_scale = crate::benchjson::host_scale(recorded_json, current.calibration);
    let mut msgs = crate::benchjson::throughput_regressions(
        recorded_json,
        &current.workloads,
        host_scale,
        threshold_pct,
        "events/sec",
    );
    // The sweep workload gates on configs/sec, same host scale and
    // threshold. A snapshot recorded before the sweep existed gates
    // nothing here (the pinned set may grow).
    if let (Some(rec_cps), Some(cur)) = (
        PerfSnapshot::parse_sweep_configs_per_sec(recorded_json),
        current.sweep.as_ref(),
    ) {
        let scaled = rec_cps * host_scale;
        let floor = scaled * (1.0 - threshold_pct / 100.0);
        if cur.configs_per_sec < floor {
            msgs.push(format!(
                "sweep({}): {:.1} configs/sec is {:.1}% below the recorded {:.1} \
                 (host-speed scale {:.2}, allowed drop {:.0}%)",
                cur.workload,
                cur.configs_per_sec,
                (1.0 - cur.configs_per_sec / scaled) * 100.0,
                rec_cps,
                host_scale,
                threshold_pct
            ));
        }
    }
    // Out-of-core gates. Throughput compares against the recorded snapshot
    // (host-scaled, like the workloads above); the RSS-flatness and
    // shard-speedup checks are absolute properties of the current
    // measurement, so they run whenever one was taken.
    if let Some(cur) = current.ooc.as_ref() {
        if let Some((rec_1shard, rec_sharded)) =
            PerfSnapshot::parse_ooc_events_per_sec(recorded_json)
        {
            for (what, rec, got) in [
                ("1-shard", rec_1shard, cur.events_per_sec_1shard),
                ("sharded", rec_sharded, cur.events_per_sec_sharded),
            ] {
                let scaled = rec * host_scale;
                let floor = scaled * (1.0 - threshold_pct / 100.0);
                if got < floor {
                    msgs.push(format!(
                        "ooc({}, {what}): {:.0} events/sec is {:.1}% below the recorded \
                         {:.0} (host-speed scale {:.2}, allowed drop {:.0}%)",
                        cur.name,
                        got,
                        (1.0 - got / scaled) * 100.0,
                        rec,
                        host_scale,
                        threshold_pct
                    ));
                }
            }
        }
        // Flat peak RSS: resident growth across the out-of-core replays
        // must stay well under the on-disk trace size, else the windowed
        // cursor path is silently buffering (superlinear RSS). The floor
        // term absorbs allocator noise on small traces.
        let rss_cap = (0.5 * cur.trace_mib).max(48.0);
        if cur.peak_rss_growth_mib > rss_cap {
            msgs.push(format!(
                "ooc({}): peak RSS grew {:.1} MiB over a {:.1} MiB trace \
                 (flat-RSS cap {:.1} MiB) — the windowed replay is buffering",
                cur.name, cur.peak_rss_growth_mib, cur.trace_mib, rss_cap
            ));
        }
        // Shard speedup only means anything with real CPUs under it; a
        // 1-core container serializes the shards (and pays exchange
        // overhead), so the check arms at 4 cores.
        if cur.host_cpus >= 4 && cur.shards >= 4 && cur.shard_speedup() < 1.2 {
            msgs.push(format!(
                "ooc({}): {} shards on {} CPUs yields {:.2}x over 1 shard \
                 (expected > 1.2x) — partition-parallel replay is not scaling",
                cur.name,
                cur.shards,
                cur.host_cpus,
                cur.shard_speedup()
            ));
        }
    }
    // Warm-path cache gate: an absolute property of the current
    // measurement (like the flat-RSS cap), host-calibrated in the
    // loosening direction only — a loaded box slows the warm leg's
    // filesystem work more than the ratio's numerator, so the 3x floor
    // scales down with host speed and never up.
    if let Some(cur) = current.cache.as_ref() {
        let floor = 3.0 * host_scale;
        if cur.warm_speedup() < floor {
            msgs.push(format!(
                "cache({}): warm analyze is only {:.1}x faster than cold \
                 (floor {:.1}x, host-speed scale {:.2}) — the artifact cache \
                 is not paying for itself",
                cur.name,
                cur.warm_speedup(),
                floor,
                host_scale
            ));
        }
    }
    msgs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(eps: &[(&str, f64)]) -> PerfSnapshot {
        snapshot_cal(eps, 1.0e9)
    }

    fn snapshot_cal(eps: &[(&str, f64)], calibration: f64) -> PerfSnapshot {
        PerfSnapshot {
            engine: "test".into(),
            reps: 1,
            calibration,
            notes: vec!["a note with \"quotes\"".into()],
            sweep: Some(SweepPerf {
                workload: "token-ring-16".into(),
                configs: 16,
                lane_batches: 2,
                traversals_saved: 14,
                configs_per_sec: 400.0,
                threads_only_configs_per_sec: 100.0,
            }),
            ooc: None,
            cache: None,
            workloads: eps
                .iter()
                .map(|(n, e)| WorkloadPerf {
                    name: (*n).into(),
                    ranks: 8,
                    events: 1000,
                    events_per_sec: *e,
                    scheduler_wakeups: 10,
                    polls_avoided: 5,
                })
                .collect(),
        }
    }

    #[test]
    fn json_roundtrip() {
        let snap = snapshot(&[("token-ring-16", 1.0e7), ("stencil-8", 5.0e6)]);
        let parsed = PerfSnapshot::parse_events_per_sec(&snap.to_json());
        assert_eq!(
            parsed,
            vec![
                ("token-ring-16".to_string(), 1.0e7),
                ("stencil-8".to_string(), 5.0e6)
            ]
        );
    }

    #[test]
    fn regression_gate_fires_only_past_threshold() {
        let recorded = snapshot(&[("a", 1.0e6), ("b", 1.0e6)]).to_json();
        // 10% down: within a 20% allowance.
        let ok = snapshot(&[("a", 9.0e5), ("b", 1.1e6)]);
        assert!(regressions(&recorded, &ok, 20.0).is_empty());
        // 30% down on one workload: the gate names it.
        let bad = snapshot(&[("a", 7.0e5), ("b", 1.1e6)]);
        let msgs = regressions(&recorded, &bad, 20.0);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].starts_with("a:"), "{msgs:?}");
    }

    #[test]
    fn loaded_host_loosens_but_fast_host_never_tightens() {
        let recorded = snapshot_cal(&[("a", 1.0e6)], 1.0e9).to_json();
        assert_eq!(PerfSnapshot::parse_calibration(&recorded), Some(1.0e9));
        // Host half as fast now: a 55% drop scales to ~10% and passes.
        let loaded = snapshot_cal(&[("a", 4.5e5)], 0.5e9);
        assert!(regressions(&recorded, &loaded, 20.0).is_empty());
        // Same throughput drop at full host speed: the gate fires.
        let slow = snapshot_cal(&[("a", 4.5e5)], 1.0e9);
        assert_eq!(regressions(&recorded, &slow, 20.0).len(), 1);
        // Host twice as fast: the floor must NOT double — unchanged
        // throughput still passes.
        let fast = snapshot_cal(&[("a", 1.0e6)], 2.0e9);
        assert!(regressions(&recorded, &fast, 20.0).is_empty());
        // A snapshot without the calibration key gates unscaled.
        let legacy = recorded
            .lines()
            .filter(|l| !l.contains("calibration_iters_per_sec"))
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(PerfSnapshot::parse_calibration(&legacy), None);
        assert_eq!(regressions(&legacy, &loaded, 20.0).len(), 1);
    }

    #[test]
    fn sweep_roundtrips_and_gates() {
        let recorded = snapshot(&[("a", 1.0e6)]);
        let json = recorded.to_json();
        assert_eq!(
            PerfSnapshot::parse_sweep_configs_per_sec(&json),
            Some(400.0)
        );
        // Lane throughput 30% down: the sweep gate names it past a 20%
        // threshold even though the event workloads held steady.
        let mut slow = recorded.clone();
        slow.sweep.as_mut().unwrap().configs_per_sec = 280.0;
        let msgs = regressions(&json, &slow, 20.0);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].starts_with("sweep(token-ring-16):"), "{msgs:?}");
        assert!(regressions(&json, &slow, 40.0).is_empty());
        // A pre-sweep snapshot gates nothing on the sweep.
        let legacy: String = json
            .lines()
            .filter(|l| !l.trim_start().starts_with("\"configs_per_sec\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(regressions(&legacy, &slow, 20.0).is_empty());
    }

    #[test]
    fn notes_escape_quotes() {
        let json = snapshot(&[("a", 1.0e6)]).to_json();
        assert!(json.contains("a note with 'quotes'"), "{json}");
    }

    #[test]
    fn unknown_workloads_are_ignored() {
        let recorded = snapshot(&[("a", 1.0e6)]).to_json();
        let current = snapshot(&[("new-workload", 1.0)]);
        assert!(regressions(&recorded, &current, 20.0).is_empty());
    }

    #[test]
    fn measure_smoke() {
        // One rep over the pinned set: sane, internally-consistent numbers.
        let snap = measure(1);
        assert_eq!(snap.workloads.len(), 3);
        for w in &snap.workloads {
            assert!(w.events > 0 && w.events_per_sec > 0.0, "{w:?}");
            // The tentpole invariant: turns never exceed events + matches
            // (+ collective entries, absent from these point-to-point
            // workloads' wakeup budget only via the epoch fill).
            assert!(
                w.scheduler_wakeups <= 2 * w.events,
                "wakeups {} vs events {}",
                w.scheduler_wakeups,
                w.events
            );
        }
        let sweep = snap.sweep.expect("sweep measured");
        assert_eq!(sweep.configs, SWEEP_CONFIGS);
        assert_eq!(
            u64::from(sweep.configs),
            u64::from(sweep.lane_batches) + sweep.traversals_saved
        );
        assert!(sweep.configs_per_sec > 0.0 && sweep.threads_only_configs_per_sec > 0.0);
        assert!(!snap.notes.is_empty());
    }

    fn ooc_perf(eps_1: f64, eps_n: f64, rss_growth: f64, cpus: u32) -> OocPerf {
        OocPerf {
            name: "ooc-test".into(),
            ranks: 64,
            events: 100_000,
            trace_mib: 100.0,
            shards: 4,
            host_cpus: cpus,
            events_per_sec_1shard: eps_1,
            events_per_sec_sharded: eps_n,
            baseline_rss_mib: 20.0,
            peak_rss_growth_mib: rss_growth,
        }
    }

    #[test]
    fn ooc_roundtrips_and_gates() {
        let mut recorded = snapshot(&[("a", 1.0e6)]);
        recorded.ooc = Some(ooc_perf(4.0e6, 3.5e6, 10.0, 1));
        let json = recorded.to_json();
        assert_eq!(
            PerfSnapshot::parse_ooc_events_per_sec(&json),
            Some((4.0e6, 3.5e6))
        );
        // Unchanged numbers pass; the workload "name" inside the ooc
        // section must not confuse the per-workload parser.
        assert!(regressions(&json, &recorded, 20.0).is_empty());
        assert_eq!(PerfSnapshot::parse_events_per_sec(&json).len(), 1);
        // 1-shard throughput 30% down: the ooc gate names it.
        let mut slow = recorded.clone();
        slow.ooc.as_mut().unwrap().events_per_sec_1shard = 2.8e6;
        let msgs = regressions(&json, &slow, 20.0);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].starts_with("ooc(ooc-test, 1-shard):"), "{msgs:?}");
        // A pre-ooc snapshot gates nothing on ooc throughput.
        let legacy: String = json
            .lines()
            .filter(|l| !l.trim_start().starts_with("\"events_per_sec_1shard\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(regressions(&legacy, &slow, 20.0).is_empty());
    }

    #[test]
    fn ooc_absolute_gates() {
        let recorded = snapshot(&[("a", 1.0e6)]).to_json();
        // RSS growth past the cap (0.5 × 100 MiB trace) fires even against
        // a recorded snapshot with no ooc section — it's an absolute check.
        let mut bloated = snapshot(&[("a", 1.0e6)]);
        bloated.ooc = Some(ooc_perf(4.0e6, 3.5e6, 80.0, 1));
        let msgs = regressions(&recorded, &bloated, 20.0);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("flat-RSS"), "{msgs:?}");
        // No shard speedup on a 1-core host: forgiven. Same numbers on an
        // 8-core host: the scaling gate fires.
        let mut serial = snapshot(&[("a", 1.0e6)]);
        serial.ooc = Some(ooc_perf(4.0e6, 3.5e6, 10.0, 1));
        assert!(regressions(&recorded, &serial, 20.0).is_empty());
        serial.ooc.as_mut().unwrap().host_cpus = 8;
        let msgs = regressions(&recorded, &serial, 20.0);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("not scaling"), "{msgs:?}");
    }

    #[test]
    fn cache_roundtrips_and_gates() {
        let mut recorded = snapshot(&[("a", 1.0e6)]);
        recorded.cache = Some(CachePerf {
            name: "cache-test".into(),
            ranks: 64,
            events: 100_000,
            cold_secs: 10.0,
            warm_secs: 0.1,
        });
        let json = recorded.to_json();
        assert_eq!(PerfSnapshot::parse_number(&json, "cold_secs"), Some(10.0));
        assert_eq!(
            PerfSnapshot::parse_number(&json, "warm_speedup"),
            Some(100.0)
        );
        // 100x warm speedup clears the 3x floor.
        assert!(regressions(&json, &recorded, 20.0).is_empty());
        // A warm path barely faster than cold: the absolute gate fires even
        // against a recorded snapshot with no cache section.
        let mut slow = snapshot(&[("a", 1.0e6)]);
        slow.cache = Some(CachePerf {
            name: "cache-test".into(),
            ranks: 64,
            events: 100_000,
            cold_secs: 10.0,
            warm_secs: 5.0,
        });
        let legacy = snapshot(&[("a", 1.0e6)]).to_json();
        let msgs = regressions(&legacy, &slow, 20.0);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].starts_with("cache(cache-test):"), "{msgs:?}");
        // Half-speed host: the floor loosens to 1.5x and 2x passes.
        let mut loaded = slow.clone();
        loaded.calibration = 0.5e9;
        assert!(regressions(&legacy, &loaded, 20.0).is_empty());
    }

    #[test]
    fn measure_cache_smoke() {
        // A miniature spec: cold populates the dedicated cache, warm hits
        // it, outputs match (measure_cache errors otherwise).
        let spec = OocSpec {
            name: "cache-smoke",
            workload: "stencil",
            ranks: 4,
            scale: 1,
            seed: 3,
            shards: 1,
        };
        let perf = measure_cache(&spec).expect("cache measurement");
        assert_eq!(perf.ranks, 4);
        assert!(perf.events > 0);
        assert!(perf.cold_secs > 0.0 && perf.warm_secs > 0.0);
    }

    #[test]
    fn measure_ooc_smoke() {
        // A miniature spec (distinct cache dir from the pinned one): the
        // full mmap → windowed replay → sharded replay → RSS-sample path.
        let spec = OocSpec {
            name: "ooc-smoke",
            workload: "stencil",
            ranks: 8,
            scale: 1,
            seed: 1,
            shards: 2,
        };
        let perf = measure_ooc(&spec, 1).expect("ooc measurement");
        assert_eq!(perf.ranks, 8);
        assert!(perf.events > 0);
        assert!(perf.trace_mib > 0.0);
        assert!(perf.events_per_sec_1shard > 0.0 && perf.events_per_sec_sharded > 0.0);
        assert!(perf.peak_rss_growth_mib >= 0.0);
        // Cached trace reuse: a second measurement opens the same files.
        let again = measure_ooc(&spec, 1).expect("cached ooc measurement");
        assert_eq!(again.events, perf.events);
    }
}
