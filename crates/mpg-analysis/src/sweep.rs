//! Parallel parameter sweeps: a two-level threads × lanes scheduler.
//!
//! A sensitivity study replays one trace under dozens of perturbation
//! models (E6 runs eight, E13 twelve). Replays are independent, and the
//! traversal itself is drift-independent, so the sweep exploits *both*
//! levels of parallelism:
//!
//! 1. **Lanes** — [`mpg_core::plan_lanes`] packs structurally compatible
//!    configs into batches of up to [`mpg_core::MAX_LANES`]; each batch
//!    pays for one graph traversal no matter how many configs ride it.
//! 2. **Threads** — batches spread across worker threads with a
//!    longest-processing-time (LPT) assignment: the heaviest batch goes to
//!    the least-loaded worker, where a batch's cost is estimated as
//!    `trace events × (BASE + lanes)` — a traversal's fixed
//!    matching/scheduling work plus one unit of drift arithmetic per lane.
//!    This replaces the old round-robin chunking, which could hand one
//!    worker a run of wide batches while another drew only singletons.

use std::num::NonZeroUsize;

use mpg_core::{
    plan_lanes, replay_batch, CancelToken, LaneBatch, ReplayConfig, ReplayError, ReplayReport,
};
use mpg_trace::MemTrace;

/// How [`sweep_replays`] maps configs onto traversals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Two-level: lane-batch compatible configs, then spread batches
    /// across threads. The default everywhere.
    Lanes,
    /// One scalar traversal per config, threads only — the pre-lane
    /// behaviour, kept as the baseline the sweep bench gates the lane
    /// path against.
    ThreadsOnly,
}

/// [`sweep_replays`] under one shared [`CancelToken`]: the token is
/// installed into every config, so each worker's engine polls it on its
/// amortized event-count schedule and every in-flight traversal stops
/// within one check interval of the token firing. Cancel-bearing configs
/// plan as scalar singletons (a fired token must not truncate lane-mates),
/// so a cancellable sweep trades the lane-sharing win for uniform, prompt
/// cancellation — the supervised-runtime trade. Reports from traversals
/// the token cut short come back `Ok` with `cancelled` set and a partial
/// frontier, exactly like a solo cancelled replay.
pub fn sweep_replays_cancellable(
    trace: &MemTrace,
    configs: &[ReplayConfig],
    mode: SweepMode,
    cancel: &CancelToken,
) -> Vec<Result<ReplayReport, ReplayError>> {
    let configs: Vec<ReplayConfig> = configs
        .iter()
        .map(|c| c.clone().cancel_token(cancel.clone()))
        .collect();
    sweep_replays(trace, &configs, mode)
}

/// Fixed traversal cost in "lane units": the drift-independent
/// matching/scheduling work a traversal pays once regardless of width.
/// From the sweep bench, a scalar replay costs roughly 4 units of which
/// one is drift arithmetic, so a K-lane batch costs about `BASE + K`.
const BATCH_BASE_COST: u64 = 3;

fn batch_cost(events: u64, width: usize) -> u64 {
    events.max(1) * (BATCH_BASE_COST + width as u64)
}

/// Runs every config against `trace` in parallel (bounded by the machine's
/// available parallelism), lane-batching compatible configs so they share
/// traversals. Results come back in input order.
pub fn parallel_replays(
    trace: &MemTrace,
    configs: Vec<ReplayConfig>,
) -> Vec<Result<ReplayReport, ReplayError>> {
    sweep_replays(trace, &configs, SweepMode::Lanes)
}

/// [`parallel_replays`] with an explicit [`SweepMode`]; the threads-only
/// mode exists for baseline benchmarking and for callers that must avoid
/// lane-batched stats (`lanes` > 1) in their reports.
pub fn sweep_replays(
    trace: &MemTrace,
    configs: &[ReplayConfig],
    mode: SweepMode,
) -> Vec<Result<ReplayReport, ReplayError>> {
    let batches: Vec<LaneBatch> = match mode {
        SweepMode::Lanes => plan_lanes(configs),
        SweepMode::ThreadsOnly => (0..configs.len())
            .map(|i| LaneBatch { members: vec![i] })
            .collect(),
    };
    let workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
        .min(batches.len().max(1));
    let mut results: Vec<Option<Result<ReplayReport, ReplayError>>> =
        (0..configs.len()).map(|_| None).collect();

    // Degenerate sweeps gain nothing from spawning: run on the caller's
    // thread, so a single traversal also keeps its natural panic behaviour.
    if workers <= 1 || batches.len() <= 1 {
        for batch in &batches {
            for (&i, res) in batch
                .members
                .iter()
                .zip(replay_batch(trace, configs, batch))
            {
                results[i] = Some(res);
            }
        }
        return results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect();
    }

    // LPT assignment: heaviest batch first onto the least-loaded worker.
    // Deterministic — ties in cost keep plan order (stable sort), ties in
    // load pick the lowest worker index.
    let events = trace.total_events() as u64;
    let mut order: Vec<usize> = (0..batches.len()).collect();
    order.sort_by_key(|&b| std::cmp::Reverse(batch_cost(events, batches[b].members.len())));
    let mut assignment: Vec<Vec<usize>> = (0..workers).map(|_| Vec::new()).collect();
    let mut load = vec![0u64; workers];
    for b in order {
        let w = (0..workers).min_by_key(|&w| load[w]).expect("workers >= 1");
        load[w] += batch_cost(events, batches[b].members.len());
        assignment[w].push(b);
    }

    let outputs: Vec<Vec<(usize, Result<ReplayReport, ReplayError>)>> =
        std::thread::scope(|scope| {
            let batches = &batches;
            let handles: Vec<_> = assignment
                .into_iter()
                .filter(|mine| !mine.is_empty())
                .map(|mine| {
                    // Remember which configs the worker owns so a panic can
                    // name them instead of surfacing a bare join error.
                    let indices: Vec<usize> = mine
                        .iter()
                        .flat_map(|&b| batches[b].members.iter().copied())
                        .collect();
                    let handle = scope.spawn(move || {
                        mine.into_iter()
                            .flat_map(|b| {
                                let batch = &batches[b];
                                batch
                                    .members
                                    .iter()
                                    .copied()
                                    .zip(replay_batch(trace, configs, batch))
                                    .collect::<Vec<_>>()
                            })
                            .collect::<Vec<_>>()
                    });
                    (indices, handle)
                })
                .collect();
            handles
                .into_iter()
                .map(|(indices, h)| {
                    h.join().unwrap_or_else(|payload| {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        panic!("replay worker for config(s) {indices:?} panicked: {msg}")
                    })
                })
                .collect()
        });
    for (i, res) in outputs.into_iter().flatten() {
        results[i] = Some(res);
    }
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_core::{PerturbationModel, Replayer, MAX_LANES};
    use mpg_noise::PlatformSignature;
    use mpg_sim::Simulation;

    fn trace() -> MemTrace {
        Simulation::new(4, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| {
                let p = ctx.size();
                for _ in 0..5 {
                    ctx.compute(10_000);
                    ctx.sendrecv((ctx.rank() + 1) % p, 0, 128, (ctx.rank() + p - 1) % p, 0);
                }
            })
            .unwrap()
            .trace
    }

    fn config(latency: f64) -> ReplayConfig {
        let model = PerturbationModel::per_message_constant("sweep", latency);
        ReplayConfig::new(model).ack_arm(false)
    }

    #[test]
    fn matches_sequential_and_preserves_order() {
        let trace = trace();
        let configs: Vec<ReplayConfig> = (0..12).map(|i| config(f64::from(i) * 100.0)).collect();
        let parallel = parallel_replays(&trace, configs.clone());
        for (cfg, res) in configs.into_iter().zip(&parallel) {
            let seq = Replayer::new(cfg).run(&trace).unwrap();
            assert_eq!(seq.final_drift, res.as_ref().unwrap().final_drift);
        }
        // Monotone latency sweep → monotone drift (order preserved).
        let drifts: Vec<i64> = parallel
            .iter()
            .map(|r| r.as_ref().unwrap().max_final_drift())
            .collect();
        assert!(drifts.windows(2).all(|w| w[0] <= w[1]), "{drifts:?}");
    }

    #[test]
    fn lane_mode_shares_traversals() {
        // Twelve compatible configs pack into ⌈12/MAX_LANES⌉ batches; the
        // first MAX_LANES reports all carry the full batch width.
        let trace = trace();
        let configs: Vec<ReplayConfig> = (0..12).map(|i| config(f64::from(i) * 100.0)).collect();
        let reports = sweep_replays(&trace, &configs, SweepMode::Lanes);
        let saved: u64 = {
            let mut widths: Vec<u32> = reports
                .iter()
                .map(|r| r.as_ref().unwrap().stats.lanes)
                .collect();
            assert_eq!(widths[0] as usize, MAX_LANES);
            widths.dedup();
            widths.iter().map(|&w| u64::from(w) - 1).sum()
        };
        assert_eq!(saved, 12 - 2, "12 configs in 2 batches save 10 traversals");
    }

    #[test]
    fn threads_only_mode_stays_scalar() {
        let trace = trace();
        let configs: Vec<ReplayConfig> = (0..6).map(|i| config(f64::from(i) * 50.0)).collect();
        for (cfg, res) in
            configs
                .iter()
                .zip(sweep_replays(&trace, &configs, SweepMode::ThreadsOnly))
        {
            let r = res.unwrap();
            assert_eq!(r.stats.lanes, 1);
            assert_eq!(r.stats.traversals_saved, 0);
            let seq = Replayer::new(cfg.clone()).run(&trace).unwrap();
            assert_eq!(seq.final_drift, r.final_drift);
        }
    }

    #[test]
    fn cancellable_sweep_matches_when_idle_and_cuts_when_fired() {
        use mpg_core::CancelToken;
        let trace = trace();
        let configs: Vec<ReplayConfig> = (0..4).map(|i| config(f64::from(i) * 100.0)).collect();
        // Idle token: every report matches its scalar replay and finishes.
        let idle = CancelToken::new();
        for (cfg, res) in configs.iter().zip(sweep_replays_cancellable(
            &trace,
            &configs,
            SweepMode::Lanes,
            &idle,
        )) {
            let r = res.unwrap();
            assert!(r.cancelled.is_none());
            let seq = Replayer::new(cfg.clone()).run(&trace).unwrap();
            assert_eq!(seq.final_drift, r.final_drift);
        }
        // Pre-fired token: every traversal returns a cancelled partial
        // report — Ok, never Err, never a hang.
        let fired = CancelToken::new();
        fired.cancel();
        for res in sweep_replays_cancellable(&trace, &configs, SweepMode::Lanes, &fired) {
            assert!(res.unwrap().cancelled.is_some());
        }
    }

    #[test]
    fn empty_sweep() {
        assert!(parallel_replays(&trace(), Vec::new()).is_empty());
    }

    #[test]
    fn single_config_runs_in_place() {
        // One config takes the no-spawn path and must match the sequential
        // replay exactly.
        let trace = trace();
        let res = parallel_replays(&trace, vec![config(250.0)]);
        assert_eq!(res.len(), 1);
        let seq = Replayer::new(config(250.0)).run(&trace).unwrap();
        assert_eq!(seq.final_drift, res[0].as_ref().unwrap().final_drift);
    }

    #[test]
    fn mixed_structural_knobs_split_but_match() {
        // Configs that cannot share a batch (different ack/arrival knobs)
        // still come back in order, each matching its scalar replay.
        let trace = trace();
        let m = |n: &str| PerturbationModel::per_message_constant(n, 300.0);
        let configs = vec![
            ReplayConfig::new(m("a")),
            ReplayConfig::new(m("b")).ack_arm(false),
            ReplayConfig::new(m("c")).arrival_bound(true),
            ReplayConfig::new(m("d")),
            ReplayConfig::new(m("e")).ack_arm(false),
        ];
        for (cfg, res) in configs
            .iter()
            .zip(sweep_replays(&trace, &configs, SweepMode::Lanes))
        {
            let seq = Replayer::new(cfg.clone()).run(&trace).unwrap();
            assert_eq!(seq.final_drift, res.unwrap().final_drift);
        }
    }

    #[test]
    fn lpt_balances_mixed_batch_widths() {
        // One full-width batch plus many singletons: LPT must spread the
        // singletons over the other workers rather than stacking them
        // behind the wide batch (round-robin chunking did exactly that).
        let events = 1_000;
        let wide = batch_cost(events, MAX_LANES);
        let single = batch_cost(events, 1);
        // The wide batch outweighs two singletons; with two workers LPT
        // puts it alone and all singletons together whenever possible.
        assert!(wide > 2 * single);
    }

    #[test]
    fn errors_come_back_in_their_slots() {
        // A corrupt trace: every config must report the same error kind.
        let mut mt = MemTrace::new(1);
        mt.push(mpg_trace::EventRecord {
            rank: 0,
            seq: 0,
            t_start: 0,
            t_end: 10,
            kind: mpg_trace::EventKind::Recv {
                peer: 0,
                tag: 0,
                bytes: 0,
                posted_any: false,
            },
        });
        let results = parallel_replays(&mt, vec![config(0.0), config(100.0)]);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.is_err()));
    }
}
