//! Parallel parameter sweeps.
//!
//! A sensitivity study replays one trace under dozens of perturbation
//! models (E6 runs eight, E13 twelve). Replays are independent, so they
//! parallelize perfectly across threads; this module provides the harness
//! the experiment drivers and downstream users share.

use std::num::NonZeroUsize;

use mpg_core::{ReplayConfig, ReplayError, ReplayReport, Replayer};
use mpg_trace::MemTrace;

/// Runs every config against `trace` in parallel (bounded by the machine's
/// available parallelism). Results come back in input order.
pub fn parallel_replays(
    trace: &MemTrace,
    configs: Vec<ReplayConfig>,
) -> Vec<Result<ReplayReport, ReplayError>> {
    let workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
        .min(configs.len().max(1));
    // Degenerate sweeps gain nothing from spawning: run on the caller's
    // thread, so a single replay also keeps its natural panic behaviour.
    if workers <= 1 || configs.len() <= 1 {
        return configs
            .into_iter()
            .map(|cfg| Replayer::new(cfg).run(trace))
            .collect();
    }
    let jobs: Vec<(usize, ReplayConfig)> = configs.into_iter().enumerate().collect();
    let mut results: Vec<Option<Result<ReplayReport, ReplayError>>> =
        (0..jobs.len()).map(|_| None).collect();

    // Work-stealing by chunking: each worker takes jobs round-robin by
    // index; results land in their slots via a mutex-free split.
    let chunks: Vec<Vec<(usize, ReplayConfig)>> = {
        let mut chunks: Vec<Vec<(usize, ReplayConfig)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            chunks[i % workers].push(job);
        }
        chunks
    };

    let outputs: Vec<Vec<(usize, Result<ReplayReport, ReplayError>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    // Remember which configs the worker owns so a panic can
                    // name them instead of surfacing a bare join error.
                    let indices: Vec<usize> = chunk.iter().map(|(i, _)| *i).collect();
                    let handle = scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|(i, cfg)| (i, Replayer::new(cfg).run(trace)))
                            .collect::<Vec<_>>()
                    });
                    (indices, handle)
                })
                .collect();
            handles
                .into_iter()
                .map(|(indices, h)| {
                    h.join().unwrap_or_else(|payload| {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        panic!("replay worker for config(s) {indices:?} panicked: {msg}")
                    })
                })
                .collect()
        });
    for (i, res) in outputs.into_iter().flatten() {
        results[i] = Some(res);
    }
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_core::PerturbationModel;
    use mpg_noise::PlatformSignature;
    use mpg_sim::Simulation;

    fn trace() -> MemTrace {
        Simulation::new(4, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(|ctx| {
                let p = ctx.size();
                for _ in 0..5 {
                    ctx.compute(10_000);
                    ctx.sendrecv((ctx.rank() + 1) % p, 0, 128, (ctx.rank() + p - 1) % p, 0);
                }
            })
            .unwrap()
            .trace
    }

    fn config(latency: f64) -> ReplayConfig {
        let model = PerturbationModel::per_message_constant("sweep", latency);
        ReplayConfig::new(model).ack_arm(false)
    }

    #[test]
    fn matches_sequential_and_preserves_order() {
        let trace = trace();
        let configs: Vec<ReplayConfig> = (0..12).map(|i| config(f64::from(i) * 100.0)).collect();
        let parallel = parallel_replays(&trace, configs.clone());
        for (cfg, res) in configs.into_iter().zip(&parallel) {
            let seq = Replayer::new(cfg).run(&trace).unwrap();
            assert_eq!(seq.final_drift, res.as_ref().unwrap().final_drift);
        }
        // Monotone latency sweep → monotone drift (order preserved).
        let drifts: Vec<i64> = parallel
            .iter()
            .map(|r| r.as_ref().unwrap().max_final_drift())
            .collect();
        assert!(drifts.windows(2).all(|w| w[0] <= w[1]), "{drifts:?}");
    }

    #[test]
    fn empty_sweep() {
        assert!(parallel_replays(&trace(), Vec::new()).is_empty());
    }

    #[test]
    fn single_config_runs_in_place() {
        // One config takes the no-spawn path and must match the sequential
        // replay exactly.
        let trace = trace();
        let res = parallel_replays(&trace, vec![config(250.0)]);
        assert_eq!(res.len(), 1);
        let seq = Replayer::new(config(250.0)).run(&trace).unwrap();
        assert_eq!(seq.final_drift, res[0].as_ref().unwrap().final_drift);
    }

    #[test]
    fn errors_come_back_in_their_slots() {
        // A corrupt trace: every config must report the same error kind.
        let mut mt = MemTrace::new(1);
        mt.push(mpg_trace::EventRecord {
            rank: 0,
            seq: 0,
            t_start: 0,
            t_end: 10,
            kind: mpg_trace::EventKind::Recv {
                peer: 0,
                tag: 0,
                bytes: 0,
                posted_any: false,
            },
        });
        let results = parallel_replays(&mt, vec![config(0.0), config(100.0)]);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.is_err()));
    }
}
