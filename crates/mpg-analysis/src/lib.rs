#![warn(missing_docs)]

//! Experiment harness: reproduces every figure and table of the paper.
//!
//! Each experiment in [`experiments`] is a self-contained driver mapping to
//! one artifact of the paper (see the experiment index in `DESIGN.md`):
//!
//! | id  | paper artifact |
//! |-----|----------------|
//! | e1  | Fig. 1 — alternating compute/messaging phases |
//! | e2  | Fig. 2 + Eq. 1 — blocking send/recv subgraph |
//! | e3  | Fig. 3 + Eq. 2 — nonblocking pair + waits |
//! | e4  | Fig. 4 — abstract vs explicit collective model |
//! | e5  | Fig. 5 — DOT export of a blocking trace |
//! | e6  | §6.1 — the 128-rank token-ring perturbation sweep |
//! | e7  | §4.2 — windowed streaming memory bound |
//! | e8  | §1.1 — graph traversal vs Dimemas-like DES |
//! | e9  | §5 — law-of-large-numbers ECDF convergence |
//! | e10 | §5.1–5.2 — microbenchmark platform signatures |
//! | e11 | §6 — cross-platform runtime prediction |
//! | e12 | §6/§7 — noise-reduction (future work) |
//! | e13 | §4.2 — absorbed vs propagated sensitivity |
//! | e14 | ablation: conservative vs measured-slack absorption (§4.1) |
//! | e15 | extension: critical paths & tolerant/sensitive regions (§4.2) |
//! | e16 | ablation: assumed-distribution vs empirical parameterization (§5) |
//!
//! Run them all with `cargo run -p mpg-analysis --bin experiments`, or one
//! with `… --bin experiments e6`. Pass `--quick` for reduced problem sizes
//! (the test suite uses that mode). [`history`] implements the paper's
//! future-work experiment-history store.

pub mod benchjson;
pub mod experiments;
pub mod history;
pub mod lintperf;
pub mod perf;
pub mod sweep;
pub mod table;

pub use experiments::{all_experiments, Experiment, ExperimentResult};
pub use history::{record_from_report, AnalysisRecord, HistoryStore};
pub use perf::{measure as measure_perf, regressions as perf_regressions, PerfSnapshot};
pub use sweep::{parallel_replays, sweep_replays, sweep_replays_cancellable, SweepMode};
pub use table::Table;

/// Cycle unit shared across the workspace.
pub type Cycles = u64;
