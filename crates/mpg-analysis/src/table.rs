//! Plain-text result tables.

use std::fmt::Write as _;

/// A titled table with a header row, rendered as aligned monospace text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each must match `headers.len()`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The `MPG-*` rule registry (code → default severity → owning pass →
    /// doc line) as a table. `mpgtool lint --help` renders this from the
    /// same source of truth (`Rule::ALL` + [`mpg_trace::Rule::doc`] +
    /// [`mpg_trace::Rule::pass`]) that the DESIGN.md §7 table is
    /// consistency-checked against.
    pub fn rule_registry(rules: &[mpg_trace::Rule]) -> Self {
        let mut t = Table::new(
            "MPG-* rule registry",
            &["rule", "severity", "pass", "meaning"],
        );
        for &r in rules {
            t.row(vec![
                r.code().to_string(),
                r.default_severity().label().to_string(),
                r.pass().to_string(),
                r.doc().to_string(),
            ]);
        }
        t
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        writeln!(out, "## {}", self.title).unwrap();
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for i in 0..cols {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:>width$}", cells[i], width = widths[i]);
            }
            s
        };
        writeln!(out, "{}", line(&self.headers, &widths)).unwrap();
        writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
        )
        .unwrap();
        for row in &self.rows {
            writeln!(out, "{}", line(row, &widths)).unwrap();
        }
        out
    }
}

/// Formats a float with 3 significant decimals.
pub fn f(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // header + rule + 2 rows
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(pct(0.1234), "12.3%");
    }
}
