//! Analysis-experiment history (§7 future work).
//!
//! "The second area of work is to provide a mechanism to provide a richer
//! set of parameters to the simulation, and maintain a history of analysis
//! experiments that are performed using our tools."
//!
//! A [`HistoryStore`] is an append-only, line-oriented log of
//! [`AnalysisRecord`]s — enough to answer "what did we already try against
//! this trace, with which parameters, and what came out". The format is a
//! deliberately simple `key=value` line per record (no external
//! serialization dependency), escaped so values may contain spaces.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};

/// One recorded analysis run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisRecord {
    /// Caller-chosen label of the trace (e.g. directory name or workload).
    pub trace: String,
    /// Perturbation-model name.
    pub model: String,
    /// Replay seed.
    pub seed: u64,
    /// Number of ranks.
    pub ranks: u32,
    /// Maximum final drift (cycles).
    pub max_drift: i64,
    /// Mean final drift (cycles).
    pub mean_drift: f64,
    /// Free-form note.
    pub note: String,
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace(' ', "\\s")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('s') => out.push(' '),
                Some('\\') => out.push('\\'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

impl AnalysisRecord {
    fn to_line(&self) -> String {
        let mut line = String::new();
        write!(
            line,
            "trace={} model={} seed={} ranks={} max_drift={} mean_drift={} note={}",
            escape(&self.trace),
            escape(&self.model),
            self.seed,
            self.ranks,
            self.max_drift,
            self.mean_drift,
            escape(&self.note)
        )
        .expect("write to string");
        line
    }

    fn from_line(line: &str) -> Option<Self> {
        let mut trace = None;
        let mut model = None;
        let mut seed = None;
        let mut ranks = None;
        let mut max_drift = None;
        let mut mean_drift = None;
        let mut note = None;
        for field in line.split(' ') {
            let (key, value) = field.split_once('=')?;
            match key {
                "trace" => trace = Some(unescape(value)),
                "model" => model = Some(unescape(value)),
                "seed" => seed = value.parse().ok(),
                "ranks" => ranks = value.parse().ok(),
                "max_drift" => max_drift = value.parse().ok(),
                "mean_drift" => mean_drift = value.parse().ok(),
                "note" => note = Some(unescape(value)),
                _ => {} // forward compatibility: ignore unknown keys
            }
        }
        Some(Self {
            trace: trace?,
            model: model?,
            seed: seed?,
            ranks: ranks?,
            max_drift: max_drift?,
            mean_drift: mean_drift?,
            note: note.unwrap_or_default(),
        })
    }
}

/// Append-only store of analysis records.
#[derive(Debug, Clone)]
pub struct HistoryStore {
    path: PathBuf,
}

impl HistoryStore {
    /// Opens (or will create on first append) a history file.
    pub fn at(path: &Path) -> Self {
        Self {
            path: path.to_path_buf(),
        }
    }

    /// Appends one record.
    pub fn append(&self, rec: &AnalysisRecord) -> std::io::Result<()> {
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        writeln!(f, "{}", rec.to_line())
    }

    /// Loads every parseable record (silently skipping corrupt lines, so a
    /// partially written final line never blocks reading the history).
    pub fn load(&self) -> std::io::Result<Vec<AnalysisRecord>> {
        let Ok(f) = std::fs::File::open(&self.path) else {
            return Ok(Vec::new()); // no history yet
        };
        Ok(BufReader::new(f)
            .lines()
            .map_while(Result::ok)
            .filter_map(|l| AnalysisRecord::from_line(&l))
            .collect())
    }

    /// Records already stored for a given trace label.
    pub fn for_trace(&self, trace: &str) -> std::io::Result<Vec<AnalysisRecord>> {
        Ok(self
            .load()?
            .into_iter()
            .filter(|r| r.trace == trace)
            .collect())
    }
}

/// Builds a record from a replay report.
pub fn record_from_report(
    trace: &str,
    seed: u64,
    report: &mpg_core::ReplayReport,
    note: &str,
) -> AnalysisRecord {
    AnalysisRecord {
        trace: trace.to_string(),
        model: report.model_name.clone(),
        seed,
        ranks: report.final_drift.len() as u32,
        max_drift: report.max_final_drift(),
        mean_drift: report.mean_final_drift(),
        note: note.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: &str, seed: u64) -> AnalysisRecord {
        AnalysisRecord {
            trace: trace.into(),
            model: "noisy target v2".into(),
            seed,
            ranks: 16,
            max_drift: 123_456,
            mean_drift: 100_000.5,
            note: "sweep step 3\nwith newline".into(),
        }
    }

    #[test]
    fn line_roundtrip() {
        let r = rec("ring/128", 7);
        let parsed = AnalysisRecord::from_line(&r.to_line()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn store_appends_and_filters() {
        let path = std::env::temp_dir().join(format!("mpg-hist-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let store = HistoryStore::at(&path);
        assert!(store.load().unwrap().is_empty());
        store.append(&rec("a", 1)).unwrap();
        store.append(&rec("b", 2)).unwrap();
        store.append(&rec("a", 3)).unwrap();
        assert_eq!(store.load().unwrap().len(), 3);
        let a = store.for_trace("a").unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a[1].seed, 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_lines_skipped() {
        let path = std::env::temp_dir().join(format!("mpg-hist-c-{}.log", std::process::id()));
        std::fs::write(&path, "garbage line\n").unwrap();
        let store = HistoryStore::at(&path);
        store.append(&rec("x", 1)).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].trace, "x");
        std::fs::remove_file(&path).unwrap();
    }
}
