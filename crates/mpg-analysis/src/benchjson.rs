//! Shared reader/writer for the tracked `BENCH_*.json` snapshot
//! documents.
//!
//! [`perf`](crate::perf) (`BENCH_replay.json`) and
//! [`lintperf`](crate::lintperf) (`BENCH_lint.json`) round-trip through
//! the same hand-rolled document shape: a flat object with a
//! `calibration_iters_per_sec` key, optional section objects, and a
//! `"workloads"` array of named throughput entries. The workspace carries
//! no JSON dependency, so both the writer and the deliberately tolerant
//! line-scanning readers live here — in one place — instead of being
//! copy-pasted per snapshot kind.

use crate::perf::WorkloadPerf;

/// Extracts the first numeric value stored under `key` in a snapshot
/// document. Line-scanned: each line is trimmed and matched against
/// `"key":`, so the match is exact on the key (a longer key that merely
/// ends with `key` does not match).
pub fn number(json: &str, key: &str) -> Option<f64> {
    let prefix = format!("\"{key}\":");
    json.lines().find_map(|line| {
        line.trim()
            .strip_prefix(prefix.as_str())?
            .trim()
            .trim_end_matches(',')
            .parse::<f64>()
            .ok()
    })
}

/// Extracts the recorded host calibration, if present (older documents
/// lack the key).
pub fn calibration(json: &str) -> Option<f64> {
    number(json, "calibration_iters_per_sec")
}

/// Extracts `(name, events_per_sec)` pairs from the `"workloads"` array.
/// A `"name"` key not followed by an `"events_per_sec"` key (e.g. inside
/// the `"ooc"` or `"cache"` section) is discarded, not mispaired.
pub fn events_per_sec(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut pending_name: Option<String> = None;
    for line in json.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\":") {
            let name = rest.trim().trim_end_matches(',').trim_matches('"');
            pending_name = Some(name.to_string());
        } else if let Some(rest) = line.strip_prefix("\"events_per_sec\":") {
            if let (Some(name), Ok(eps)) = (
                pending_name.take(),
                rest.trim().trim_end_matches(',').parse::<f64>(),
            ) {
                out.push((name, eps));
            }
        }
    }
    out
}

/// The host-speed scale a regression gate applies to recorded floors: the
/// ratio of the current calibration to the recorded one, capped at 1.0 so
/// a loaded (or weaker) host loosens the gate but a faster host never
/// tightens it. A document without a calibration gates unscaled.
pub fn host_scale(recorded_json: &str, current_calibration: f64) -> f64 {
    calibration(recorded_json)
        .filter(|rec_cal| *rec_cal > 0.0 && current_calibration > 0.0)
        .map_or(1.0, |rec_cal| (current_calibration / rec_cal).min(1.0))
}

/// Appends the shared document header fields: the `"bench"` tag, the rep
/// count, and the host calibration.
pub fn write_header(out: &mut String, bench: &str, reps: u32, calibration: f64) {
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!(
        "  \"calibration_iters_per_sec\": {calibration:.0},\n"
    ));
}

/// Appends a `"notes"` string array (double quotes inside a note are
/// rewritten to single quotes — the tolerant parsers never unescape).
/// Writes nothing when `notes` is empty.
pub fn write_notes(out: &mut String, notes: &[String]) {
    if notes.is_empty() {
        return;
    }
    out.push_str("  \"notes\": [\n");
    for (i, n) in notes.iter().enumerate() {
        let sep = if i + 1 == notes.len() { "" } else { "," };
        out.push_str(&format!("    \"{}\"{sep}\n", n.replace('"', "'")));
    }
    out.push_str("  ],\n");
}

/// Appends the `"workloads"` array and the closing `}` of the document.
///
/// `scheduler` controls the replay-specific keys (`scheduler_wakeups`,
/// `polls_avoided`); `baselines` supplies per-workload polling baselines
/// (empty to omit the comparison keys).
pub fn write_workloads(
    out: &mut String,
    workloads: &[WorkloadPerf],
    scheduler: bool,
    baselines: &[(&str, f64)],
) {
    out.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", w.name));
        out.push_str(&format!("      \"ranks\": {},\n", w.ranks));
        out.push_str(&format!("      \"events\": {},\n", w.events));
        out.push_str(&format!(
            "      \"events_per_sec\": {:.0}",
            w.events_per_sec
        ));
        if scheduler {
            out.push_str(&format!(
                ",\n      \"scheduler_wakeups\": {},\n",
                w.scheduler_wakeups
            ));
            out.push_str(&format!("      \"polls_avoided\": {}", w.polls_avoided));
        }
        let baseline = baselines
            .iter()
            .find(|(n, _)| *n == w.name)
            .map(|(_, eps)| *eps);
        if let Some(b) = baseline {
            out.push_str(&format!(
                ",\n      \"polling_baseline_events_per_sec\": {b:.0},\n"
            ));
            out.push_str(&format!(
                "      \"speedup_vs_polling\": {:.2}\n",
                w.events_per_sec / b
            ));
        } else {
            out.push('\n');
        }
        out.push_str(if i + 1 == workloads.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
}

/// The shared per-workload throughput gate: one message per current
/// workload whose `events_per_sec` fell more than `threshold_pct` percent
/// below the recorded value, with the recorded floor scaled by
/// `host_scale` first. Workloads present on only one side are ignored
/// (the pinned set may grow). `what` names the measured quantity in the
/// message ("events/sec", "lint events/sec").
pub fn throughput_regressions(
    recorded_json: &str,
    current: &[WorkloadPerf],
    host_scale: f64,
    threshold_pct: f64,
    what: &str,
) -> Vec<String> {
    let recorded = events_per_sec(recorded_json);
    let mut msgs = Vec::new();
    for w in current {
        let Some((_, rec_eps)) = recorded.iter().find(|(n, _)| *n == w.name) else {
            continue;
        };
        let scaled = rec_eps * host_scale;
        let floor = scaled * (1.0 - threshold_pct / 100.0);
        if w.events_per_sec < floor {
            msgs.push(format!(
                "{}: {:.0} {what} is {:.1}% below the recorded {:.0} \
                 (host-speed scale {:.2}, allowed drop {:.0}%)",
                w.name,
                w.events_per_sec,
                (1.0 - w.events_per_sec / scaled) * 100.0,
                rec_eps,
                host_scale,
                threshold_pct
            ));
        }
    }
    msgs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(name: &str, eps: f64) -> WorkloadPerf {
        WorkloadPerf {
            name: name.into(),
            ranks: 8,
            events: 1000,
            events_per_sec: eps,
            scheduler_wakeups: 10,
            polls_avoided: 5,
        }
    }

    #[test]
    fn writer_reader_roundtrip_both_shapes() {
        for scheduler in [false, true] {
            let mut doc = String::new();
            write_header(&mut doc, "test_bench", 3, 2.0e9);
            write_notes(&mut doc, &["has \"quotes\"".to_string()]);
            write_workloads(
                &mut doc,
                &[wl("a", 1.0e6), wl("token-ring-16", 2.0e6)],
                scheduler,
                &[("token-ring-16", 1.0e6)],
            );
            assert_eq!(calibration(&doc), Some(2.0e9));
            assert_eq!(number(&doc, "reps"), Some(3.0));
            assert_eq!(
                events_per_sec(&doc),
                vec![
                    ("a".to_string(), 1.0e6),
                    ("token-ring-16".to_string(), 2.0e6)
                ]
            );
            assert_eq!(number(&doc, "speedup_vs_polling"), Some(2.0));
            assert!(doc.contains("has 'quotes'"));
            assert_eq!(doc.contains("scheduler_wakeups"), scheduler);
        }
    }

    #[test]
    fn key_match_is_exact_not_suffix() {
        let doc = "{\n  \"threads_only_configs_per_sec\": 100.0,\n  \
                   \"configs_per_sec\": 400.0\n}\n";
        assert_eq!(number(doc, "configs_per_sec"), Some(400.0));
    }

    #[test]
    fn section_names_do_not_mispair() {
        let mut doc = String::new();
        write_header(&mut doc, "t", 1, 1.0e9);
        // A section object with a "name" but no "events_per_sec", like the
        // ooc/cache sections.
        doc.push_str(
            "  \"cache\": {\n    \"name\": \"ooc-stencil-1024\",\n    \
                      \"cold_secs\": 10.0\n  },\n",
        );
        write_workloads(&mut doc, &[wl("a", 1.0e6)], false, &[]);
        assert_eq!(events_per_sec(&doc), vec![("a".to_string(), 1.0e6)]);
    }

    #[test]
    fn host_scale_caps_at_one_and_defaults_unscaled() {
        let mut doc = String::new();
        write_header(&mut doc, "t", 1, 1.0e9);
        assert_eq!(host_scale(&doc, 0.5e9), 0.5);
        assert_eq!(host_scale(&doc, 2.0e9), 1.0);
        assert_eq!(host_scale("{}", 0.5e9), 1.0);
    }

    #[test]
    fn gate_messages_name_the_quantity() {
        let mut doc = String::new();
        write_header(&mut doc, "t", 1, 1.0e9);
        write_workloads(&mut doc, &[wl("a", 1.0e6)], false, &[]);
        let msgs = throughput_regressions(&doc, &[wl("a", 5.0e5)], 1.0, 20.0, "lint events/sec");
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("lint events/sec"), "{msgs:?}");
        assert!(throughput_regressions(&doc, &[wl("a", 9.0e5)], 1.0, 20.0, "x").is_empty());
    }
}
