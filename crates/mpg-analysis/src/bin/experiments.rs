//! Experiment driver: reproduces every figure/table of the paper.
//!
//! ```text
//! experiments [--quick] [id ...]
//! ```
//!
//! With no ids, runs all thirteen experiments in paper order and prints
//! their tables. `--quick` shrinks problem sizes (CI mode).

use std::time::Instant;

use mpg_analysis::experiments::{all_experiments, by_id};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let experiments = if ids.is_empty() {
        all_experiments()
    } else {
        ids.iter()
            .map(|id| {
                by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{id}'; known: e1..e13");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let total = Instant::now();
    for e in experiments {
        let t0 = Instant::now();
        let result = e.run(quick);
        println!("{}", result.render());
        println!("[{} completed in {:.2?}]\n", e.id(), t0.elapsed());
    }
    println!("all done in {:.2?}", total.elapsed());
}
