//! `mpgtool` — command-line front end for the trace/replay pipeline.
//!
//! ```text
//! mpgtool demo <workload> [--ranks N] [--seed S] <trace-dir>
//!     Run a built-in workload on the simulated platform and write its
//!     per-rank trace files. Workloads: ring, stencil, master-worker,
//!     solver, pipeline, transpose, summa (summa needs --ranks 8).
//!
//! mpgtool stats <trace-dir>
//!     Event/kind statistics and the communication matrix.
//!
//! mpgtool validate <trace-dir> [--json]
//!     Structural validation (§4.3 preconditions), reported as MPG-* rule
//!     diagnostics.
//!
//! mpgtool lint <trace-dir> [--json] [--all] [--deny <MPG-RULE>]... [--salvage]
//!     Static defect analysis: match resolution, deadlock cycles, graph
//!     causality, wildcard races, collective consistency, wait-state
//!     performance findings. Advisory (info-severity) findings are hidden
//!     unless --all is given; --deny escalates a rule to error severity.
//!     With --salvage, read the trace through the salvage path and merge
//!     MPG-TRUNCATED-TRACE / MPG-MISSING-RANK findings (deny those codes
//!     to reject salvaged input). `mpgtool lint --rules` prints the full
//!     rule registry (code, default severity, owning pass, doc line) —
//!     add --json for machine-readable output; `mpgtool lint --explain
//!     MPG-RULE` prints one entry. Exit code contract: 0 when no
//!     error-severity diagnostic fired, 1 when at least one did, 2 on
//!     usage or I/O errors.
//!
//! mpgtool explore <trace-dir> [--budget N] [--depth N] [--threshold PCT]
//!                 [--seed S] [--json] [--all] [--deny <MPG-RULE>]...
//!     Schedule-space exploration (lint pass 8 with a real budget): run
//!     the full lint, then systematically re-replay the trace under forced
//!     alternate wildcard matchings — up to --budget forced replays (default
//!     64), --depth match decisions per schedule (default 3) — reporting
//!     MPG-MAY-DEADLOCK when an alternate matching reaches a wait-for cycle
//!     (the finding names the exact forced match sequence, independently
//!     re-replayable) and MPG-SCHEDULE-DIVERGENCE when it shifts the
//!     estimated makespan past --threshold percent (default 10). Every
//!     report carries one coverage line (schedules replayed / pruned /
//!     frontier left unexplored) so an exhausted budget is never silent.
//!     Same exit contract as lint; `mpgtool lint <dir> --explore` is a
//!     shorthand. With --cache, the merged report is checkpointed as a
//!     frontier artifact keyed by (trace, budget, depth, threshold, seed);
//!     a warm run re-renders it byte-identically without reopening the
//!     trace.
//!
//! mpgtool analyze <trace-dir> [--json] [--top K] [--salvage]
//!     Static wait-state & slack analysis (no perturbation): decompose
//!     every rank's time into compute / transfer / wait classes (late
//!     sender, late receiver, wait-at-collective, imbalance, exit skew),
//!     identify root-cause ranks, and print the static critical path and
//!     the top-K tight chains. The decomposition is exact:
//!     compute + transfer + waits == makespan × ranks. With --salvage,
//!     analyze a damaged trace to its crash frontier.
//!
//! mpgtool fsck <trace-dir> [--json] [--inject KIND [--seed S] [--out DIR]]
//!     Integrity-check a trace directory against the MPG2 framing: per-frame
//!     CRCs, sealed footers, missing rank files. Exit 0 when every rank is
//!     clean, 1 when damage was found but records were salvaged, 2 when the
//!     directory is unrecoverable. With --inject, first copy the trace to
//!     DIR (default `<trace-dir>-injected`), apply one deterministic fault
//!     (truncate, bitflip, frame-drop, frame-dup, frame-swap, splice,
//!     delete-rank, io-error, delay), then fsck the damaged copy — the
//!     self-test harness.
//!
//! mpgtool replay <trace-dir> [--os MEAN] [--latency CYCLES]
//!                [--per-byte CPB] [--seed S] [--history FILE] [--lint]
//!                [--salvage] [--ooc] [--shards N]
//!     Replay under an injected-perturbation model; print per-rank drifts.
//!     With --history, append the result to an analysis-history log (§7).
//!     With --lint, refuse to replay a trace that has error-severity lint
//!     diagnostics. With --salvage, accept a damaged/partial trace: read it
//!     through the salvage path and replay crash-tolerantly to the crash
//!     frontier, printing the degradation report. With --ooc, mmap the
//!     trace files and stream frames lazily instead of loading the trace —
//!     peak memory stays flat however big the trace is. With --shards N,
//!     partition the ranks over N worker threads; results are bit-identical
//!     to the single-threaded replay.
//!
//! mpgtool gen [--workload W] [--ranks N] [--scale S] [--seed S] <trace-dir>
//!     Synthesize a large trace for out-of-core experiments: one of the
//!     demo workloads with its iteration count multiplied by --scale
//!     (default workload: stencil, whose event volume is ranks x 7 x 20 x
//!     scale).
//!
//! mpgtool dot <trace-dir>
//!     Print the message-passing graph as Graphviz DOT (Fig. 5).
//!
//! mpgtool export <trace-dir>
//!     Print the trace in the line-oriented text interchange format.
//!
//! mpgtool import <text-file> <trace-dir>
//!     Convert a text-format trace into a binary trace directory.
//!
//! mpgtool timeline <trace-dir> [--width N]
//!     ASCII per-rank phase timelines (Fig. 1).
//!
//! mpgtool diff <trace-dir-a> <trace-dir-b>
//!     Compare two traces' per-kind time accounting.
//!
//! mpgtool cache <ls|gc|clear> [--cache-dir DIR] [--max-mib N]
//!     Manage the content-addressed artifact cache. `ls` lists entries,
//!     `gc` evicts oldest-first down to --max-mib (default 512), `clear`
//!     empties the cache.
//!
//! mpgtool serve [--script FILE] [--workers N] [--queue N] [--deadline-ms N]
//!               [--retries N] [--chaos OPS --chaos-seed S] [--cache] [--cache-dir DIR]
//!     Run the supervised job runtime: a bounded-queue worker pool with
//!     per-job deadlines, cooperative cancellation (partial frontier
//!     reports, not errors), panic quarantine with worker respawn, and
//!     transient-failure retries, driven by a line protocol (submit /
//!     status / wait / result / cancel / stats / quarantine / check /
//!     shutdown) from stdin or --script. Completed job output is
//!     byte-identical to the solo CLI run and shares the --cache artifact
//!     store with it. --chaos enables the seeded fault-injection harness
//!     (operators: panic, delay, io-error, corrupt-artifact); `check`
//!     audits the runtime invariants afterwards.
//!
//! mpgtool bench [--lint] [--no-ooc] [--no-cache] [--out FILE] [--check FILE] [--threshold PCT] [--reps N]
//!     Measure replay throughput (events/sec) on the pinned seed workloads.
//!     With --out, write the machine-readable snapshot (BENCH_replay.json).
//!     With --check, compare against a recorded snapshot and exit nonzero
//!     if any workload regressed by more than PCT percent (default 20).
//!     With --lint, measure full static-analysis (`lint_full`) throughput
//!     on the pinned lint workloads instead (snapshot BENCH_lint.json).
//!     --no-cache skips the cold/warm artifact-cache comparison.
//! ```
//!
//! `lint`, `analyze`, and `replay` accept `--cache` (or `--cache-dir DIR`,
//! which implies it): finished reports and the recorded graph (as an MPGA
//! artifact) are memoized in a content-addressed on-disk cache keyed by
//! the trace's sealed-footer CRC chain, so repeat runs skip frame decode
//! and graph recording entirely. Cached output is byte-identical to a
//! cold run; cache status notes go to stderr. Salvaged, unsealed, and
//! history-logging runs are never cached.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mpg_analysis::history::{record_from_report, HistoryStore};
use mpg_analysis::Table;
use mpg_apps::{
    AllreduceSolver, GridSumma, MasterWorker, Pipeline, Stencil, TokenRing, Transpose, Workload,
};
use mpg_core::timeline::render_trace_gantt;
use mpg_core::{
    cached_recorded_graph, dot, ArtifactKind, CacheStore, CachedReport, PerturbationModel,
    ReplayConfig, Replayer,
};
use mpg_noise::PlatformSignature;
use mpg_sim::Simulation;
use mpg_trace::{
    inject_dir, sort_diagnostics, text_to_trace, trace_stats, trace_to_text, validate_trace,
    validate_trace_diagnostics, Diagnostic, FaultKind, FileTraceSet, OocTraceSet, Rule,
    SalvageReport, Severity, TraceError,
};

fn fail(msg: &str) -> ExitCode {
    eprintln!("mpgtool: {msg}");
    eprintln!("run with no arguments for usage");
    ExitCode::from(2)
}

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!(
        "  mpgtool demo <ring|stencil|master-worker|solver|pipeline|transpose|summa> \
         [--ranks N] [--seed S] <trace-dir>"
    );
    eprintln!(
        "  mpgtool gen [--workload W] [--ranks N] [--scale S] [--seed S] <trace-dir> \
         (synthesize a large trace)"
    );
    eprintln!("  mpgtool stats <trace-dir>");
    eprintln!("  mpgtool validate <trace-dir> [--json]");
    eprintln!(
        "  mpgtool lint <trace-dir> [--json] [--all] [--deny <MPG-RULE>]... [--salvage] \
         [--cache] [--cache-dir DIR]"
    );
    eprintln!("  mpgtool lint --rules [--json]   (print the MPG-* rule registry)");
    eprintln!("  mpgtool lint --explain <MPG-RULE> [--json]");
    eprintln!(
        "  mpgtool explore <trace-dir> [--budget N] [--depth N] [--threshold PCT] [--seed S] \
         [--json] [--all] [--deny <MPG-RULE>]... [--cache] [--cache-dir DIR]"
    );
    eprintln!(
        "  mpgtool analyze <trace-dir> [--json] [--top K] [--salvage] \
         [--cache] [--cache-dir DIR]"
    );
    eprintln!("  mpgtool fsck <trace-dir> [--json] [--inject KIND [--seed S] [--out DIR]]");
    eprintln!(
        "  mpgtool replay <trace-dir> [--os MEAN] [--latency CYCLES] [--per-byte CPB] \
         [--seed S] [--history FILE] [--lint] [--salvage] [--ooc] [--shards N] \
         [--cache] [--cache-dir DIR]"
    );
    eprintln!("  mpgtool cache <ls|gc|clear> [--cache-dir DIR] [--max-mib N]");
    eprintln!(
        "  mpgtool serve [--script FILE] [--workers N] [--queue N] [--deadline-ms N] \
         [--retries N] [--chaos OPS --chaos-seed S] [--cache] [--cache-dir DIR]"
    );
    eprintln!("  mpgtool dot <trace-dir>");
    eprintln!("  mpgtool export <trace-dir>");
    eprintln!("  mpgtool import <text-file> <trace-dir>");
    eprintln!("  mpgtool timeline <trace-dir> [--width N]");
    eprintln!("  mpgtool diff <trace-dir-a> <trace-dir-b>");
    eprintln!(
        "  mpgtool bench [--lint] [--no-ooc] [--no-cache] [--out FILE] [--check FILE] \
         [--threshold PCT] [--reps N]"
    );
    ExitCode::from(2)
}

/// Parses `--cache` / `--cache-dir DIR` (the latter implies the former)
/// and opens the store. `Ok(None)` when caching was not requested.
fn take_cache(args: &mut Vec<String>) -> Result<Option<CacheStore>, String> {
    let dir = take_flag(args, "--cache-dir");
    if !take_switch(args, "--cache") && dir.is_none() {
        return Ok(None);
    }
    let root = dir.map_or_else(CacheStore::default_dir, PathBuf::from);
    CacheStore::open(&root)
        .map(Some)
        .map_err(|e| format!("opening cache {}: {e}", root.display()))
}

/// Content fingerprint of a trace directory for cache keying. Traces that
/// cannot be fingerprinted cheaply — unsealed, salvaged, legacy — run
/// cold and are never cached; the note goes to stderr so stdout stays
/// byte-identical to an uncached run.
fn cache_trace_key(dir: &str) -> Option<String> {
    match mpg_trace::trace_fingerprint(Path::new(dir)) {
        Ok(fp) => Some(fp.key()),
        Err(e) => {
            eprintln!("mpgtool: cache: {e}; running cold without caching");
            None
        }
    }
}

///// Warm-path lookup: when a cached report exists for `key`, replays its
/// stdout and exit code. The hit note goes to stderr.
fn cached_report_exit(store: &CacheStore, key: &str, what: &str) -> Option<ExitCode> {
    let rep = store.get_report(key)?;
    eprintln!("mpgtool: cache: warm hit ({what})");
    print!("{}", rep.stdout);
    Some(ExitCode::from(rep.exit_code))
}

/// Publishes a finished report; failures are nonfatal (the run already
/// produced its output).
fn publish_report(store: &CacheStore, key: &str, exit_code: u8, stdout: &str) {
    let _ = store.put_report(
        key,
        &CachedReport {
            exit_code,
            stdout: stdout.to_string(),
        },
    );
}

/// Pulls `--flag value` out of `args`, returning the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        return None;
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

/// Pulls a bare `--flag` switch out of `args`.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Renders diagnostics as a JSON array (one object per diagnostic).
fn diags_to_json(diags: &[&Diagnostic]) -> String {
    let objs: Vec<String> = diags.iter().map(|d| d.to_json()).collect();
    format!("[{}]", objs.join(","))
}

/// One registry entry as a JSON object, from the same single source of
/// truth (`Rule::ALL` + code/severity/pass/doc) as `lint --help` and the
/// DESIGN.md §7 table.
fn rule_to_json(rule: Rule) -> String {
    let mut s = String::from("{\"code\":\"");
    mpg_trace::json_escape_into(rule.code(), &mut s);
    s.push_str("\",\"severity\":\"");
    mpg_trace::json_escape_into(rule.default_severity().label(), &mut s);
    s.push_str("\",\"pass\":\"");
    mpg_trace::json_escape_into(rule.pass(), &mut s);
    s.push_str("\",\"doc\":\"");
    mpg_trace::json_escape_into(rule.doc(), &mut s);
    s.push_str("\"}");
    s
}

/// The whole registry as a JSON array (`mpgtool lint --rules --json`).
fn rules_to_json(rules: &[Rule]) -> String {
    let objs: Vec<String> = rules.iter().map(|&r| rule_to_json(r)).collect();
    format!("[{}]", objs.join(","))
}

fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    Some(match name {
        "ring" => Box::new(TokenRing {
            traversals: 5,
            particles_per_rank: 16,
            work_per_pair: 25,
        }),
        "stencil" => Box::new(Stencil {
            iters: 20,
            cells_per_rank: 2_000,
            work_per_cell: 40,
            halo_bytes: 1_024,
        }),
        "master-worker" => Box::new(MasterWorker {
            tasks: 64,
            task_work: 200_000,
            task_bytes: 128,
            result_bytes: 128,
        }),
        "solver" => Box::new(AllreduceSolver {
            iters: 20,
            local_work: 200_000,
            vector_bytes: 256,
        }),
        "pipeline" => Box::new(Pipeline {
            waves: 20,
            work_per_stage: 100_000,
            payload: 512,
        }),
        "transpose" => Box::new(Transpose {
            steps: 10,
            rows_per_rank: 32,
            work_per_element: 10,
            block_bytes: 512,
        }),
        // Requires --ranks 8 (a 2×4 grid).
        "summa" => Box::new(GridSumma {
            rows: 2,
            cols: 4,
            panel_bytes: 4_096,
            local_work: 200_000,
        }),
        _ => return None,
    })
}

fn open_trace(dir: &str) -> Result<mpg_trace::MemTrace, String> {
    let open_err = |e: TraceError| match &e {
        // Strict-read failures that the salvage path can usually work
        // around: point the user at fsck. (MissingRanks' own Display
        // already carries the suggestion.)
        TraceError::Checksum(_) | TraceError::Unsealed(_) | TraceError::Corrupt(_) => {
            format!("{e} — try `mpgtool fsck {dir}`")
        }
        _ => e.to_string(),
    };
    let set = FileTraceSet::open(Path::new(dir)).map_err(open_err)?;
    set.load().map_err(open_err)
}

/// Loads a trace through the salvage path, failing only on unrecoverable
/// directories. Prints nothing; callers decide how to surface the report.
fn open_salvage(dir: &str) -> Result<(mpg_trace::MemTrace, SalvageReport), String> {
    FileTraceSet::load_salvage(Path::new(dir)).map_err(|e| format!("unrecoverable trace: {e}"))
}

/// A workload sized for trace synthesis: `scale` multiplies the
/// iteration-count knob, so event volume grows linearly with it (and with
/// `--ranks` for the per-rank patterns). `summa` has no iteration knob and
/// is not synthesizable.
fn scaled_workload(name: &str, scale: u64) -> Option<Box<dyn Workload>> {
    let s = |base: u64| -> u32 { base.saturating_mul(scale).min(u64::from(u32::MAX)) as u32 };
    Some(match name {
        "ring" => Box::new(TokenRing {
            traversals: s(5),
            particles_per_rank: 16,
            work_per_pair: 25,
        }),
        "stencil" => Box::new(Stencil {
            iters: s(20),
            cells_per_rank: 2_000,
            work_per_cell: 40,
            halo_bytes: 1_024,
        }),
        "master-worker" => Box::new(MasterWorker {
            tasks: s(64),
            task_work: 200_000,
            task_bytes: 128,
            result_bytes: 128,
        }),
        "solver" => Box::new(AllreduceSolver {
            iters: s(20),
            local_work: 200_000,
            vector_bytes: 256,
        }),
        "pipeline" => Box::new(Pipeline {
            waves: s(20),
            work_per_stage: 100_000,
            payload: 512,
        }),
        "transpose" => Box::new(Transpose {
            steps: s(10),
            rows_per_rank: 32,
            work_per_element: 10,
            block_bytes: 512,
        }),
        _ => return None,
    })
}

/// `mpgtool gen`: synthesize an arbitrarily large trace for out-of-core
/// replay experiments — a `demo` whose event volume is dialed by `--scale`.
fn cmd_gen(mut args: Vec<String>) -> ExitCode {
    let workload = take_flag(&mut args, "--workload").unwrap_or_else(|| "stencil".into());
    let ranks: u32 = take_flag(&mut args, "--ranks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let scale: u64 = take_flag(&mut args, "--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let seed: u64 = take_flag(&mut args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let [dir] = args.as_slice() else {
        return fail("gen needs a trace directory");
    };
    let Some(w) = scaled_workload(&workload, scale.max(1)) else {
        return fail(&format!(
            "unknown or unscalable workload '{workload}' \
             (one of: ring, stencil, master-worker, solver, pipeline, transpose)"
        ));
    };
    let outcome = match Simulation::new(ranks, PlatformSignature::quiet("mpgtool-gen"))
        .seed(seed)
        .run(|ctx| w.run(ctx))
    {
        Ok(o) => o,
        Err(e) => return fail(&format!("simulation failed: {e}")),
    };
    if let Err(e) = outcome.trace.save(&PathBuf::from(dir)) {
        return fail(&format!("writing trace: {e}"));
    }
    let bytes: u64 = std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0);
    println!(
        "generated '{workload}' x{scale} on {ranks} ranks: {} events, {} MiB on disk -> {dir}",
        outcome.trace.total_events(),
        bytes / (1 << 20),
    );
    ExitCode::SUCCESS
}

fn cmd_demo(mut args: Vec<String>) -> ExitCode {
    let ranks: u32 = take_flag(&mut args, "--ranks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let seed: u64 = take_flag(&mut args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let [name, dir] = args.as_slice() else {
        return fail("demo needs a workload name and a trace directory");
    };
    let Some(w) = workload_by_name(name) else {
        return fail(&format!("unknown workload '{name}'"));
    };
    let outcome = match Simulation::new(ranks, PlatformSignature::quiet("mpgtool"))
        .seed(seed)
        .run(|ctx| w.run(ctx))
    {
        Ok(o) => o,
        Err(e) => return fail(&format!("simulation failed: {e}")),
    };
    if let Err(e) = outcome.trace.save(&PathBuf::from(dir)) {
        return fail(&format!("writing trace: {e}"));
    }
    println!(
        "traced '{name}' on {ranks} ranks: {} events, makespan {} cycles -> {dir}",
        outcome.trace.total_events(),
        outcome.makespan()
    );
    ExitCode::SUCCESS
}

fn cmd_stats(args: Vec<String>) -> ExitCode {
    let [dir] = args.as_slice() else {
        return fail("stats needs a trace directory");
    };
    match open_trace(dir) {
        Ok(trace) => {
            print!("{}", trace_stats(&trace).render());
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

fn cmd_validate(mut args: Vec<String>) -> ExitCode {
    let json = take_switch(&mut args, "--json");
    let [dir] = args.as_slice() else {
        return fail("validate needs a trace directory");
    };
    // Strict read first; when it fails, fall back to the salvage path so
    // validate can still report *which* rank files are missing, short, or
    // corrupt (as MPG-MISSING-RANK / MPG-TRUNCATED-TRACE diagnostics)
    // instead of dying on the first bad byte.
    let (trace, salvage) = match open_trace(dir) {
        Ok(trace) => (trace, None),
        Err(strict_err) => match open_salvage(dir) {
            Ok((trace, report)) => (trace, Some(report)),
            Err(_) => return fail(&strict_err),
        },
    };
    let mut diags = validate_trace_diagnostics(&trace);
    if let Some(report) = &salvage {
        diags.extend(report.diagnostics());
    }
    sort_diagnostics(&mut diags);
    let shown: Vec<&Diagnostic> = diags.iter().collect();
    if json {
        println!("{}", diags_to_json(&shown));
    } else if diags.is_empty() {
        println!(
            "ok: {} events across {} ranks",
            trace.total_events(),
            trace.num_ranks()
        );
    } else {
        for d in &shown {
            println!("{d}");
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `mpgtool lint`: the full static-analysis pipeline of `mpg-lint`.
///
/// Exit code contract (also used by `validate`): 0 when no error-severity
/// diagnostic fired, 1 when at least one did, 2 on usage or I/O errors.
fn cmd_lint(mut args: Vec<String>) -> ExitCode {
    // `lint --explore` is a shorthand for the explore subcommand with its
    // defaults; explore's own flags (--budget etc.) pass straight through.
    if take_switch(&mut args, "--explore") {
        return cmd_explore(args);
    }
    let json = take_switch(&mut args, "--json");
    if take_switch(&mut args, "--help") || take_switch(&mut args, "--rules") {
        // The registry itself (Rule::ALL + Rule::doc/pass) is the single
        // source of truth; DESIGN.md §7 renders the same table and a
        // consistency test keeps the two in sync.
        if json {
            println!("{}", rules_to_json(mpg_trace::Rule::ALL));
        } else {
            println!(
                "{}",
                mpg_analysis::Table::rule_registry(mpg_trace::Rule::ALL).render()
            );
        }
        return ExitCode::SUCCESS;
    }
    if let Some(code) = take_flag(&mut args, "--explain") {
        let Some(rule) = Rule::from_code(&code) else {
            return fail(&format!("unknown rule '{code}' for --explain"));
        };
        if json {
            println!("{}", rule_to_json(rule));
        } else {
            println!("{}", rule.code());
            println!("  severity: {}", rule.default_severity().label());
            println!("  pass:     {}", rule.pass());
            println!("  meaning:  {}", rule.doc());
        }
        return ExitCode::SUCCESS;
    }
    let all = take_switch(&mut args, "--all");
    let salvage = take_switch(&mut args, "--salvage");
    let cache = match take_cache(&mut args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let mut deny: Vec<Rule> = Vec::new();
    while let Some(code) = take_flag(&mut args, "--deny") {
        match Rule::from_code(&code) {
            Some(r) => deny.push(r),
            None => return fail(&format!("unknown rule '{code}' for --deny")),
        }
    }
    let [dir] = args.as_slice() else {
        return fail("lint needs a trace directory");
    };
    // Salvaged traces have no trustworthy content fingerprint — never
    // cached.
    let cache_ctx: Option<(CacheStore, String)> = if salvage {
        None
    } else {
        cache.and_then(|store| cache_trace_key(dir).map(|key| (store, key)))
    };
    let report_key = cache_ctx.as_ref().map(|(_, trace_key)| {
        let mut deny_codes: Vec<&str> = deny.iter().map(|r| r.code()).collect();
        deny_codes.sort_unstable();
        CacheStore::artifact_key(
            trace_key,
            ArtifactKind::Report,
            &format!(
                "cmd=lint;json={json};all={all};deny={};rules={}",
                deny_codes.join(","),
                mpg_lint::ruleset_fingerprint()
            ),
        )
    });
    if let (Some((store, _)), Some(key)) = (&cache_ctx, &report_key) {
        if let Some(code) = cached_report_exit(store, key, "lint report") {
            return code;
        }
    }
    let (trace, mut diags) = if salvage {
        match open_salvage(dir) {
            Ok((t, report)) => {
                let d = mpg_lint::lint_salvaged(&t, &report);
                (t, d)
            }
            Err(e) => return fail(&e),
        }
    } else {
        match open_trace(dir) {
            Ok(t) => {
                let d = match &cache_ctx {
                    Some((store, trace_key)) => mpg_lint::lint_full_cached(&t, store, trace_key),
                    None => mpg_lint::lint_full(&t),
                };
                (t, d)
            }
            Err(e) => return fail(&e),
        }
    };
    for d in &mut diags {
        if deny.contains(&d.rule) {
            d.severity = Severity::Error;
        }
    }
    sort_diagnostics(&mut diags);
    let shown: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| all || d.severity >= Severity::Warning)
        .collect();
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let mut out = String::new();
    if json {
        let _ = writeln!(out, "{}", diags_to_json(&shown));
    } else {
        // Shared with `mpgtool serve` — service lint output must stay
        // byte-identical to this path.
        out.push_str(&mpg_serve::render_lint_report(
            &diags,
            all,
            trace.total_events(),
            trace.num_ranks(),
        ));
    }
    let exit_code: u8 = if errors > 0 { 1 } else { 0 };
    if let (Some((store, _)), Some(key)) = (&cache_ctx, &report_key) {
        publish_report(store, key, exit_code, &out);
    }
    print!("{out}");
    ExitCode::from(exit_code)
}

/// `mpgtool explore`: full lint plus the bounded pass-8 schedule-space
/// walk. Exit contract matches lint (0 clean / 1 errors / 2 usage). With
/// `--cache`, the merged report is checkpointed as a `frontier` artifact;
/// a warm run decodes and re-renders it byte-identically without
/// reopening the trace.
fn cmd_explore(mut args: Vec<String>) -> ExitCode {
    let json = take_switch(&mut args, "--json");
    let all = take_switch(&mut args, "--all");
    let cache = match take_cache(&mut args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let mut deny: Vec<Rule> = Vec::new();
    while let Some(code) = take_flag(&mut args, "--deny") {
        match Rule::from_code(&code) {
            Some(r) => deny.push(r),
            None => return fail(&format!("unknown rule '{code}' for --deny")),
        }
    }
    let mut opts = mpg_lint::ExploreOptions::cli_default();
    macro_rules! parse_flag {
        ($flag:literal, $field:ident, $what:literal) => {
            if let Some(v) = take_flag(&mut args, $flag) {
                match v.parse() {
                    Ok(x) => opts.$field = x,
                    Err(_) => return fail(&format!(concat!("bad ", $what, " '{}'"), v)),
                }
            }
        };
    }
    parse_flag!("--budget", budget, "--budget");
    parse_flag!("--depth", depth, "--depth");
    parse_flag!("--threshold", divergence_pct, "--threshold");
    parse_flag!("--seed", seed, "--seed");
    if !opts.divergence_pct.is_finite() || opts.divergence_pct < 0.0 {
        return fail("--threshold must be a non-negative percentage");
    }
    let [dir] = args.as_slice() else {
        return fail("explore needs a trace directory");
    };
    let cache_ctx: Option<(CacheStore, String)> =
        cache.and_then(|store| cache_trace_key(dir).map(|key| (store, key)));
    let frontier_key = cache_ctx.as_ref().map(|(_, trace_key)| {
        let mut deny_codes: Vec<&str> = deny.iter().map(|r| r.code()).collect();
        deny_codes.sort_unstable();
        CacheStore::artifact_key(
            trace_key,
            ArtifactKind::Frontier,
            &format!(
                "cmd=explore;json={json};all={all};deny={};{};rules={}",
                deny_codes.join(","),
                opts.fingerprint(),
                mpg_lint::ruleset_fingerprint()
            ),
        )
    });
    let render = |diags: &[Diagnostic],
                  stats: &mpg_lint::ExploreStats,
                  total_events: usize,
                  num_ranks: usize| {
        if json {
            let shown: Vec<Diagnostic> = diags
                .iter()
                .filter(|d| all || d.severity >= Severity::Warning)
                .cloned()
                .collect();
            format!("{}\n", mpg_lint::explore_json(&shown, stats))
        } else {
            mpg_serve::render_explore_report(diags, stats, all, total_events, num_ranks)
        }
    };
    let exit_of = |diags: &[Diagnostic]| -> u8 {
        u8::from(diags.iter().any(|d| d.severity == Severity::Error))
    };
    // Warm path: decode the checkpointed frontier and re-render — no
    // trace open, no replay. Any decode anomaly is a silent miss.
    if let (Some((store, _)), Some(key)) = (&cache_ctx, &frontier_key) {
        if let Some((diags, stats, total_events, num_ranks)) = store
            .get(key, ArtifactKind::Frontier)
            .and_then(|bytes| mpg_lint::decode_frontier(&bytes))
        {
            eprintln!("mpgtool: cache: warm hit (explore frontier)");
            let out = render(&diags, &stats, total_events as usize, num_ranks as usize);
            print!("{out}");
            return ExitCode::from(exit_of(&diags));
        }
    }
    let trace = match open_trace(dir) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let mut out = match &cache_ctx {
        Some((store, trace_key)) => {
            mpg_lint::lint_explore_with(&trace, &opts, Some((store, trace_key)))
        }
        None => mpg_lint::lint_explore(&trace, &opts),
    };
    for d in &mut out.diags {
        if deny.contains(&d.rule) {
            d.severity = Severity::Error;
        }
    }
    sort_diagnostics(&mut out.diags);
    let rendered = render(
        &out.diags,
        &out.stats,
        trace.total_events(),
        trace.num_ranks(),
    );
    if let (Some((store, _)), Some(key)) = (&cache_ctx, &frontier_key) {
        // Only complete walks are checkpointed (uncancellable here, but
        // the contract is the same as the service's: a partial frontier
        // must never warm a future run).
        if out.cancelled.is_none() {
            let blob = mpg_lint::encode_frontier(
                &out,
                trace.total_events() as u64,
                trace.num_ranks() as u32,
            );
            let _ = store.put(key, ArtifactKind::Frontier, &blob);
        }
    }
    print!("{rendered}");
    ExitCode::from(exit_of(&out.diags))
}

/// `mpgtool analyze`: static wait-state & slack analysis of a trace — no
/// perturbation, no sweep; just "where does the time go?".
///
/// Records a quiet replay graph (identical to the `lint` pass-3 /
/// `dot` path), runs the zero-drift slack sweep, and renders the exact
/// compute/transfer/wait decomposition, root causes, and tight chains.
/// Exit 0 on success (findings are advisory), 2 on usage/I-O errors or if
/// the accounting identity fails (which would mean the analyzer is wrong
/// about this trace, so no report is better than a lying one).
fn cmd_analyze(mut args: Vec<String>) -> ExitCode {
    let json = take_switch(&mut args, "--json");
    let salvage = take_switch(&mut args, "--salvage");
    let cache = match take_cache(&mut args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let top: usize = take_flag(&mut args, "--top")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let [dir] = args.as_slice() else {
        return fail("analyze needs a trace directory");
    };
    let cfg = ReplayConfig::new(PerturbationModel::quiet("analyze"))
        .seed(0)
        .record_graph(true)
        .crash_tolerant(salvage);
    // Salvaged traces have no trustworthy content fingerprint — never
    // cached.
    let cache_ctx: Option<(CacheStore, String)> = if salvage {
        None
    } else {
        cache.and_then(|store| cache_trace_key(dir).map(|key| (store, key)))
    };
    let report_key = cache_ctx.as_ref().map(|(_, trace_key)| {
        CacheStore::artifact_key(
            trace_key,
            ArtifactKind::Report,
            &format!(
                "cmd=analyze;json={json};top={top};thresholds={:?};{}",
                mpg_lint::PerfThresholds::default(),
                cfg.fingerprint()
            ),
        )
    });
    if let (Some((store, _)), Some(key)) = (&cache_ctx, &report_key) {
        if let Some(code) = cached_report_exit(store, key, "analyze report") {
            return code;
        }
    }
    let mut o = String::new();
    let trace = if salvage {
        match open_salvage(dir) {
            Ok((t, report)) => {
                if !report.is_clean() && !json {
                    let _ = writeln!(o, "salvage: {report}");
                }
                t
            }
            Err(e) => return fail(&e),
        }
    } else {
        match open_trace(dir) {
            Ok(t) => t,
            Err(e) => return fail(&e),
        }
    };
    // On a report miss with caching enabled, the recorded graph itself is
    // still memoized as an MPGA artifact — a warm arena skips the
    // recording replay even when the rendered report key changed (e.g. a
    // different --top).
    let graph = match &cache_ctx {
        Some((store, trace_key)) => {
            match cached_recorded_graph(store, trace_key, &trace, cfg.clone()) {
                Ok((g, _hit)) => g,
                Err(e) => return fail(&format!("replay failed: {e}")),
            }
        }
        None => match Replayer::new(cfg).run(&trace) {
            Ok(r) => r.graph.expect("graph recorded"),
            Err(e) => return fail(&format!("replay failed: {e}")),
        },
    };
    let report = mpg_lint::analyze_graph(&trace, &graph);
    if !report.identity_holds() {
        return fail(&format!(
            "accounting identity violated: compute {} + transfer {} + waits {} != makespan {} x {} ranks",
            report.compute,
            report.transfer,
            report.wait_total(),
            report.makespan,
            report.ranks
        ));
    }
    if json {
        let _ = writeln!(o, "{}", report.to_json());
        if let (Some((store, _)), Some(key)) = (&cache_ctx, &report_key) {
            publish_report(store, key, 0, &o);
        }
        print!("{o}");
        return ExitCode::SUCCESS;
    }

    let total = report.makespan * report.ranks as u64;
    let share = |c: u64| {
        if total == 0 {
            "0.0%".to_string()
        } else {
            mpg_analysis::table::pct(c as f64 / total as f64)
        }
    };
    let _ = writeln!(
        o,
        "analyze: {} ranks, makespan {} cycles, efficiency {} (identity exact: busy + waits == makespan x ranks)",
        report.ranks,
        report.makespan,
        mpg_analysis::table::pct(report.efficiency()),
    );
    if report.causality_clamps > 0 || report.retime_mismatches > 0 {
        let _ = writeln!(
            o,
            "warning: clock skew defeated {} cross-rank comparison(s) ({} re-time mismatch(es)); cross-rank attributions are approximate",
            report.causality_clamps, report.retime_mismatches
        );
    }
    let mut t = Table::new("where the time goes", &["bucket", "cycles", "share"]);
    t.row(vec![
        "compute".into(),
        report.compute.to_string(),
        share(report.compute),
    ]);
    t.row(vec![
        "transfer".into(),
        report.transfer.to_string(),
        share(report.transfer),
    ]);
    for class in mpg_lint::WaitClass::ALL {
        t.row(vec![
            format!("wait:{}", class.label()),
            report.wait[class.idx()].to_string(),
            share(report.wait[class.idx()]),
        ]);
    }
    let _ = write!(o, "{}", t.render());

    let mut t = Table::new("per rank", &["rank", "compute", "transfer", "wait", "busy"]);
    for r in &report.per_rank {
        let busy = r.compute + r.transfer;
        t.row(vec![
            r.rank.to_string(),
            r.compute.to_string(),
            r.transfer.to_string(),
            r.wait_total().to_string(),
            if report.makespan == 0 {
                "100.0%".into()
            } else {
                mpg_analysis::table::pct(busy as f64 / report.makespan as f64)
            },
        ]);
    }
    let _ = write!(o, "{}", t.render());

    if !report.by_op.is_empty() {
        let mut t = Table::new("waits by operation", &["op", "count", "cycles"]);
        for k in report.by_op.iter().take(top) {
            t.row(vec![k.key.clone(), k.count.to_string(), k.wait.to_string()]);
        }
        let _ = write!(o, "{}", t.render());
    }
    if !report.by_tag.is_empty() {
        let mut t = Table::new("waits by tag", &["tag", "count", "cycles"]);
        for k in report.by_tag.iter().take(top) {
            t.row(vec![k.key.clone(), k.count.to_string(), k.wait.to_string()]);
        }
        let _ = write!(o, "{}", t.render());
    }
    if !report.collectives.is_empty() {
        let mut worst: Vec<_> = report.collectives.iter().collect();
        worst.sort_by_key(|c| std::cmp::Reverse(c.total_wait));
        let mut t = Table::new(
            "collectives by wasted cycles",
            &[
                "op",
                "members",
                "wait",
                "cause rank",
                "saved by cause",
                "verdict",
            ],
        );
        for c in worst.iter().take(top) {
            t.row(vec![
                c.op.to_string(),
                c.members.to_string(),
                c.total_wait.to_string(),
                c.cause.0.to_string(),
                c.saved.to_string(),
                if c.dominated {
                    "late rank"
                } else {
                    "imbalance"
                }
                .to_string(),
            ]);
        }
        let _ = write!(o, "{}", t.render());
    }
    if !report.chains.is_empty() {
        let mut t = Table::new(
            "tight chains (index 0 = static critical path)",
            &[
                "anchor rank",
                "finish",
                "steps",
                "msg hops",
                "ranks",
                "chain waits",
            ],
        );
        for c in report.chains.iter().take(top) {
            t.row(vec![
                c.rank.to_string(),
                c.finish.to_string(),
                c.steps.to_string(),
                c.message_hops.to_string(),
                c.ranks_touched.to_string(),
                c.wait_cycles.to_string(),
            ]);
        }
        let _ = write!(o, "{}", t.render());
    }
    let _ = writeln!(
        o,
        "slack: {} of {} edges are zero-slack (the static critical network); perturbations below an edge's slack are absorbed before reaching the finish",
        report.zero_slack_edges, report.edge_count
    );
    let findings = {
        let thresholds = mpg_lint::PerfThresholds::default();
        let mut d = mpg_lint::lint_waitstates(&report, &thresholds);
        d.extend(mpg_lint::lint_chains(&report, &thresholds));
        sort_diagnostics(&mut d);
        d
    };
    for d in &findings {
        let _ = writeln!(o, "{d}");
    }
    if let (Some((store, _)), Some(key)) = (&cache_ctx, &report_key) {
        publish_report(store, key, 0, &o);
    }
    print!("{o}");
    ExitCode::SUCCESS
}

fn cmd_replay(mut args: Vec<String>) -> ExitCode {
    let os_mean: f64 = take_flag(&mut args, "--os")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let latency: f64 = take_flag(&mut args, "--latency")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let per_byte: f64 = take_flag(&mut args, "--per-byte")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let seed: u64 = take_flag(&mut args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let history = take_flag(&mut args, "--history");
    let lint = take_switch(&mut args, "--lint");
    let salvage = take_switch(&mut args, "--salvage");
    let ooc = take_switch(&mut args, "--ooc");
    let cache = match take_cache(&mut args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let shards: usize = take_flag(&mut args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    if lint && salvage {
        // A salvaged partial trace cannot pass the completed-run lint gate
        // (missing finalizes, unmatched tails) — the combination would
        // always refuse to replay.
        return fail("--lint and --salvage are mutually exclusive");
    }
    if ooc && (lint || salvage) {
        // Both need the whole trace in memory (the gate pre-scans it, the
        // salvage path rewrites it), which defeats out-of-core streaming.
        return fail("--ooc is incompatible with --lint and --salvage");
    }
    let [dir] = args.as_slice() else {
        return fail("replay needs a trace directory");
    };

    // Model + config construction shared with `mpgtool serve`.
    let mut cfg =
        mpg_serve::replay_config(os_mean, latency, per_byte, seed).crash_tolerant(salvage);
    if lint {
        cfg = cfg.gate(mpg_lint::replay_gate());
    }

    // Salvaged traces have no trustworthy fingerprint, and --history
    // appends to an external store on every run — neither may short-circuit
    // through the cache.
    let cache_ctx: Option<(CacheStore, String)> = if salvage || history.is_some() {
        None
    } else {
        cache.and_then(|store| cache_trace_key(dir).map(|key| (store, key)))
    };
    let report_key = cache_ctx.as_ref().map(|(_, trace_key)| {
        CacheStore::artifact_key(
            trace_key,
            ArtifactKind::Report,
            &format!(
                "cmd=replay;os={os_mean};latency={latency};per_byte={per_byte};seed={seed};shards={shards};ooc={ooc};lint={lint};{}",
                cfg.fingerprint()
            ),
        )
    });
    if let (Some((store, _)), Some(key)) = (&cache_ctx, &report_key) {
        if let Some(code) = cached_report_exit(store, key, "replay report") {
            return code;
        }
    }
    let mut o = String::new();

    let run = if ooc {
        // Out-of-core: mmap the MPG2 files and stream frames lazily —
        // the trace is never materialized in memory.
        let set = match OocTraceSet::open(Path::new(dir)) {
            Ok(s) => s,
            Err(e) => return fail(&format!("{e} — try `mpgtool fsck {dir}`")),
        };
        let _ = writeln!(
            o,
            "out-of-core: {} ranks, {} records, {} MiB mapped, {} shard(s)",
            set.num_ranks(),
            set.total_records(),
            set.total_bytes() / (1 << 20),
            shards.max(1),
        );
        let streams: Vec<_> = (0..set.num_ranks()).map(|r| set.cursor(r)).collect();
        Replayer::new(cfg).run_streams_parallel(streams, shards)
    } else {
        let trace = if salvage {
            match open_salvage(dir) {
                Ok((t, report)) => {
                    if !report.is_clean() {
                        let _ = writeln!(o, "salvage: {report}");
                    }
                    t
                }
                Err(e) => return fail(&e),
            }
        } else {
            match open_trace(dir) {
                Ok(t) => t,
                Err(e) => return fail(&e),
            }
        };
        if shards > 1 {
            let streams: Vec<Vec<mpg_trace::EventRecord>> = (0..trace.num_ranks())
                .map(|r| trace.rank(r).to_vec())
                .collect();
            Replayer::new(cfg).run_streams_parallel(
                streams.into_iter().map(|v| v.into_iter().map(Ok)).collect(),
                shards,
            )
        } else {
            Replayer::new(cfg).run(&trace)
        }
    };
    let report = match run {
        Ok(r) => r,
        Err(mpg_core::ReplayError::Gated(diags)) => {
            print!("{o}");
            for d in &diags {
                eprintln!("mpgtool: {d}");
            }
            eprintln!(
                "mpgtool: trace rejected by lint gate ({} error(s))",
                diags.len()
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            print!("{o}");
            return fail(&format!("replay failed: {e}"));
        }
    };
    // Shared with `mpgtool serve` — service output must stay
    // byte-identical to this path.
    o.push_str(&mpg_serve::render_replay_report(&report));
    if let Some(hist) = history {
        let store = HistoryStore::at(Path::new(&hist));
        let rec = record_from_report(dir, seed, &report, "mpgtool replay");
        if let Err(e) = store.append(&rec) {
            print!("{o}");
            return fail(&format!("writing history: {e}"));
        }
        let n = store.for_trace(dir).map(|v| v.len()).unwrap_or(0);
        let _ = writeln!(
            o,
            "history: appended to {hist} ({n} record(s) for this trace)"
        );
    }
    if let (Some((store, _)), Some(key)) = (&cache_ctx, &report_key) {
        publish_report(store, key, 0, &o);
    }
    print!("{o}");
    ExitCode::SUCCESS
}

/// Copies the flat trace directory `src` into `dst` (created fresh).
fn copy_trace_dir(src: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name()))?;
        }
    }
    Ok(())
}

/// `mpgtool fsck`: integrity-check (and optionally fault-inject) a trace
/// directory.
///
/// Exit code contract: 0 clean, 1 damaged-but-salvaged, 2 unrecoverable
/// (or usage/I/O error). Scripts rely on this — see `lint.sh`.
fn cmd_fsck(mut args: Vec<String>) -> ExitCode {
    let json = take_switch(&mut args, "--json");
    let inject = take_flag(&mut args, "--inject");
    let seed: u64 = take_flag(&mut args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let out = take_flag(&mut args, "--out");
    let [dir] = args.as_slice() else {
        return fail("fsck needs a trace directory");
    };
    let mut target = PathBuf::from(dir);
    if let Some(kind_name) = inject {
        let Some(kind) = FaultKind::from_name(&kind_name) else {
            let names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
            return fail(&format!(
                "unknown fault kind '{kind_name}' (one of: {})",
                names.join(", ")
            ));
        };
        let dst = out.map_or_else(|| PathBuf::from(format!("{dir}-injected")), PathBuf::from);
        if let Err(e) = copy_trace_dir(&target, &dst) {
            return fail(&format!("copying {dir} -> {}: {e}", dst.display()));
        }
        match inject_dir(&dst, kind, seed) {
            Ok(plan) => eprintln!(
                "fsck: injected into {}: {} (rank {})",
                dst.display(),
                plan.description,
                plan.rank
            ),
            Err(e) => return fail(&format!("injecting fault: {e}")),
        }
        target = dst;
    }
    // Streaming scan: frames are CRC-checked and counted without ever
    // buffering the decoded records, so fsck runs in O(frame) memory even
    // on traces far bigger than RAM.
    match FileTraceSet::scan_salvage(&target) {
        Ok(report) => {
            let status = report.status();
            if json {
                println!("{}", report.to_json());
            } else {
                println!("{report}");
            }
            ExitCode::from(status.exit_code() as u8)
        }
        Err(e) => {
            if json {
                println!(
                    "{{\"status\":\"unrecoverable\",\"error\":\"{}\"}}",
                    e.to_string().replace('\\', "\\\\").replace('"', "\\\"")
                );
            } else {
                eprintln!("mpgtool: unrecoverable trace: {e}");
            }
            ExitCode::from(2)
        }
    }
}

fn cmd_dot(args: Vec<String>) -> ExitCode {
    let [dir] = args.as_slice() else {
        return fail("dot needs a trace directory");
    };
    let trace = match open_trace(dir) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let report =
        match Replayer::new(ReplayConfig::new(PerturbationModel::quiet("dot")).record_graph(true))
            .run(&trace)
        {
            Ok(r) => r,
            Err(e) => return fail(&format!("replay failed: {e}")),
        };
    print!(
        "{}",
        dot::to_dot(report.graph.as_ref().expect("graph recorded"), dir)
    );
    ExitCode::SUCCESS
}

fn cmd_export(args: Vec<String>) -> ExitCode {
    let [dir] = args.as_slice() else {
        return fail("export needs a trace directory");
    };
    match open_trace(dir) {
        Ok(trace) => {
            print!("{}", trace_to_text(&trace));
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

fn cmd_import(args: Vec<String>) -> ExitCode {
    let [file, dir] = args.as_slice() else {
        return fail("import needs a text file and a trace directory");
    };
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {file}: {e}")),
    };
    let trace = match text_to_trace(&text) {
        Ok(t) => t,
        Err(e) => return fail(&format!("parsing {file}: {e}")),
    };
    let violations = validate_trace(&trace);
    if !violations.is_empty() {
        eprintln!(
            "mpgtool: warning: imported trace has {} violation(s)",
            violations.len()
        );
    }
    if let Err(e) = trace.save(&PathBuf::from(dir)) {
        return fail(&format!("writing trace: {e}"));
    }
    println!(
        "imported {} events across {} ranks -> {dir}",
        trace.total_events(),
        trace.num_ranks()
    );
    ExitCode::SUCCESS
}

fn cmd_timeline(mut args: Vec<String>) -> ExitCode {
    let width: usize = take_flag(&mut args, "--width")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let [dir] = args.as_slice() else {
        return fail("timeline needs a trace directory");
    };
    match open_trace(dir) {
        Ok(trace) => {
            print!("{}", render_trace_gantt(&trace, width.clamp(10, 400)));
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

fn cmd_diff(args: Vec<String>) -> ExitCode {
    let [a, b] = args.as_slice() else {
        return fail("diff needs two trace directories");
    };
    let (ta, tb) = match (open_trace(a), open_trace(b)) {
        (Ok(x), Ok(y)) => (x, y),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let (sa, sb) = (trace_stats(&ta), trace_stats(&tb));
    println!("{:>12} {:>20} {:>20} {:>10}", "kind", a, b, "ratio");
    let kinds: std::collections::BTreeSet<&str> = sa
        .by_kind
        .keys()
        .chain(sb.by_kind.keys())
        .copied()
        .collect();
    for kind in kinds {
        let ca = sa.by_kind.get(kind).map_or(0, |k| k.total_cycles);
        let cb = sb.by_kind.get(kind).map_or(0, |k| k.total_cycles);
        let ratio = if ca == 0 {
            f64::INFINITY
        } else {
            cb as f64 / ca as f64
        };
        println!("{kind:>12} {ca:>20} {cb:>20} {ratio:>10.3}");
    }
    println!(
        "{:>12} {:>20} {:>20} {:>10.3}",
        "total span",
        sa.total_span,
        sb.total_span,
        if sa.total_span == 0 {
            f64::INFINITY
        } else {
            sb.total_span as f64 / sa.total_span as f64
        }
    );
    ExitCode::SUCCESS
}

/// `mpgtool bench`: measure replay throughput on the pinned workloads,
/// optionally writing the `BENCH_replay.json` snapshot and/or gating
/// against a recorded one. With `--lint`, measure `lint_full` throughput
/// instead (snapshot `BENCH_lint.json`), same `--out`/`--check` contract.
fn cmd_bench(mut args: Vec<String>) -> ExitCode {
    let lint = take_switch(&mut args, "--lint");
    let no_ooc = take_switch(&mut args, "--no-ooc");
    let no_cache = take_switch(&mut args, "--no-cache");
    let out = take_flag(&mut args, "--out");
    let check = take_flag(&mut args, "--check");
    let threshold: f64 = take_flag(&mut args, "--threshold")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let reps: u32 = take_flag(&mut args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    if !args.is_empty() {
        return fail(&format!("bench: unexpected argument '{}'", args[0]));
    }
    if lint {
        let snap = mpg_analysis::lintperf::measure(reps);
        println!(
            "{:>16} {:>6} {:>10} {:>14}",
            "workload", "ranks", "events", "lint ev/sec"
        );
        for w in &snap.workloads {
            println!(
                "{:>16} {:>6} {:>10} {:>14.0}",
                w.name, w.ranks, w.events, w.events_per_sec
            );
        }
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, snap.to_json()) {
                return fail(&format!("writing {path}: {e}"));
            }
            println!("snapshot: wrote {path}");
        }
        if let Some(path) = check {
            let recorded = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => return fail(&format!("reading {path}: {e}")),
            };
            let msgs = mpg_analysis::lintperf::regressions(&recorded, &snap, threshold);
            if msgs.is_empty() {
                println!("check: within {threshold}% of {path}");
            } else {
                for m in &msgs {
                    eprintln!("mpgtool: bench regression: {m}");
                }
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    let mut snap = mpg_analysis::perf::measure(reps);
    if !no_ooc {
        // The out-of-core section replays ~10⁷ events per rep over a
        // (cached) 93 MiB trace; cap reps so the gate stays minutes-scale.
        match mpg_analysis::perf::measure_ooc(&mpg_analysis::perf::pinned_ooc(), reps.min(3)) {
            Ok(o) => snap.ooc = Some(o),
            Err(e) => return fail(&format!("ooc bench: {e}")),
        }
    }
    if !no_cache {
        // Cold-vs-warm artifact-cache comparison on the same pinned trace;
        // one rep each — the cold leg alone is a full 10^7-event analyze.
        match mpg_analysis::perf::measure_cache(&mpg_analysis::perf::pinned_ooc()) {
            Ok(c) => snap.cache = Some(c),
            Err(e) => return fail(&format!("cache bench: {e}")),
        }
    }
    println!(
        "{:>16} {:>6} {:>10} {:>14} {:>10} {:>13}",
        "workload", "ranks", "events", "events/sec", "wakeups", "polls avoided"
    );
    for w in &snap.workloads {
        println!(
            "{:>16} {:>6} {:>10} {:>14.0} {:>10} {:>13}",
            w.name, w.ranks, w.events, w.events_per_sec, w.scheduler_wakeups, w.polls_avoided
        );
    }
    if let Some(s) = &snap.sweep {
        println!(
            "sweep: {} configs on {} in {} lane batch(es), {} traversal(s) saved: \
             {:.1} configs/sec vs {:.1} threads-only ({:.2}x)",
            s.configs,
            s.workload,
            s.lane_batches,
            s.traversals_saved,
            s.configs_per_sec,
            s.threads_only_configs_per_sec,
            s.speedup_vs_threads()
        );
    }
    if let Some(o) = &snap.ooc {
        println!(
            "ooc: {} on {} ranks, {} events ({:.0} MiB mapped): \
             {:.0} ev/sec windowed, {:.0} ev/sec at {} shards ({:.2}x, {} cpu(s)), \
             peak RSS +{:.1} MiB",
            o.name,
            o.ranks,
            o.events,
            o.trace_mib,
            o.events_per_sec_1shard,
            o.events_per_sec_sharded,
            o.shards,
            o.shard_speedup(),
            o.host_cpus,
            o.peak_rss_growth_mib
        );
    }
    if let Some(c) = &snap.cache {
        println!(
            "cache: {} on {} ranks, {} events: cold analyze {:.2}s, warm {:.3}s ({:.1}x)",
            c.name,
            c.ranks,
            c.events,
            c.cold_secs,
            c.warm_secs,
            c.warm_speedup()
        );
    }
    for n in &snap.notes {
        println!("note: {n}");
    }
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, snap.to_json()) {
            return fail(&format!("writing {path}: {e}"));
        }
        println!("snapshot: wrote {path}");
    }
    if let Some(path) = check {
        let recorded = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("reading {path}: {e}")),
        };
        let msgs = mpg_analysis::perf::regressions(&recorded, &snap, threshold);
        if msgs.is_empty() {
            println!("check: within {threshold}% of {path}");
        } else {
            for m in &msgs {
                eprintln!("mpgtool: bench regression: {m}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `mpgtool cache`: inspect and maintain the on-disk artifact cache.
///
/// `ls` lists entries, `gc --max-mib N` evicts oldest-first down to N MiB
/// (default 512) and sweeps leftover temp files, `clear` removes
/// everything. All operate on `--cache-dir DIR`, else `$MPG_CACHE_DIR`,
/// else the system temp default.
fn cmd_cache(mut args: Vec<String>) -> ExitCode {
    if args.is_empty() {
        return fail("cache needs a subcommand: ls, gc, or clear");
    }
    let sub = args.remove(0);
    let root =
        take_flag(&mut args, "--cache-dir").map_or_else(CacheStore::default_dir, PathBuf::from);
    let max_mib: u64 = take_flag(&mut args, "--max-mib")
        .and_then(|v| v.parse().ok())
        .unwrap_or(512);
    if !args.is_empty() {
        return fail(&format!("cache: unexpected argument '{}'", args[0]));
    }
    let store = match CacheStore::open(&root) {
        Ok(s) => s,
        Err(e) => return fail(&format!("opening cache {}: {e}", root.display())),
    };
    match sub.as_str() {
        "ls" => {
            let entries = store.ls();
            let total: u64 = entries.iter().map(|e| e.bytes).sum();
            println!(
                "cache: {} ({} entries)",
                store.root().display(),
                entries.len()
            );
            for e in &entries {
                println!("{:>12} {}", e.bytes, e.key);
            }
            println!("{:>12} total bytes", total);
            ExitCode::SUCCESS
        }
        "gc" => {
            let (removed, freed) = store.gc(max_mib.saturating_mul(1 << 20));
            println!(
                "cache: gc removed {removed} entr{} ({freed} bytes) keeping <= {max_mib} MiB",
                if removed == 1 { "y" } else { "ies" }
            );
            ExitCode::SUCCESS
        }
        "clear" => {
            let removed = store.clear();
            println!(
                "cache: cleared {removed} entr{}",
                if removed == 1 { "y" } else { "ies" }
            );
            ExitCode::SUCCESS
        }
        other => fail(&format!(
            "unknown cache subcommand '{other}' (ls, gc, clear)"
        )),
    }
}

/// `mpgtool serve`: the supervised job runtime driven by the line
/// protocol (submit/status/result/cancel/wait/stats/check/shutdown — see
/// `mpg_serve::proto`). `--script FILE` reads the command stream from a
/// file; `-` or no flag reads stdin. Exit 0 on a completed stream
/// (protocol-level errors are in-band `err` lines), 2 on usage or I/O
/// failure.
fn cmd_serve(mut args: Vec<String>) -> ExitCode {
    use std::time::Duration;
    let script = take_flag(&mut args, "--script");
    let workers: usize = take_flag(&mut args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let queue: usize = take_flag(&mut args, "--queue")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let deadline_ms: Option<u64> =
        take_flag(&mut args, "--deadline-ms").and_then(|v| v.parse().ok());
    let retries: u32 = take_flag(&mut args, "--retries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let retry_base_ms: u64 = take_flag(&mut args, "--retry-base-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let chaos_seed: u64 = take_flag(&mut args, "--chaos-seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let chaos_ops = take_flag(&mut args, "--chaos");
    let cache = match take_cache(&mut args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    if let Some(extra) = args.first() {
        return fail(&format!("serve: unexpected argument '{extra}'"));
    }
    let chaos = match chaos_ops {
        Some(list) => {
            let fams: Vec<&str> = list.split(',').filter(|s| !s.is_empty()).collect();
            match mpg_serve::ChaosPlan::seeded(chaos_seed, &fams) {
                Ok(p) => p,
                Err(e) => return fail(&e),
            }
        }
        None => mpg_serve::ChaosPlan::none(),
    };
    let rt = mpg_serve::JobRuntime::start(mpg_serve::RuntimeConfig {
        workers,
        queue_depth: queue,
        default_deadline: deadline_ms.map(Duration::from_millis),
        retry: mpg_serve::RetryPolicy {
            attempts: retries.max(1),
            base: Duration::from_millis(retry_base_ms),
            seed: chaos_seed,
        },
        cache,
        chaos,
    });
    let stdout = std::io::stdout();
    let res = match script.as_deref() {
        None | Some("-") => {
            mpg_serve::serve_script(std::io::stdin().lock(), &mut stdout.lock(), &rt)
        }
        Some(path) => match std::fs::File::open(path) {
            Ok(f) => mpg_serve::serve_script(std::io::BufReader::new(f), &mut stdout.lock(), &rt),
            Err(e) => return fail(&format!("serve: opening {path}: {e}")),
        },
    };
    rt.shutdown(Duration::from_secs(60));
    match res {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&format!("serve: {e}")),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "demo" => cmd_demo(args),
        "gen" => cmd_gen(args),
        "stats" => cmd_stats(args),
        "validate" => cmd_validate(args),
        "lint" => cmd_lint(args),
        "explore" => cmd_explore(args),
        "analyze" => cmd_analyze(args),
        "fsck" => cmd_fsck(args),
        "replay" => cmd_replay(args),
        "dot" => cmd_dot(args),
        "export" => cmd_export(args),
        "import" => cmd_import(args),
        "timeline" => cmd_timeline(args),
        "diff" => cmd_diff(args),
        "bench" => cmd_bench(args),
        "cache" => cmd_cache(args),
        "serve" => cmd_serve(args),
        _ => usage(),
    }
}
