//! Tests for the extended MPI-1 surface: `MPI_Test` and the
//! scatter/gather/allgather/alltoall collectives, in both abstract and
//! expanded modes (the paper's "expand to support more of the MPI-1
//! primitives" future-work item).

use mpg_noise::PlatformSignature;
use mpg_sim::{CollectiveMode, RankCtx, Simulation};
use mpg_trace::{validate_trace, EventKind, MemTrace};

fn run(p: u32, mode: CollectiveMode, f: impl Fn(&mut RankCtx) + Sync) -> MemTrace {
    Simulation::new(p, PlatformSignature::quiet("t"))
        .ideal_clocks()
        .collective_mode(mode)
        .run(f)
        .unwrap()
        .trace
}

#[test]
fn test_probe_pending_then_done() {
    let trace = run(2, CollectiveMode::Abstract, |ctx| {
        if ctx.rank() == 0 {
            let r = ctx.irecv(1, 0);
            // Probe immediately: the peer computes first, so this must be
            // pending.
            assert!(ctx.test(r).is_none());
            ctx.compute(10_000_000);
            // Now the message has long arrived.
            let info = ctx.test(r).expect("completed").expect("receive envelope");
            assert_eq!(info.src, 1);
            assert_eq!(info.bytes, 64);
        } else {
            ctx.compute(1_000_000);
            ctx.send(0, 0, 64);
        }
    });
    assert!(validate_trace(&trace).is_empty());
    let tests: Vec<bool> = trace
        .rank(0)
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Test { completed, .. } => Some(completed),
            _ => None,
        })
        .collect();
    assert_eq!(tests, vec![false, true]);
}

#[test]
fn test_probe_loop_with_compute_overlap() {
    // The classic test-loop: poll while doing useful work.
    let trace = run(2, CollectiveMode::Abstract, |ctx| {
        if ctx.rank() == 0 {
            let r = ctx.irecv(1, 0);
            let mut polls = 0;
            loop {
                if ctx.test(r).is_some() {
                    break;
                }
                ctx.compute(50_000);
                polls += 1;
                assert!(polls < 1_000, "test never completed");
            }
        } else {
            ctx.compute(500_000);
            ctx.send(0, 0, 8);
        }
    });
    assert!(validate_trace(&trace).is_empty());
}

#[test]
fn abstract_collectives_complete_and_synchronize() {
    for p in [2u32, 3, 4, 8] {
        let trace = run(p, CollectiveMode::Abstract, |ctx| {
            ctx.scatter(0, 128);
            ctx.compute(10_000);
            ctx.gather(0, 128);
            ctx.allgather(64);
            ctx.alltoall(32);
        });
        assert!(validate_trace(&trace).is_empty(), "p={p}");
        for r in 0..p as usize {
            let names: Vec<&str> = trace
                .rank(r)
                .iter()
                .filter(|e| e.kind.is_collective())
                .map(|e| e.kind.name())
                .collect();
            assert_eq!(
                names,
                vec!["scatter", "gather", "allgather", "alltoall"],
                "p={p}"
            );
        }
    }
}

#[test]
fn expanded_scatter_gather_message_counts() {
    for p in [2u32, 4, 5, 8] {
        let trace = run(p, CollectiveMode::Expanded, |ctx| {
            ctx.scatter(0, 256);
        });
        assert!(validate_trace(&trace).is_empty(), "p={p}");
        // Tree scatter moves exactly p−1 messages.
        let sends: usize = (0..p as usize)
            .map(|r| {
                trace
                    .rank(r)
                    .iter()
                    .filter(|e| matches!(e.kind, EventKind::Send { .. }))
                    .count()
            })
            .sum();
        assert_eq!(sends, (p - 1) as usize, "scatter p={p}");

        let trace = run(p, CollectiveMode::Expanded, |ctx| {
            ctx.gather(0, 256);
        });
        assert!(validate_trace(&trace).is_empty(), "p={p}");
        let sends: usize = (0..p as usize)
            .map(|r| {
                trace
                    .rank(r)
                    .iter()
                    .filter(|e| matches!(e.kind, EventKind::Send { .. }))
                    .count()
            })
            .sum();
        assert_eq!(sends, (p - 1) as usize, "gather p={p}");
    }
}

#[test]
fn expanded_allgather_and_alltoall_complete() {
    for p in [2u32, 3, 4, 6, 8] {
        let trace = run(p, CollectiveMode::Expanded, |ctx| {
            ctx.allgather(64);
            ctx.alltoall(32);
        });
        assert!(validate_trace(&trace).is_empty(), "p={p}");
        // Neither leaves any abstract collective events behind.
        for r in 0..p as usize {
            assert!(trace.rank(r).iter().all(|e| !e.kind.is_collective()));
        }
    }
}

#[test]
fn scatter_root_charged_like_bcast() {
    // Scatter with heavy injected latency: the root's rounds dominate.
    let trace = run(4, CollectiveMode::Abstract, |ctx| {
        ctx.scatter(2, 1024);
    });
    let mut model = mpg_core::PerturbationModel::quiet("m");
    model.latency = mpg_noise::Dist::Constant(500.0).into();
    let report = mpg_core::Replayer::new(mpg_core::ReplayConfig::new(model))
        .run(&trace)
        .unwrap();
    // 2 rounds (log2 4) charged to the root only → hub = 1000 for everyone.
    assert_eq!(report.final_drift, vec![1000; 4]);
}

#[test]
fn alltoall_charges_p_minus_one_rounds() {
    let trace = run(4, CollectiveMode::Abstract, |ctx| {
        ctx.alltoall(0);
    });
    let mut model = mpg_core::PerturbationModel::quiet("m");
    model.latency = mpg_noise::Dist::Constant(100.0).into();
    let report = mpg_core::Replayer::new(mpg_core::ReplayConfig::new(model))
        .run(&trace)
        .unwrap();
    // p−1 = 3 rounds × 100 cycles.
    assert_eq!(report.final_drift, vec![300; 4]);
}

#[test]
fn replay_identity_on_extended_primitives() {
    for mode in [CollectiveMode::Abstract, CollectiveMode::Expanded] {
        let trace = run(4, mode, |ctx| {
            // Ring exchange: receive from the previous rank, send to the next.
            let r = ctx.irecv((ctx.rank() + 3) % 4, 3);
            let s = ctx.isend((ctx.rank() + 1) % 4, 3, 16);
            ctx.waitall(&[r, s]);
            ctx.scatter(0, 64);
            ctx.gather(0, 64);
            ctx.allgather(32);
            ctx.alltoall(16);
        });
        let report = mpg_core::Replayer::new(mpg_core::ReplayConfig::new(
            mpg_core::PerturbationModel::quiet("id"),
        ))
        .run(&trace)
        .unwrap();
        assert_eq!(report.final_drift, vec![0; 4], "{mode:?}");
    }
}

#[test]
fn dimemas_handles_extended_primitives() {
    let trace = run(4, CollectiveMode::Abstract, |ctx| {
        ctx.compute(10_000);
        ctx.scatter(0, 128);
        ctx.gather(0, 128);
        ctx.allgather(64);
        ctx.alltoall(32);
    });
    let model = mpg_des::MachineModel::from_signature(&PlatformSignature::quiet("t"));
    let report = mpg_des::DimemasReplay::new(model).run(&trace).unwrap();
    assert!(report.makespan() > 10_000);
}
