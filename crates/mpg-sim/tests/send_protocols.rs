//! §3.1.1's three blocking-send forms — synchronous, buffered, ready —
//! exercised through the simulator and verified end-to-end in the replay.

use mpg_noise::PlatformSignature;
use mpg_sim::{SendMode, SimError, Simulation};
use mpg_trace::{EventKind, SendProtocol};

#[test]
fn ssend_blocks_until_receiver_even_under_eager_platform() {
    // Even with a fully-eager platform protocol, MPI_Ssend must couple to
    // the receiver.
    let out = Simulation::new(2, PlatformSignature::quiet("t"))
        .ideal_clocks()
        .send_mode(SendMode::Eager {
            threshold: u64::MAX,
        })
        .run(|ctx| {
            if ctx.rank() == 0 {
                ctx.ssend(1, 0, 64);
            } else {
                ctx.compute(1_000_000);
                ctx.recv(0, 0);
            }
        })
        .unwrap();
    let send = &out.trace.rank(0)[1];
    assert!(matches!(
        send.kind,
        EventKind::Send {
            protocol: SendProtocol::Synchronous,
            ..
        }
    ));
    // Send end covers the receiver's million-cycle delay plus the ack.
    assert!(
        send.t_end > 1_000_000,
        "ssend returned early: {}",
        send.t_end
    );
}

#[test]
fn bsend_returns_locally_even_under_sync_platform() {
    let out = Simulation::new(2, PlatformSignature::quiet("t"))
        .ideal_clocks()
        .run(|ctx| {
            if ctx.rank() == 0 {
                ctx.bsend(1, 0, 100);
            } else {
                ctx.compute(1_000_000);
                ctx.recv(0, 0);
            }
        })
        .unwrap();
    let send = &out.trace.rank(0)[1];
    assert!(matches!(
        send.kind,
        EventKind::Send {
            protocol: SendProtocol::Buffered,
            ..
        }
    ));
    // o(300) + inject(50): no receiver coupling.
    assert_eq!(send.duration(), 350);
}

#[test]
fn bsend_bsend_exchange_cannot_deadlock() {
    // The classic head-to-head exchange that deadlocks with synchronous
    // sends is the textbook Bsend use case.
    Simulation::new(2, PlatformSignature::quiet("t"))
        .run(|ctx| {
            let peer = 1 - ctx.rank();
            ctx.bsend(peer, 0, 64);
            ctx.recv(peer, 0);
        })
        .unwrap();
}

#[test]
fn rsend_with_posted_receive_succeeds() {
    let out = Simulation::new(2, PlatformSignature::quiet("t"))
        .ideal_clocks()
        .run(|ctx| {
            if ctx.rank() == 0 {
                let r = ctx.irecv(1, 0);
                // Tell the peer the receive is posted.
                ctx.send(1, 9, 1);
                ctx.wait(r);
            } else {
                ctx.recv(0, 9);
                ctx.rsend(0, 0, 64);
            }
        })
        .unwrap();
    let rsend = out
        .trace
        .rank(1)
        .iter()
        .find(|e| {
            matches!(
                e.kind,
                EventKind::Send {
                    protocol: SendProtocol::Ready,
                    ..
                }
            )
        })
        .expect("rsend traced");
    // Local completion: o + inject only.
    assert_eq!(rsend.duration(), 332);
}

#[test]
fn rsend_without_posted_receive_is_an_error() {
    let err = Simulation::new(2, PlatformSignature::quiet("t"))
        .run(|ctx| {
            if ctx.rank() == 0 {
                ctx.rsend(1, 0, 64);
            } else {
                ctx.compute(1_000);
                ctx.recv(0, 0);
            }
        })
        .unwrap_err();
    match err {
        SimError::InvalidOperation { rank: 0, detail } => {
            assert!(detail.contains("ready send"), "{detail}");
        }
        other => panic!("expected invalid-operation, got {other}"),
    }
}

#[test]
fn replay_honors_per_event_protocols() {
    // One of each send form toward a slow receiver; inject latency and check
    // whose completion moves.
    let out = Simulation::new(2, PlatformSignature::quiet("t"))
        .ideal_clocks()
        .run(|ctx| {
            if ctx.rank() == 0 {
                ctx.ssend(1, 1, 64);
                ctx.bsend(1, 2, 64);
                ctx.recv(1, 3);
            } else {
                ctx.recv(0, 1);
                ctx.recv(0, 2);
                ctx.send(1 - 1, 3, 8); // handshake back (standard send)
            }
        })
        .unwrap();
    let mut model = mpg_core::PerturbationModel::quiet("m");
    model.latency = mpg_noise::Dist::Constant(1_000.0).into();
    // Global ack_arm off: only the Ssend may keep its acknowledgement arm.
    let report = mpg_core::Replayer::new(
        mpg_core::ReplayConfig::new(model)
            .ack_arm(false)
            .record_graph(true),
    )
    .run(&out.trace)
    .unwrap();
    let graph = report.graph.as_ref().unwrap();
    let drifts = graph.propagate();
    // Find rank 0's send end drifts in order: ssend then bsend.
    let sends: Vec<i64> = out
        .trace
        .rank(0)
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Send { .. }))
        .map(|e| {
            drifts
                .get(&mpg_core::NodeId::end(0, e.seq))
                .copied()
                .unwrap_or(0)
        })
        .collect();
    assert_eq!(sends.len(), 2);
    // Ssend: forward λ (1000) + ack λ (1000) = 2000 drift. The following
    // Bsend inherits that chain drift but adds nothing of its own (no
    // acknowledgement arm).
    assert_eq!(sends[0], 2_000, "{sends:?}");
    assert_eq!(sends[1], sends[0], "bsend must not add drift: {sends:?}");
}

#[test]
fn protocols_roundtrip_through_disk() {
    let out = Simulation::new(2, PlatformSignature::quiet("t"))
        .ideal_clocks()
        .run(|ctx| {
            if ctx.rank() == 0 {
                ctx.ssend(1, 0, 8);
                ctx.bsend(1, 1, 8);
            } else {
                ctx.recv(0, 0);
                ctx.recv(0, 1);
            }
        })
        .unwrap();
    let dir = std::env::temp_dir().join(format!("mpg-proto-{}", std::process::id()));
    out.trace.save(&dir).unwrap();
    let loaded = mpg_trace::FileTraceSet::open(&dir).unwrap().load().unwrap();
    assert_eq!(loaded, out.trace);
    // And through the text format.
    let text = mpg_trace::trace_to_text(&out.trace);
    assert!(text.contains("proto=sync"));
    assert!(text.contains("proto=buffered"));
    assert_eq!(mpg_trace::text_to_trace(&text).unwrap(), out.trace);
    std::fs::remove_dir_all(&dir).unwrap();
}
