//! The rank-side API: what a simulated MPI program calls.
//!
//! Every method on [`RankCtx`] traps into the coordinator over a channel and
//! blocks the rank's thread until the coordinator has advanced virtual time
//! and replied. From the program's perspective these behave exactly like the
//! corresponding MPI-1 calls; from the simulator's perspective each call is
//! one event to sequence.

use crossbeam_channel::{Receiver, Sender};

use crate::collective;
use crate::message::RecvInfo;
use crate::program::CollectiveMode;
use crate::Cycles;
use mpg_trace::{Rank, ReqId, SendProtocol, Tag};

/// Sentinel panic payload used to unwind rank threads when the simulation
/// aborts; the thread wrapper recognizes and swallows it.
pub(crate) const ABORT: &str = "__mpg_sim_abort__";

/// A nonblocking-request handle (MPI's `MPI_Request`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Req(pub(crate) ReqId);

/// Operations a rank can request from the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Op {
    Init,
    Compute {
        work: Cycles,
    },
    Send {
        dst: Rank,
        tag: Tag,
        bytes: u64,
        protocol: SendProtocol,
    },
    Recv {
        src: Rank,
        tag: Tag,
    },
    Isend {
        dst: Rank,
        tag: Tag,
        bytes: u64,
    },
    Irecv {
        src: Rank,
        tag: Tag,
    },
    Wait {
        req: ReqId,
    },
    WaitAll {
        reqs: Vec<ReqId>,
    },
    WaitSome {
        reqs: Vec<ReqId>,
    },
    Test {
        req: ReqId,
    },
    Barrier,
    Bcast {
        root: Rank,
        bytes: u64,
    },
    Reduce {
        root: Rank,
        bytes: u64,
    },
    Allreduce {
        bytes: u64,
    },
    Scatter {
        root: Rank,
        bytes: u64,
    },
    Gather {
        root: Rank,
        bytes: u64,
    },
    Allgather {
        bytes: u64,
    },
    Alltoall {
        bytes: u64,
    },
    Finalize,
}

impl Op {
    /// Short description for deadlock diagnostics.
    pub(crate) fn describe(&self) -> String {
        match self {
            Op::Send {
                dst, tag, protocol, ..
            } => {
                format!("send(dst={dst}, tag={tag}, {protocol:?})")
            }
            Op::Recv { src, tag } => format!("recv(src={src}, tag={tag})"),
            Op::Wait { req } => format!("wait(req={req})"),
            Op::WaitAll { reqs } => format!("waitall({} reqs)", reqs.len()),
            Op::WaitSome { reqs } => format!("waitsome({} reqs)", reqs.len()),
            Op::Barrier => "barrier".into(),
            Op::Bcast { root, .. } => format!("bcast(root={root})"),
            Op::Reduce { root, .. } => format!("reduce(root={root})"),
            Op::Allreduce { .. } => "allreduce".into(),
            Op::Scatter { root, .. } => format!("scatter(root={root})"),
            Op::Gather { root, .. } => format!("gather(root={root})"),
            Op::Allgather { .. } => "allgather".into(),
            Op::Alltoall { .. } => "alltoall".into(),
            other => format!("{other:?}"),
        }
    }
}

/// Coordinator replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Reply {
    /// Operation finished; the rank's clock is now `now`.
    Done { now: Cycles },
    /// A blocking receive finished.
    Recv { now: Cycles, info: RecvInfo },
    /// A nonblocking operation was posted; `req` identifies it.
    Started { now: Cycles, req: ReqId },
    /// A wait finished; `info` is present when it completed a receive.
    WaitDone { now: Cycles, info: Option<RecvInfo> },
    /// A waitsome finished with the given completed subset.
    SomeDone { now: Cycles, completed: Vec<ReqId> },
    /// A test probe returned: `completed` tells whether the request
    /// finished; `info` carries the envelope for completed receives.
    TestDone {
        now: Cycles,
        completed: bool,
        info: Option<RecvInfo>,
    },
}

/// Messages from rank threads to the coordinator.
#[derive(Debug)]
pub(crate) enum Incoming {
    /// The rank requests an operation.
    Op { rank: Rank, op: Op },
    /// The rank's thread terminated abnormally (panic in user code).
    Panicked { rank: Rank, message: String },
}

/// Per-rank MPI-like handle passed to rank programs.
pub struct RankCtx {
    rank: Rank,
    size: u32,
    now: Cycles,
    tx: Sender<Incoming>,
    rx: Receiver<Reply>,
    pub(crate) collective_mode: CollectiveMode,
    pub(crate) finalized: bool,
}

impl RankCtx {
    pub(crate) fn new(
        rank: Rank,
        size: u32,
        tx: Sender<Incoming>,
        rx: Receiver<Reply>,
        collective_mode: CollectiveMode,
    ) -> Self {
        Self {
            rank,
            size,
            now: 0,
            tx,
            rx,
            collective_mode,
            finalized: false,
        }
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the job (MPI's `MPI_Comm_size` on `COMM_WORLD`).
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Current virtual time on this rank's clock (cycles).
    pub fn now(&self) -> Cycles {
        self.now
    }

    fn call(&mut self, op: Op) -> Reply {
        assert!(!self.finalized, "MPI call after finalize");
        if self
            .tx
            .send(Incoming::Op {
                rank: self.rank,
                op,
            })
            .is_err()
        {
            std::panic::panic_any(ABORT);
        }
        match self.rx.recv() {
            // A closed channel means the coordinator aborted; unwind.
            Err(_) => std::panic::panic_any(ABORT),
            Ok(reply) => {
                self.now = match &reply {
                    Reply::Done { now }
                    | Reply::Recv { now, .. }
                    | Reply::Started { now, .. }
                    | Reply::WaitDone { now, .. }
                    | Reply::SomeDone { now, .. }
                    | Reply::TestDone { now, .. } => *now,
                };
                reply
            }
        }
    }

    fn expect_done(&mut self, op: Op) {
        match self.call(op) {
            Reply::Done { .. } => {}
            other => unreachable!("coordinator protocol violation: {other:?}"),
        }
    }

    pub(crate) fn init(&mut self) {
        self.expect_done(Op::Init);
    }

    pub(crate) fn finalize(&mut self) {
        self.expect_done(Op::Finalize);
        self.finalized = true;
    }

    /// Performs `work` cycles of local computation (the platform may stretch
    /// the interval with OS noise).
    pub fn compute(&mut self, work: Cycles) {
        self.expect_done(Op::Compute { work });
    }

    /// Blocking standard send (`MPI_Send`): completion follows the
    /// platform's configured protocol (synchronous by default, matching the
    /// paper's Eq. 1).
    pub fn send(&mut self, dst: Rank, tag: Tag, bytes: u64) {
        self.expect_done(Op::Send {
            dst,
            tag,
            bytes,
            protocol: SendProtocol::Standard,
        });
    }

    /// Synchronous send (`MPI_Ssend`, §3.1.1): always completes only after
    /// the matching receive, regardless of the platform's eager threshold.
    pub fn ssend(&mut self, dst: Rank, tag: Tag, bytes: u64) {
        self.expect_done(Op::Send {
            dst,
            tag,
            bytes,
            protocol: SendProtocol::Synchronous,
        });
    }

    /// Buffered send (`MPI_Bsend`, §3.1.1): always completes after the local
    /// buffer copy, independent of the receiver.
    pub fn bsend(&mut self, dst: Rank, tag: Tag, bytes: u64) {
        self.expect_done(Op::Send {
            dst,
            tag,
            bytes,
            protocol: SendProtocol::Buffered,
        });
    }

    /// Ready send (`MPI_Rsend`, §3.1.1): requires the matching receive to be
    /// already posted; calling it otherwise is an erroneous program and
    /// aborts the simulation with an error.
    pub fn rsend(&mut self, dst: Rank, tag: Tag, bytes: u64) {
        self.expect_done(Op::Send {
            dst,
            tag,
            bytes,
            protocol: SendProtocol::Ready,
        });
    }

    /// Blocking receive from `src` (or [`mpg_trace::ANY_SOURCE`]) with `tag`
    /// (or [`mpg_trace::ANY_TAG`]). Returns the matched envelope.
    pub fn recv(&mut self, src: Rank, tag: Tag) -> RecvInfo {
        match self.call(Op::Recv { src, tag }) {
            Reply::Recv { info, .. } => info,
            other => unreachable!("coordinator protocol violation: {other:?}"),
        }
    }

    /// Nonblocking send; complete with [`wait`](Self::wait) or friends.
    pub fn isend(&mut self, dst: Rank, tag: Tag, bytes: u64) -> Req {
        match self.call(Op::Isend { dst, tag, bytes }) {
            Reply::Started { req, .. } => Req(req),
            other => unreachable!("coordinator protocol violation: {other:?}"),
        }
    }

    /// Nonblocking receive.
    pub fn irecv(&mut self, src: Rank, tag: Tag) -> Req {
        match self.call(Op::Irecv { src, tag }) {
            Reply::Started { req, .. } => Req(req),
            other => unreachable!("coordinator protocol violation: {other:?}"),
        }
    }

    /// Blocks until `req` completes; returns the envelope when it was a
    /// receive.
    pub fn wait(&mut self, req: Req) -> Option<RecvInfo> {
        match self.call(Op::Wait { req: req.0 }) {
            Reply::WaitDone { info, .. } => info,
            other => unreachable!("coordinator protocol violation: {other:?}"),
        }
    }

    /// Blocks until every request in `reqs` completes.
    pub fn waitall(&mut self, reqs: &[Req]) {
        match self.call(Op::WaitAll {
            reqs: reqs.iter().map(|r| r.0).collect(),
        }) {
            Reply::WaitDone { .. } => {}
            other => unreachable!("coordinator protocol violation: {other:?}"),
        }
    }

    /// Blocks until at least one request completes; returns the completed
    /// subset.
    pub fn waitsome(&mut self, reqs: &[Req]) -> Vec<Req> {
        match self.call(Op::WaitSome {
            reqs: reqs.iter().map(|r| r.0).collect(),
        }) {
            Reply::SomeDone { completed, .. } => completed.into_iter().map(Req).collect(),
            other => unreachable!("coordinator protocol violation: {other:?}"),
        }
    }

    /// Nonblocking completion probe (MPI's `MPI_Test`): returns
    /// `Some(envelope)` when the request completed (consuming it; the
    /// envelope is `Some` only for receives), `None` when it is still in
    /// flight (the request stays live).
    #[allow(clippy::option_option)]
    pub fn test(&mut self, req: Req) -> Option<Option<RecvInfo>> {
        match self.call(Op::Test { req: req.0 }) {
            Reply::TestDone {
                completed, info, ..
            } => completed.then_some(info),
            other => unreachable!("coordinator protocol violation: {other:?}"),
        }
    }

    /// Combined send-to-`dst` / receive-from-`src` (MPI's `MPI_Sendrecv`),
    /// built on nonblocking primitives so it cannot deadlock in rings.
    pub fn sendrecv(
        &mut self,
        dst: Rank,
        send_tag: Tag,
        bytes: u64,
        src: Rank,
        recv_tag: Tag,
    ) -> RecvInfo {
        let r = self.irecv(src, recv_tag);
        let s = self.isend(dst, send_tag, bytes);
        let info = self.wait(r).expect("irecv wait returns envelope");
        self.wait(s);
        info
    }

    /// Barrier over all ranks.
    pub fn barrier(&mut self) {
        match self.collective_mode {
            CollectiveMode::Abstract => self.expect_done(Op::Barrier),
            CollectiveMode::Expanded => collective::expanded_barrier(self),
        }
    }

    /// Broadcast of `bytes` from `root`.
    pub fn bcast(&mut self, root: Rank, bytes: u64) {
        match self.collective_mode {
            CollectiveMode::Abstract => self.expect_done(Op::Bcast { root, bytes }),
            CollectiveMode::Expanded => collective::expanded_bcast(self, root, bytes),
        }
    }

    /// Reduction of `bytes` to `root`.
    pub fn reduce(&mut self, root: Rank, bytes: u64) {
        match self.collective_mode {
            CollectiveMode::Abstract => self.expect_done(Op::Reduce { root, bytes }),
            CollectiveMode::Expanded => collective::expanded_reduce(self, root, bytes),
        }
    }

    /// All-reduce of `bytes` (Fig. 4's operator).
    pub fn allreduce(&mut self, bytes: u64) {
        match self.collective_mode {
            CollectiveMode::Abstract => self.expect_done(Op::Allreduce { bytes }),
            CollectiveMode::Expanded => collective::expanded_allreduce(self, bytes),
        }
    }

    /// Scatter of `bytes` per rank from `root`.
    pub fn scatter(&mut self, root: Rank, bytes: u64) {
        match self.collective_mode {
            CollectiveMode::Abstract => self.expect_done(Op::Scatter { root, bytes }),
            CollectiveMode::Expanded => collective::expanded_scatter(self, root, bytes),
        }
    }

    /// Gather of `bytes` per rank to `root`.
    pub fn gather(&mut self, root: Rank, bytes: u64) {
        match self.collective_mode {
            CollectiveMode::Abstract => self.expect_done(Op::Gather { root, bytes }),
            CollectiveMode::Expanded => collective::expanded_gather(self, root, bytes),
        }
    }

    /// All-gather of `bytes` per rank.
    pub fn allgather(&mut self, bytes: u64) {
        match self.collective_mode {
            CollectiveMode::Abstract => self.expect_done(Op::Allgather { bytes }),
            CollectiveMode::Expanded => collective::expanded_allgather(self, bytes),
        }
    }

    /// All-to-all personalized exchange of `bytes` per pair.
    pub fn alltoall(&mut self, bytes: u64) {
        match self.collective_mode {
            CollectiveMode::Abstract => self.expect_done(Op::Alltoall { bytes }),
            CollectiveMode::Expanded => collective::expanded_alltoall(self, bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_describe_is_short() {
        assert_eq!(
            Op::Send {
                dst: 3,
                tag: 1,
                bytes: 10,
                protocol: SendProtocol::Standard
            }
            .describe(),
            "send(dst=3, tag=1, Standard)"
        );
        assert_eq!(Op::Barrier.describe(), "barrier");
        assert_eq!(
            Op::WaitAll {
                reqs: vec![1, 2, 3]
            }
            .describe(),
            "waitall(3 reqs)"
        );
    }
}
