//! PMPI-style trace emission from the coordinator.
//!
//! Records arrive from the coordinator in *completion* order, which for one
//! rank can differ from sequence order in exactly one case: an `Irecv`
//! record is held back until its match resolves the actual source (a real
//! PMPI wrapper has the same constraint — the status is only known at the
//! wait). [`SeqBuffer`] reorders per rank, releasing the densely-numbered
//! prefix, so streaming sinks still write in order with bounded memory.
//!
//! Timestamps handed to a tracer are **global** virtual times; the tracer
//! converts them to each rank's local clock via its [`ClockModel`], so the
//! traces leaving the simulator are unsynchronized exactly like real
//! multi-node traces (§4.1).

use std::collections::BTreeMap;

use mpg_trace::{ClockModel, EventRecord, MemTrace, Seq};

/// Per-rank sequence reordering buffer.
#[derive(Debug, Default)]
pub struct SeqBuffer {
    next: Seq,
    held: BTreeMap<Seq, EventRecord>,
}

impl SeqBuffer {
    /// Inserts a record; returns every record now releasable in order.
    pub fn push(&mut self, rec: EventRecord) -> Vec<EventRecord> {
        debug_assert!(rec.seq >= self.next, "duplicate or stale seq {}", rec.seq);
        self.held.insert(rec.seq, rec);
        let mut out = Vec::new();
        while let Some(rec) = self.held.remove(&self.next) {
            self.next += 1;
            out.push(rec);
        }
        out
    }

    /// Records still held (nonzero at finish indicates a coordinator bug or
    /// an aborted run).
    pub fn pending(&self) -> usize {
        self.held.len()
    }
}

/// Sink for simulator-produced events.
pub trait Tracer: Send {
    /// Accepts one record with **global** timestamps; may arrive out of
    /// per-rank sequence order (bounded by outstanding requests).
    fn emit(&mut self, rec: EventRecord);

    /// Flushes and finalizes. Returns a trace when the sink collects one.
    fn finish(&mut self) -> Result<Option<MemTrace>, String>;
}

/// Discards everything (benchmark mode).
#[derive(Debug, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn emit(&mut self, _rec: EventRecord) {}
    fn finish(&mut self) -> Result<Option<MemTrace>, String> {
        Ok(None)
    }
}

/// Collects an in-memory [`MemTrace`], applying per-rank clock models.
#[derive(Debug)]
pub struct MemTracer {
    clocks: Vec<ClockModel>,
    buffers: Vec<SeqBuffer>,
    trace: MemTrace,
}

impl MemTracer {
    /// Creates a tracer for `ranks` ranks with the given clock models
    /// (`clocks.len() == ranks`).
    pub fn new(clocks: Vec<ClockModel>) -> Self {
        let ranks = clocks.len();
        Self {
            clocks,
            buffers: (0..ranks).map(|_| SeqBuffer::default()).collect(),
            trace: MemTrace::new(ranks),
        }
    }
}

impl Tracer for MemTracer {
    fn emit(&mut self, mut rec: EventRecord) {
        let clock = &self.clocks[rec.rank as usize];
        rec.t_start = clock.to_local(rec.t_start);
        rec.t_end = clock.to_local(rec.t_end);
        for ready in self.buffers[rec.rank as usize].push(rec) {
            self.trace.push(ready);
        }
    }

    fn finish(&mut self) -> Result<Option<MemTrace>, String> {
        if let Some(n) = self.buffers.iter().map(SeqBuffer::pending).find(|&n| n > 0) {
            return Err(format!("{n} trace records never released (gap in seq)"));
        }
        Ok(Some(std::mem::take(&mut self.trace)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_trace::EventKind;

    fn rec(rank: u32, seq: u64, t: u64) -> EventRecord {
        EventRecord {
            rank,
            seq,
            t_start: t,
            t_end: t + 10,
            kind: EventKind::Compute { work: 10 },
        }
    }

    #[test]
    fn seqbuffer_releases_in_order() {
        let mut b = SeqBuffer::default();
        assert!(b.push(rec(0, 1, 10)).is_empty());
        assert!(b.push(rec(0, 2, 20)).is_empty());
        let out = b.push(rec(0, 0, 0));
        assert_eq!(out.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn memtracer_applies_clock_and_orders() {
        let clocks = vec![
            ClockModel {
                offset: 1000,
                drift_ppm: 0.0,
            },
            ClockModel::ideal(),
        ];
        let mut t = MemTracer::new(clocks);
        t.emit(rec(0, 1, 100));
        t.emit(rec(1, 0, 50));
        t.emit(rec(0, 0, 0));
        let trace = t.finish().unwrap().unwrap();
        let r0 = trace.rank(0);
        assert_eq!(r0.len(), 2);
        assert_eq!(r0[0].seq, 0);
        assert_eq!(r0[0].t_start, 1000); // offset applied
        assert_eq!(r0[1].t_start, 1100);
        assert_eq!(trace.rank(1)[0].t_start, 50);
    }

    #[test]
    fn memtracer_detects_gaps() {
        let mut t = MemTracer::new(vec![ClockModel::ideal()]);
        t.emit(rec(0, 1, 0));
        assert!(t.finish().is_err());
    }

    #[test]
    fn null_tracer_returns_nothing() {
        let mut t = NullTracer;
        t.emit(rec(0, 0, 0));
        assert_eq!(t.finish().unwrap(), None);
    }
}
