//! The interconnect model: samples per-message latency, transfer, and
//! acknowledgement times from the platform signature.
//!
//! All sampling for a message happens **at send issue, on the sender's
//! stream**, so the coordinator's processing order can never perturb the
//! random sequence (a requirement for bit-level determinism).

use crate::Cycles;
use mpg_noise::{PlatformSignature, SampleDist, StreamRng};

/// Pre-sampled timing for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgTiming {
    /// One-way wire latency (the paper's `δ_λ1` position).
    pub latency: Cycles,
    /// Size-dependent transfer time (`δ_t(d)`).
    pub transfer: Cycles,
    /// Return-path latency for synchronous-completion acknowledgement
    /// (`δ_λ2`).
    pub ack_latency: Cycles,
}

/// Samples message timings against one platform.
#[derive(Debug)]
pub struct NetworkModel {
    signature: PlatformSignature,
    /// One RNG per sender rank; message n from rank r is the nth draw on
    /// stream r regardless of global interleaving.
    send_rngs: Vec<StreamRng>,
}

impl NetworkModel {
    /// Stream-label namespace for network draws (distinct from noise RNGs).
    const STREAM_NET: u64 = 0x004E_4554;

    /// Creates the model for `ranks` ranks.
    pub fn new(signature: PlatformSignature, ranks: usize, seed: u64) -> Self {
        let send_rngs = (0..ranks)
            .map(|r| StreamRng::new(seed, Self::STREAM_NET ^ ((r as u64) << 20)))
            .collect();
        Self {
            signature,
            send_rngs,
        }
    }

    /// Samples the timing of a message of `bytes` from `src`.
    pub fn sample(&mut self, src: u32, bytes: u64) -> MsgTiming {
        let rng = &mut self.send_rngs[src as usize];
        MsgTiming {
            latency: self.signature.latency.sample(rng),
            transfer: self.signature.bandwidth.transfer_cycles(bytes, rng),
            ack_latency: self.signature.latency.sample(rng),
        }
    }

    /// Per-operation messaging-software overhead.
    pub fn sw_overhead(&self) -> Cycles {
        self.signature.sw_overhead
    }

    /// Deterministic cost of copying an eager message into the transport
    /// buffer (the eager send completes after this, independent of the
    /// receiver).
    pub fn inject_cost(&self, bytes: u64) -> Cycles {
        (bytes as f64 * self.signature.bandwidth.cycles_per_byte).round() as Cycles
    }

    /// The platform this model samples.
    pub fn signature(&self) -> &PlatformSignature {
        &self.signature
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_noise::PlatformSignature;

    #[test]
    fn quiet_platform_sampling_is_constant() {
        let mut n = NetworkModel::new(PlatformSignature::quiet("q"), 2, 1);
        let a = n.sample(0, 1000);
        let b = n.sample(0, 1000);
        assert_eq!(a, b);
        assert_eq!(a.latency, 2000);
        assert_eq!(a.transfer, 500); // 1000 bytes * 0.5 cpb
    }

    #[test]
    fn per_sender_streams_are_independent_of_interleaving() {
        let sig = PlatformSignature::noisy("n", 1.0);
        let mut x = NetworkModel::new(sig.clone(), 2, 42);
        let mut y = NetworkModel::new(sig, 2, 42);
        // x: rank0, rank0, rank1 — y: rank1, rank0, rank0.
        let x0a = x.sample(0, 64);
        let x0b = x.sample(0, 64);
        let x1 = x.sample(1, 64);
        let y1 = y.sample(1, 64);
        let y0a = y.sample(0, 64);
        let y0b = y.sample(0, 64);
        assert_eq!(x0a, y0a);
        assert_eq!(x0b, y0b);
        assert_eq!(x1, y1);
    }

    #[test]
    fn bigger_messages_take_longer_on_average() {
        let mut n = NetworkModel::new(PlatformSignature::noisy("n", 1.0), 1, 7);
        let small: u64 = (0..200).map(|_| n.sample(0, 100).transfer).sum();
        let big: u64 = (0..200).map(|_| n.sample(0, 100_000).transfer).sum();
        assert!(big > small * 10);
    }
}
