//! Simulation failure modes.

/// Errors terminating a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Every live rank is blocked and no operation can make progress — the
    /// program has a genuine communication deadlock (e.g. two synchronous
    /// sends facing each other).
    Deadlock {
        /// Human-readable dump of each blocked rank's pending operation.
        blocked: Vec<String>,
    },
    /// Ranks disagreed on the collective sequence (rank A's nth collective
    /// is a barrier, rank B's is an allreduce, …).
    CollectiveMismatch {
        /// Index of the collective in program order.
        epoch: u64,
        /// Per-rank descriptions of the mismatched operations.
        detail: String,
    },
    /// A rank program panicked; the simulation cannot be trusted past this.
    RankPanicked {
        /// The panicking rank.
        rank: u32,
        /// Panic payload when it was a string.
        message: String,
    },
    /// An operation referenced an invalid rank, request, or parameter.
    InvalidOperation {
        /// The offending rank.
        rank: u32,
        /// What was wrong.
        detail: String,
    },
    /// Trace emission failed (I/O).
    Trace(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(f, "deadlock: all ranks blocked: {}", blocked.join("; "))
            }
            SimError::CollectiveMismatch { epoch, detail } => {
                write!(f, "collective mismatch at epoch {epoch}: {detail}")
            }
            SimError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            SimError::InvalidOperation { rank, detail } => {
                write!(f, "invalid operation on rank {rank}: {detail}")
            }
            SimError::Trace(m) => write!(f, "trace error: {m}"),
        }
    }
}

impl std::error::Error for SimError {}
