//! Message and request bookkeeping types shared by the matching engine and
//! the coordinator.

use crate::Cycles;
use mpg_trace::{Rank, ReqId, Tag, ANY_SOURCE, ANY_TAG};

/// What a completed receive learned from the matched message — the shape of
/// MPI's `MPI_Status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvInfo {
    /// Actual source rank.
    pub src: Rank,
    /// Actual tag.
    pub tag: Tag,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// Who is blocked on (or tracking) one side of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Party {
    /// A blocking call: the rank thread is parked until completion.
    Blocking,
    /// A nonblocking call: completion lands in the request table under this
    /// id.
    Request(ReqId),
}

/// A message whose send side has been issued but which has not yet matched a
/// receive.
#[derive(Debug, Clone)]
pub struct MsgInFlight {
    /// Sender rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Payload size.
    pub bytes: u64,
    /// Global time the sender entered the send operation.
    pub send_enter: Cycles,
    /// Global time the last byte reaches the receiver (overhead + latency +
    /// transfer, all sampled at send issue on the sender's streams).
    pub arrival: Cycles,
    /// Pre-sampled acknowledgement latency for the synchronous-send
    /// completion arm (the paper's `δ_λ2`).
    pub ack_latency: Cycles,
    /// How the sender's completion is delivered.
    pub sender: Party,
    /// True when the sender used an eager protocol and already completed.
    pub sender_done: bool,
}

/// A receive that has been posted but not yet matched.
#[derive(Debug, Clone)]
pub struct PostedRecv {
    /// Receiver rank.
    pub dst: Rank,
    /// Source pattern (`ANY_SOURCE` allowed).
    pub src_pattern: Rank,
    /// Tag pattern (`ANY_TAG` allowed).
    pub tag_pattern: Tag,
    /// Global time the receiver entered the receive operation.
    pub posted_at: Cycles,
    /// How the receiver's completion is delivered.
    pub receiver: Party,
    /// Monotone post index used for MPI's posted-receive ordering.
    pub order: u64,
}

impl PostedRecv {
    /// Does this posted receive accept a message with `(src, tag)`?
    pub fn matches(&self, src: Rank, tag: Tag) -> bool {
        (self.src_pattern == ANY_SOURCE || self.src_pattern == src)
            && (self.tag_pattern == ANY_TAG || self.tag_pattern == tag)
    }

    /// True when the receive was posted with a wildcard source.
    pub fn posted_any_source(&self) -> bool {
        self.src_pattern == ANY_SOURCE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posted(src: Rank, tag: Tag) -> PostedRecv {
        PostedRecv {
            dst: 0,
            src_pattern: src,
            tag_pattern: tag,
            posted_at: 0,
            receiver: Party::Blocking,
            order: 0,
        }
    }

    #[test]
    fn pattern_matching() {
        assert!(posted(3, 7).matches(3, 7));
        assert!(!posted(3, 7).matches(4, 7));
        assert!(!posted(3, 7).matches(3, 8));
        assert!(posted(ANY_SOURCE, 7).matches(9, 7));
        assert!(posted(3, ANY_TAG).matches(3, 123));
        assert!(posted(ANY_SOURCE, ANY_TAG).matches(5, 5));
    }

    #[test]
    fn any_source_flag() {
        assert!(posted(ANY_SOURCE, 0).posted_any_source());
        assert!(!posted(2, 0).posted_any_source());
    }
}
