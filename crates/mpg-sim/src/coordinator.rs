//! The virtual-time coordinator: a strict sequencer over rank requests.
//!
//! # Protocol
//!
//! Every rank thread is, at any instant, in exactly one of four states:
//!
//! * **running** — executing user code; the coordinator waits for its next
//!   request before making any global decision (conservative sequencing);
//! * **pending** — its request has arrived but not been processed;
//! * **parked** — its request was processed but cannot complete yet
//!   (blocking send/recv awaiting a match, wait awaiting a request,
//!   collective awaiting peers);
//! * **done** — it has finalized.
//!
//! The main loop (a) drains the channel until no rank is running, (b)
//! completes any parked waits whose requests resolved, in rank order, then
//! (c) processes the pending request with the smallest `(enter time, rank)`
//! key. Because no decision is made while a rank is still running, and all
//! randomness comes from per-rank streams, the simulation is deterministic.
//!
//! # Timing model
//!
//! With software overhead `o`, sampled one-way latency `λ`, size-dependent
//! transfer `T(d)` and ack latency `λ2` (all drawn at send issue):
//!
//! * message arrival  = `send_enter + o + λ + T(d)`
//! * receive end      = `max(arrival, recv_enter + o)`
//! * synchronous send = `max(send_enter + o, recv_end + λ2)` — the
//!   acknowledgement arm of the paper's Eq. 1
//! * eager send       = `send_enter + o + inject(d)`, independent of the
//!   receiver
//! * collectives      = the paper's Fig. 4 ⌈log₂ p⌉-round abstract model
//!   (see `Coordinator::complete_collective`).

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

use crossbeam_channel::Receiver;

use crate::error::SimError;
use crate::matching::MatchEngine;
use crate::message::{MsgInFlight, Party, PostedRecv, RecvInfo};
use crate::network::NetworkModel;
use crate::program::SendMode;
use crate::rank::{Incoming, Op, Reply};
use crate::tracer::Tracer;
use crate::Cycles;
use crossbeam_channel::Sender;
use mpg_noise::{NoiseProcess, OsNoiseModel, StreamRng};
use mpg_trace::{EventKind, EventRecord, Rank, ReqId, SendProtocol, Seq, ANY_SOURCE};

/// Fixed virtual cost of `MPI_Init` / `MPI_Finalize` bookkeeping.
pub(crate) const INIT_COST: Cycles = 1_000;
pub(crate) const FINALIZE_COST: Cycles = 1_000;
/// Fixed per-round combine cost added to collective rounds beyond the
/// byte-proportional part.
const COLLECTIVE_ROUND_BASE: Cycles = 100;

/// Aggregate counters reported in [`SimOutcome`](crate::SimOutcome).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total traced events.
    pub events: u64,
    /// Point-to-point messages transferred.
    pub messages: u64,
    /// Total payload bytes moved point-to-point.
    pub bytes: u64,
    /// Cycles stolen by OS noise across all ranks.
    pub noise_stolen: Cycles,
    /// Collective operations completed.
    pub collectives: u64,
    /// High-water mark of unmatched in-flight messages.
    pub max_in_flight: usize,
}

#[derive(Debug)]
enum ReqSlot {
    /// Isend issued, counterpart not yet matched.
    PendingSend,
    /// Irecv posted, counterpart not yet matched; holds what is needed to
    /// emit the trace record once the source is known.
    PendingRecv(IrecvStash),
    /// Completed at `time`.
    Complete {
        time: Cycles,
        info: Option<RecvInfo>,
    },
}

#[derive(Debug)]
struct IrecvStash {
    seq: Seq,
    t_start: Cycles,
    t_end: Cycles,
    req: ReqId,
    posted_any: bool,
}

#[derive(Debug)]
struct RankState {
    now: Cycles,
    /// Request arrived, not yet processed.
    pending_op: Option<Op>,
    /// Processed but blocked.
    parked: Option<Op>,
    done: bool,
    reqs: HashMap<ReqId, ReqSlot>,
    next_req: ReqId,
    seq: Seq,
    coll_epoch: u64,
}

impl RankState {
    fn new() -> Self {
        Self {
            now: 0,
            pending_op: None,
            parked: None,
            done: false,
            reqs: HashMap::new(),
            next_req: 1,
            seq: 0,
            coll_epoch: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum CollKind {
    Barrier,
    Bcast { root: Rank, bytes: u64 },
    Reduce { root: Rank, bytes: u64 },
    Allreduce { bytes: u64 },
    Scatter { root: Rank, bytes: u64 },
    Gather { root: Rank, bytes: u64 },
    Allgather { bytes: u64 },
    Alltoall { bytes: u64 },
}

#[derive(Debug)]
struct CollSlot {
    kind: CollKind,
    /// `(rank, enter_time)` in arrival order; sorted by rank at completion.
    entries: Vec<(Rank, Cycles)>,
}

/// The sequencer. Constructed and driven by
/// [`Simulation::run`](crate::Simulation::run).
pub struct Coordinator<'t> {
    p: u32,
    send_mode: SendMode,
    states: Vec<RankState>,
    engine: MatchEngine,
    net: NetworkModel,
    os_noise: OsNoiseModel,
    noise_rngs: Vec<StreamRng>,
    coll_rngs: Vec<StreamRng>,
    collectives: HashMap<u64, CollSlot>,
    tracer: &'t mut dyn Tracer,
    reply_txs: Vec<Sender<Reply>>,
    rx: Receiver<Incoming>,
    /// Ranks currently executing user code (their next request is owed).
    running: u32,
    /// Pending requests keyed by (enter time, rank).
    queue: BinaryHeap<Reverse<(Cycles, Rank)>>,
    /// Parked ranks whose wait may have become satisfiable.
    worklist: BTreeSet<Rank>,
    stats: SimStats,
    finish_times: Vec<Cycles>,
}

impl<'t> Coordinator<'t> {
    const STREAM_NOISE: u64 = 0x4F53;
    const STREAM_COLL: u64 = 0x0043_4F4C;

    /// Builds a coordinator for `p` ranks. `reply_txs[r]` is rank `r`'s
    /// reply channel; `rx` receives all rank requests.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        p: u32,
        seed: u64,
        send_mode: SendMode,
        net: NetworkModel,
        os_noise: OsNoiseModel,
        tracer: &'t mut dyn Tracer,
        reply_txs: Vec<Sender<Reply>>,
        rx: Receiver<Incoming>,
    ) -> Self {
        Self {
            p,
            send_mode,
            states: (0..p).map(|_| RankState::new()).collect(),
            engine: MatchEngine::new(),
            net,
            os_noise,
            noise_rngs: (0..p)
                .map(|r| StreamRng::new(seed, Self::STREAM_NOISE ^ (u64::from(r) << 20)))
                .collect(),
            coll_rngs: (0..p)
                .map(|r| StreamRng::new(seed, Self::STREAM_COLL ^ (u64::from(r) << 20)))
                .collect(),
            collectives: HashMap::new(),
            tracer,
            reply_txs,
            rx,
            running: p,
            queue: BinaryHeap::new(),
            worklist: BTreeSet::new(),
            stats: SimStats::default(),
            finish_times: vec![0; p as usize],
        }
    }

    /// Runs the simulation to completion.
    pub(crate) fn run(mut self) -> Result<(SimStats, Vec<Cycles>), SimError> {
        loop {
            // (a) Hold every running rank's next request.
            while self.running > 0 {
                match self.rx.recv() {
                    Ok(Incoming::Op { rank, op }) => {
                        self.running -= 1;
                        let st = &mut self.states[rank as usize];
                        debug_assert!(st.pending_op.is_none());
                        st.pending_op = Some(op);
                        self.queue.push(Reverse((st.now, rank)));
                    }
                    Ok(Incoming::Panicked { rank, message }) => {
                        return Err(SimError::RankPanicked { rank, message });
                    }
                    Err(_) => {
                        return Err(SimError::RankPanicked {
                            rank: u32::MAX,
                            message: "rank threads disconnected".into(),
                        });
                    }
                }
            }
            // (b) Complete satisfiable parked waits, lowest rank first.
            if let Some(&r) = self.worklist.iter().next() {
                self.worklist.remove(&r);
                self.try_wait_progress(r)?;
                continue;
            }
            // (c) Process the earliest pending request.
            if let Some(Reverse((_, rank))) = self.queue.pop() {
                let op = self.states[rank as usize]
                    .pending_op
                    .take()
                    .expect("queue entry without pending op");
                self.handle_op(rank, op)?;
                continue;
            }
            // (d) Termination or deadlock.
            if self.states.iter().all(|s| s.done) {
                return Ok((self.stats, self.finish_times));
            }
            let blocked: Vec<String> = self
                .states
                .iter()
                .enumerate()
                .filter_map(|(r, s)| {
                    s.parked
                        .as_ref()
                        .map(|op| format!("rank {r}: {}", op.describe()))
                })
                .collect();
            let mut blocked = blocked;
            blocked.push(self.engine.dump());
            return Err(SimError::Deadlock { blocked });
        }
    }

    fn emit(&mut self, rank: Rank, t_start: Cycles, t_end: Cycles, kind: EventKind) {
        let st = &mut self.states[rank as usize];
        let seq = st.seq;
        st.seq += 1;
        self.stats.events += 1;
        self.tracer.emit(EventRecord {
            rank,
            seq,
            t_start,
            t_end,
            kind,
        });
    }

    /// Emits a record with a pre-reserved sequence number (irecv patching).
    fn emit_at(&mut self, rank: Rank, seq: Seq, t_start: Cycles, t_end: Cycles, kind: EventKind) {
        self.stats.events += 1;
        self.tracer.emit(EventRecord {
            rank,
            seq,
            t_start,
            t_end,
            kind,
        });
    }

    fn reserve_seq(&mut self, rank: Rank) -> Seq {
        let st = &mut self.states[rank as usize];
        let seq = st.seq;
        st.seq += 1;
        seq
    }

    /// Replies to a rank, unblocking its thread and advancing its clock.
    fn reply(&mut self, rank: Rank, reply: Reply, now: Cycles) {
        self.states[rank as usize].now = now;
        self.running += 1;
        // A send failure means the thread is gone; the main loop will
        // observe the disconnect.
        let _ = self.reply_txs[rank as usize].send(reply);
    }

    fn invalid(&self, rank: Rank, detail: impl Into<String>) -> SimError {
        SimError::InvalidOperation {
            rank,
            detail: detail.into(),
        }
    }

    fn check_peer(&self, rank: Rank, peer: Rank, allow_any: bool) -> Result<(), SimError> {
        if peer == rank {
            return Err(self.invalid(rank, "self-message is not supported"));
        }
        if peer < self.p || (allow_any && peer == ANY_SOURCE) {
            Ok(())
        } else {
            Err(self.invalid(rank, format!("peer {peer} out of range (p={})", self.p)))
        }
    }

    fn handle_op(&mut self, rank: Rank, op: Op) -> Result<(), SimError> {
        let t = self.states[rank as usize].now;
        let o = self.net.sw_overhead();
        match op {
            Op::Init => {
                let end = t + INIT_COST;
                self.emit(rank, t, end, EventKind::Init);
                self.reply(rank, Reply::Done { now: end }, end);
            }
            Op::Compute { work } => {
                let stolen = self
                    .os_noise
                    .stolen(t, work, &mut self.noise_rngs[rank as usize]);
                self.stats.noise_stolen += stolen;
                let end = t + work + stolen;
                self.emit(rank, t, end, EventKind::Compute { work });
                self.reply(rank, Reply::Done { now: end }, end);
            }
            Op::Send {
                dst,
                tag,
                bytes,
                protocol,
            } => {
                self.check_peer(rank, dst, false)?;
                let timing = self.net.sample(rank, bytes);
                // §3.1.1: the standard send follows the platform protocol;
                // Ssend is always acknowledged; Bsend/Rsend complete locally
                // (Rsend additionally demands an already-posted receive).
                let eager = match protocol {
                    SendProtocol::Standard => self.send_mode.is_eager(bytes),
                    SendProtocol::Synchronous => false,
                    SendProtocol::Buffered | SendProtocol::Ready => true,
                };
                let msg = MsgInFlight {
                    src: rank,
                    dst,
                    tag,
                    bytes,
                    send_enter: t,
                    arrival: t + o + timing.latency + timing.transfer,
                    ack_latency: timing.ack_latency,
                    sender: Party::Blocking,
                    sender_done: eager,
                };
                self.stats.messages += 1;
                self.stats.bytes += bytes;
                if eager {
                    let end = t + o + self.net.inject_cost(bytes);
                    self.emit(
                        rank,
                        t,
                        end,
                        EventKind::Send {
                            peer: dst,
                            tag,
                            bytes,
                            protocol,
                        },
                    );
                    self.reply(rank, Reply::Done { now: end }, end);
                } else {
                    self.states[rank as usize].parked = Some(Op::Send {
                        dst,
                        tag,
                        bytes,
                        protocol,
                    });
                }
                let matched = self.engine.post_send(msg);
                if protocol == SendProtocol::Ready && matched.is_none() {
                    return Err(self.invalid(
                        rank,
                        format!("ready send to {dst} without a posted receive"),
                    ));
                }
                if let Some((msg, pr)) = matched {
                    self.complete_match(msg, pr);
                }
                self.note_in_flight();
            }
            Op::Recv { src, tag } => {
                self.check_peer(rank, src, true)?;
                let order = self.engine.next_post_order();
                let pr = PostedRecv {
                    dst: rank,
                    src_pattern: src,
                    tag_pattern: tag,
                    posted_at: t,
                    receiver: Party::Blocking,
                    order,
                };
                self.states[rank as usize].parked = Some(Op::Recv { src, tag });
                if let Some((msg, pr)) = self.engine.post_recv(pr) {
                    self.complete_match(msg, pr);
                }
            }
            Op::Isend { dst, tag, bytes } => {
                self.check_peer(rank, dst, false)?;
                let st = &mut self.states[rank as usize];
                let req = st.next_req;
                st.next_req += 1;
                let timing = self.net.sample(rank, bytes);
                let eager = self.send_mode.is_eager(bytes);
                let msg = MsgInFlight {
                    src: rank,
                    dst,
                    tag,
                    bytes,
                    send_enter: t,
                    arrival: t + o + timing.latency + timing.transfer,
                    ack_latency: timing.ack_latency,
                    sender: Party::Request(req),
                    sender_done: eager,
                };
                self.stats.messages += 1;
                self.stats.bytes += bytes;
                let slot = if eager {
                    ReqSlot::Complete {
                        time: t + o + self.net.inject_cost(bytes),
                        info: None,
                    }
                } else {
                    ReqSlot::PendingSend
                };
                self.states[rank as usize].reqs.insert(req, slot);
                self.emit(
                    rank,
                    t,
                    t + o,
                    EventKind::Isend {
                        peer: dst,
                        tag,
                        bytes,
                        req,
                    },
                );
                if let Some((msg, pr)) = self.engine.post_send(msg) {
                    self.complete_match(msg, pr);
                }
                self.note_in_flight();
                self.reply(rank, Reply::Started { now: t + o, req }, t + o);
            }
            Op::Irecv { src, tag } => {
                self.check_peer(rank, src, true)?;
                let st = &mut self.states[rank as usize];
                let req = st.next_req;
                st.next_req += 1;
                let seq = self.reserve_seq(rank);
                let stash = IrecvStash {
                    seq,
                    t_start: t,
                    t_end: t + o,
                    req,
                    posted_any: src == ANY_SOURCE,
                };
                self.states[rank as usize]
                    .reqs
                    .insert(req, ReqSlot::PendingRecv(stash));
                let order = self.engine.next_post_order();
                let pr = PostedRecv {
                    dst: rank,
                    src_pattern: src,
                    tag_pattern: tag,
                    posted_at: t,
                    receiver: Party::Request(req),
                    order,
                };
                if let Some((msg, pr)) = self.engine.post_recv(pr) {
                    self.complete_match(msg, pr);
                }
                self.reply(rank, Reply::Started { now: t + o, req }, t + o);
            }
            Op::Wait { .. } | Op::WaitAll { .. } | Op::WaitSome { .. } => {
                self.states[rank as usize].parked = Some(op);
                self.try_wait_progress(rank)?;
            }
            Op::Barrier => self.enter_collective(rank, t, CollKind::Barrier, Op::Barrier)?,
            Op::Bcast { root, bytes } => {
                self.check_root(rank, root)?;
                self.enter_collective(
                    rank,
                    t,
                    CollKind::Bcast { root, bytes },
                    Op::Bcast { root, bytes },
                )?;
            }
            Op::Reduce { root, bytes } => {
                self.check_root(rank, root)?;
                self.enter_collective(
                    rank,
                    t,
                    CollKind::Reduce { root, bytes },
                    Op::Reduce { root, bytes },
                )?;
            }
            Op::Allreduce { bytes } => {
                self.enter_collective(
                    rank,
                    t,
                    CollKind::Allreduce { bytes },
                    Op::Allreduce { bytes },
                )?;
            }
            Op::Scatter { root, bytes } => {
                self.check_root(rank, root)?;
                self.enter_collective(
                    rank,
                    t,
                    CollKind::Scatter { root, bytes },
                    Op::Scatter { root, bytes },
                )?;
            }
            Op::Gather { root, bytes } => {
                self.check_root(rank, root)?;
                self.enter_collective(
                    rank,
                    t,
                    CollKind::Gather { root, bytes },
                    Op::Gather { root, bytes },
                )?;
            }
            Op::Allgather { bytes } => {
                self.enter_collective(
                    rank,
                    t,
                    CollKind::Allgather { bytes },
                    Op::Allgather { bytes },
                )?;
            }
            Op::Alltoall { bytes } => {
                self.enter_collective(
                    rank,
                    t,
                    CollKind::Alltoall { bytes },
                    Op::Alltoall { bytes },
                )?;
            }
            Op::Test { req } => {
                let end = t + o;
                let slot_ready = match self.states[rank as usize].reqs.get(&req) {
                    None => return Err(self.invalid(rank, format!("test on unknown req {req}"))),
                    Some(ReqSlot::Complete { time, info }) if *time <= end => Some((*time, *info)),
                    Some(_) => None,
                };
                let (completed, info) = match slot_ready {
                    Some((_, info)) => {
                        self.states[rank as usize].reqs.remove(&req);
                        (true, info)
                    }
                    // Conservative snapshot: an unmatched (or not-yet-done)
                    // request reports pending, as a real MPI_Test may.
                    None => (false, None),
                };
                self.emit(rank, t, end, EventKind::Test { req, completed });
                self.reply(
                    rank,
                    Reply::TestDone {
                        now: end,
                        completed,
                        info,
                    },
                    end,
                );
            }
            Op::Finalize => {
                let end = t + FINALIZE_COST;
                self.emit(rank, t, end, EventKind::Finalize);
                self.states[rank as usize].now = end;
                self.states[rank as usize].done = true;
                self.finish_times[rank as usize] = end;
                // Deliberately not counted as running: the thread exits after
                // this reply, owing no further request.
                let _ = self.reply_txs[rank as usize].send(Reply::Done { now: end });
            }
        }
        Ok(())
    }

    fn check_root(&self, rank: Rank, root: Rank) -> Result<(), SimError> {
        if root < self.p {
            Ok(())
        } else {
            Err(self.invalid(rank, format!("root {root} out of range (p={})", self.p)))
        }
    }

    fn note_in_flight(&mut self) {
        self.stats.max_in_flight = self.stats.max_in_flight.max(self.engine.in_flight_count());
    }

    /// Resolves a matched (message, posted-receive) pair: computes both end
    /// times, emits trace records, and unblocks or completes each party.
    fn complete_match(&mut self, msg: MsgInFlight, pr: PostedRecv) {
        let o = self.net.sw_overhead();
        let recv_end = msg.arrival.max(pr.posted_at + o);
        let info = RecvInfo {
            src: msg.src,
            tag: msg.tag,
            bytes: msg.bytes,
        };
        match pr.receiver {
            Party::Blocking => {
                self.emit(
                    pr.dst,
                    pr.posted_at,
                    recv_end,
                    EventKind::Recv {
                        peer: msg.src,
                        tag: msg.tag,
                        bytes: msg.bytes,
                        posted_any: pr.posted_any_source(),
                    },
                );
                self.states[pr.dst as usize].parked = None;
                self.reply(
                    pr.dst,
                    Reply::Recv {
                        now: recv_end,
                        info,
                    },
                    recv_end,
                );
            }
            Party::Request(req) => {
                let slot = self.states[pr.dst as usize]
                    .reqs
                    .get_mut(&req)
                    .expect("matched request missing from table");
                let ReqSlot::PendingRecv(stash) = std::mem::replace(
                    slot,
                    ReqSlot::Complete {
                        time: recv_end,
                        info: Some(info),
                    },
                ) else {
                    unreachable!("irecv request in non-pending state at match");
                };
                self.emit_at(
                    pr.dst,
                    stash.seq,
                    stash.t_start,
                    stash.t_end,
                    EventKind::Irecv {
                        peer: msg.src,
                        tag: msg.tag,
                        bytes: msg.bytes,
                        req: stash.req,
                        posted_any: stash.posted_any,
                    },
                );
                self.worklist.insert(pr.dst);
            }
        }
        if !msg.sender_done {
            let send_end = (msg.send_enter + o).max(recv_end + msg.ack_latency);
            match msg.sender {
                Party::Blocking => {
                    let protocol = match self.states[msg.src as usize].parked {
                        Some(Op::Send { protocol, .. }) => protocol,
                        _ => SendProtocol::Standard,
                    };
                    self.emit(
                        msg.src,
                        msg.send_enter,
                        send_end,
                        EventKind::Send {
                            peer: msg.dst,
                            tag: msg.tag,
                            bytes: msg.bytes,
                            protocol,
                        },
                    );
                    self.states[msg.src as usize].parked = None;
                    self.reply(msg.src, Reply::Done { now: send_end }, send_end);
                }
                Party::Request(req) => {
                    let slot = self.states[msg.src as usize]
                        .reqs
                        .get_mut(&req)
                        .expect("matched send request missing from table");
                    *slot = ReqSlot::Complete {
                        time: send_end,
                        info: None,
                    };
                    self.worklist.insert(msg.src);
                }
            }
        }
    }

    /// Attempts to complete a parked wait-family operation on `rank`.
    fn try_wait_progress(&mut self, rank: Rank) -> Result<(), SimError> {
        let Some(op) = self.states[rank as usize].parked.clone() else {
            return Ok(());
        };
        let t = self.states[rank as usize].now;
        let o = self.net.sw_overhead();
        match op {
            Op::Wait { req } => {
                let time_info = match self.states[rank as usize].reqs.get(&req) {
                    None => return Err(self.invalid(rank, format!("wait on unknown req {req}"))),
                    Some(ReqSlot::Complete { time, info }) => Some((*time, *info)),
                    Some(_) => None,
                };
                if let Some((time, info)) = time_info {
                    self.states[rank as usize].reqs.remove(&req);
                    let end = (t + o).max(time);
                    self.emit(rank, t, end, EventKind::Wait { req });
                    self.states[rank as usize].parked = None;
                    self.reply(rank, Reply::WaitDone { now: end, info }, end);
                }
            }
            Op::WaitAll { ref reqs } => {
                let mut latest = t + o;
                for req in reqs {
                    match self.states[rank as usize].reqs.get(req) {
                        None => {
                            return Err(self.invalid(rank, format!("waitall on unknown req {req}")))
                        }
                        Some(ReqSlot::Complete { time, .. }) => latest = latest.max(*time),
                        Some(_) => return Ok(()), // still pending; stay parked
                    }
                }
                for req in reqs {
                    self.states[rank as usize].reqs.remove(req);
                }
                self.emit(rank, t, latest, EventKind::WaitAll { reqs: reqs.clone() });
                self.states[rank as usize].parked = None;
                self.reply(
                    rank,
                    Reply::WaitDone {
                        now: latest,
                        info: None,
                    },
                    latest,
                );
            }
            Op::WaitSome { ref reqs } => {
                if reqs.is_empty() {
                    let end = t + o;
                    self.emit(
                        rank,
                        t,
                        end,
                        EventKind::WaitSome {
                            reqs: Vec::new(),
                            completed: Vec::new(),
                        },
                    );
                    self.states[rank as usize].parked = None;
                    self.reply(
                        rank,
                        Reply::SomeDone {
                            now: end,
                            completed: Vec::new(),
                        },
                        end,
                    );
                    return Ok(());
                }
                let mut min_done: Option<Cycles> = None;
                for req in reqs {
                    match self.states[rank as usize].reqs.get(req) {
                        None => {
                            return Err(self.invalid(rank, format!("waitsome on unknown req {req}")))
                        }
                        Some(ReqSlot::Complete { time, .. }) => {
                            min_done = Some(min_done.map_or(*time, |m: Cycles| m.min(*time)));
                        }
                        Some(_) => {}
                    }
                }
                let Some(min_done) = min_done else {
                    return Ok(()); // nothing complete yet; stay parked
                };
                let end = (t + o).max(min_done);
                let completed: Vec<ReqId> = reqs
                    .iter()
                    .filter(|req| {
                        matches!(
                            self.states[rank as usize].reqs.get(req),
                            Some(ReqSlot::Complete { time, .. }) if *time <= end
                        )
                    })
                    .copied()
                    .collect();
                for req in &completed {
                    self.states[rank as usize].reqs.remove(req);
                }
                self.emit(
                    rank,
                    t,
                    end,
                    EventKind::WaitSome {
                        reqs: reqs.clone(),
                        completed: completed.clone(),
                    },
                );
                self.states[rank as usize].parked = None;
                self.reply(
                    rank,
                    Reply::SomeDone {
                        now: end,
                        completed,
                    },
                    end,
                );
            }
            _ => {}
        }
        Ok(())
    }

    fn enter_collective(
        &mut self,
        rank: Rank,
        t: Cycles,
        kind: CollKind,
        op: Op,
    ) -> Result<(), SimError> {
        let st = &mut self.states[rank as usize];
        let epoch = st.coll_epoch;
        st.coll_epoch += 1;
        st.parked = Some(op);
        let slot = self.collectives.entry(epoch).or_insert_with(|| CollSlot {
            kind: kind.clone(),
            entries: Vec::new(),
        });
        if slot.kind != kind {
            return Err(SimError::CollectiveMismatch {
                epoch,
                detail: format!(
                    "rank {rank} called {kind:?} but epoch began with {:?}",
                    slot.kind
                ),
            });
        }
        slot.entries.push((rank, t));
        if slot.entries.len() == self.p as usize {
            let slot = self.collectives.remove(&epoch).expect("slot just filled");
            self.complete_collective(slot);
        }
        Ok(())
    }

    /// Applies the paper's abstract collective model (Fig. 4).
    ///
    /// Each rank samples `⌈log₂ p⌉` rounds of (per-round combine work +
    /// OS noise + latency + transfer) to form its `lδ_i`; the blocking node
    /// fires at `max_i(enter_i + o + lδ_i)` and everyone leaves together —
    /// "forcing the slowest node … to dominate the performance of the entire
    /// collective". `Reduce` samples a single round (the paper's simplified
    /// variant); `Bcast` charges the rounds to the root only.
    fn complete_collective(&mut self, mut slot: CollSlot) {
        slot.entries.sort_unstable_by_key(|&(r, _)| r);
        let o = self.net.sw_overhead();
        let p = self.p;
        let rounds = (p as f64).log2().ceil() as u32;
        self.stats.collectives += 1;

        let (bytes, kind_rounds_per_rank): (u64, u32) = match slot.kind {
            CollKind::Barrier => (0, rounds),
            CollKind::Allreduce { bytes } => (bytes, rounds),
            CollKind::Allgather { bytes } => (bytes, rounds),
            CollKind::Alltoall { bytes } => (bytes, p.saturating_sub(1)),
            CollKind::Reduce { bytes, .. } | CollKind::Gather { bytes, .. } => (bytes, 1),
            // Root-only rounds for the distribution collectives.
            CollKind::Bcast { bytes, .. } | CollKind::Scatter { bytes, .. } => (bytes, 0),
        };

        let latency_dist = self.net.signature().latency.clone();
        let bandwidth = self.net.signature().bandwidth.clone();
        let mut hub: Cycles = 0;
        let mut enters = Vec::with_capacity(slot.entries.len());
        for &(r, enter) in &slot.entries {
            let charged_rounds = match slot.kind {
                CollKind::Bcast { root, .. } | CollKind::Scatter { root, .. } if r == root => {
                    rounds
                }
                CollKind::Bcast { .. } | CollKind::Scatter { .. } => 0,
                _ => kind_rounds_per_rank,
            };
            let mut l_delta: Cycles = 0;
            for k in 0..charged_rounds {
                use mpg_noise::SampleDist;
                let work = COLLECTIVE_ROUND_BASE + bytes;
                let rng = &mut self.coll_rngs[r as usize];
                let latency = latency_dist.sample(rng);
                let transfer = bandwidth.transfer_cycles(bytes, rng);
                let stolen = self.os_noise.stolen(
                    enter + u64::from(k) * work,
                    work,
                    &mut self.noise_rngs[r as usize],
                );
                self.stats.noise_stolen += stolen;
                l_delta += work + stolen + latency + transfer;
            }
            hub = hub.max(enter + o + l_delta);
            enters.push((r, enter));
        }

        let kind_event = |_r: Rank| match slot.kind {
            CollKind::Barrier => EventKind::Barrier { comm_size: p },
            CollKind::Bcast { root, bytes } => EventKind::Bcast {
                root,
                bytes,
                comm_size: p,
            },
            CollKind::Reduce { root, bytes } => EventKind::Reduce {
                root,
                bytes,
                comm_size: p,
            },
            CollKind::Allreduce { bytes } => EventKind::Allreduce {
                bytes,
                comm_size: p,
            },
            CollKind::Scatter { root, bytes } => EventKind::Scatter {
                root,
                bytes,
                comm_size: p,
            },
            CollKind::Gather { root, bytes } => EventKind::Gather {
                root,
                bytes,
                comm_size: p,
            },
            CollKind::Allgather { bytes } => EventKind::Allgather {
                bytes,
                comm_size: p,
            },
            CollKind::Alltoall { bytes } => EventKind::Alltoall {
                bytes,
                comm_size: p,
            },
        };
        for (r, enter) in enters {
            let end = hub.max(enter + o);
            self.emit(r, enter, end, kind_event(r));
            self.states[r as usize].parked = None;
            self.reply(r, Reply::Done { now: end }, end);
        }
    }
}
