//! The [`Simulation`] builder and runner.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crossbeam_channel::{bounded, unbounded};

use crate::coordinator::{Coordinator, SimStats};
use crate::error::SimError;
use crate::network::NetworkModel;
use crate::rank::{Incoming, RankCtx, ABORT};
use crate::tracer::{MemTracer, NullTracer, Tracer};
use crate::Cycles;
use mpg_noise::PlatformSignature;
use mpg_trace::{ClockModel, MemTrace};

/// How blocking/nonblocking sends complete (§3.1.1 notes MPI's send
/// variants; the paper's Eq. 1 models the synchronous form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// Every send completes only after the receiver has the data and an
    /// acknowledgement returns (Eq. 1's third arm). The default, matching
    /// the paper's model.
    Synchronous,
    /// Messages up to `threshold` bytes complete locally after the buffer
    /// copy; larger ones fall back to synchronous completion, like real MPI
    /// eager/rendezvous protocols.
    Eager {
        /// Largest eager payload in bytes.
        threshold: u64,
    },
}

impl SendMode {
    /// Does a message of `bytes` complete eagerly under this mode?
    pub fn is_eager(self, bytes: u64) -> bool {
        match self {
            SendMode::Synchronous => false,
            SendMode::Eager { threshold } => bytes <= threshold,
        }
    }
}

/// How collectives are executed and traced (the ablation of §3.2, Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveMode {
    /// The coordinator applies the paper's ⌈log₂ p⌉-round abstract model and
    /// the trace contains one collective event per rank (Fig. 4's subgraph).
    Abstract,
    /// Collectives are expanded into explicit point-to-point exchanges
    /// (butterfly allreduce, binomial bcast/reduce, dissemination barrier);
    /// the trace contains only pairwise events. "This can be explicitly
    /// constructed in the graph … unfortunately, this is not space or time
    /// efficient."
    Expanded,
}

/// Everything a finished simulation produced.
#[derive(Debug)]
pub struct SimOutcome {
    /// Per-rank event trace with **local** (skewed) timestamps.
    pub trace: MemTrace,
    /// Global virtual time at which each rank finished `MPI_Finalize` — the
    /// ground truth replays are validated against.
    pub finish_times: Vec<Cycles>,
    /// Aggregate counters.
    pub stats: SimStats,
}

impl SimOutcome {
    /// The job's makespan: the latest rank finish time (global clock).
    pub fn makespan(&self) -> Cycles {
        self.finish_times.iter().copied().max().unwrap_or(0)
    }
}

/// Builder for one simulated MPI job.
pub struct Simulation {
    ranks: u32,
    signature: PlatformSignature,
    seed: u64,
    send_mode: SendMode,
    collective_mode: CollectiveMode,
    clocks: Option<Vec<ClockModel>>,
    tracing: bool,
}

impl Simulation {
    /// A job of `ranks` ranks on the given platform.
    ///
    /// # Panics
    /// Panics when `ranks == 0`.
    pub fn new(ranks: u32, signature: PlatformSignature) -> Self {
        assert!(ranks > 0, "need at least one rank");
        Self {
            ranks,
            signature,
            seed: 0,
            send_mode: SendMode::Synchronous,
            collective_mode: CollectiveMode::Abstract,
            clocks: None,
            tracing: true,
        }
    }

    /// Root RNG seed; the same seed reproduces the run exactly.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Send completion protocol (default [`SendMode::Synchronous`]).
    pub fn send_mode(mut self, mode: SendMode) -> Self {
        self.send_mode = mode;
        self
    }

    /// Collective execution mode (default [`CollectiveMode::Abstract`]).
    pub fn collective_mode(mut self, mode: CollectiveMode) -> Self {
        self.collective_mode = mode;
        self
    }

    /// Per-rank trace clock models. Defaults to
    /// [`ClockModel::skewed`] per rank — traces are unsynchronized unless
    /// explicitly overridden with [`ClockModel::ideal`] clocks.
    pub fn clocks(mut self, clocks: Vec<ClockModel>) -> Self {
        assert_eq!(clocks.len(), self.ranks as usize);
        self.clocks = Some(clocks);
        self
    }

    /// Convenience: perfectly synchronized trace clocks.
    pub fn ideal_clocks(self) -> Self {
        let n = self.ranks as usize;
        self.clocks(vec![ClockModel::ideal(); n])
    }

    /// Disables trace collection (benchmarking the simulator itself).
    pub fn no_trace(mut self) -> Self {
        self.tracing = false;
        self
    }

    /// Runs `program` on every rank (SPMD style: the closure observes its
    /// rank via [`RankCtx::rank`]). Blocks until all ranks finalize.
    pub fn run<F>(self, program: F) -> Result<SimOutcome, SimError>
    where
        F: Fn(&mut RankCtx) + Sync,
    {
        let clocks = self
            .clocks
            .clone()
            .unwrap_or_else(|| (0..self.ranks).map(ClockModel::skewed).collect());
        let mut mem_tracer;
        let mut null_tracer;
        let tracer: &mut dyn Tracer = if self.tracing {
            mem_tracer = MemTracer::new(clocks);
            &mut mem_tracer
        } else {
            null_tracer = NullTracer;
            &mut null_tracer
        };

        let (req_tx, req_rx) = unbounded::<Incoming>();
        let mut reply_txs = Vec::with_capacity(self.ranks as usize);
        let mut reply_rxs = Vec::with_capacity(self.ranks as usize);
        for _ in 0..self.ranks {
            let (tx, rx) = bounded(1);
            reply_txs.push(tx);
            reply_rxs.push(rx);
        }

        let net = NetworkModel::new(self.signature.clone(), self.ranks as usize, self.seed);
        let coordinator = Coordinator::new(
            self.ranks,
            self.seed,
            self.send_mode,
            net,
            self.signature.os_noise.clone(),
            tracer,
            reply_txs,
            req_rx,
        );

        let collective_mode = self.collective_mode;
        let ranks = self.ranks;
        let program = &program;

        let run_result = std::thread::scope(|scope| {
            for (r, reply_rx) in reply_rxs.drain(..).enumerate() {
                let tx = req_tx.clone();
                scope.spawn(move || {
                    let mut ctx =
                        RankCtx::new(r as u32, ranks, tx.clone(), reply_rx, collective_mode);
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        ctx.init();
                        program(&mut ctx);
                        ctx.finalize();
                    }));
                    if let Err(payload) = outcome {
                        let is_abort = payload.downcast_ref::<&str>().is_some_and(|s| *s == ABORT);
                        if !is_abort {
                            let message = payload
                                .downcast_ref::<String>()
                                .cloned()
                                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                                .unwrap_or_else(|| "non-string panic".into());
                            let _ = tx.send(Incoming::Panicked {
                                rank: r as u32,
                                message,
                            });
                        }
                    }
                });
            }
            // The coordinator's own copy of the request sender must go away
            // so that a disconnect is observable.
            drop(req_tx);
            coordinator.run()
            // Leaving the scope drops the coordinator's reply senders (moved
            // into it) on error paths, unwinding any still-blocked ranks.
        });

        let (stats, finish_times) = run_result?;
        let trace = tracer
            .finish()
            .map_err(SimError::Trace)?
            .unwrap_or_else(|| MemTrace::new(self.ranks as usize));
        Ok(SimOutcome {
            trace,
            finish_times,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpg_trace::{validate_trace, EventKind};

    fn quiet() -> PlatformSignature {
        PlatformSignature::quiet("test")
    }

    #[test]
    fn single_rank_compute_only() {
        let out = Simulation::new(1, quiet())
            .ideal_clocks()
            .run(|ctx| ctx.compute(5_000))
            .unwrap();
        assert_eq!(out.trace.num_ranks(), 1);
        let events = out.trace.rank(0);
        assert_eq!(events.len(), 3); // init, compute, finalize
        assert_eq!(events[1].kind, EventKind::Compute { work: 5_000 });
        assert_eq!(events[1].duration(), 5_000); // quiet platform: no noise
        assert!(validate_trace(&out.trace).is_empty());
    }

    #[test]
    fn two_rank_pingpong() {
        let out = Simulation::new(2, quiet())
            .ideal_clocks()
            .run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 7, 1000);
                    let info = ctx.recv(1, 8);
                    assert_eq!(info.bytes, 2000);
                } else {
                    let info = ctx.recv(0, 7);
                    assert_eq!(info.src, 0);
                    assert_eq!(info.bytes, 1000);
                    ctx.send(0, 8, 2000);
                }
            })
            .unwrap();
        assert!(validate_trace(&out.trace).is_empty());
        assert_eq!(out.stats.messages, 2);
        assert_eq!(out.stats.bytes, 3000);
        // Recv on rank 1 must end at arrival: init(1000) + enter + o(300) +
        // λ(2000) + transfer(500).
        let recv = &out.trace.rank(1)[1];
        assert_eq!(recv.kind.name(), "recv");
        assert_eq!(recv.t_end, 1000 + 300 + 2000 + 500);
    }

    #[test]
    fn synchronous_send_waits_for_receiver() {
        // Receiver delays before posting; sender's send interval must cover
        // the delay + ack.
        let out = Simulation::new(2, quiet())
            .ideal_clocks()
            .run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 0, 8);
                } else {
                    ctx.compute(1_000_000);
                    ctx.recv(0, 0);
                }
            })
            .unwrap();
        let send = &out.trace.rank(0)[1];
        // recv posted at 1_001_000, ends max(arrival, posted+o)=1_001_300;
        // ack λ2=2000 → send end 1_003_300.
        assert_eq!(send.t_end, 1_001_000 + 300 + 2_000);
    }

    #[test]
    fn eager_send_returns_immediately() {
        let out = Simulation::new(2, quiet())
            .ideal_clocks()
            .send_mode(SendMode::Eager { threshold: 1 << 20 })
            .run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 0, 100);
                } else {
                    ctx.compute(1_000_000);
                    ctx.recv(0, 0);
                }
            })
            .unwrap();
        let send = &out.trace.rank(0)[1];
        // o(300) + inject(50) regardless of the late receiver.
        assert_eq!(send.duration(), 350);
    }

    #[test]
    fn deadlock_detected() {
        let err = Simulation::new(2, quiet())
            .run(|ctx| {
                // Both ranks receive first: classic deadlock.
                let peer = 1 - ctx.rank();
                ctx.recv(peer, 0);
                ctx.send(peer, 0, 8);
            })
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn sync_send_send_deadlock_detected() {
        let err = Simulation::new(2, quiet())
            .run(|ctx| {
                let peer = 1 - ctx.rank();
                ctx.send(peer, 0, 8);
                ctx.recv(peer, 0);
            })
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn eager_send_send_does_not_deadlock() {
        Simulation::new(2, quiet())
            .send_mode(SendMode::Eager { threshold: 1 << 20 })
            .run(|ctx| {
                let peer = 1 - ctx.rank();
                ctx.send(peer, 0, 8);
                ctx.recv(peer, 0);
            })
            .unwrap();
    }

    #[test]
    fn rank_panic_reported() {
        let err = Simulation::new(2, quiet())
            .run(|ctx| {
                if ctx.rank() == 1 {
                    panic!("boom on rank 1");
                }
                ctx.recv(1, 0);
            })
            .unwrap_err();
        match err {
            SimError::RankPanicked { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic error, got {other}"),
        }
    }

    #[test]
    fn determinism_same_seed() {
        let run = || {
            Simulation::new(4, PlatformSignature::noisy("n", 1.0))
                .seed(1234)
                .run(|ctx| {
                    let p = ctx.size();
                    for _ in 0..5 {
                        ctx.compute(10_000);
                        ctx.sendrecv((ctx.rank() + 1) % p, 0, 512, (ctx.rank() + p - 1) % p, 0);
                    }
                    ctx.allreduce(64);
                })
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.finish_times, b.finish_times);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn noise_increases_makespan() {
        let program = |ctx: &mut RankCtx| {
            for _ in 0..20 {
                ctx.compute(100_000);
                ctx.barrier();
            }
        };
        let quiet_out = Simulation::new(4, quiet()).seed(1).run(program).unwrap();
        let noisy_out = Simulation::new(4, PlatformSignature::noisy("n", 4.0))
            .seed(1)
            .run(program)
            .unwrap();
        assert!(
            noisy_out.makespan() > quiet_out.makespan(),
            "noisy {} <= quiet {}",
            noisy_out.makespan(),
            quiet_out.makespan()
        );
        assert!(noisy_out.stats.noise_stolen > 0);
    }

    #[test]
    fn collective_mismatch_detected() {
        let err = Simulation::new(2, quiet())
            .run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.barrier();
                } else {
                    ctx.allreduce(8);
                }
            })
            .unwrap_err();
        assert!(matches!(err, SimError::CollectiveMismatch { .. }), "{err}");
    }

    #[test]
    fn skewed_clocks_still_validate() {
        // Default clocks are skewed; traces must still be per-rank monotonic.
        let out = Simulation::new(3, quiet())
            .run(|ctx| {
                ctx.compute(1000);
                ctx.barrier();
            })
            .unwrap();
        assert!(validate_trace(&out.trace).is_empty());
        // And rank clocks genuinely differ: init start times disagree.
        let starts: Vec<u64> = (0..3).map(|r| out.trace.rank(r)[0].t_start).collect();
        assert!(starts.windows(2).any(|w| w[0] != w[1]), "{starts:?}");
    }

    #[test]
    fn waitsome_returns_subset() {
        let out = Simulation::new(2, quiet())
            .ideal_clocks()
            .run(|ctx| {
                if ctx.rank() == 0 {
                    // Two irecvs; peer sends one quickly, one after a long
                    // compute. Waitsome should complete with just the first.
                    let r1 = ctx.irecv(1, 1);
                    let r2 = ctx.irecv(1, 2);
                    let done = ctx.waitsome(&[r1, r2]);
                    assert_eq!(done.len(), 1);
                    let rest: Vec<_> = [r1, r2].into_iter().filter(|r| !done.contains(r)).collect();
                    ctx.waitall(&rest);
                } else {
                    ctx.send(0, 1, 8);
                    ctx.compute(10_000_000);
                    ctx.send(0, 2, 8);
                }
            })
            .unwrap();
        assert!(validate_trace(&out.trace).is_empty());
    }

    #[test]
    fn no_trace_mode() {
        let out = Simulation::new(2, quiet())
            .no_trace()
            .run(|ctx| {
                ctx.barrier();
            })
            .unwrap();
        assert_eq!(out.trace.total_events(), 0);
        assert!(out.makespan() > 0);
    }

    #[test]
    fn invalid_peer_rejected() {
        let err = Simulation::new(2, quiet())
            .run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.send(5, 0, 8);
                }
            })
            .unwrap_err();
        assert!(
            matches!(err, SimError::InvalidOperation { rank: 0, .. }),
            "{err}"
        );
    }
}
