#![warn(missing_docs)]

//! A deterministic simulated MPI runtime.
//!
//! The paper generates its input data by running real MPI programs on a real
//! cluster under a PMPI tracing library (§4). This crate substitutes that
//! testbed: rank programs are ordinary Rust closures executing against a
//! [`RankCtx`] that exposes the same MPI-1 subset the paper models
//! (blocking send/recv, nonblocking isend/irecv with wait/waitall/waitsome,
//! and barrier/bcast/reduce/allreduce collectives). A central coordinator
//! advances **virtual time** in cycles, injects platform behaviour — wire
//! latency, bandwidth, software overhead, and OS noise from a
//! [`PlatformSignature`](mpg_noise::PlatformSignature) — and emits the same
//! per-rank, locally-timestamped event traces a PMPI wrapper would.
//!
//! # Determinism
//!
//! Rank programs run on OS threads, but the coordinator is a strict
//! sequencer: it holds every rank's next request before deciding what to
//! process, and all randomness is drawn from per-rank
//! [`StreamRng`](mpg_noise::StreamRng) streams, so a given seed reproduces a
//! simulation bit for bit.
//!
//! # Example
//!
//! ```
//! use mpg_sim::Simulation;
//! use mpg_noise::PlatformSignature;
//!
//! let outcome = Simulation::new(4, PlatformSignature::quiet("test"))
//!     .seed(7)
//!     .run(|ctx| {
//!         let p = ctx.size();
//!         let next = (ctx.rank() + 1) % p;
//!         let prev = (ctx.rank() + p - 1) % p;
//!         ctx.compute(10_000);
//!         if ctx.rank() == 0 {
//!             ctx.send(next, 0, 1024);
//!             ctx.recv(prev, 0);
//!         } else {
//!             ctx.recv(prev, 0);
//!             ctx.send(next, 0, 1024);
//!         }
//!         ctx.barrier();
//!     })
//!     .unwrap();
//! assert_eq!(outcome.trace.num_ranks(), 4);
//! ```

pub mod collective;
pub mod comm;
pub mod coordinator;
pub mod error;
pub mod matching;
pub mod message;
pub mod network;
pub mod program;
pub mod rank;
pub mod tracer;

pub use comm::Comm;
pub use error::SimError;
pub use matching::{EnvelopeMatcher, MatchEngine, RecvEnvelope, SendEnvelope};
pub use message::RecvInfo;
pub use program::{CollectiveMode, SendMode, SimOutcome, Simulation};
pub use rank::{RankCtx, Req};

/// Virtual time in cycles (same unit as `mpg_noise::Cycles`).
pub type Cycles = u64;
