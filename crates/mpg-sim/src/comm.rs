//! Sub-communicators (`MPI_Comm_split` and friends).
//!
//! The paper's prototype (like its §6 experiments) lives on `COMM_WORLD`;
//! this module supplies the rest of MPI-1's communicator surface as a layer
//! **over point-to-point** — the way production MPI libraries implement
//! collectives on derived communicators. Consequences that keep the
//! analysis story intact:
//!
//! * traces contain only ordinary p2p events (no format change), so the
//!   §4.1 order-only matcher handles sub-communicator traffic natively;
//! * the cost of a split is modeled as an allgather over the parent (the
//!   color/key exchange a real split performs);
//! * collective algorithms are the same binomial/butterfly/ring expansions
//!   as [`collective`](crate::collective), rank-translated through the
//!   member table.
//!
//! Because the simulator does not transport payload *contents*, membership
//! is computed from caller-supplied `color`/`key` **functions of the global
//! rank** — every rank evaluates the same deterministic mapping, covering
//! the standard grid/row/column split idioms.

use crate::collective::COLL_TAG_BASE;
use crate::rank::RankCtx;
use mpg_noise::rng::splitmix64;
use mpg_trace::{Rank, Tag};

/// A communicator: an ordered subset of world ranks.
///
/// The member order defines each participant's *virtual rank* (its rank
/// within this communicator), exactly like `MPI_Comm_rank` on the derived
/// communicator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comm {
    id: u32,
    members: Vec<Rank>,
    my_vrank: u32,
}

impl Comm {
    /// The world communicator as seen from `ctx`.
    pub fn world(ctx: &RankCtx) -> Self {
        Self {
            id: 0,
            members: (0..ctx.size()).collect(),
            my_vrank: ctx.rank(),
        }
    }

    /// Builds a communicator from an explicit member list (must contain
    /// `me`, be duplicate-free, and every caller must pass the same order).
    ///
    /// # Panics
    /// Panics when `me` is not a member.
    pub fn from_members(id: u32, members: Vec<Rank>, me: Rank) -> Self {
        let my_vrank = members
            .iter()
            .position(|&r| r == me)
            .expect("calling rank must be a member of the communicator")
            as u32;
        Self {
            id,
            members,
            my_vrank,
        }
    }

    /// Communicator identity (0 = world); equal across all members.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of members (`MPI_Comm_size`).
    pub fn size(&self) -> u32 {
        self.members.len() as u32
    }

    /// This rank's position within the communicator (`MPI_Comm_rank`).
    pub fn vrank(&self) -> u32 {
        self.my_vrank
    }

    /// The members, in virtual-rank order.
    pub fn members(&self) -> &[Rank] {
        &self.members
    }

    /// Global rank of virtual rank `v`.
    pub fn translate(&self, v: u32) -> Rank {
        self.members[v as usize]
    }

    /// Tag namespace for this communicator's collectives: 64 disjoint
    /// sub-ranges above [`COLL_TAG_BASE`]. Legal MPI programs order
    /// blocking collectives consistently per rank pair, so tag reuse across
    /// communicators sharing a namespace still matches correctly.
    fn tag_base(&self) -> Tag {
        COLL_TAG_BASE + 0x1000 + (self.id % 64) * 0x800
    }
}

/// Generic expanded collectives over a communicator view. Mirrors the
/// world algorithms in [`collective`](crate::collective) with virtual-rank
/// translation.
mod on {
    use super::Comm;
    use crate::rank::RankCtx;
    use mpg_trace::Tag;

    fn combine_work(bytes: u64) -> u64 {
        100 + bytes
    }

    fn sendrecv(ctx: &mut RankCtx, comm: &Comm, to_v: u32, from_v: u32, tag: Tag, bytes: u64) {
        let to = comm.translate(to_v);
        let from = comm.translate(from_v);
        if to == ctx.rank() && from == ctx.rank() {
            return; // self-exchange: nothing to model
        }
        ctx.sendrecv(to, tag, bytes, from, tag);
    }

    pub fn barrier(ctx: &mut RankCtx, comm: &Comm) {
        let p = comm.size();
        if p == 1 {
            return;
        }
        let v = comm.vrank();
        let base = comm.tag_base();
        let mut dist = 1u32;
        let mut round = 0;
        while dist < p {
            sendrecv(
                ctx,
                comm,
                (v + dist) % p,
                (v + p - dist) % p,
                base + round,
                1,
            );
            dist <<= 1;
            round += 1;
        }
    }

    pub fn bcast(ctx: &mut RankCtx, comm: &Comm, root_v: u32, bytes: u64) {
        let p = comm.size();
        if p == 1 {
            return;
        }
        let v = comm.vrank();
        let relative = (v + p - root_v) % p;
        let tag = comm.tag_base() + 0x100;
        let mut mask = 1u32;
        while mask < p {
            if relative & mask != 0 {
                let src_v = (v + p - mask) % p;
                ctx.recv(comm.translate(src_v), tag);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if relative + mask < p {
                let dst_v = (v + mask) % p;
                ctx.send(comm.translate(dst_v), tag, bytes);
            }
            mask >>= 1;
        }
    }

    pub fn reduce(ctx: &mut RankCtx, comm: &Comm, root_v: u32, bytes: u64) {
        let p = comm.size();
        if p == 1 {
            return;
        }
        let v = comm.vrank();
        let relative = (v + p - root_v) % p;
        let tag = comm.tag_base() + 0x200;
        let mut mask = 1u32;
        while mask < p {
            if relative & mask == 0 {
                let child = relative | mask;
                if child < p {
                    let src_v = (child + root_v) % p;
                    ctx.recv(comm.translate(src_v), tag);
                    ctx.compute(combine_work(bytes));
                }
            } else {
                let parent_v = ((relative & !mask) + root_v) % p;
                ctx.send(comm.translate(parent_v), tag, bytes);
                return;
            }
            mask <<= 1;
        }
    }

    pub fn allreduce(ctx: &mut RankCtx, comm: &Comm, bytes: u64) {
        let p = comm.size();
        if p == 1 {
            return;
        }
        if p.is_power_of_two() {
            let v = comm.vrank();
            let mut mask = 1u32;
            let mut round = 0;
            while mask < p {
                let partner = v ^ mask;
                sendrecv(
                    ctx,
                    comm,
                    partner,
                    partner,
                    comm.tag_base() + 0x300 + round,
                    bytes,
                );
                ctx.compute(combine_work(bytes));
                mask <<= 1;
                round += 1;
            }
        } else {
            reduce(ctx, comm, 0, bytes);
            bcast(ctx, comm, 0, bytes);
        }
    }

    pub fn allgather(ctx: &mut RankCtx, comm: &Comm, bytes: u64) {
        let p = comm.size();
        if p == 1 {
            return;
        }
        let v = comm.vrank();
        for step in 0..p - 1 {
            sendrecv(
                ctx,
                comm,
                (v + 1) % p,
                (v + p - 1) % p,
                comm.tag_base() + 0x400 + step,
                bytes,
            );
        }
    }
}

impl RankCtx {
    /// The world communicator.
    pub fn comm_world(&self) -> Comm {
        Comm::world(self)
    }

    /// Splits `parent` into sub-communicators by `color`, ordered by `key`
    /// then global rank within each color (`MPI_Comm_split`). Every member
    /// of `parent` must call this with the *same* mapping functions; the
    /// color/key exchange a real split performs is modeled as an 8-byte
    /// allgather over the parent.
    pub fn comm_split(
        &mut self,
        parent: &Comm,
        color: impl Fn(Rank) -> u32,
        key: impl Fn(Rank) -> u32,
    ) -> Comm {
        // Model the metadata exchange cost.
        on::allgather(self, parent, 8);

        let me = self.rank();
        let my_color = color(me);
        let mut members: Vec<Rank> = parent
            .members()
            .iter()
            .copied()
            .filter(|&r| color(r) == my_color)
            .collect();
        members.sort_by_key(|&r| (key(r), r));
        let id = (splitmix64((u64::from(parent.id()) << 32) | u64::from(my_color))
            % u64::from(u32::MAX)) as u32
            | 1; // never collides with world's 0
        Comm::from_members(id, members, me)
    }

    /// Barrier over `comm`.
    pub fn barrier_on(&mut self, comm: &Comm) {
        on::barrier(self, comm);
    }

    /// Broadcast of `bytes` from virtual rank `root_v` over `comm`.
    pub fn bcast_on(&mut self, comm: &Comm, root_v: u32, bytes: u64) {
        on::bcast(self, comm, root_v, bytes);
    }

    /// Reduction of `bytes` to virtual rank `root_v` over `comm`.
    pub fn reduce_on(&mut self, comm: &Comm, root_v: u32, bytes: u64) {
        on::reduce(self, comm, root_v, bytes);
    }

    /// All-reduce of `bytes` over `comm`.
    pub fn allreduce_on(&mut self, comm: &Comm, bytes: u64) {
        on::allreduce(self, comm, bytes);
    }

    /// All-gather of `bytes` per member over `comm`.
    pub fn allgather_on(&mut self, comm: &Comm, bytes: u64) {
        on::allgather(self, comm, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Simulation;
    use mpg_noise::PlatformSignature;
    use mpg_trace::{validate_trace, MemTrace};

    fn run(p: u32, f: impl Fn(&mut RankCtx) + Sync) -> MemTrace {
        Simulation::new(p, PlatformSignature::quiet("t"))
            .ideal_clocks()
            .run(f)
            .unwrap()
            .trace
    }

    #[test]
    fn world_comm_is_identity() {
        let trace = run(4, |ctx| {
            let world = ctx.comm_world();
            assert_eq!(world.size(), 4);
            assert_eq!(world.vrank(), ctx.rank());
            assert_eq!(world.translate(2), 2);
            ctx.barrier_on(&world);
        });
        assert!(validate_trace(&trace).is_empty());
    }

    #[test]
    fn even_odd_split_collectives() {
        let trace = run(6, |ctx| {
            let world = ctx.comm_world();
            let sub = ctx.comm_split(&world, |r| r % 2, |r| r);
            assert_eq!(sub.size(), 3);
            assert_eq!(sub.vrank(), ctx.rank() / 2);
            ctx.allreduce_on(&sub, 64);
            ctx.barrier_on(&sub);
            ctx.bcast_on(&sub, 0, 128);
            ctx.reduce_on(&sub, 0, 64);
            ctx.allgather_on(&sub, 32);
            ctx.barrier(); // world barrier still fine afterwards
        });
        assert!(validate_trace(&trace).is_empty());
    }

    #[test]
    fn grid_row_col_splits() {
        // 2×3 grid: rows {0,1,2},{3,4,5}; cols {0,3},{1,4},{2,5}.
        let trace = run(6, |ctx| {
            let world = ctx.comm_world();
            let row = ctx.comm_split(&world, |r| r / 3, |r| r);
            let col = ctx.comm_split(&world, |r| r % 3, |r| r);
            assert_eq!(row.size(), 3);
            assert_eq!(col.size(), 2);
            ctx.allreduce_on(&row, 256);
            ctx.allreduce_on(&col, 256);
        });
        assert!(validate_trace(&trace).is_empty());
    }

    #[test]
    fn comm_ids_differ_by_color_and_match_within() {
        run(4, |ctx| {
            let world = ctx.comm_world();
            let sub = ctx.comm_split(&world, |r| r % 2, |r| r);
            // Same color → same id everywhere (deterministic function).
            let expected = (splitmix64(u64::from(ctx.rank() % 2)) % u64::from(u32::MAX)) as u32 | 1;
            assert_eq!(sub.id(), expected);
            assert_ne!(sub.id(), 0);
        });
    }

    #[test]
    fn key_reorders_vranks() {
        run(4, |ctx| {
            let world = ctx.comm_world();
            // Reverse ordering: key = p - rank.
            let sub = ctx.comm_split(&world, |_| 0, |r| 100 - r);
            assert_eq!(sub.size(), 4);
            assert_eq!(sub.vrank(), 3 - ctx.rank());
            assert_eq!(sub.translate(0), 3);
            ctx.bcast_on(&sub, 0, 64); // root is global rank 3
        });
    }

    #[test]
    fn singleton_comms_are_noops() {
        let trace = run(3, |ctx| {
            let world = ctx.comm_world();
            let solo = ctx.comm_split(&world, |r| r, |r| r); // every rank alone
            assert_eq!(solo.size(), 1);
            ctx.barrier_on(&solo);
            ctx.allreduce_on(&solo, 1024);
            ctx.bcast_on(&solo, 0, 8);
        });
        assert!(validate_trace(&trace).is_empty());
    }

    #[test]
    fn subcomm_traffic_replays_and_drift_stays_in_comm() {
        // Two disjoint halves; only one half does a latency-heavy exchange
        // loop. Injected latency must drift that half only.
        let trace = run(4, |ctx| {
            let world = ctx.comm_world();
            let half = ctx.comm_split(&world, |r| r / 2, |r| r);
            if ctx.rank() < 2 {
                for _ in 0..10 {
                    ctx.allreduce_on(&half, 64);
                }
            } else {
                ctx.compute(1_000);
            }
        });
        assert!(validate_trace(&trace).is_empty());
        let mut model = mpg_core::PerturbationModel::quiet("m");
        model.latency = mpg_noise::Dist::Constant(1_000.0).into();
        let report = mpg_core::Replayer::new(mpg_core::ReplayConfig::new(model).ack_arm(false))
            .run(&trace)
            .unwrap();
        // The busy half accumulated drift; beyond the shared split cost the
        // idle half accumulated far less.
        assert!(report.final_drift[0] > report.final_drift[2] * 2);
        assert_eq!(report.final_drift[0], report.final_drift[1]);
    }

    #[test]
    #[should_panic(expected = "must be a member")]
    fn from_members_requires_membership() {
        Comm::from_members(5, vec![1, 2], 0);
    }
}
